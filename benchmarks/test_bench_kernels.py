"""Microbenchmarks of the hot kernels (not a paper table).

Timed with pytest-benchmark's normal statistics (multiple rounds) so
regressions in the vectorized SAD map, the frame-level engine kernels,
the batched DCT or the encoder inner loop are visible.

The frame-engine benchmarks also append their timings (and the
batch-vs-per-block speedup) to ``BENCH_kernels.json`` at the repo root
— regardless of the directory pytest was invoked from — so CI keeps a
machine-readable record for the regression gate
(``benchmarks/check_regression.py``).
"""

import time

import numpy as np
import pytest

from repro.codec.dct import forward_dct, inverse_dct
from repro.experiments.decode_bench import write_records
from repro.me.engine import frame_sad_surfaces
from repro.me.estimator import BlockContext
from repro.me.full_search import FullSearchEstimator
from repro.me.metrics import sad_map
from repro.me.types import MotionField

from .conftest import bench_output_path

#: Collected by the frame-engine benchmarks, flushed to
#: BENCH_kernels.json when the module finishes.
_RECORDS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_kernel_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_kernels.json"))


def _cif_planes(seed: int = 0):
    rng = np.random.default_rng(seed)
    current = rng.integers(0, 256, (288, 352), dtype=np.uint8)
    reference = np.clip(
        current.astype(np.int16) + rng.integers(-6, 7, current.shape), 0, 255
    ).astype(np.uint8)
    return current, reference


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def planes():
    rng = np.random.default_rng(0)
    current = rng.integers(0, 256, (144, 176), dtype=np.uint8)
    reference = np.clip(
        current.astype(np.int16) + rng.integers(-6, 7, current.shape), 0, 255
    ).astype(np.uint8)
    return current, reference


def test_sad_map_full_window(benchmark, planes):
    """One macroblock against a full ±15 window: the FSBM inner kernel
    (961 SADs of 256 pixels each)."""
    current, reference = planes
    block = current[64:80, 80:96]
    window = reference[49:111, 65:127]
    result = benchmark(sad_map, block, window)
    assert result.shape == (47, 47)


def test_fsbm_block_search(benchmark, planes):
    """Full FSBM block decision including half-pel refinement."""
    current, reference = planes
    est = FullSearchEstimator(p=15)
    ctx = BlockContext(current, reference, 4, 5, 16, MotionField(9, 11), None, 16)
    result = benchmark(est.search_block, ctx)
    assert result.positions == 969


def test_frame_sad_surfaces_kernel(benchmark, planes):
    """The engine's whole-frame SAD-surface kernel on one QCIF frame:
    every macroblock's full ±15 surface in one batched pass."""
    current, reference = planes
    result = benchmark(frame_sad_surfaces, current, reference, 16, 15)
    assert result.surfaces.shape == (9, 11, 31, 31)
    _RECORDS["frame_sad_surfaces_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_fsbm_frame_estimate_batched(benchmark, planes):
    """Full FSBM frame estimation through the engine's estimate_frame
    (surfaces + vectorized minima + batched half-pel refinement)."""
    current, reference = planes
    est = FullSearchEstimator(p=15, use_engine=True)
    field, stats = benchmark(est.estimate, current, reference)
    assert stats.blocks == 99
    _RECORDS["fsbm_estimate_batched_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_fsbm_frame_estimate_per_block(benchmark, planes):
    """The seed per-block FSBM path, kept as the engine's fallback —
    the baseline the batched path is measured against."""
    current, reference = planes
    est = FullSearchEstimator(p=15, use_engine=False)
    field, stats = benchmark.pedantic(
        est.estimate, args=(current, reference), rounds=3, iterations=1
    )
    assert stats.blocks == 99
    _RECORDS["fsbm_estimate_per_block_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_fsbm_frame_speedup_batch_vs_per_block():
    """Golden perf claim: the batched frame path must beat the seed
    per-block implementation by a wide margin (CIF, p=15, half-pel on;
    identical outputs are proven in tests/test_engine.py).

    The measured ratio lands around 4-5x on a single-core container
    (the per-candidate arithmetic is identical — the win is batching).
    The recorded BENCH_kernels.json number is the real signal; the
    assertion is only a regression backstop with enough margin that a
    noisy shared CI runner can't flake the suite.
    """
    current, reference = _cif_planes()
    batched = FullSearchEstimator(p=15, use_engine=True)
    per_block = FullSearchEstimator(p=15, use_engine=False)
    t_batched = _best_of(lambda: batched.estimate(current, reference), rounds=5)
    t_per_block = _best_of(lambda: per_block.estimate(current, reference), rounds=3)
    speedup = t_per_block / t_batched
    _RECORDS["fsbm_estimate_per_block_cif_ms"] = t_per_block * 1000.0
    _RECORDS["fsbm_estimate_batched_cif_ms"] = t_batched * 1000.0
    _RECORDS["fsbm_frame_speedup_cif"] = speedup
    print(
        f"\nFSBM CIF frame estimation: per-block {t_per_block * 1000.0:.1f} ms, "
        f"batched {t_batched * 1000.0:.1f} ms -> {speedup:.2f}x"
    )
    assert speedup >= 2.0, f"batched frame path regressed: only {speedup:.2f}x"


def test_batched_dct_round_trip(benchmark):
    """DCT+IDCT of a whole QCIF frame's worth of blocks (594 blocks:
    the per-frame transform load of the encoder)."""
    rng = np.random.default_rng(1)
    blocks = rng.normal(0, 30, (594, 8, 8))

    def run():
        return inverse_dct(forward_dct(blocks))

    out = benchmark(run)
    np.testing.assert_allclose(out, blocks, atol=1e-8)


def test_encoder_frame_throughput(benchmark, sequence_cache):
    """P-frame encode throughput with the cheap estimator (codec cost
    dominates here, not the search)."""
    from repro.codec.encoder import Encoder

    seq = sequence_cache["miss_america"][:3]
    encoder = Encoder(estimator="pbm", qp=16, keep_reconstruction=False)
    result = benchmark.pedantic(encoder.encode, args=(seq,), rounds=3, iterations=1)
    assert result.total_bits > 0
