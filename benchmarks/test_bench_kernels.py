"""Microbenchmarks of the hot kernels (not a paper table).

Timed with pytest-benchmark's normal statistics (multiple rounds) so
regressions in the vectorized SAD map, the batched DCT or the encoder
inner loop are visible.
"""

import numpy as np
import pytest

from repro.codec.dct import forward_dct, inverse_dct
from repro.me.estimator import BlockContext
from repro.me.full_search import FullSearchEstimator
from repro.me.metrics import sad_map
from repro.me.types import MotionField


@pytest.fixture(scope="module")
def planes():
    rng = np.random.default_rng(0)
    current = rng.integers(0, 256, (144, 176), dtype=np.uint8)
    reference = np.clip(
        current.astype(np.int16) + rng.integers(-6, 7, current.shape), 0, 255
    ).astype(np.uint8)
    return current, reference


def test_sad_map_full_window(benchmark, planes):
    """One macroblock against a full ±15 window: the FSBM inner kernel
    (961 SADs of 256 pixels each)."""
    current, reference = planes
    block = current[64:80, 80:96]
    window = reference[49:111, 65:127]
    result = benchmark(sad_map, block, window)
    assert result.shape == (47, 47)


def test_fsbm_block_search(benchmark, planes):
    """Full FSBM block decision including half-pel refinement."""
    current, reference = planes
    est = FullSearchEstimator(p=15)
    ctx = BlockContext(current, reference, 4, 5, 16, MotionField(9, 11), None, 16)
    result = benchmark(est.search_block, ctx)
    assert result.positions == 969


def test_batched_dct_round_trip(benchmark):
    """DCT+IDCT of a whole QCIF frame's worth of blocks (594 blocks:
    the per-frame transform load of the encoder)."""
    rng = np.random.default_rng(1)
    blocks = rng.normal(0, 30, (594, 8, 8))

    def run():
        return inverse_dct(forward_dct(blocks))

    out = benchmark(run)
    np.testing.assert_allclose(out, blocks, atol=1e-8)


def test_encoder_frame_throughput(benchmark, sequence_cache):
    """P-frame encode throughput with the cheap estimator (codec cost
    dominates here, not the search)."""
    from repro.codec.encoder import Encoder

    seq = sequence_cache["miss_america"][:3]
    encoder = Encoder(estimator="pbm", qp=16, keep_reconstruction=False)
    result = benchmark.pedantic(encoder.encode, args=(seq,), rounds=3, iterations=1)
    assert result.total_bits > 0
