"""Bitstream-layer benchmarks: LUT + word-level reader vs seed per-bit
reader, plus the v2 encode→index→parallel-parse→decode smoke.

The counterpart of ``test_bench_decode.py`` for the symbol-parse half
of the decoder: one encode, then the same bytes parsed through the
table-driven path (word-level :class:`BitReader`, ``read_vlc`` LUT
hits, peeked exp-Golomb) and through the seed per-bit reader
(``ScalarBitReader`` + tree-walk decode).  Symbol identity is verified
before anything is timed.  Timings, the parse speedup and the
parse/reconstruct split land in ``BENCH_vlc.json`` at the repo root
for CI's regression gate.
"""

import pytest

from repro.codec.bitstream import ScalarBitReader
from repro.codec.decoder import FrameIndex, decode_bitstream, parse_bitstream_symbols
from repro.codec.encoder import encode_sequence
from repro.experiments.decode_bench import run_parse_bench, write_records

from .conftest import bench_frames, bench_output_path

#: Flushed to BENCH_vlc.json when the module finishes.
_RECORDS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_vlc_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_vlc.json"))


@pytest.fixture(scope="module")
def encoded(sequence_cache):
    """One shared QCIF encode (bitstream + closed-loop reconstruction)."""
    seq = sequence_cache["foreman"]
    return encode_sequence(seq, qp=16, estimator="fsbm", keep_reconstruction=True)


def test_parse_lut_reader(benchmark, encoded):
    """Whole-stream symbol parse through the LUT + word-level reader."""
    parsed = benchmark(parse_bitstream_symbols, encoded.bitstream)
    assert len(parsed) == len(encoded.reconstruction)
    _RECORDS["vlc_parse_lut_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_parse_seed_reader(benchmark, encoded):
    """The seed per-bit reader + tree-walk decode over the same bytes —
    the baseline the LUT path is measured against."""
    parsed = benchmark.pedantic(
        parse_bitstream_symbols,
        args=(encoded.bitstream, ScalarBitReader),
        rounds=3,
        iterations=1,
    )
    assert len(parsed) == len(encoded.reconstruction)
    _RECORDS["vlc_parse_seed_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_parse_speedup_lut_vs_seed(encoded):
    """Golden perf claim: the LUT + word-level reader must beat the seed
    per-bit reader by >= 3x on the symbol parse (symbol identity is
    verified inside the bench and asserted here; the golden equivalence
    proofs live in tests/test_vlc_lut.py and tests/test_bitstream_v2.py).

    The measured ratio lands around 4-5x on the dev container; the
    recorded BENCH_vlc.json number is the real signal and the assertion
    is the regression backstop the acceptance criteria pin.
    """
    result = run_parse_bench(
        sequence="foreman", frames=bench_frames(), qp=16, estimator="fsbm",
        rounds=5, encode=encoded,
    )
    assert result.identical, "parse paths disagree — see tests/test_vlc_lut.py"
    _RECORDS.update(result.records())
    print(f"\n{result.as_text()}")
    assert result.parse_speedup >= 3.0, (
        f"LUT parse regressed: only {result.parse_speedup:.2f}x vs seed reader"
    )


def test_v2_parallel_parse_identity(sequence_cache):
    """v2 smoke: encode with start-code framing, index the stream, parse
    frames in parallel, and require bit-identical output to the serial
    decode and the encoder's closed loop."""
    seq = sequence_cache["miss_america"]
    encode = encode_sequence(
        seq, qp=16, estimator="fsbm", keep_reconstruction=True, bitstream_version=2
    )
    index = FrameIndex.scan(encode.bitstream)
    assert len(index) == len(encode.reconstruction)
    parallel = decode_bitstream(encode.bitstream, jobs=2)
    serial = decode_bitstream(encode.bitstream, jobs=1)
    assert len(parallel) == len(serial) == len(encode.reconstruction)
    assert all(p == s for p, s in zip(parallel, serial))
    assert all(p == r for p, r in zip(parallel, encode.reconstruction))
