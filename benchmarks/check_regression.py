#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly recorded ``BENCH_*.json`` files (repo root by default,
where the benchmark suites write them) against the committed baselines
in ``benchmarks/baselines/`` and fails when any kernel regressed by
more than the threshold (default 25%).

Key classification, shared with the benchmark writers:

* keys containing ``speedup`` are batched-vs-per-block ratios —
  **higher** is better; a fresh value below
  ``baseline / (1 + threshold)`` is a regression.  These gate by
  default: both paths run on the same machine in the same job, so the
  ratio is robust across differently-sized runners — a batched kernel
  that got slower drops the ratio no matter how fast the runner is.
  The committed ratio baselines are deliberately **conservative
  floors** (below any measured machine, above the benches' own hard
  asserts), not peak-machine snapshots — ``--update`` adopts the
  measured values verbatim, so trim the ``speedup`` keys back toward a
  floor before committing a refresh from a fast machine;
* keys containing ``shrink`` are pickled-size ratios (by-value spec
  bytes over shm spec bytes) — **higher** is better and they gate
  **unconditionally**: spec size is a property of the transport, not
  of the machine's core count, so a single-core runner gates them too;
* keys ending in ``_ms`` are absolute timings — **lower** is better.
  They are reported (and kept in the baselines for trend reading) but
  only gate with ``--gate-absolute``, because a committed wall-clock
  number from one machine is noise on another;
* anything else (``machine_*`` descriptors, the ``backend`` provenance
  stamps and other metadata, including non-numeric values) is reported
  but never gates.

One machine-shaped exception: ``parallel_*``, ``transport_*``,
``stream_pipeline_*`` and ``gop_*`` keys containing ``speedup`` compare
a multi-worker run against a serial one, which only makes sense with
parallel hardware underneath — when the fresh record says
``machine_cpu_count < 2`` they are reported as info instead of gated
(the size/hygiene keys under the same prefixes, e.g. the
``transport_sweep_*`` shrink ratios, still gate)
(``benchmarks/test_bench_parallel.py``, ``test_bench_transport.py``,
``test_bench_stream.py`` and ``test_bench_gop.py`` apply the same rule
to their own hard asserts).

Similarly, gated keys containing ``numba`` (the compiled-backend floors
in ``BENCH_backend.json``) only gate when the fresh record says
``machine_numba >= 1`` — on a machine without numba the corresponding
benches skip, the keys are absent from the fresh record, and both the
absence and the committed floors are reported as info instead of
failing.  The numpy-row speedups in the same file gate unconditionally.

Usage::

    python benchmarks/check_regression.py                 # gate (CI)
    python benchmarks/check_regression.py --gate-absolute # same-machine gate
    python benchmarks/check_regression.py --threshold 0.5 # looser gate
    python benchmarks/check_regression.py --update        # refresh baselines

Exit status: 0 when every gated key is within threshold, 1 on any
regression or missing fresh record.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Keys gated as lower-is-better / higher-is-better.  ``speedup`` is a
#: runtime ratio (may be machine-shaped, see the prefixes below);
#: ``shrink`` is a serialized-size ratio and gates on every machine.
LOWER_IS_BETTER_SUFFIX = "_ms"
HIGHER_IS_BETTER_MARKERS = ("speedup", "shrink")

#: Prefixes whose *speedup* keys compare multi-worker against serial
#: execution — informational (not gated) when the fresh machine has one
#: core.  Size/hygiene keys under the same prefixes gate regardless.
MULTI_CORE_ONLY_PREFIXES = ("parallel_", "transport_", "stream_pipeline_", "gop_")
MULTI_CORE_ONLY_MARKER = "speedup"


def classify(key: str) -> str | None:
    """'lower', 'higher' or None (informational only)."""
    if key.endswith(LOWER_IS_BETTER_SUFFIX):
        return "lower"
    if any(marker in key for marker in HIGHER_IS_BETTER_MARKERS):
        return "higher"
    return None


def _is_number(value) -> bool:
    """Numeric record values gate; strings (and bools) are metadata."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load(path: Path) -> dict[str, float]:
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"error: {path} must hold a flat JSON object")
    return data


def compare_file(
    name: str,
    baseline: dict[str, float],
    fresh: dict[str, float],
    threshold: float,
    gate_absolute: bool,
) -> list[str]:
    """Print a per-key report; return the regression messages."""
    failures: list[str] = []
    print(f"\n== {name} (threshold {threshold:.0%}) ==")
    width = max((len(k) for k in baseline), default=10)
    single_core = float(fresh.get("machine_cpu_count", 2)) < 2
    has_numba = float(fresh.get("machine_numba", 0) or 0) >= 1
    for key in sorted(baseline):
        base = baseline[key]
        if not _is_number(base):
            shown = fresh.get(key, "MISSING")
            print(f"  {key:<{width}}  baseline {base!r}  fresh {shown!r}  (info)")
            continue
        kind = classify(key)
        if kind is not None and "numba" in key and not has_numba:
            shown = fresh.get(key, "skipped")
            print(
                f"  {key:<{width}}  baseline {base:10.3f}  fresh {shown}  "
                "(info: no numba on this machine)"
            )
            continue
        if key not in fresh:
            if kind is None:
                # Metadata never gates, so its absence never fails —
                # older records simply predate the key.
                print(f"  {key:<{width}}  baseline {base:10.3f}  fresh    MISSING  (info)")
                continue
            failures.append(f"{name}: key '{key}' missing from fresh record")
            print(f"  {key:<{width}}  baseline {base:10.3f}  fresh    MISSING  ** FAIL")
            continue
        if not _is_number(fresh[key]):
            print(f"  {key:<{width}}  baseline {base:10.3f}  fresh {fresh[key]!r}  (info)")
            continue
        new = float(fresh[key])
        gates = kind == "higher" or (kind == "lower" and gate_absolute)
        if (
            gates
            and single_core
            and key.startswith(MULTI_CORE_ONLY_PREFIXES)
            and MULTI_CORE_ONLY_MARKER in key
        ):
            gates = False  # multi-worker vs serial is meaningless on one core
        if kind is None or base <= 0:
            print(f"  {key:<{width}}  baseline {base:10.3f}  fresh {new:10.3f}  (info)")
            continue
        ratio = new / base
        if kind == "lower":
            bad = gates and ratio > 1.0 + threshold
        else:
            bad = gates and ratio < 1.0 / (1.0 + threshold)
        direction = f"{ratio - 1.0:+8.1%}"
        status = "** FAIL" if bad else ("ok" if gates else "info")
        print(f"  {key:<{width}}  baseline {base:10.3f}  fresh {new:10.3f}  {direction}  {status}")
        if bad:
            failures.append(
                f"{name}: '{key}' regressed {'above' if kind == 'lower' else 'below'} "
                f"threshold (baseline {base:.3f}, fresh {new:.3f})"
            )
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  {key:<{width}}  (new key, no baseline — run with --update to adopt)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", type=Path, default=BASELINE_DIR,
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir", type=Path, default=REPO_ROOT,
        help="directory holding the freshly recorded BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="allowed relative slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--gate-absolute", action="store_true",
        help="also gate absolute _ms timings (only meaningful when fresh "
        "records and baselines come from the same machine)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="overwrite the baselines with the fresh records and exit",
    )
    args = parser.parse_args(argv)

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        updated = 0
        for fresh_path in sorted(args.fresh_dir.glob("BENCH_*.json")):
            target = args.baseline_dir / fresh_path.name
            target.write_text(
                json.dumps(load(fresh_path), indent=2, sort_keys=True) + "\n"
            )
            print(f"baseline updated: {target}")
            updated += 1
        if not updated:
            print(f"error: no fresh BENCH_*.json under {args.fresh_dir}", file=sys.stderr)
            return 1
        return 0

    baseline_files = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    failures: list[str] = []
    for baseline_path in baseline_files:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            failures.append(f"{baseline_path.name}: fresh record missing ({fresh_path})")
            print(f"\n== {baseline_path.name} ==\n  fresh record MISSING — did the bench run?")
            continue
        failures.extend(
            compare_file(
                baseline_path.name,
                load(baseline_path),
                load(fresh_path),
                args.threshold,
                args.gate_absolute,
            )
        )

    print()
    if failures:
        print(f"REGRESSION GATE FAILED ({len(failures)} issue(s)):", file=sys.stderr)
        for message in failures:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
