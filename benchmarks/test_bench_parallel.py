"""Orchestration-layer benchmark: serial vs 2-worker RD sweep.

Times the same ACBM sweep through ``repro.parallel`` with ``jobs=1``
(the in-process fallback — identical to the seed serial loop) and
``jobs=2`` (spawned workers), verifies the reports are byte-identical,
and records the wall clocks plus the speedup to ``BENCH_parallel.json``
for CI's regression gate.

The speedup is machine-shaped: on a multi-core runner two workers
should land well above 1x; on a single-core container it sits *below*
1x (spawn + import overhead with no parallel hardware underneath), so
the hard assertion and the regression gate both key on the recorded
``machine_cpu_count``.  Also records the ring-batched fast-search
driver's frame throughput against its per-block fallback.
"""

import os
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.decode_bench import write_records
from repro.experiments.rd_curves import run_rd_sweep
from repro.me.estimator import create_estimator
from repro.parallel import clear_render_cache

import pytest

from .conftest import bench_frames, bench_output_path

#: Flushed to BENCH_parallel.json when the module finishes.
_RECORDS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_parallel_records():
    yield
    if _RECORDS:
        _RECORDS["machine_cpu_count"] = float(os.cpu_count() or 1)
        write_records(_RECORDS, bench_output_path("BENCH_parallel.json"))


@pytest.fixture(scope="module")
def sweep_config():
    return ExperimentConfig(
        sequences=("miss_america", "foreman"),
        qps=(30, 16),
        fps_list=(30,),
        frames=bench_frames(),
    )


def test_parallel_sweep_speedup_and_identity(sweep_config):
    """The tentpole claim: a 2-worker sweep is byte-identical to the
    serial one, and faster whenever the machine has >= 2 cores."""
    # Like-for-like legs: neither side starts with pre-rendered
    # sources (the CLI's situation), so the serial leg pays its two
    # renders in-process and each worker pays its own — clear the
    # process memo in case an earlier bench in this session filled it.
    # use_shm is pinned off so this bench keeps measuring the historical
    # pickling transport ("auto" would switch the jobs=2 leg to shm —
    # that path is timed separately in test_bench_transport.py).
    clear_render_cache()
    started = time.perf_counter()
    serial = run_rd_sweep(sweep_config, estimators=("acbm",), jobs=1, use_shm=False)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_rd_sweep(sweep_config, estimators=("acbm",), jobs=2, use_shm=False)
    parallel_s = time.perf_counter() - started

    assert parallel.cells == serial.cells
    assert parallel.as_text(30) == serial.as_text(30)

    speedup = serial_s / parallel_s
    _RECORDS["parallel_serial_sweep_ms"] = serial_s * 1000.0
    _RECORDS["parallel_jobs2_sweep_ms"] = parallel_s * 1000.0
    _RECORDS["parallel_sweep_speedup"] = speedup
    cores = os.cpu_count() or 1
    print(
        f"\nparallel sweep: serial {serial_s:.2f}s, jobs=2 {parallel_s:.2f}s "
        f"-> {speedup:.2f}x on {cores} core(s)"
    )
    if cores >= 2:
        # Two workers on >= 2 cores must recoup their spawn cost.  The
        # floor sits far below the expected ~1.4-1.7x because container
        # timings fluctuate ±30-40%; check_regression.py's baseline
        # ratio gate carries the finer trend signal.
        assert speedup >= 1.05, f"2-worker sweep regressed: only {speedup:.2f}x"
    else:
        # Single core: parallel cannot win; just guard against the
        # dispatch overhead exploding.
        assert speedup >= 0.3, f"pool overhead exploded: {speedup:.2f}x of serial"


def test_ring_batched_fast_search_speedup(sequence_cache):
    """The frame_ring_sad driver must not regress: ring-batched fast
    searches beat their own per-ring fallback on whole-frame motion
    estimation (bit-identity is pinned by tests/test_ring_batch.py)."""
    clip = sequence_cache["foreman"]
    pairs = [(clip[i].y, clip[i + 1].y) for i in range(len(clip) - 1)]

    def run_all(estimator) -> float:
        started = time.perf_counter()
        for reference, current in pairs:
            estimator.estimate(current, reference)
        return time.perf_counter() - started

    ringed = create_estimator("ntss", p=15)
    unringed = create_estimator("ntss", p=15)
    unringed.first_ring = lambda: None  # engine on, ring batching off
    ringed_s = min(run_all(ringed) for _ in range(3))
    unringed_s = min(run_all(unringed) for _ in range(3))
    speedup = unringed_s / ringed_s
    _RECORDS["ring_ntss_frame_ms"] = ringed_s * 1000.0
    _RECORDS["ring_ntss_unbatched_ms"] = unringed_s * 1000.0
    _RECORDS["ring_ntss_speedup"] = speedup
    print(
        f"\nring batching (ntss, {len(pairs)} frames): batched {ringed_s * 1000:.1f} ms, "
        f"per-ring {unringed_s * 1000:.1f} ms -> {speedup:.2f}x"
    )
    # Measured ~1.2-1.35x.  The hard floor only catches catastrophe (a
    # warm path that became a net cost) with headroom for the
    # container's ±30-40% timing noise; the committed baseline ratio in
    # benchmarks/baselines/ carries the finer regression signal.
    assert speedup >= 0.9, f"ring batching became a net cost: {speedup:.2f}x"
