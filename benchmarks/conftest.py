"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the corresponding rows/series.  Workload size is controlled by the
``REPRO_BENCH_FRAMES`` environment variable (default 9 source frames at
30 fps, so the 10 fps variants have 3 frames).  Raise it — e.g.
``REPRO_BENCH_FRAMES=21 pytest benchmarks/ --benchmark-only`` — for
smoother, publication-grade curves.

The timed quantity is the full experiment harness (synthesis cached,
encodes measured), run once per benchmark (``rounds=1``): these are
throughput experiments, not microbenchmarks.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.video.synthesis.sequences import make_sequence

#: Repository root — all ``BENCH_*.json`` writers resolve against this,
#: so running pytest from a subdirectory doesn't scatter JSON files
#: around the working directory.
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_output_path(name: str) -> Path:
    """Absolute path for a benchmark record file (repo root)."""
    return REPO_ROOT / name


def bench_frames() -> int:
    return int(os.environ.get("REPRO_BENCH_FRAMES", "9"))


@pytest.fixture()
def numba_backend():
    """Pin the compiled numba kernel backend for one benchmark.

    Skips — with a visible reason — when numba is not importable, so a
    pure-NumPy environment shows the compiled benchmarks as skipped
    rather than silently absent, and ``BENCH_backend.json`` simply
    lacks the ``*_numba_*`` rows (``check_regression.py`` reports the
    committed numba floors as info in that case).
    """
    from repro.kernels import numba_available, reset_backend, set_backend

    if not numba_available():
        pytest.skip(
            "numba not installed — compiled-backend benchmark skipped "
            "(pip install -r requirements-numba.txt to run it)"
        )
    backend = set_backend("numba")
    try:
        yield backend
    finally:
        reset_backend()


@pytest.fixture(scope="session")
def sequence_cache():
    """30 fps source renders shared across all benchmarks."""
    cache = {}
    frames = bench_frames()
    for name in ("miss_america", "table", "carphone", "foreman"):
        cache[name] = make_sequence(name, frames=frames, seed=0)
    return cache
