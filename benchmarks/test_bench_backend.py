"""Kernel-backend benchmarks: numpy reference rows plus compiled-numba
speedups when numba is installed.

Two hot paths anchor the backend ABI (``repro.kernels``): the
whole-frame SAD-surface kernel (the motion-search workhorse) and the
whole-stream VLC symbol parse (the decoder front half).  For each this
module records

* ``backend_sad_numpy_speedup`` / ``backend_vlc_parse_numpy_speedup``
  — the always-on numpy backend against the seed per-block / per-bit
  paths.  Measured everywhere, gated unconditionally by
  ``check_regression.py``;
* ``backend_sad_numba_speedup`` / ``backend_vlc_parse_numba_speedup``
  — the compiled backend against the numpy rows above.  Only measured
  when numba is importable (the benches skip visibly otherwise); the
  committed baselines are conservative >=3x floors and only gate when
  the fresh record says ``machine_numba >= 1``.

Everything lands in ``BENCH_backend.json`` at the repo root;
:func:`~repro.experiments.decode_bench.write_records` stamps the
active backend name and numba version alongside the numbers.
"""

import time

import numpy as np
import pytest

from repro.codec.bitstream import ScalarBitReader
from repro.codec.decoder import parse_bitstream_symbols
from repro.codec.encoder import encode_sequence
from repro.experiments.decode_bench import write_records
from repro.kernels import get_backend, numba_available, reset_backend, set_backend
from repro.me.engine.kernels import _frame_sad_surfaces_generic, sad_surfaces_numpy

from .conftest import bench_output_path

#: Flushed to BENCH_backend.json when the module finishes.
_RECORDS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_backend_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_backend.json"))


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    reset_backend()


@pytest.fixture(scope="module")
def planes():
    rng = np.random.default_rng(0)
    current = rng.integers(0, 256, (144, 176), dtype=np.uint8)
    reference = np.clip(
        current.astype(np.int16) + rng.integers(-6, 7, current.shape), 0, 255
    ).astype(np.uint8)
    return current, reference


@pytest.fixture(scope="module")
def encoded(sequence_cache):
    """One shared QCIF encode for the VLC-parse rows."""
    seq = sequence_cache["foreman"]
    return encode_sequence(seq, qp=16, estimator="fsbm", keep_reconstruction=True)


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_sad_numpy(benchmark, planes):
    """Numpy-backend SAD surfaces vs the generic per-block fallback —
    the reference row every other backend is measured against."""
    current, reference = planes
    surfaces = benchmark(sad_surfaces_numpy, current, reference, 16, 15)
    assert surfaces.shape == (9, 11, 31, 31)
    numpy_s = benchmark.stats["min"]
    generic_s = _best_of(
        lambda: _frame_sad_surfaces_generic(current, reference, 16, 15), 3
    )
    _RECORDS["backend_sad_numpy_ms"] = numpy_s * 1000.0
    _RECORDS["backend_sad_numpy_speedup"] = generic_s / numpy_s
    assert _RECORDS["backend_sad_numpy_speedup"] > 1.0


def test_backend_vlc_parse_numpy(benchmark, encoded):
    """Numpy-backend symbol parse (LUT + word reader; no compiled scan)
    vs the seed per-bit reader over identical bytes."""
    set_backend("numpy")
    parsed = benchmark(parse_bitstream_symbols, encoded.bitstream)
    assert len(parsed) == len(encoded.reconstruction)
    numpy_s = benchmark.stats["min"]
    seed_s = _best_of(
        lambda: parse_bitstream_symbols(encoded.bitstream, ScalarBitReader), 3
    )
    _RECORDS["backend_vlc_parse_numpy_ms"] = numpy_s * 1000.0
    _RECORDS["backend_vlc_parse_numpy_speedup"] = seed_s / numpy_s
    assert _RECORDS["backend_vlc_parse_numpy_speedup"] > 1.0


def test_backend_sad_numba(numba_backend, planes):
    """Compiled SAD surfaces vs the numpy row; >=3x is the committed
    floor CI gates when numba is present (first call pays the JIT
    warm-up, so compile before timing)."""
    current, reference = planes
    backend = numba_backend
    backend.sad_surfaces(current, reference, 16, 15)  # JIT warm-up
    numba_s = _best_of(lambda: backend.sad_surfaces(current, reference, 16, 15), 5)
    numpy_s = _best_of(lambda: sad_surfaces_numpy(current, reference, 16, 15), 5)
    _RECORDS["backend_sad_numba_ms"] = numba_s * 1000.0
    _RECORDS["backend_sad_numba_speedup"] = numpy_s / numba_s
    assert _RECORDS["backend_sad_numba_speedup"] >= 3.0, (
        f"compiled SAD only {_RECORDS['backend_sad_numba_speedup']:.2f}x vs numpy"
    )


def test_backend_vlc_parse_numba(numba_backend, encoded):
    """Compiled VLC parse vs the numpy-backend parse; >=3x floor."""
    assert get_backend().name == "numba"
    parse = lambda: parse_bitstream_symbols(encoded.bitstream)  # noqa: E731
    parse()  # JIT warm-up
    numba_parsed = parse_bitstream_symbols(encoded.bitstream)
    numba_s = _best_of(parse, 5)
    set_backend("numpy")
    numpy_parsed = parse_bitstream_symbols(encoded.bitstream)
    numpy_s = _best_of(parse, 5)
    assert len(numba_parsed) == len(numpy_parsed)
    assert all(a == b for a, b in zip(numba_parsed, numpy_parsed))
    _RECORDS["backend_vlc_parse_numba_ms"] = numba_s * 1000.0
    _RECORDS["backend_vlc_parse_numba_speedup"] = numpy_s / numba_s
    assert _RECORDS["backend_vlc_parse_numba_speedup"] >= 3.0, (
        f"compiled parse only {_RECORDS['backend_vlc_parse_numba_speedup']:.2f}x vs numpy"
    )


def test_backend_stamp_written():
    """The provenance stamp every BENCH writer attaches must name the
    active backend and the machine's numba capability."""
    from repro.experiments.decode_bench import backend_stamp

    stamp = backend_stamp()
    assert stamp["backend"] in ("numpy", "numba")
    assert stamp["machine_numba"] == (1 if numba_available() else 0)
    assert ("backend_numba_version" in stamp) == numba_available()
