"""Transport benchmark: shared-memory vs pickling frame transport.

Runs :func:`repro.experiments.transport_bench.run_transport_bench` on a
12-frame QCIF v2 stream: per-frame pickled sizes of parse-job specs and
parsed results under both transports, plus the 2-worker decode timed
both ways (bit-identity against the serial decode verified inside the
bench).  :func:`run_transport_sweep_bench` adds the experiment fan-out
rows: ``EncodeJob`` / ``SweepJob`` / ``Fig4PairJob`` spec pickles
priced by-value vs as handles, and the 2-worker RD sweep timed under
both transports.  Records land in ``BENCH_transport.json`` at the repo
root for CI's regression gate.

The tentpole numbers this pins: under ``use_shm`` the *payload* bytes
pickled per frame (and per experiment job) must be **zero** (handles
only), every ``pack_shm``-capable spec's pickle must shrink at least
3x against its by-value twin, and the arena protocol must leave
``/dev/shm`` clean.  Those size/hygiene claims gate on any machine.
The decode and sweep speedups are machine-shaped — like ``parallel_*``,
they only gate (here and in ``check_regression.py``) when the machine
has >= 2 cores; on a one-core container the honest measurement is
recorded as info.
"""

import os

import pytest

from repro.experiments.transport_bench import (
    run_transport_bench,
    run_transport_sweep_bench,
    shm_segments,
    write_records,
)
from repro.video.synthesis.sequences import make_sequence

from .conftest import bench_output_path

#: Flushed to BENCH_transport.json when the module finishes.
_RECORDS: dict[str, float] = {}

#: The acceptance workload (independent of REPRO_BENCH_FRAMES — the
#: pickled-size claims are stated for this shape).
TRANSPORT_FRAMES = 12


@pytest.fixture(scope="module", autouse=True)
def _write_transport_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_transport.json"))


@pytest.fixture(scope="module")
def result():
    clip = make_sequence("foreman", frames=TRANSPORT_FRAMES, seed=0)
    return run_transport_bench(
        sequence="foreman", frames=TRANSPORT_FRAMES, qp=16, estimator="tss",
        rounds=3, jobs=2, clip=clip,
    )


def test_transport_identity_and_zero_copy(result):
    """Golden claims: shm-transport decode is bit-identical to the
    pickling decode, zero payload bytes ride in a packed spec's pickle,
    and no shared segment outlives the run."""
    assert result.decode_identical, "shm decode diverged from pickling decode"
    assert result.no_leaks and not shm_segments(), "shared-memory segments leaked"
    assert result.payload_bytes_per_frame_shm == 0.0, (
        f"shm spec still pickles {result.payload_bytes_per_frame_shm:.0f} "
        "payload bytes per frame"
    )
    assert result.payload_bytes_per_frame_plain > 0
    # A handle pickle must be payload-size-independent and small.
    assert result.spec_pickle_bytes_shm < 512
    assert result.result_pickle_bytes_shm < 2048
    assert result.spec_pickle_bytes_shm < result.spec_pickle_bytes_plain
    assert result.result_pickle_bytes_shm < result.result_pickle_bytes_plain
    _RECORDS.update(result.records())
    print(f"\n{result.as_text()}")


@pytest.fixture(scope="module")
def sweep_result():
    return run_transport_sweep_bench(
        sequence="foreman", frames=TRANSPORT_FRAMES, qp=16, estimator="tss",
        rounds=3, jobs=2,
    )


def test_sweep_specs_zero_copy_and_identical(sweep_result):
    """The experiment fan-out rows: every spec kind ships handles (zero
    payload bytes, >= 3x smaller pickles than its by-value twin), the
    shm RD sweep matches the pickling sweep cell for cell, and nothing
    outlives the run in /dev/shm."""
    assert sweep_result.sweep_identical, "shm RD sweep diverged from pickling sweep"
    assert sweep_result.no_leaks and not shm_segments(), "shared-memory segments leaked"
    assert sweep_result.payload_bytes_per_job_shm == 0.0, (
        f"packed experiment specs still pickle "
        f"{sweep_result.payload_bytes_per_job_shm:.0f} payload bytes per job"
    )
    assert sweep_result.payload_bytes_per_job_value > 0
    for kind, shrink in (
        ("EncodeJob", sweep_result.encode_pickle_shrink),
        ("SweepJob", sweep_result.sweepjob_pickle_shrink),
        ("Fig4PairJob", sweep_result.fig4_pickle_shrink),
    ):
        assert shrink >= 3.0, f"{kind} spec pickle only shrank {shrink:.1f}x"
    _RECORDS.update(sweep_result.records())
    print(f"\n{sweep_result.as_text()}")


def test_sweep_speedup(sweep_result):
    """Machine-shaped like the decode row: with >= 2 cores the shm
    sweep must not lose to pickling; on one core only pathology fails."""
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert sweep_result.shm_speedup >= 0.9, (
            f"shm sweep lost to pickling: {sweep_result.shm_speedup:.2f}x"
        )
    else:
        assert sweep_result.shm_speedup >= 0.3, (
            f"shm sweep overhead exploded: {sweep_result.shm_speedup:.2f}x"
        )


def test_transport_decode_speedup(result):
    """Machine-shaped: with >= 2 cores the zero-copy transport must not
    lose to pickling at the same job count; on one core the number is
    recorded honestly and only guarded against pathology."""
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert result.shm_speedup >= 0.9, (
            f"shm transport lost to pickling: {result.shm_speedup:.2f}x"
        )
    else:
        assert result.shm_speedup >= 0.3, (
            f"shm transport overhead exploded: {result.shm_speedup:.2f}x"
        )
