"""Benchmark regenerating Fig. 6 — RD curves, QCIF @ 10 fps.

Same series as Fig. 5 at one third the frame rate.  The figure's point
is that the PBM curves fall away from ACBM/FSBM once the slow-motion-
field assumption breaks; the final assertions check exactly that the
ACBM-over-PBM advantage is larger here than at 30 fps.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.rd_curves import run_rd_sweep

from .conftest import bench_frames


def test_fig6_rd_curves_10fps(benchmark, sequence_cache):
    config = ExperimentConfig(frames=bench_frames(), fps_list=(30, 10))

    def run():
        return run_rd_sweep(config, sequences_cache=dict(sequence_cache))

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(sweep.as_text(10))

    # Matched-Qp shape: ACBM ~ FSBM on quality at no worse rate.
    cells = {(c.sequence, c.estimator, c.fps, c.qp): c for c in sweep.cells}
    for sequence in config.sequences:
        for qp in config.qps:
            acbm = cells[(sequence, "acbm", 10, qp)]
            fsbm = cells[(sequence, "fsbm", 10, qp)]
            assert acbm.psnr_y >= fsbm.psnr_y - 0.3, (sequence, qp)
            assert acbm.rate_kbps <= fsbm.rate_kbps * 1.03, (sequence, qp)

    # The paper's frame-rate claim, on the hard sequence: the ACBM-PBM
    # advantage at 10 fps exceeds the one at 30 fps.  Measured at
    # matched Qp as PSNR gap plus a rate penalty term (0.1 dB per %).
    def advantage(fps: int) -> float:
        gaps = []
        for qp in config.qps:
            acbm = cells[("foreman", "acbm", fps, qp)]
            pbm = cells[("foreman", "pbm", fps, qp)]
            rate_gap = (pbm.rate_kbps - acbm.rate_kbps) / acbm.rate_kbps
            gaps.append((acbm.psnr_y - pbm.psnr_y) + 10.0 * rate_gap)
        return sum(gaps) / len(gaps)

    gap30 = advantage(30)
    gap10 = advantage(10)
    print(f"foreman ACBM-over-PBM advantage: {gap30:+.3f} @30fps vs {gap10:+.3f} @10fps")
    assert gap10 > gap30
