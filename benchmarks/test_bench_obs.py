"""Observability-overhead benchmarks: tracing must be free when off.

One encode→decode round trip (every instrumented seam hot) timed in
three modes — instrumentation bypassed entirely, shipped default
(tracer off, counters on), and fully traced.  Byte-identity across all
three modes is verified inside the bench before timing
(zero-interference), and the hard gate is the ISSUE's acceptance bound:
disabled-mode throughput within 2% of the bypassed floor.  Timings land
in ``BENCH_obs.json`` at the repo root for CI's regression gate; the
``obs_disabled_speedup`` key gates on every machine (no parallel
hardware involved), with the committed baseline kept as a conservative
trend floor below the in-bench assert.
"""

import pytest

from repro.experiments.obs_bench import OVERHEAD_FLOOR, run_obs_bench, write_records
from repro.video.synthesis.sequences import make_sequence

from .conftest import bench_output_path

#: Flushed to BENCH_obs.json when the module finishes.
_RECORDS: dict[str, float] = {}

#: The overhead workload: enough frames that the ~2% bound is measured
#: over hundreds of milliseconds, not timer noise.
OBS_FRAMES = 8


@pytest.fixture(scope="module", autouse=True)
def _write_obs_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_obs.json"))


@pytest.fixture(scope="module")
def result():
    clip = make_sequence("foreman", frames=OBS_FRAMES, seed=0)
    return run_obs_bench(
        sequence="foreman", frames=OBS_FRAMES, qp=16, estimator="tss",
        rounds=5, clip=clip,
    )


def test_obs_zero_interference(result):
    """Tracing never touches codec data: all three instrumentation
    modes emit byte-identical bitstreams (the full golden property
    lives in tests/test_obs.py; this pins the bench workload)."""
    assert result.identical, "instrumentation changed the bitstream"
    _RECORDS.update(result.records())
    print(f"\n{result.as_text()}")


def test_obs_disabled_overhead_within_budget(result):
    """The acceptance gate: with tracing off, throughput stays within
    2% of the fully bypassed floor (best-of-5 on both sides)."""
    assert result.within_overhead, (
        f"disabled-mode instrumentation costs too much: "
        f"{result.disabled_speedup:.3f}x of the bypassed floor "
        f"(gate >= {OVERHEAD_FLOOR:.2f})"
    )


def test_obs_traced_run_records_events(result):
    """A traced round trip actually records the whole-stack timeline:
    encoder frame spans with sub-phases, decode parse/reconstruct."""
    assert result.trace_events >= 4 * result.frames, (
        f"traced run recorded only {result.trace_events} events "
        f"for {result.frames} frames"
    )
