"""Benchmark regenerating Table 1 — ACBM search cost per macroblock.

Prints the paper's row/column layout: Qp ∈ {30..16} down, the four
sequences at 30 and 10 fps across, cells in average candidate positions
per macroblock against the constant 969 of full search at p = 15.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.table1_complexity import run_table1

from .conftest import bench_frames


def test_table1_complexity(benchmark, sequence_cache):
    config = ExperimentConfig(frames=bench_frames(), fps_list=(30, 10))

    def run():
        from repro.experiments.rd_curves import run_rd_sweep

        sweep = run_rd_sweep(
            config, estimators=("acbm",), sequences_cache=dict(sequence_cache)
        )
        return run_table1(config, sweep=sweep)

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(table.as_text())
    print(f"max reduction vs FSBM: {table.max_reduction():.1%}")

    # Shape checks from the paper's discussion of Table 1.
    for (sequence, fps) in table.columns:
        # Positions grow as Qp decreases (allowing small sampling noise).
        cells = [table.cell(sequence, fps, qp) for qp in config.qps]
        for coarse, fine in zip(cells, cells[1:]):
            assert fine >= coarse * 0.9, (sequence, fps, cells)
        # Everything is far below the FSBM constant.
        assert max(cells) < table.fsbm_positions

    # Miss America cheapest, Foreman dearest (sequence means).
    means = {s: table.sequence_mean(s) for s in config.sequences}
    print("sequence means:", {k: round(v) for k, v in means.items()})
    assert means["miss_america"] == min(means.values())
    assert means["foreman"] == max(means.values())

    # The paper's headline: up to ~95% reduction.
    assert table.max_reduction() > 0.85
