"""Streaming-codec benchmarks: push decode vs whole-buffer decode.

The memory-bound counterpart of ``test_bench_decode.py``: a 30-frame
QCIF version-2 stream is pushed through a bounded decode session in
MTU-sized chunks and timed against ``decode_bitstream`` over the whole
buffer.  Identity (streamed == whole-buffer == encoder loop, and
StreamEncoder bytes == Encoder bytes for both wire formats) is verified
inside the bench before timing; the session's peak buffered bytes must
stay under the subsystem's bound of two frames' worth of payload plus
one reconstruction window.  The same workload also runs through the
pipelined session (``pipeline=...``, PR 6) — identity verified in
thread *and* process mode, the thread mode timed.  Timings land in
``BENCH_stream.json`` at the repo root for CI's regression gate (the
gated keys are the stream-vs-whole throughput ratio and, on multi-core
machines only, the pipelined speedup).
"""

import os

import pytest

from repro.experiments.stream_bench import run_stream_bench, write_records
from repro.video.synthesis.sequences import make_sequence

from .conftest import bench_output_path

#: Flushed to BENCH_stream.json when the module finishes.
_RECORDS: dict[str, float] = {}

#: The acceptance workload: a 30-frame QCIF stream (independent of
#: REPRO_BENCH_FRAMES — the memory bound is stated for this shape).
STREAM_FRAMES = 30


@pytest.fixture(scope="module", autouse=True)
def _write_stream_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_stream.json"))


@pytest.fixture(scope="module")
def result():
    clip = make_sequence("foreman", frames=STREAM_FRAMES, seed=0)
    return run_stream_bench(
        sequence="foreman", frames=STREAM_FRAMES, qp=16, estimator="tss",
        rounds=3, chunk_size=1500, clip=clip,
    )


def test_stream_decode_identity_and_bound(result):
    """Golden claims: any chunking decodes bit-identically (the full
    property lives in tests/test_streaming.py; this pins the 30-frame
    workload), and peak buffered bytes stay inside the bound while the
    whole-buffer path by definition holds the entire stream."""
    assert result.identical, "streaming paths diverged — see tests/test_streaming.py"
    assert result.within_bound, (
        f"peak buffered {result.peak_buffered_bytes} bytes exceeds the "
        f"{result.buffer_bound_bytes}-byte bound"
    )
    _RECORDS.update(result.records())
    print(f"\n{result.as_text()}")


def test_stream_throughput_near_whole_buffer(result):
    """The push path re-runs the same parse + batched reconstruction;
    its only extra work is scanning and bookkeeping, so throughput must
    stay within 2x of the whole-buffer decode (measured ~0.9-1.0x; the
    assert leaves margin for noisy CI runners)."""
    assert result.speedup >= 0.5, (
        f"streaming tax regressed: push decode only {result.speedup:.2f}x "
        f"of whole-buffer throughput"
    )


def test_pipelined_decode_identity_and_speedup(result):
    """The PR 6 claims: the pipelined session decodes bit-identically
    in both worker modes, its transport ledger shows the process mode
    moving parsed arrays as handles (not pickled payload), and —
    machine-shaped like ``parallel_*`` — the overlap wins on parallel
    hardware.  On one core the honest measurement is recorded and only
    guarded against pathology."""
    assert result.pipeline_identical, "pipelined decode diverged from serial push"
    # Process mode copies only the compressed feed; the decoded bulk
    # returns as shared-memory handles (>= 1 per frame).
    assert result.bytes_copied <= result.bitstream_bytes
    assert result.handles_passed >= result.frames
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert result.pipeline_speedup >= 1.2, (
            f"pipelined decode regressed: only {result.pipeline_speedup:.2f}x "
            f"vs serial push on {cores} cores"
        )
    else:
        assert result.pipeline_speedup >= 0.3, (
            f"pipeline overhead exploded: {result.pipeline_speedup:.2f}x of serial push"
        )
