"""Opt-in benchmark suite (package so relative conftest imports
resolve).  Run explicitly: pytest benchmarks/ --benchmark-only."""
