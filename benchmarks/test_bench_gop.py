"""GOP benchmark: per-GOP parallel encode + keyframe random access.

Runs :func:`repro.experiments.gop_bench.run_gop_bench` on a 12-frame
QCIF clip with ``i_period=3``: the 2-worker per-GOP encode is diffed
byte-for-byte against the serial encoder, every I-frame seek is diffed
bit-for-bit against the full decode's tail, and both encode paths are
timed.  Records land in ``BENCH_gop.json`` at the repo root for CI's
regression gate.

The identities gate unconditionally — they hold on any machine.  The
encode speedup is machine-shaped: like ``parallel_*``, it only gates
(here and in ``check_regression.py``) when the machine has >= 2 cores;
on a one-core container the honest measurement (process-spawn overhead
and all) is recorded as info and only guarded against pathology.
"""

import os

import pytest

from repro.experiments.gop_bench import run_gop_bench, write_records
from repro.video.synthesis.sequences import make_sequence

from .conftest import bench_output_path

#: Flushed to BENCH_gop.json when the module finishes.
_RECORDS: dict[str, float] = {}

#: The acceptance workload (independent of REPRO_BENCH_FRAMES — the
#: identity claims are stated for this shape: four 3-frame GOPs).
GOP_FRAMES = 12
GOP_I_PERIOD = 3


@pytest.fixture(scope="module", autouse=True)
def _write_gop_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_gop.json"))


@pytest.fixture(scope="module")
def result():
    clip = make_sequence("foreman", frames=GOP_FRAMES, seed=0)
    return run_gop_bench(
        sequence="foreman", frames=GOP_FRAMES, qp=16, estimator="tss",
        rounds=3, i_period=GOP_I_PERIOD, jobs=2, clip=clip,
    )


def test_gop_identities(result):
    """Golden claims: the parallel GOP splice is byte-identical to the
    serial encode, and every keyframe seek reproduces the full decode's
    tail bit-identically."""
    assert result.encode_identical, "parallel GOP splice diverged from serial encode"
    assert result.seek_identical, "keyframe seek diverged from the full decode"
    assert result.keyframes == GOP_FRAMES // GOP_I_PERIOD
    # I-frames cost real bits — the fraction is meaningful, not noise.
    assert 0.0 < result.intra_bits_fraction < 1.0
    _RECORDS.update(result.records())
    print(f"\n{result.as_text()}")


def test_gop_parallel_encode_speedup(result):
    """Machine-shaped: with >= 2 cores the per-GOP encode must beat the
    serial encoder; on one core the number is recorded honestly and
    only guarded against pathology (spawn overhead bounded)."""
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert result.parallel_speedup >= 1.15, (
            f"per-GOP parallel encode too slow: {result.parallel_speedup:.2f}x"
        )
    else:
        assert result.parallel_speedup >= 0.2, (
            f"per-GOP encode overhead exploded: {result.parallel_speedup:.2f}x"
        )
