"""Benchmark regenerating Fig. 4 — the characterization scatter.

Prints the per-error-class population table (block counts, mean
Intra_SAD, mean SAD_deviation), i.e. the data behind the six scatter
panels of the paper's Fig. 4, and checks the two conclusions the paper
draws from it.
"""

import numpy as np

from repro.analysis.reporting import format_histogram
from repro.experiments.fig4_characterization import run_fig4


def test_fig4_characterization(benchmark):
    result = benchmark.pedantic(run_fig4, kwargs={"seed": 0}, rounds=1, iterations=1)

    print()
    print(result.as_text())
    print()
    print(format_histogram(result.class_counts(), title="Blocks per error class"))
    print(f"true-vector fraction: {result.true_fraction():.1%}")

    # Shape checks: the conclusions of Section 3.1 must hold.
    observations = result.observations
    median = np.median([o.intra_sad for o in observations])
    high = [o for o in observations if o.intra_sad > median]
    low = [o for o in observations if o.intra_sad <= median]
    p_true_high = sum(o.error_class == 0 for o in high) / len(high)
    p_true_low = sum(o.error_class == 0 for o in low) / len(low)
    print(f"P(true | high texture) = {p_true_high:.2f}, "
          f"P(true | low texture) = {p_true_low:.2f}")
    assert p_true_high > p_true_low

    means = result.class_means()
    wrong = [cls for cls in means if cls > 0]
    assert means[0][1] > np.mean([means[c][1] for c in wrong])
