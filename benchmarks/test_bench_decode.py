"""Decode-path benchmarks: batched reconstruction vs the seed per-block
walk.

The counterpart of ``test_bench_kernels.py`` for the serving side of
the codec: one encode, then the same bitstream decoded through the
engine's whole-frame kernels and through the per-block fallback.
Timings (and the speedup) land in ``BENCH_decode.json`` at the repo
root for CI's regression gate.
"""

import pytest

from repro.codec.decoder import decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.experiments.decode_bench import run_decode_bench, write_records

from .conftest import bench_frames, bench_output_path

#: Flushed to BENCH_decode.json when the module finishes.
_RECORDS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_decode_records():
    yield
    if _RECORDS:
        write_records(_RECORDS, bench_output_path("BENCH_decode.json"))


@pytest.fixture(scope="module")
def encoded(sequence_cache):
    """One shared QCIF encode (bitstream + closed-loop reconstruction)."""
    seq = sequence_cache["foreman"]
    return encode_sequence(seq, qp=16, estimator="fsbm", keep_reconstruction=True)


def test_decode_frame_batched(benchmark, encoded):
    """Whole-bitstream decode through the batched engine path."""
    frames = benchmark(decode_bitstream, encoded.bitstream, None, True)
    assert len(frames) == len(encoded.reconstruction)
    _RECORDS["decode_batched_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_decode_frame_per_block(benchmark, encoded):
    """The seed per-block decoder, kept as the fallback — the baseline
    the batched path is measured against."""
    frames = benchmark.pedantic(
        decode_bitstream, args=(encoded.bitstream, None, False), rounds=3, iterations=1
    )
    assert len(frames) == len(encoded.reconstruction)
    _RECORDS["decode_per_block_qcif_ms"] = benchmark.stats["min"] * 1000.0


def test_decode_speedup_batched_vs_per_block(encoded):
    """Golden perf claim: batched whole-frame reconstruction must beat
    the seed per-block decode by >= 2x (bit-identity is verified inside
    the bench and asserted here; the golden proofs live in
    tests/test_reconstruction.py).

    The measured ratio lands around 3-5x on a single-core container —
    the remaining serial cost is the VLC symbol parse, which both paths
    share.  The recorded BENCH_decode.json number is the real signal;
    the assertion is a regression backstop with margin for noisy CI
    runners.
    """
    result = run_decode_bench(
        sequence="foreman", frames=bench_frames(), qp=16, estimator="fsbm",
        rounds=5, encode=encoded,
    )
    assert result.identical, "decode paths disagree — see tests/test_reconstruction.py"
    _RECORDS.update(result.records())
    print(f"\n{result.as_text()}")
    assert result.speedup >= 2.0, f"batched decode regressed: only {result.speedup:.2f}x"
