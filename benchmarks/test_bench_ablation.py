"""Ablation benchmarks (beyond the paper's tables).

1. The α/β/γ trade-off DESIGN.md calls out: how each parameter moves
   the cost/quality point around the paper's operating values.
2. The fast-search baselines the paper cites ([3]-[5]): TSS, 4SS, DS,
   CDS against PBM/ACBM/FSBM on the hard sequence, showing where ACBM
   sits on the cost/quality plane relative to the classic alternatives.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.codec.encoder import encode_sequence
from repro.core.acbm import ACBMEstimator
from repro.core.parameters import ACBMParameters


@pytest.fixture(scope="module")
def foreman(sequence_cache):
    return sequence_cache["foreman"]


def test_ablation_gamma(benchmark, foreman):
    """γ sweep: larger γ accepts more textured blocks on prediction
    quality alone, trading full searches for (bounded) quality risk."""
    gammas = (0.0, 0.125, 0.25, 0.5, 1.0)

    def run():
        rows = []
        for gamma in gammas:
            params = ACBMParameters.paper_defaults().with_(gamma=gamma)
            result = encode_sequence(
                foreman, qp=20, estimator=ACBMEstimator(p=15, params=params)
            )
            rows.append((gamma, result.avg_positions_per_mb, result.rate_kbps,
                         result.mean_psnr_y))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["gamma", "positions/MB", "rate kbit/s", "PSNR dB"], rows,
                       title="ACBM gamma ablation (foreman, Qp=20)"))
    costs = [r[1] for r in rows]
    assert costs == sorted(costs, reverse=True)  # cost falls as gamma grows
    # Quality stays within a tight band across the whole sweep.
    psnrs = [r[3] for r in rows]
    assert max(psnrs) - min(psnrs) < 0.5


def test_ablation_beta(benchmark, foreman):
    """β sweep: the Qp² coupling — β=0 decouples the threshold from the
    quantizer and loses the Table 1 Qp trend."""
    betas = (0.0, 4.0, 8.0, 16.0)

    def run():
        rows = []
        for beta in betas:
            params = ACBMParameters.paper_defaults().with_(beta=beta)
            for qp in (30, 16):
                result = encode_sequence(
                    foreman, qp=qp, estimator=ACBMEstimator(p=15, params=params)
                )
                rows.append((beta, qp, result.avg_positions_per_mb, result.mean_psnr_y))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["beta", "Qp", "positions/MB", "PSNR dB"], rows,
                       title="ACBM beta ablation (foreman)"))
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # With beta=0 the qp30/qp16 costs almost coincide; with the paper's
    # beta=8 the coarse-Qp encode is clearly cheaper.
    assert abs(by_key[(0.0, 30)] - by_key[(0.0, 16)]) < 0.25 * by_key[(0.0, 16)]
    assert by_key[(8.0, 30)] < 0.8 * by_key[(8.0, 16)]


def test_ablation_fast_search_baselines(benchmark, foreman):
    """The classic fast searches vs the paper's three, on the sequence
    where search strategy matters most."""
    estimators = ("pbm", "tss", "fss", "ds", "cds", "acbm", "fsbm")
    low_rate = foreman.subsample(3)  # 10 fps: where fast searches hurt

    def run():
        rows = []
        for name in estimators:
            result = encode_sequence(low_rate, qp=20, estimator=name)
            rows.append((name, result.avg_positions_per_mb, result.rate_kbps,
                         result.mean_psnr_y))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["estimator", "positions/MB", "rate kbit/s", "PSNR dB"], rows,
                       title="search algorithms on foreman @ 10 fps, Qp=20"))
    by_name = {r[0]: r for r in rows}
    # Every fast search is far cheaper than FSBM...
    for name in ("pbm", "tss", "fss", "ds", "cds"):
        assert by_name[name][1] < 0.2 * by_name["fsbm"][1]
    # ...but on this content ACBM is the one matching FSBM quality.
    assert by_name["acbm"][3] >= by_name["fsbm"][3] - 0.25
