"""Benchmark regenerating Fig. 5 — RD curves, QCIF @ 30 fps.

Prints, per sequence, the (Qp, rate kbit/s, PSNR dB) series for ACBM,
FSBM and PBM — the same three curves each panel of Fig. 5 plots — and
checks the figure's qualitative claims.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.rd_curves import run_rd_sweep

from .conftest import bench_frames


def test_fig5_rd_curves_30fps(benchmark, sequence_cache):
    config = ExperimentConfig(frames=bench_frames(), fps_list=(30,))

    def run():
        return run_rd_sweep(config, sequences_cache=dict(sequence_cache))

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(sweep.as_text(30))

    # Shape at matched Qp: ACBM within a hair of FSBM's PSNR at no
    # worse rate (on smooth clips its whole curve may sit strictly left
    # of FSBM's — no rate overlap — which is strict domination).
    cells = {(c.sequence, c.estimator, c.qp): c for c in sweep.cells if c.fps == 30}
    for sequence in config.sequences:
        for qp in config.qps:
            acbm = cells[(sequence, "acbm", qp)]
            fsbm = cells[(sequence, "fsbm", qp)]
            assert acbm.psnr_y >= fsbm.psnr_y - 0.25, (sequence, qp)
            assert acbm.rate_kbps <= fsbm.rate_kbps * 1.03, (sequence, qp)
    try:
        gap = sweep.psnr_gain("foreman", 30, "acbm", "fsbm")
        print(f"foreman: ACBM - FSBM = {gap:+.3f} dB at matched rate")
        assert gap > -0.25
    except ValueError:
        print("foreman: ACBM and FSBM curves share no rate range (domination)")
