"""GOP structure: i_Period, keyframe random access, per-GOP parallelism.

Demonstrates the GOP layer end to end:

1. encode a synthetic clip with `i_period` so every N-th frame is a
   spatially predicted I-frame opening a new GOP (and, optionally,
   `n_ref_frames` past frames available to each P-frame),
2. re-encode the same clip per-GOP in parallel worker processes
   (`repro.parallel.encode_sequence_parallel`) and verify the spliced
   version-2 stream is byte-identical to the serial encoder's,
3. seek: decode from a mid-stream I-frame via
   `decode_bitstream(start_frame=...)` and verify the tail is
   bit-identical to the full decode — what i_Period buys,
4. report the rate cost: bits per frame type and the intra share.

Run:
    python examples/gop.py
    python examples/gop.py --frames 12 --i-period 4 --n-ref-frames 2 --jobs 2
"""

import argparse

from repro import make_sequence
from repro.codec.decoder import decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.parallel import encode_sequence_parallel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=9)
    parser.add_argument("--qp", type=int, default=18)
    parser.add_argument("--estimator", default="tss")
    parser.add_argument("--i-period", type=int, default=3)
    parser.add_argument("--n-ref-frames", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    clip = make_sequence("foreman", frames=args.frames, seed=0)
    print(
        f"Encoding {args.frames} QCIF frames with i_period={args.i_period}, "
        f"n_ref_frames={args.n_ref_frames} ({args.estimator}, qp={args.qp}, v2)..."
    )
    serial = encode_sequence(
        clip,
        qp=args.qp,
        estimator=args.estimator,
        bitstream_version=2,
        i_period=args.i_period,
        n_ref_frames=args.n_ref_frames,
    )
    types = "".join(r.frame_type for r in serial.frames)
    print(f"  frame types: {types}")
    print(f"  keyframes:   {list(serial.keyframes)}")

    print(f"Re-encoding per GOP with {args.jobs} worker processes...")
    parallel = encode_sequence_parallel(
        clip,
        qp=args.qp,
        estimator=args.estimator,
        i_period=args.i_period,
        n_ref_frames=args.n_ref_frames,
        jobs=args.jobs,
    )
    identical = parallel.bitstream == serial.bitstream
    print(f"  parallel splice byte-identical to serial: {identical}")

    keyframes = serial.keyframes
    seek_from = keyframes[len(keyframes) // 2]
    print(f"Seeking: decoding from I-frame {seek_from} only...")
    full = decode_bitstream(serial.bitstream)
    tail = decode_bitstream(serial.bitstream, start_frame=seek_from)
    tail_ok = tail == full[seek_from:]
    print(f"  decoded {len(tail)} frames starting at {seek_from}")
    print(f"  tail bit-identical to full decode: {tail_ok}")

    intra_bits = sum(r.bits for r in serial.frames if r.frame_type == "I")
    inter = [r.bits for r in serial.frames if r.frame_type == "P"]
    intra = [r.bits for r in serial.frames if r.frame_type == "I"]
    print(
        f"Rate: I-frames avg {sum(intra) // len(intra)} bits, "
        f"P-frames avg {sum(inter) // max(len(inter), 1)} bits, "
        f"intra share {intra_bits / serial.total_bits:.1%}"
    )

    if not (identical and tail_ok):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
