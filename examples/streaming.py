"""Streaming: bounded-memory encode from disk, push-based decode.

Demonstrates the `repro.streaming` subsystem end to end:

1. write a synthetic clip to a raw YUV file (standing in for a capture
   you cannot hold in memory),
2. encode it straight off the file with `StreamEncoder` — frames stream
   in through `iter_yuv_frames`, encoded bytes stream out as each
   picture closes; the whole sequence is never materialized,
3. push the version-2 bitstream through a `DecodeSession` in MTU-sized
   chunks, honouring the backpressure contract (drain `frames()`
   whenever `feed` reports zero demand — here, after every feed),
4. verify the streamed frames are bit-identical to the whole-buffer
   decoder and print the session counters, including the peak buffered
   bytes that stayed bounded while the whole-buffer path held
   everything.

Run:
    python examples/streaming.py
    python examples/streaming.py --frames 12 --chunk-size 512
"""

import argparse
import tempfile
from pathlib import Path

from repro.codec.decoder import decode_bitstream
from repro.streaming import DecodeSession, EncodeSession
from repro.video.frame import QCIF
from repro.video.yuv_io import frame_size_bytes, iter_yuv_frames, write_yuv
from repro import make_sequence


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=9)
    parser.add_argument("--qp", type=int, default=18)
    parser.add_argument("--estimator", default="tss")
    parser.add_argument("--chunk-size", type=int, default=1500)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        yuv_path = Path(tmp) / "capture.yuv"
        print(f"Rendering {args.frames} QCIF frames to {yuv_path.name} "
              f"({args.frames * frame_size_bytes(QCIF)} bytes on disk)...")
        write_yuv(yuv_path, make_sequence("carphone", frames=args.frames, seed=0))

        print(f"Stream-encoding off the file ({args.estimator}, qp={args.qp}, v2)...")
        encoder = EncodeSession(
            estimator=args.estimator, qp=args.qp, bitstream_version=2
        )
        chunks = []
        for chunk in encoder.encode_iter(iter_yuv_frames(yuv_path, QCIF)):
            chunks.append(chunk)  # one framed picture per chunk in v2
        bitstream = b"".join(chunks)
        print(f"  encode session: {encoder.stats().as_text()}")

        print(f"Push-decoding in {args.chunk_size}-byte chunks...")
        session = DecodeSession(max_buffered_frames=2)
        decoded = []
        for start in range(0, len(bitstream), args.chunk_size):
            session.feed(bitstream[start : start + args.chunk_size])
            decoded.extend(session.frames())  # drain keeps memory bounded
        session.close()
        decoded.extend(session.frames())
        stats = session.stats()
        print(f"  decode session: {stats.as_text()}")

        whole = decode_bitstream(bitstream)
        identical = len(whole) == len(decoded) and all(
            a == b for a, b in zip(decoded, whole)
        )
        print(f"\nbit-identical to whole-buffer decode: {identical}")
        print(
            f"peak buffered {stats.peak_buffered_bytes} bytes vs the "
            f"{len(bitstream)}-byte stream plus "
            f"{len(whole) * frame_size_bytes(QCIF)} decoded bytes the "
            f"whole-buffer path holds"
        )


if __name__ == "__main__":
    main()
