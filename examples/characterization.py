"""Reproduce the paper's Fig. 3 rig and Fig. 4 characterization data.

Builds a ten-frame sequence with nine known global motion vectors, runs
exhaustive search on every 16x16 block, classifies the found vectors by
error against the commanded ground truth, and summarizes the
(Intra_SAD, SAD_deviation) population of each error class.  Optionally
dumps the raw scatter points to CSV for external plotting.

Run:
    python examples/characterization.py [--csv fig4_points.csv]
"""

import argparse
import csv

from repro.analysis.reporting import format_histogram
from repro.experiments.fig4_characterization import (
    DEFAULT_GLOBAL_MOTIONS,
    run_fig4,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", default=None, help="write raw scatter points here")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Commanded global motions (dx, dy):", DEFAULT_GLOBAL_MOTIONS)
    print("Running FSBM over 9 frame pairs (p=15)...")
    result = run_fig4(seed=args.seed)

    print()
    print(result.as_text())
    print()
    print(format_histogram(result.class_counts(), title="Blocks per error class"))
    print(f"\ntrue-vector fraction: {result.true_fraction():.1%}")

    means = result.class_means()
    if 0 in means and any(cls > 0 for cls in means):
        wrong_dev = [means[c][1] for c in means if c > 0]
        print(
            f"\nPaper's conclusion check: error=0 mean SAD_deviation "
            f"({means[0][1]:.3g}) vs erroneous classes "
            f"({min(wrong_dev):.3g}..{max(wrong_dev):.3g})"
        )

    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["frame_pair", "mb_row", "mb_col", "error_class", "intra_sad", "sad_deviation", "sad_min"]
            )
            for o in result.observations:
                writer.writerow(
                    [o.frame_pair, o.mb_row, o.mb_col, o.error_class, o.intra_sad, o.sad_deviation, o.sad_min]
                )
        print(f"\nWrote {len(result.observations)} scatter points to {args.csv}")


if __name__ == "__main__":
    main()
