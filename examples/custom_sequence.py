"""Build a custom synthetic scene, encode it, and export raw YUV.

Shows the synthesis API end to end: a textured world, a couple of
sprites on analytic trajectories, a panning camera — then encodes the
clip with ACBM, prints per-frame statistics, verifies the bitstream by
decoding it, and writes both the source and the reconstruction as raw
planar 4:2:0 files any video tool can ingest
(e.g. ffplay -f rawvideo -pixel_format yuv420p -video_size 176x144 out.yuv).

Run:
    python examples/custom_sequence.py [--outdir .]
"""

import argparse
import os

import numpy as np

from repro import encode_sequence
from repro.analysis.reporting import format_table
from repro.codec.decoder import decode_bitstream
from repro.video.frame import QCIF
from repro.video.synthesis.motion_models import CameraPath
from repro.video.synthesis.sequences import SceneSpec, render_scene
from repro.video.synthesis.sprites import Sprite, bounce_path, disc_mask, ellipse_mask, sway_path
from repro.video.synthesis.texture import noise_texture
from repro.video.yuv_io import write_yuv


def build_scene(frames: int) -> SceneSpec:
    margin = 48
    world_h = QCIF.height + 2 * margin
    world_w = QCIF.width + 2 * margin + 2 * frames  # room for the pan
    background = noise_texture(
        world_h, world_w, seed=7, cell=22, octaves=4, amplitude=70.0, base=115.0
    )
    blob = Sprite(
        texture=noise_texture(52, 44, seed=8, cell=10, octaves=2, amplitude=35.0, base=170.0),
        mask=ellipse_mask(52, 44, softness=2.5),
        trajectory=sway_path((margin + 30.0, margin + 60.0), (3.0, 5.0), period=17.0),
        chroma=(-8.0, 12.0),
    )
    ball = Sprite(
        texture=np.full((9, 9), 240.0),
        mask=disc_mask(9, softness=1.2),
        trajectory=bounce_path(
            start=(margin + 20.0, margin + 20.0),
            velocity=(4.2, 6.4),
            bounds=(margin + 5.0, margin + 120.0, margin + 5.0, margin + 150.0),
        ),
    )
    return SceneSpec(
        name="custom",
        geometry=QCIF,
        frames=frames,
        margin=margin,
        background=background,
        camera=CameraPath.pan(frames, margin, margin, 0.0, 2.0),
        sprites=[blob, ball],
        sensor_noise_sigma=1.0,
        shimmer_sigma=4.0,
        seed=7,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default=".", help="where to write the .yuv files")
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--qp", type=int, default=16)
    args = parser.parse_args()

    print(f"Rendering custom scene ({args.frames} frames)...")
    sequence = render_scene(build_scene(args.frames))

    print(f"Encoding with ACBM at Qp={args.qp}...")
    result = encode_sequence(sequence, qp=args.qp, estimator="acbm", keep_reconstruction=True)

    rows = [
        (f.index, f.frame_type, f.bits, f.psnr_y, f.skipped_mbs)
        for f in result.frames
    ]
    print()
    print(format_table(["frame", "type", "bits", "PSNR-Y dB", "skipped MBs"], rows))
    print(f"\ntotal: {result.rate_kbps:.1f} kbit/s @ {result.mean_psnr_y:.2f} dB, "
          f"{result.avg_positions_per_mb:.0f} positions/MB")

    decoded = decode_bitstream(result.bitstream)
    exact = all(d == r for d, r in zip(decoded, result.reconstruction))
    print(f"decoder round-trip bit-exact: {exact}")
    if not exact:
        raise SystemExit("decoder mismatch — this is a bug")

    source_path = os.path.join(args.outdir, "custom_source.yuv")
    recon_path = os.path.join(args.outdir, "custom_recon.yuv")
    from repro.video.sequence import Sequence

    write_yuv(source_path, sequence)
    write_yuv(recon_path, Sequence(result.reconstruction, fps=sequence.fps, name="recon"))
    print(f"wrote {source_path} and {recon_path} "
          f"(raw 4:2:0, {QCIF.width}x{QCIF.height})")


if __name__ == "__main__":
    main()
