"""The ACBM quality/cost knob: sweeping alpha, beta and gamma.

Section 3.2 of the paper stresses that ACBM "represents a flexible
motion estimation solution in the sense that the computational cost,
and hence the video quality, can be easily controlled by modifying the
values of the alpha, beta and gamma parameters".  This example makes
that claim concrete: it sweeps each parameter around the paper's tuned
operating point (alpha=1000, beta=8, gamma=1/4) and reports how the
average search cost and quality move.

Run:
    python examples/quality_cost_tradeoff.py
"""

import argparse

from repro import ACBMParameters, encode_sequence, make_sequence
from repro.analysis.reporting import format_table
from repro.core.acbm import ACBMEstimator


def sweep(sequence, qp, configurations):
    rows = []
    for label, params in configurations:
        estimator = ACBMEstimator(p=15, params=params)
        result = encode_sequence(sequence, qp=qp, estimator=estimator)
        stats = result.search_stats
        rows.append(
            (
                label,
                stats.avg_positions_per_block,
                f"{stats.full_search_fraction:.0%}",
                result.rate_kbps,
                result.mean_psnr_y,
            )
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=10)
    parser.add_argument("--qp", type=int, default=20)
    args = parser.parse_args()
    qp = args.qp
    print(f"Rendering the 'carphone' analog ({args.frames} frames, QCIF)...")
    sequence = make_sequence("carphone", frames=args.frames, seed=0)
    paper = ACBMParameters.paper_defaults()

    headers = ["config", "positions/MB", "critical", "rate kbit/s", "PSNR dB"]

    gamma_rows = sweep(
        sequence,
        qp,
        [(f"gamma={g}", paper.with_(gamma=g)) for g in (0.0, 0.125, 0.25, 0.5, 1.0)],
    )
    print()
    print(format_table(headers, gamma_rows, title="gamma sweep (alpha=1000, beta=8)"))
    print(
        "gamma widens the 'good prediction' acceptance for textured blocks:\n"
        "larger gamma -> fewer full searches, at some quality risk.\n"
    )

    beta_rows = sweep(
        sequence,
        qp,
        [(f"beta={b}", paper.with_(beta=b)) for b in (0.0, 4.0, 8.0, 16.0)],
    )
    print(format_table(headers, beta_rows, title="beta sweep (alpha=1000, gamma=0.25)"))
    print(
        "beta couples the acceptance threshold to Qp^2: higher beta lets\n"
        "coarse quantization mask larger prediction errors.\n"
    )

    extreme_rows = sweep(
        sequence,
        qp,
        [
            ("pure-PBM limit", ACBMParameters.never_full_search()),
            ("paper operating point", paper),
            ("pure-FSBM limit", ACBMParameters.always_full_search()),
        ],
    )
    print(format_table(headers, extreme_rows, title="the two degenerate limits"))


if __name__ == "__main__":
    main()
