"""Quickstart: encode one clip with the paper's three motion estimators.

Runs the synthetic Foreman analog through the H.263-style encoder with
PBM (fast, fragile), FSBM (exhaustive) and ACBM (the paper's hybrid),
then prints the rate / quality / search-cost triple for each — the
comparison at the heart of Lopez et al., DATE 2005.

Run:
    python examples/quickstart.py
"""

import argparse

from repro import encode_sequence, make_sequence
from repro.analysis.reporting import format_table
from repro.experiments.table1_complexity import fsbm_reference_positions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=13)
    parser.add_argument("--qp", type=int, default=20)
    args = parser.parse_args()
    frames = args.frames
    qp = args.qp
    print(f"Rendering the 'foreman' analog ({frames} frames, QCIF)...")
    sequence = make_sequence("foreman", frames=frames, seed=0)

    rows = []
    for estimator in ("pbm", "acbm", "fsbm"):
        print(f"Encoding with {estimator} at Qp={qp}...")
        result = encode_sequence(sequence, qp=qp, estimator=estimator)
        stats = result.search_stats
        rows.append(
            (
                estimator,
                result.rate_kbps,
                result.mean_psnr_y,
                stats.avg_positions_per_block,
                f"{stats.full_search_fraction:.0%}",
            )
        )

    print()
    print(
        format_table(
            ["estimator", "rate kbit/s", "PSNR dB", "positions/MB", "critical"],
            rows,
            title=f"foreman @ 30 fps, Qp={qp}  "
            f"(FSBM reference cost: {fsbm_reference_positions(15)} positions/MB)",
        )
    )
    print(
        "\nACBM matches FSBM quality at a fraction of the search cost;\n"
        "PBM is cheapest but pays in rate when its predictors fail."
    )


if __name__ == "__main__":
    main()
