"""Frame transport: shared-memory handles instead of pickled payloads.

Demonstrates the `repro.transport` subsystem end to end:

1. encode a clip to a version-2 bitstream and split it into per-frame
   parse jobs,
2. place the payloads in a `FrameArena` and compare what actually
   crosses a process boundary: the pickled spec shrinks from the whole
   payload to a ~200-byte `FrameHandle`,
3. run the parse jobs through the process pool both ways —
   `run_jobs(..., use_shm=True)` against the default pickling
   transport — and verify the results are identical,
4. push the same stream through a process-pipelined `DecodeSession`
   (parse in a spawned child, reconstruct here) and print its transport
   ledger: compressed bytes copied down, parsed arrays returned as
   handles,
5. sweep `/dev/shm` to show nothing outlived the arenas.

Run:
    python examples/transport.py
    python examples/transport.py --frames 12 --qp 16
"""

import argparse
import glob
import pickle

from repro import make_sequence
from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.parallel import ParseFrameJob, run_jobs
from repro.streaming import DecodeSession
from repro.transport import FrameArena, FrameStore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--qp", type=int, default=18)
    parser.add_argument("--estimator", default="tss")
    parser.add_argument("--chunk-size", type=int, default=1500)
    args = parser.parse_args()

    print(f"Encoding {args.frames} QCIF frames "
          f"({args.estimator}, qp={args.qp}, v2)...")
    clip = make_sequence("carphone", frames=args.frames, seed=0)
    encode = encode_sequence(
        clip, qp=args.qp, estimator=args.estimator, bitstream_version=2
    )
    index = FrameIndex.scan(encode.bitstream)
    jobs = [
        ParseFrameJob(index.payload(encode.bitstream, i)) for i in range(len(index))
    ]

    print("\nWhat one parse job costs to pickle:")
    with FrameArena(name_prefix="repro-example") as arena:
        plain, packed = jobs[0], jobs[0].pack_shm(FrameStore(arena))
        print(f"  payload by value : {len(pickle.dumps(plain)):6d} bytes")
        print(f"  payload by handle: {len(pickle.dumps(packed)):6d} bytes "
              "(segment name + offset + shape + dtype)")

    print("\nParsing on 2 workers, both transports...")
    pickled = run_jobs(jobs, workers=2)
    shared = run_jobs(jobs, workers=2, use_shm=True)
    print(f"  results identical: {shared == pickled}")

    print(f"\nProcess-pipelined decode in {args.chunk_size}-byte chunks...")
    session = DecodeSession(max_buffered_frames=2, pipeline="process")
    decoded = []
    for start in range(0, len(encode.bitstream), args.chunk_size):
        session.feed(encode.bitstream[start : start + args.chunk_size])
        decoded.extend(session.frames())
    session.close()
    decoded.extend(session.frames())
    stats = session.stats()
    print(f"  decode session: {stats.as_text()}")

    whole = decode_bitstream(encode.bitstream)
    identical = len(decoded) == len(whole) and all(
        a == b for a, b in zip(decoded, whole)
    )
    print(f"\nbit-identical to whole-buffer decode: {identical}")
    print(f"transport ledger: {stats.bytes_copied} compressed bytes copied to the "
          f"parse child, {stats.handles_passed} handles back "
          f"({sum(f.y.nbytes + f.cb.nbytes + f.cr.nbytes for f in decoded)} decoded "
          "bytes never pickled)")
    leftovers = glob.glob("/dev/shm/repro-*")
    print(f"/dev/shm leftovers: {leftovers or 'none'}")


if __name__ == "__main__":
    main()
