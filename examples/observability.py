"""Observability: structured tracing, metrics, and Chrome-trace export.

Demonstrates the `repro.obs` subsystem end to end:

1. enable the global tracer and run a traced encode→decode round trip —
   the codec's own spans (per-frame `encode.frame` with ME /
   transform+quant / entropy phase buckets, `decode.parse`,
   `decode.reconstruct`) land in the timeline, and the always-on metrics
   registry splits the emitted bits by syntax element,
2. fan the parsed frames out to a 2-worker pool: spans recorded inside
   the spawned workers ship back and merge into the parent timeline
   with their own pid/tid stamps, nesting under the pool's `job` spans,
3. export the merged timeline in Chrome trace-event format (load it at
   chrome://tracing or https://ui.perfetto.dev), validate it, and dump
   the metrics registry as JSON,
4. render the per-frame breakdown table — the same output as
   `python -m repro.experiments.runner report trace.json`.

Everything here is also available on the CLI: every runner command
accepts global `--trace FILE` / `--metrics FILE` flags.

Run:
    python examples/observability.py
    python examples/observability.py --frames 6 --qp 16
"""

import argparse
import json
import os
import tempfile
from pathlib import Path

from repro import make_sequence
from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.obs import metrics, trace
from repro.obs.export import load_trace, write_metrics, write_trace
from repro.obs.report import render_report
from repro.parallel import ParseFrameJob, run_jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--qp", type=int, default=20)
    parser.add_argument("--estimator", default="tss")
    args = parser.parse_args()

    clip = make_sequence("miss_america", frames=args.frames, seed=0)

    print(f"Tracing an encode→decode round trip ({args.frames} frames, "
          f"qp={args.qp}, {args.estimator})...")
    trace.TRACER.enable()
    encode = encode_sequence(
        clip, qp=args.qp, estimator=args.estimator, bitstream_version=2
    )
    decode_bitstream(encode.bitstream)

    print("Fanning parse jobs out to 2 spawned workers (worker spans "
          "ship back and merge)...")
    index = FrameIndex.scan(encode.bitstream)
    jobs = [
        ParseFrameJob(index.payload(encode.bitstream, i))
        for i in range(len(index))
    ]
    run_jobs(jobs, workers=2)
    trace.TRACER.disable()
    events = trace.TRACER.drain()

    pids = sorted({e["pid"] for e in events})
    print(f"  {len(events)} events from {len(pids)} distinct pids "
          f"(parent {os.getpid()} + workers)")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        metrics_path = Path(tmp) / "metrics.json"
        write_trace(trace_path, events)
        write_metrics(metrics_path, metrics.REGISTRY)
        data = load_trace(trace_path)  # raises if malformed
        print(f"trace-event JSON valid: True "
              f"({len(data['traceEvents'])} events incl. process labels)")
        snapshot = json.loads(metrics_path.read_text())

    print(f"\nbits by syntax element ({snapshot['encode.bits']} total):")
    for element in ("headers", "mode", "mv", "coefficients"):
        print(f"  {element:<12} {snapshot[f'encode.bits.{element}']:>8}")
    print(f"  SAD evaluations: "
          f"{metrics.REGISTRY.counter('me.sad_evaluations').value}")

    print("\nper-frame breakdown (runner report <trace.json> prints the same):")
    print(render_report(events))


if __name__ == "__main__":
    main()
