"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517 editable installs (which need ``bdist_wheel``) fail; this shim
enables the legacy ``pip install -e . --no-use-pep517`` path.  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
