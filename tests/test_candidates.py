"""Unit tests for repro.me.candidates.CandidateEvaluator."""

import numpy as np
import pytest

from repro.me.candidates import CandidateEvaluator
from repro.me.metrics import sad
from repro.me.search_window import SearchWindow
from repro.me.types import MotionVector

from .conftest import shifted_plane, textured_plane


def make_evaluator(seed=20, dy=0, dx=0, p=6):
    ref = textured_plane(48, 64, seed=seed)
    cur = shifted_plane(ref, dy, dx)
    window = SearchWindow(-p, p, -p, p)
    block = cur[16:32, 16:32]
    return CandidateEvaluator(block, ref, 16, 16, window), ref, cur


class TestEvaluate:
    def test_counts_distinct_positions(self):
        ev, _, _ = make_evaluator()
        ev.evaluate(0, 0)
        ev.evaluate(1, 0)
        ev.evaluate(0, 0)  # revisit: cached, not recounted
        assert ev.positions == 2

    def test_outside_window_returns_none(self):
        ev, _, _ = make_evaluator(p=2)
        assert ev.evaluate(3, 0) is None
        assert ev.positions == 0

    def test_sad_value_correct(self):
        ev, ref, cur = make_evaluator()
        value = ev.evaluate(2, -1)
        assert value == sad(cur[16:32, 16:32], ref[15:31, 18:34])

    def test_best_tracks_minimum(self):
        ev, _, _ = make_evaluator(dy=0, dx=-2)  # true displacement (dx=+2)
        for d in range(-3, 4):
            ev.evaluate(d, 0)
        mv, best = ev.best()
        assert mv == MotionVector(4, 0)
        assert best == ev.evaluate(2, 0)

    def test_tiebreak_prefers_shorter_vector(self):
        # Flat content: every candidate ties at SAD ~0.
        flat = np.full((48, 64), 90, dtype=np.uint8)
        ev = CandidateEvaluator(flat[16:32, 16:32], flat, 16, 16, SearchWindow(-3, 3, -3, 3))
        ev.evaluate(3, 3)
        ev.evaluate(0, 0)
        ev.evaluate(-2, 0)
        mv, best = ev.best()
        assert mv == MotionVector.zero()
        assert best == 0

    def test_best_before_any_evaluation_raises(self):
        ev, _, _ = make_evaluator()
        with pytest.raises(RuntimeError):
            ev.best()

    def test_evaluate_many(self):
        ev, _, _ = make_evaluator()
        ev.evaluate_many([(0, 0), (1, 1), (-1, -1)])
        assert ev.positions == 3


class TestDescend:
    def test_finds_translation_within_reach(self):
        ring = [(-1, -1), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1)]
        ev, _, _ = make_evaluator(dy=0, dx=-3)
        ev.evaluate(0, 0)
        ev.descend(ring, max_steps=5)
        mv, best = ev.best()
        assert mv == MotionVector(6, 0)

    def test_step_bound_limits_reach(self):
        ring = [(-1, -1), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1)]
        ev, _, _ = make_evaluator(dy=0, dx=-5)
        ev.evaluate(0, 0)
        ev.descend(ring, max_steps=2)
        mv, _ = ev.best()
        assert abs(mv.hx) <= 4  # at most 2 px of travel from the origin

    def test_stops_early_at_minimum(self):
        ring = [(0, -1), (-1, 0), (1, 0), (0, 1)]
        ev, _, _ = make_evaluator(dy=0, dx=0)
        ev.evaluate(0, 0)
        ev.descend(ring, max_steps=50)
        # One ring around the optimum, nothing more.
        assert ev.positions == 5
