"""Property-based tests (hypothesis) for the codec layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.macroblock import read_events, write_events
from repro.codec.mv_coding import mvd_bits, read_mvd, write_mvd
from repro.codec.quantizer import dequantize, quantize_inter
from repro.codec.vlc import (
    read_se_golomb,
    read_ue_golomb,
    se_golomb_code,
    ue_golomb_code,
)
from repro.codec.zigzag import CoefficientEvent, block_to_events, events_to_block, scan, unscan
from repro.me.types import MotionVector

# -- bitstream ----------------------------------------------------------

bit_chunks = st.lists(
    st.tuples(st.integers(min_value=1, max_value=24), st.integers(min_value=0)),
    min_size=1,
    max_size=50,
).map(lambda chunks: [(n, v % (1 << n)) for n, v in chunks])


@given(bit_chunks)
def test_bitstream_round_trip(chunks):
    writer = BitWriter()
    for n, v in chunks:
        writer.write_bits(v, n)
    reader = BitReader(writer.getvalue())
    for n, v in chunks:
        assert reader.read_bits(n) == v


# -- exp-Golomb ---------------------------------------------------------


@given(st.integers(min_value=0, max_value=100000))
def test_ue_golomb_round_trip(value):
    writer = BitWriter()
    writer.write_code(ue_golomb_code(value))
    assert read_ue_golomb(BitReader(writer.getvalue())) == value


@given(st.integers(min_value=-50000, max_value=50000))
def test_se_golomb_round_trip(value):
    writer = BitWriter()
    writer.write_code(se_golomb_code(value))
    assert read_se_golomb(BitReader(writer.getvalue())) == value


@given(st.integers(min_value=0, max_value=10000))
def test_ue_golomb_length_monotone_in_magnitude_class(value):
    _, l1 = ue_golomb_code(value)
    _, l2 = ue_golomb_code(2 * value + 1)
    assert l2 >= l1


# -- zig-zag ------------------------------------------------------------

blocks_int = st.builds(
    lambda seed: np.random.default_rng(seed).integers(-127, 128, (8, 8)),
    st.integers(min_value=0, max_value=10_000),
)


@given(blocks_int)
def test_scan_unscan_inverse(block):
    np.testing.assert_array_equal(unscan(scan(block)), block)


@given(blocks_int, st.integers(min_value=0, max_value=1))
def test_block_events_round_trip(block, skip_first):
    if skip_first:
        block = block.copy()
        block[0, 0] = 0
    events = block_to_events(block, skip_first=skip_first)
    if not events:
        assert not block.any()
        return
    np.testing.assert_array_equal(events_to_block(events, skip_first=skip_first), block)


@given(blocks_int)
def test_event_levels_nonzero_and_runs_valid(block):
    for event in block_to_events(block):
        assert event.level != 0
        assert 0 <= event.run <= 63


# -- TCOEF serialization --------------------------------------------------

events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=-127, max_value=127).filter(lambda v: v != 0),
    ),
    min_size=1,
    max_size=20,
).map(
    lambda pairs: [
        CoefficientEvent(last=(i == len(pairs) - 1), run=r, level=l)
        for i, (r, l) in enumerate(pairs)
    ]
)


@given(events_strategy)
@settings(max_examples=60)
def test_tcoef_serialization_round_trip(events):
    writer = BitWriter()
    bits = write_events(writer, events)
    assert bits == writer.bit_count
    assert read_events(BitReader(writer.getvalue())) == events


# -- quantizer -----------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=31),
    st.builds(
        lambda seed: np.random.default_rng(seed).uniform(-1000, 1000, 64),
        st.integers(min_value=0, max_value=10_000),
    ),
)
def test_quantizer_fixed_point(qp, coefficients):
    """dequantize∘quantize is a projection: applying it twice equals
    applying it once (no drift in the decoder loop)."""
    once = dequantize(quantize_inter(coefficients, qp), qp)
    twice = dequantize(quantize_inter(once, qp), qp)
    np.testing.assert_array_equal(once, twice)


@given(
    st.integers(min_value=1, max_value=31),
    st.floats(min_value=-2000, max_value=2000, allow_nan=False),
)
def test_quantizer_sign_preserved(qp, coefficient):
    level = quantize_inter(np.array([coefficient]), qp)[0]
    assert level == 0 or np.sign(level) == np.sign(coefficient)


# -- DCT ------------------------------------------------------------------


@given(
    st.builds(
        lambda seed: np.random.default_rng(seed).uniform(-255, 255, (8, 8)),
        st.integers(min_value=0, max_value=10_000),
    )
)
def test_dct_energy_and_inverse(block):
    coefficients = forward_dct(block)
    np.testing.assert_allclose(inverse_dct(coefficients), block, atol=1e-8)
    assert (coefficients**2).sum() == np.float64(0.0) or abs(
        (coefficients**2).sum() / (block**2).sum() - 1.0
    ) < 1e-9


# -- MV coding -------------------------------------------------------------

mvs = st.builds(
    MotionVector,
    st.integers(min_value=-31, max_value=31),
    st.integers(min_value=-31, max_value=31),
)


@given(mvs, mvs)
def test_mvd_round_trip(mv, predictor):
    writer = BitWriter()
    written = write_mvd(writer, mv, predictor)
    assert written == mvd_bits(mv, predictor)
    assert read_mvd(BitReader(writer.getvalue()), predictor) == mv


@given(mvs)
def test_mvd_zero_difference_cheapest(mv):
    assert mvd_bits(mv, mv) == 2
    assert mvd_bits(mv, MotionVector(mv.hx + 2, mv.hy)) > 2
