"""Unit tests for repro.me.stats."""

import pytest

from repro.me.stats import SearchStats


class TestSearchStats:
    def test_initial_state(self):
        s = SearchStats()
        assert s.blocks == 0
        assert s.avg_positions_per_block == 0.0
        assert s.full_search_fraction == 0.0

    def test_record_accumulates(self):
        s = SearchStats()
        s.record_block(10)
        s.record_block(20, used_full_search=True)
        assert s.blocks == 2
        assert s.positions == 30
        assert s.avg_positions_per_block == 15.0
        assert s.full_search_fraction == 0.5

    def test_decision_counting(self):
        s = SearchStats()
        s.record_block(5, decision="low_cost")
        s.record_block(5, decision="low_cost")
        s.record_block(969, decision="critical", used_full_search=True)
        assert s.decisions == {"low_cost": 2, "critical": 1}

    def test_positions_must_be_positive(self):
        with pytest.raises(ValueError):
            SearchStats().record_block(0)

    def test_merge(self):
        a = SearchStats()
        a.record_block(10, decision="low_cost")
        b = SearchStats()
        b.record_block(20, used_full_search=True, decision="critical")
        a.merge(b)
        assert a.blocks == 2
        assert a.positions == 30
        assert a.full_search_blocks == 1
        assert a.decisions == {"low_cost": 1, "critical": 1}

    def test_reduction_vs_fsbm(self):
        s = SearchStats()
        for _ in range(10):
            s.record_block(97)  # ~10% of 969
        assert s.reduction_vs(969.0) == pytest.approx(1.0 - 97 / 969)

    def test_reduction_requires_positive_reference(self):
        with pytest.raises(ValueError):
            SearchStats().reduction_vs(0.0)

    def test_repr(self):
        s = SearchStats()
        s.record_block(42)
        assert "42.0" in repr(s)
