"""Unit tests for repro.core.classifier — the two ACBM conditions."""

import pytest

from repro.core.classifier import BlockDecision, classify_block
from repro.core.parameters import ACBMParameters

PAPER = ACBMParameters.paper_defaults()


class TestCondition1:
    """Intra_SAD + SAD_PBM < α + β·Qp²."""

    def test_smooth_block_accepted(self):
        assert classify_block(100.0, 50, 16, PAPER) is BlockDecision.LOW_COST

    def test_boundary_is_strict(self):
        threshold = PAPER.threshold(16)  # 3048
        assert classify_block(threshold - 1, 0, 16, PAPER) is BlockDecision.LOW_COST
        # Exactly at the threshold: condition 1 fails (strict <), and
        # with SAD_PBM = 0 < γ·Intra, condition 2 rescues it.
        assert classify_block(threshold, 0, 16, PAPER) is BlockDecision.GOOD_PREDICTION

    def test_qp_widens_acceptance(self):
        """The same block can be critical at fine Qp and accepted at
        coarse Qp — the mechanism behind Table 1's Qp rows."""
        intra, sad_pbm = 4000.0, 2000
        assert classify_block(intra, sad_pbm, 16, PAPER) is BlockDecision.CRITICAL
        assert classify_block(intra, sad_pbm, 30, PAPER) is BlockDecision.LOW_COST


class TestCondition2:
    """SAD_PBM < γ·Intra_SAD."""

    def test_textured_block_with_good_prediction_accepted(self):
        # Condition 1 fails (10000 + 2000 > threshold at qp 16).
        assert classify_block(10000.0, 2000, 16, PAPER) is BlockDecision.GOOD_PREDICTION

    def test_textured_block_with_bad_prediction_critical(self):
        assert classify_block(10000.0, 4000, 16, PAPER) is BlockDecision.CRITICAL

    def test_gamma_boundary_is_strict(self):
        intra = 10000.0
        assert classify_block(intra, 2499, 16, PAPER) is BlockDecision.GOOD_PREDICTION
        assert classify_block(intra, 2500, 16, PAPER) is BlockDecision.CRITICAL

    def test_gamma_zero_disables_condition(self):
        params = PAPER.with_(gamma=0.0)
        assert classify_block(10000.0, 1, 16, params) is BlockDecision.CRITICAL


class TestDegenerateConfigs:
    def test_always_full_search(self):
        params = ACBMParameters.always_full_search()
        for intra, sad_pbm in [(0.0, 0), (100.0, 5), (9999.0, 1)]:
            got = classify_block(intra, sad_pbm, 16, params)
            # SAD_PBM = 0 < threshold 0 is false; γ = 0 kills cond 2.
            assert got is BlockDecision.CRITICAL

    def test_never_full_search(self):
        params = ACBMParameters.never_full_search()
        assert classify_block(1e9, 10**7, 16, params) is BlockDecision.LOW_COST


class TestValidation:
    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            classify_block(-1.0, 0, 16, PAPER)
        with pytest.raises(ValueError):
            classify_block(0.0, -1, 16, PAPER)

    def test_decision_accepts_pbm_property(self):
        assert BlockDecision.LOW_COST.accepts_pbm
        assert BlockDecision.GOOD_PREDICTION.accepts_pbm
        assert not BlockDecision.CRITICAL.accepts_pbm

    def test_string_values_stable(self):
        """These strings are persisted in SearchStats.decisions."""
        assert BlockDecision.LOW_COST.value == "low_cost"
        assert BlockDecision.GOOD_PREDICTION.value == "good_prediction"
        assert BlockDecision.CRITICAL.value == "critical"
