"""Golden-equivalence and property tests for the frame-level engine.

The engine (``repro.me.engine``) re-implements the seed's per-block,
per-candidate hot path as whole-frame vectorized kernels.  Nothing
about the numbers is allowed to change: every test here pins a batched
kernel against the per-block reference implementation it replaced —
same SADs, same vectors, same tie-breaks, same position counts, same
bitstreams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.me.candidates import CandidateEvaluator
from repro.me.engine import (
    SURFACE_SENTINEL,
    ReferencePlane,
    evaluate_candidates_batch,
    frame_sad_surfaces,
    refine_half_pel_batch,
    select_minima,
    supports_vectorized_search,
)
from repro.me.engine.kernels import _frame_sad_surfaces_generic
from repro.me.estimator import available_estimators, create_estimator
from repro.me.full_search import FullSearchEstimator, full_search_sads, select_minimum
from repro.me.metrics import sad_deviation
from repro.me.search_window import SearchWindow, clamped_window
from repro.me.subpel import half_pel_block, predict_block, refine_half_pel
from repro.me.types import MotionVector

from .conftest import backend_matrix, shifted_plane, textured_plane

#: Every golden equivalence below re-runs per available kernel backend.
kernel_backend = backend_matrix()


def random_plane(seed: int, h: int = 48, w: int = 64) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, (h, w), dtype=np.uint8)


def tie_heavy_plane(seed: int, h: int = 48, w: int = 64) -> np.ndarray:
    """Two-level quantized noise: many equal-SAD minima, so tie-break
    paths actually execute."""
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 2, (h, w)) * 120 + 40).astype(np.uint8)


# -- ReferencePlane ------------------------------------------------------


class TestReferencePlane:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), fy=st.integers(0, 1), fx=st.integers(0, 1))
    def test_block_matches_half_pel_block(self, seed, fy, fx):
        """Property: every half-pel block read from the cached plane is
        sample-for-sample the seed interpolation."""
        ref = random_plane(seed, 24, 20)
        plane = ReferencePlane(ref)
        rng = np.random.default_rng(seed + 1)
        height, width = 8, 8
        hy = 2 * int(rng.integers(0, ref.shape[0] - height)) + fy
        hx = 2 * int(rng.integers(0, ref.shape[1] - width)) + fx
        np.testing.assert_array_equal(
            plane.block(hy, hx, height, width), half_pel_block(ref, hy, hx, height, width)
        )

    def test_block_exhaustive_with_borders(self):
        """Every legal half-pel coordinate of a small plane, including
        the clipped border extremes."""
        ref = random_plane(7, 10, 12)
        plane = ReferencePlane(ref)
        height = width = 4
        for hy in range(0, 2 * (ref.shape[0] - height) + 1):
            for hx in range(0, 2 * (ref.shape[1] - width) + 1):
                np.testing.assert_array_equal(
                    plane.block(hy, hx, height, width),
                    half_pel_block(ref, hy, hx, height, width),
                )

    def test_half_plane_shape_and_integer_samples(self):
        ref = random_plane(3, 16, 18)
        plane = ReferencePlane(ref)
        assert plane.half_plane.shape == (31, 35)
        np.testing.assert_array_equal(plane.half_plane[::2, ::2], ref)

    def test_out_of_support_rejected(self):
        plane = ReferencePlane(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(ValueError, match="support"):
            plane.block(1, 0, 8, 8)
        plane.block(0, 0, 8, 8)  # integer position at the edge is fine

    def test_wrap_rejects_uncacheable(self):
        assert ReferencePlane.wrap(np.zeros((8, 8), dtype=np.float64)) is None
        assert ReferencePlane.wrap(np.zeros((8, 8, 3), dtype=np.uint8)) is None
        plane = ReferencePlane(np.zeros((8, 8), dtype=np.uint8))
        assert ReferencePlane.wrap(plane) is plane

    def test_predict_matches_predict_block(self):
        ref = textured_plane(48, 64, seed=21)
        plane = ReferencePlane(ref)
        for mv in (MotionVector(4, -2), MotionVector(3, 1), MotionVector(-1, 0)):
            np.testing.assert_array_equal(
                plane.predict(16, 16, mv, 16, 16), predict_block(ref, 16, 16, mv, 16, 16)
            )

    def test_predict_block_dispatches_to_plane(self):
        ref = textured_plane(48, 64, seed=22)
        plane = ReferencePlane(ref)
        mv = MotionVector(5, -3)
        np.testing.assert_array_equal(
            predict_block(plane, 16, 16, mv, 16, 16), predict_block(ref, 16, 16, mv, 16, 16)
        )


# -- frame_sad_surfaces --------------------------------------------------


GEOMETRIES = [
    (48, 64, 16, 15),  # heavier clipping than the window on all sides
    (64, 48, 16, 7),
    (32, 32, 16, 3),
    (48, 64, 8, 9),  # 8x8 fast path
]


class TestFrameSadSurfaces:
    @pytest.mark.parametrize("h,w,s,p", GEOMETRIES)
    def test_matches_per_block_full_search(self, h, w, s, p):
        cur = random_plane(h * w + s + p, h, w)
        ref = random_plane(h * w + s + p + 1, h, w)
        fss = frame_sad_surfaces(cur, ref, s, p)
        for r in range(h // s):
            for c in range(w // s):
                sads, window = full_search_sads(cur, ref, r * s, c * s, s, p)
                got, got_window = fss.block_surface(r, c)
                assert got_window == window
                np.testing.assert_array_equal(got, sads)
                # Everything outside the clipped window is the sentinel.
                mask = np.ones((2 * p + 1, 2 * p + 1), dtype=bool)
                mask[
                    window.dy_min + p : window.dy_max + p + 1,
                    window.dx_min + p : window.dx_max + p + 1,
                ] = False
                assert (fss.surfaces[r, c][mask] == SURFACE_SENTINEL).all()

    def test_generic_path_identical_to_fast_path(self):
        cur, ref = random_plane(100), random_plane(101)
        fast = frame_sad_surfaces(cur, ref, 16, 7)
        generic = _frame_sad_surfaces_generic(cur, ref, 16, 7)
        np.testing.assert_array_equal(fast.surfaces, generic.surfaces)

    def test_deviations_match_sad_deviation(self):
        cur, ref = random_plane(5), random_plane(6)
        fss = frame_sad_surfaces(cur, ref, 16, 15)
        devs = fss.deviations()
        for r in range(fss.mb_rows):
            for c in range(fss.mb_cols):
                sads, _ = full_search_sads(cur, ref, r * 16, c * 16, 16, 15)
                assert devs[r, c] == sad_deviation(sads)

    def test_positions_match_windows(self):
        fss = frame_sad_surfaces(random_plane(8), random_plane(9), 16, 15)
        pos = fss.positions()
        for r in range(fss.mb_rows):
            for c in range(fss.mb_cols):
                assert pos[r, c] == fss.window(r, c).num_positions

    def test_supports_vectorized_search_envelope(self):
        u8 = np.zeros((48, 64), dtype=np.uint8)
        assert supports_vectorized_search(u8, 16, 15)
        assert supports_vectorized_search(u8, 8, 31)
        assert not supports_vectorized_search(u8, 32, 15)  # lane overflow
        assert not supports_vectorized_search(u8, 16, 32)  # tie-break packing
        assert not supports_vectorized_search(u8.astype(np.int16), 16, 15)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            frame_sad_surfaces(random_plane(1, 48, 64), random_plane(2, 48, 48), 16, 7)


# -- select_minima -------------------------------------------------------


class TestSelectMinima:
    @pytest.mark.parametrize("maker", [random_plane, tie_heavy_plane])
    @pytest.mark.parametrize("p", [3, 7, 15])
    def test_matches_select_minimum(self, maker, p):
        cur, ref = maker(11), maker(12)
        fss = frame_sad_surfaces(cur, ref, 16, p)
        dx, dy, sads, positions = select_minima(fss)
        for r in range(fss.mb_rows):
            for c in range(fss.mb_cols):
                block_sads, window = full_search_sads(cur, ref, r * 16, c * 16, 16, p)
                mv, best = select_minimum(block_sads, window)
                assert MotionVector(2 * int(dx[r, c]), 2 * int(dy[r, c])) == mv
                assert int(sads[r, c]) == best
                assert int(positions[r, c]) == window.num_positions

    def test_flat_plane_ties_resolve_to_zero(self):
        flat = np.full((48, 64), 90, dtype=np.uint8)
        dx, dy, sads, _ = select_minima(frame_sad_surfaces(flat, flat, 16, 7))
        assert (dx == 0).all() and (dy == 0).all() and (sads == 0).all()

    def test_wide_window_beyond_packed_key(self):
        """p > 31 exceeds the packed tie-break key's 6-bit fields; the
        per-block fallback must still match select_minimum exactly —
        tie-heavy content so the tie-break actually decides."""
        cur, ref = tie_heavy_plane(21, 96, 112), tie_heavy_plane(22, 96, 112)
        p = 35
        fss = frame_sad_surfaces(cur, ref, 16, p)
        dx, dy, sads, _ = select_minima(fss)
        for r in range(fss.mb_rows):
            for c in range(fss.mb_cols):
                block_sads, window = full_search_sads(cur, ref, r * 16, c * 16, 16, p)
                mv, best = select_minimum(block_sads, window)
                assert MotionVector(2 * int(dx[r, c]), 2 * int(dy[r, c])) == mv
                assert int(sads[r, c]) == best


# -- refine_half_pel_batch ----------------------------------------------


class TestRefineHalfPelBatch:
    @pytest.mark.parametrize("maker,seed", [(random_plane, 31), (tie_heavy_plane, 32)])
    def test_matches_per_block_refinement(self, maker, seed):
        cur, ref = maker(seed), maker(seed + 1)
        p, s = 7, 16
        plane = ReferencePlane(ref)
        fss = frame_sad_surfaces(cur, plane, s, p)
        dx, dy, sads, _ = select_minima(fss)
        hx, hy, ref_sads, extra = refine_half_pel_batch(cur, plane, dx, dy, sads, s, p)
        for r in range(fss.mb_rows):
            for c in range(fss.mb_cols):
                window = clamped_window(r * s, c * s, s, s, *ref.shape, p)
                anchor = MotionVector(2 * int(dx[r, c]), 2 * int(dy[r, c]))
                block = cur[r * s : (r + 1) * s, c * s : (c + 1) * s]
                mv, best, evaluated = refine_half_pel(
                    block, ref, r * s, c * s, anchor, int(sads[r, c]), window
                )
                assert MotionVector(int(hx[r, c]), int(hy[r, c])) == mv
                assert int(ref_sads[r, c]) == best
                assert int(extra[r, c]) == evaluated


# -- evaluate_candidates_batch ------------------------------------------


class TestEvaluateCandidatesBatch:
    def test_matches_sequential_evaluator(self):
        ref = textured_plane(48, 64, seed=40)
        cur = shifted_plane(ref, 1, -2)
        window = SearchWindow(-6, 6, -6, 6)
        cands = [(-6, -6), (0, 0), (3, -2), (6, 6), (-1, 4)]
        seq = CandidateEvaluator(cur[16:32, 16:32], ref, 16, 16, window)
        for dx, dy in cands:
            seq.evaluate(dx, dy)
        arr = np.array(cands)
        sads = evaluate_candidates_batch(
            cur[16:32, 16:32],
            ref,
            np.array([0]),
            np.array([0]),
            (16 + arr[:, 1])[None, :],
            (16 + arr[:, 0])[None, :],
            16,
        )[0]
        for (dx, dy), value in zip(cands, sads.tolist()):
            assert value == seq._cache[(dx, dy)]

    def test_out_of_plane_marked_invalid(self):
        ref = random_plane(50, 32, 32)
        sads = evaluate_candidates_batch(
            ref, ref, np.array([0]), np.array([0]),
            np.array([[-1, 0, 17]]), np.array([[0, 0, 0]]), 16,
        )[0]
        assert sads[0] == -1 and sads[2] == -1 and sads[1] == 0

    def test_evaluate_many_identical_to_sequential(self):
        """The batched evaluate_many must leave the evaluator in exactly
        the state a sequential loop produces (cache, best, count)."""
        ref = tie_heavy_plane(60)
        cur = tie_heavy_plane(61)
        window = SearchWindow(-7, 7, -7, 7)
        cands = [(0, 0), (2, 2), (-2, 2), (2, -2), (-2, -2), (0, 0), (7, 7), (1, 0)]
        batched = CandidateEvaluator(cur[16:32, 16:32], ref, 16, 16, window)
        batched.evaluate_many(cands)
        sequential = CandidateEvaluator(cur[16:32, 16:32], ref, 16, 16, window)
        for dx, dy in cands:
            sequential.evaluate(dx, dy)
        assert batched._cache == sequential._cache
        assert batched.positions == sequential.positions
        assert batched.best() == sequential.best()

    def test_plane_accepted_as_reference(self):
        ref = textured_plane(48, 64, seed=41)
        plane = ReferencePlane(ref)
        ev = CandidateEvaluator(ref[16:32, 16:32], plane, 16, 16, SearchWindow(-2, 2, -2, 2))
        assert ev.evaluate(0, 0) == 0


# -- golden equivalence: estimators and encoder --------------------------


def fields_identical(a, b) -> bool:
    ahx, ahy = a.to_arrays()
    bhx, bhy = b.to_arrays()
    return bool(np.array_equal(ahx, bhx) and np.array_equal(ahy, bhy))


class TestGoldenEstimators:
    @pytest.mark.parametrize("half_pel", [True, False])
    @pytest.mark.parametrize("p", [7, 15])
    @pytest.mark.parametrize(
        "maker", [lambda: textured_plane(48, 64, seed=70), lambda: tie_heavy_plane(71)]
    )
    def test_fsbm_batch_identical_to_per_block(self, half_pel, p, maker):
        """The tentpole guarantee: FSBM via the engine's estimate_frame
        emits bit-identical motion fields, SADs and SearchStats position
        counts to the seed per-block path."""
        ref = maker()
        cur = shifted_plane(ref, 1, 2)
        batched = FullSearchEstimator(p=p, half_pel=half_pel, use_engine=True)
        per_block = FullSearchEstimator(p=p, half_pel=half_pel, use_engine=False)
        field_b, stats_b = batched.estimate(cur, ref)
        field_s, stats_s = per_block.estimate(cur, ref)
        assert fields_identical(field_b, field_s)
        assert stats_b.positions == stats_s.positions
        assert stats_b.blocks == stats_s.blocks
        assert stats_b.full_search_blocks == stats_s.full_search_blocks

    def test_fsbm_batch_on_synthetic_sequence(self):
        """Same guarantee on the paper's synthetic content (real motion,
        flat and textured regions in one frame)."""
        from repro.video.synthesis.sequences import make_sequence

        seq = make_sequence("foreman", frames=3, seed=0)
        batched = FullSearchEstimator(p=15, use_engine=True)
        per_block = FullSearchEstimator(p=15, use_engine=False)
        for i in range(1, len(seq)):
            field_b, stats_b = batched.estimate(seq[i].y, seq[i - 1].y)
            field_s, stats_s = per_block.estimate(seq[i].y, seq[i - 1].y)
            assert fields_identical(field_b, field_s)
            assert stats_b.positions == stats_s.positions

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    def test_every_estimator_unchanged_by_engine(self, name):
        """All eight registered searches ride the shared plane and the
        batched candidate scorer; none may change a single decision."""
        ref = textured_plane(48, 64, seed=80)
        cur = shifted_plane(ref, -1, 2)
        on = create_estimator(name, p=7, use_engine=True)
        off = create_estimator(name, p=7, use_engine=False)
        prev = None
        field_on, stats_on = on.estimate(cur, ref, prev_field=prev)
        field_off, stats_off = off.estimate(cur, ref, prev_field=prev)
        assert fields_identical(field_on, field_off)
        assert stats_on.positions == stats_off.positions
        assert stats_on.decisions == stats_off.decisions

    def test_encoder_bitstream_unchanged_by_engine(self):
        """End to end: engine on/off produces byte-identical bitstreams
        through the closed-loop encoder."""
        from repro.codec.encoder import encode_sequence
        from repro.video.synthesis.sequences import make_sequence

        seq = make_sequence("miss_america", frames=3, seed=1)
        on = encode_sequence(
            seq, qp=16, estimator="fsbm", estimator_kwargs={"use_engine": True}
        )
        off = encode_sequence(
            seq, qp=16, estimator="fsbm", estimator_kwargs={"use_engine": False}
        )
        assert on.bitstream == off.bitstream
        assert on.mean_psnr_y == off.mean_psnr_y
        assert on.search_stats.positions == off.search_stats.positions

    def test_activity_map_matches_scalar_intra_sad(self):
        """The Fig. 4 rig now takes Intra_SAD from the vectorized
        activity map; it must agree with the scalar definition on every
        block (same float64 arithmetic, same values)."""
        from repro.me.metrics import block_activity_map, intra_sad

        plane = textured_plane(48, 64, seed=90)
        amap = block_activity_map(plane, 16)
        for r in range(3):
            for c in range(4):
                scalar = intra_sad(plane[16 * r : 16 * r + 16, 16 * c : 16 * c + 16])
                assert amap[r, c] == pytest.approx(scalar, rel=1e-12, abs=1e-9)
