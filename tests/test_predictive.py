"""Unit tests for repro.me.predictive (PBM)."""

import numpy as np
import pytest

from repro.me.estimator import BlockContext
from repro.me.predictive import PredictiveEstimator, gather_predictors
from repro.me.types import MotionField, MotionVector

from .conftest import shifted_plane, textured_plane


class TestGatherPredictors:
    def test_zero_always_first(self):
        field = MotionField(3, 3)
        preds = gather_predictors(0, 0, field, None)
        assert preds == [MotionVector.zero()]

    def test_spatial_neighbours_collected(self):
        field = MotionField(3, 3)
        field.set(1, 0, MotionVector(2, 0))   # left
        field.set(0, 0, MotionVector(4, 0))   # top-left
        field.set(0, 1, MotionVector(6, 0))   # top
        field.set(0, 2, MotionVector(8, 0))   # top-right
        preds = gather_predictors(1, 1, field, None)
        assert preds == [
            MotionVector.zero(),
            MotionVector(2, 0),
            MotionVector(4, 0),
            MotionVector(6, 0),
            MotionVector(8, 0),
        ]

    def test_temporal_neighbours_collected(self):
        field = MotionField(3, 3)
        prev = MotionField.zeros(3, 3)
        prev.set(1, 1, MotionVector(10, 0))   # collocated
        prev.set(1, 2, MotionVector(12, 0))   # right
        prev.set(2, 1, MotionVector(14, 0))   # below
        prev.set(2, 2, MotionVector(16, 0))   # below-right
        preds = gather_predictors(1, 1, field, prev)
        assert MotionVector(10, 0) in preds
        assert MotionVector(12, 0) in preds
        assert MotionVector(14, 0) in preds
        assert MotionVector(16, 0) in preds

    def test_duplicates_collapsed(self):
        field = MotionField(2, 2)
        field.set(0, 0, MotionVector.zero())
        field.set(0, 1, MotionVector.zero())
        preds = gather_predictors(1, 1, field, None)
        assert preds == [MotionVector.zero()]

    def test_borders_skip_missing(self):
        field = MotionField(2, 2)
        preds = gather_predictors(0, 1, field, None)  # top row: no above
        assert preds == [MotionVector.zero()]


def context(cur, ref, r, c, field=None, prev=None, qp=16):
    rows, cols = cur.shape[0] // 16, cur.shape[1] // 16
    return BlockContext(cur, ref, r, c, 16, field or MotionField(rows, cols), prev, qp)


class TestPredictiveEstimator:
    def test_registered_name(self):
        assert PredictiveEstimator().name == "pbm"

    def test_zero_motion_is_cheap(self):
        ref = textured_plane(48, 64, seed=40)
        est = PredictiveEstimator(p=15)
        result = est.search_block(context(ref, ref, 1, 1))
        assert result.mv == MotionVector.zero()
        # zero predictor + one ring + half-pel: far below FSBM's 969.
        assert result.positions <= 20
        assert not result.used_full_search

    def test_small_translation_found(self):
        ref = textured_plane(48, 64, seed=41)
        cur = shifted_plane(ref, 0, 2)
        est = PredictiveEstimator(p=15, half_pel=False)
        result = est.search_block(context(cur, ref, 1, 1))
        assert result.mv == MotionVector(-4, 0)

    def test_spatial_propagation_extends_reach(self):
        """A displacement beyond the descent bound is still found when a
        neighbour already carries it — the wavefront effect."""
        ref = textured_plane(48, 96, seed=42)
        cur = shifted_plane(ref, 0, -6)  # true mv = (+6, 0) px
        est = PredictiveEstimator(p=15, half_pel=False, refine_steps=2)
        rows, cols = 3, 6
        field = MotionField(rows, cols)
        # Estimate the whole frame in raster order (what estimate() does).
        frame_field, _ = est.estimate(cur, ref)
        # Blocks away from the left border have converged to the truth.
        assert frame_field.get(1, 3) == MotionVector(12, 0)
        assert frame_field.get(1, 4) == MotionVector(12, 0)

    def test_temporal_predictor_used(self):
        ref = textured_plane(48, 64, seed=43)
        cur = shifted_plane(ref, 0, -5)  # true mv (+5, 0): beyond descent
        prev = MotionField.zeros(3, 4)
        for r, c, _ in prev:
            prev.set(r, c, MotionVector(10, 0))  # perfect temporal hint
        est = PredictiveEstimator(p=15, half_pel=False, refine_steps=1)
        result = est.search_block(context(cur, ref, 1, 1, prev=prev))
        assert result.mv == MotionVector(10, 0)

    def test_refine_steps_zero_keeps_predictor(self):
        ref = textured_plane(48, 64, seed=44)
        cur = shifted_plane(ref, 0, -1)
        est = PredictiveEstimator(p=15, half_pel=False, refine_steps=0)
        result = est.search_block(context(cur, ref, 1, 1))
        # Only the zero predictor is available; no descent happens.
        assert result.mv == MotionVector.zero()

    def test_invalid_refine_steps(self):
        with pytest.raises(ValueError):
            PredictiveEstimator(refine_steps=-1)

    def test_positions_far_below_fsbm(self):
        ref = textured_plane(48, 64, seed=45)
        cur = shifted_plane(ref, 1, 1)
        est = PredictiveEstimator(p=15)
        _, stats = est.estimate(cur, ref)
        assert stats.avg_positions_per_block < 60
        assert stats.full_search_fraction == 0.0

    def test_half_pel_vector_possible(self):
        from repro.me.subpel import half_pel_block

        ref = textured_plane(48, 64, seed=46)
        cur = ref.copy()
        cur[16:32, 16:32] = half_pel_block(ref, 32, 33, 16, 16)
        est = PredictiveEstimator(p=4, half_pel=True)
        result = est.search_block(context(cur, ref, 1, 1))
        assert result.mv == MotionVector(1, 0)
        assert result.sad == 0

    def test_predictor_clamped_into_window(self):
        """A huge temporal predictor near the frame border must clamp,
        not crash."""
        ref = textured_plane(48, 64, seed=47)
        prev = MotionField.zeros(3, 4)
        prev.set(0, 0, MotionVector(30, 30))
        est = PredictiveEstimator(p=15, half_pel=False)
        result = est.search_block(context(ref, ref, 0, 0, prev=prev))
        assert result.mv == MotionVector.zero()  # clamp then descend home
