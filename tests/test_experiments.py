"""Tests for the experiment harnesses (config, Fig. 4, RD sweep, Table 1).

These run on reduced workloads (few frames, small Qp grids) but through
the full production code paths.
"""

import numpy as np
import pytest

from repro.experiments.config import PAPER_QPS, PAPER_SEQUENCES, ExperimentConfig
from repro.experiments.fig4_characterization import (
    DEFAULT_GLOBAL_MOTIONS,
    default_world,
    run_fig4,
)
from repro.experiments.rd_curves import run_rd_sweep
from repro.experiments.table1_complexity import (
    Table1Result,
    fsbm_reference_positions,
    run_table1,
)
from repro.video.frame import FrameGeometry


class TestConfig:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.qps == PAPER_QPS == (30, 28, 26, 24, 22, 20, 18, 16)
        assert config.sequences == PAPER_SEQUENCES
        assert config.p == 15
        assert config.acbm_params.alpha == 1000.0

    def test_subsample_factors(self):
        config = ExperimentConfig()
        assert config.subsample_factor(30) == 1
        assert config.subsample_factor(10) == 3

    def test_unknown_fps_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(fps_list=(25,))

    def test_too_few_frames_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(frames=2)

    def test_quick_preset_valid(self):
        config = ExperimentConfig.quick()
        assert config.frames >= 4


class TestFsbmReference:
    def test_paper_constant(self):
        assert fsbm_reference_positions(15) == 969

    def test_general_formula(self):
        assert fsbm_reference_positions(7) == 15 * 15 + 8

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            fsbm_reference_positions(0)


SMALL_GEOMETRY = FrameGeometry(96, 80)
SMALL_MOTIONS = ((1, 0), (-2, 1), (3, -2), (-5, 4))


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(motions=SMALL_MOTIONS, geometry=SMALL_GEOMETRY, p=7, seed=3)

    def test_observation_count(self, result):
        blocks = (96 // 16) * (80 // 16)
        assert len(result.observations) == blocks * len(SMALL_MOTIONS)

    def test_error_classes_capped_at_five(self, result):
        assert all(0 <= o.error_class <= 5 for o in result.observations)

    def test_true_vectors_exist(self, result):
        assert result.true_fraction() > 0.3

    def test_paper_conclusion_texture_implies_truth(self, result):
        """The paper's first Fig. 4 conclusion, in conditional form:
        high-textured blocks are *more likely* to carry true vectors."""
        obs = result.observations
        median = np.median([o.intra_sad for o in obs])
        high = [o for o in obs if o.intra_sad > median]
        low = [o for o in obs if o.intra_sad <= median]
        p_true_high = sum(o.error_class == 0 for o in high) / len(high)
        p_true_low = sum(o.error_class == 0 for o in low) / len(low)
        assert p_true_high > p_true_low

    def test_paper_conclusion_true_vectors_have_high_sad_deviation(self, result):
        """Second Fig. 4 conclusion: error-0 blocks exhibit larger
        SAD_deviation than erroneous ones."""
        means = result.class_means()
        wrong = [cls for cls in means if cls > 0]
        assert wrong, "the rig should produce some erroneous blocks"
        mean_wrong_dev = np.mean([means[c][1] for c in wrong])
        assert means[0][1] > mean_wrong_dev

    def test_interior_blocks_all_true(self, result):
        """Away from the clamped borders, FSBM recovers every commanded
        global vector exactly — the rig's internal consistency check."""
        rows = 80 // 16
        cols = 96 // 16
        inner = [
            o for o in result.observations
            if 0 < o.mb_row < rows - 1 and 0 < o.mb_col < cols - 1
        ]
        assert inner
        assert all(o.error_class == 0 for o in inner)

    def test_scatter_arrays_match_counts(self, result):
        counts = result.class_counts()
        for cls, count in counts.items():
            isad, dev = result.scatter(cls)
            assert len(isad) == len(dev) == count

    def test_as_text_renders(self, result):
        text = result.as_text()
        assert "error=0" in text
        assert "Intra_SAD" in text

    def test_motion_outside_window_rejected(self):
        with pytest.raises(ValueError):
            run_fig4(motions=((20, 0),), geometry=SMALL_GEOMETRY, p=7)

    def test_default_motions_within_paper_window(self):
        assert all(max(abs(dx), abs(dy)) <= 15 for dx, dy in DEFAULT_GLOBAL_MOTIONS)
        assert len(DEFAULT_GLOBAL_MOTIONS) == 9  # ten frames, nine vectors

    def test_default_world_regimes(self):
        world = default_world(SMALL_GEOMETRY, margin=16, seed=0)
        assert world.shape == (80 + 32, 96 + 32)
        assert world.min() >= 0.0 and world.max() <= 255.0


QUICK = ExperimentConfig(
    sequences=("miss_america", "foreman"),
    qps=(30, 16),
    fps_list=(30,),
    frames=4,
)


class TestRDSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_rd_sweep(QUICK, estimators=("acbm", "pbm"))

    def test_cell_count(self, sweep):
        assert len(sweep.cells) == 2 * 2 * 2  # seq x est x qp

    def test_curve_accessors(self, sweep):
        curve = sweep.curve("foreman", 30, "acbm")
        assert len(curve) == 2

    def test_figure_grouping(self, sweep):
        fig = sweep.figure(30)
        assert set(fig) == {"miss_america", "foreman"}
        assert set(fig["foreman"]) == {"acbm", "pbm"}

    def test_missing_cell_raises(self, sweep):
        with pytest.raises(ValueError):
            sweep.curve("carphone", 30, "acbm")
        with pytest.raises(ValueError):
            sweep.figure(10)

    def test_acbm_positions_lookup(self, sweep):
        positions = sweep.acbm_positions("foreman", 30, 16)
        assert positions > 0

    def test_rate_decreases_with_qp(self, sweep):
        for cell_qp30 in sweep.cells:
            if cell_qp30.qp != 30:
                continue
            match = [
                c for c in sweep.cells
                if c.qp == 16 and c.sequence == cell_qp30.sequence
                and c.estimator == cell_qp30.estimator
            ][0]
            assert match.rate_kbps > cell_qp30.rate_kbps

    def test_as_text(self, sweep):
        text = sweep.as_text(30)
        assert "foreman" in text and "acbm" in text

    def test_progress_callback_invoked(self):
        messages = []
        tiny = ExperimentConfig(
            sequences=("miss_america",), qps=(30,), fps_list=(30,), frames=4
        )
        run_rd_sweep(tiny, estimators=("pbm",), progress=messages.append)
        assert messages == ["miss_america@30fps pbm qp=30"]


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        config = ExperimentConfig(
            sequences=("miss_america", "foreman"), qps=(30, 16), fps_list=(30,), frames=4
        )
        return run_table1(config)

    def test_columns_and_cells(self, table):
        assert isinstance(table, Table1Result)
        assert set(table.columns) == {("miss_america", 30), ("foreman", 30)}
        assert table.cell("foreman", 30, 16) > 0

    def test_reduction_vs_fsbm(self, table):
        assert 0.0 < table.reduction("miss_america", 30, 30) <= 1.0

    def test_qp_monotonicity(self, table):
        """Positions grow as Qp shrinks — Table 1's row trend."""
        for key in table.columns:
            seq, fps = key
            assert table.cell(seq, fps, 16) >= table.cell(seq, fps, 30)

    def test_sequence_ordering(self, table):
        assert table.sequence_mean("miss_america") < table.sequence_mean("foreman")

    def test_as_text(self, table):
        text = table.as_text()
        assert "969" in text
        assert "Qp" in text

    def test_missing_cell_raises(self, table):
        with pytest.raises(ValueError):
            table.cell("carphone", 30, 16)

    def test_reuses_existing_sweep(self, table):
        config = ExperimentConfig(
            sequences=("miss_america",), qps=(30,), fps_list=(30,), frames=4
        )
        sweep = run_rd_sweep(config, estimators=("acbm",))
        result = run_table1(config, sweep=sweep)
        assert result.cell("miss_america", 30, 30) == sweep.acbm_positions(
            "miss_america", 30, 30
        )
