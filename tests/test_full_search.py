"""Unit tests for repro.me.full_search (FSBM)."""

import numpy as np
import pytest

from repro.me.estimator import BlockContext
from repro.me.full_search import FullSearchEstimator, full_search_sads, select_minimum
from repro.me.metrics import sad
from repro.me.types import MotionField, MotionVector

from .conftest import shifted_plane, textured_plane


def context(cur, ref, r=1, c=1, qp=16, block_size=16):
    rows = cur.shape[0] // block_size
    cols = cur.shape[1] // block_size
    return BlockContext(cur, ref, r, c, block_size, MotionField(rows, cols), None, qp)


class TestFullSearchSads:
    def test_shape_matches_window(self):
        ref = textured_plane(48, 64)
        sads, window = full_search_sads(ref, ref, 16, 16, 16, p=7)
        assert sads.shape == (window.dy_max - window.dy_min + 1, window.dx_max - window.dx_min + 1)

    def test_interior_full_count(self):
        ref = textured_plane(96, 96)
        sads, window = full_search_sads(ref, ref, 40, 40, 16, p=15)
        assert window.num_positions == 961
        assert sads.size == 961

    def test_values_match_direct_sad(self):
        ref = textured_plane(48, 64, seed=30)
        cur = textured_plane(48, 64, seed=31)
        sads, window = full_search_sads(cur, ref, 16, 16, 16, p=3)
        block = cur[16:32, 16:32]
        for i, dy in enumerate(range(window.dy_min, window.dy_max + 1)):
            for j, dx in enumerate(range(window.dx_min, window.dx_max + 1)):
                assert sads[i, j] == sad(block, ref[16 + dy : 32 + dy, 16 + dx : 32 + dx])


class TestSelectMinimum:
    def test_picks_global_minimum(self):
        ref = textured_plane(64, 64, seed=32)
        cur = shifted_plane(ref, 2, -3)  # true mv = (+3, -2) px
        sads, window = full_search_sads(cur, ref, 32, 32, 16, p=7)
        mv, best = select_minimum(sads, window)
        assert mv == MotionVector(6, -4)
        assert best == int(sads.min())

    def test_tiebreak_shortest_vector(self):
        flat = np.full((64, 64), 55, dtype=np.uint8)
        sads, window = full_search_sads(flat, flat, 32, 32, 16, p=5)
        mv, best = select_minimum(sads, window)
        assert mv == MotionVector.zero()
        assert best == 0


class TestFullSearchEstimator:
    def test_registered_name(self):
        assert FullSearchEstimator().name == "fsbm"

    def test_recovers_global_translation(self):
        ref = textured_plane(64, 80, seed=33)
        cur = shifted_plane(ref, 1, 2)  # content moved (+1, +2)
        est = FullSearchEstimator(p=7, half_pel=False)
        field, stats = est.estimate(cur, ref)
        # Interior blocks must all see mv = (-2, -1) px.
        assert field.get(1, 1) == MotionVector(-4, -2)
        assert field.get(2, 3) == MotionVector(-4, -2)

    def test_positions_969_interior(self):
        """The paper's FSBM reference count: 961 integer + 8 half-pel."""
        ref = textured_plane(96, 96, seed=34)
        est = FullSearchEstimator(p=15, half_pel=True)
        result = est.search_block(context(ref, ref, r=2, c=2))
        assert result.positions == 969
        assert result.used_full_search

    def test_positions_clipped_at_corner(self):
        ref = textured_plane(96, 96, seed=35)
        est = FullSearchEstimator(p=15, half_pel=True)
        result = est.search_block(context(ref, ref, r=0, c=0))
        # 16x16 window (displacements 0..15 each axis) + 3 half-pel.
        assert result.positions == 16 * 16 + 3

    def test_half_pel_motion_recovered(self):
        from repro.me.subpel import half_pel_block

        ref = textured_plane(64, 64, seed=36)
        cur = ref.copy()
        # Plant a half-pel-shifted copy at block (1, 1).
        cur[16:32, 16:32] = half_pel_block(ref, 32, 33, 16, 16)
        est = FullSearchEstimator(p=4, half_pel=True)
        result = est.search_block(context(cur, ref))
        assert result.mv == MotionVector(1, 0)
        assert result.sad == 0

    def test_half_pel_off_gives_integer_vector(self):
        ref = textured_plane(48, 64, seed=37)
        est = FullSearchEstimator(p=4, half_pel=False)
        result = est.search_block(context(ref, ref))
        assert result.mv.is_integer_pel
        assert result.positions == 81

    def test_estimate_full_frame(self):
        ref = textured_plane(48, 64, seed=38)
        cur = shifted_plane(ref, 0, 1)
        est = FullSearchEstimator(p=3, half_pel=False)
        field, stats = est.estimate(cur, ref)
        assert field.is_complete
        assert stats.blocks == 12
        assert stats.full_search_fraction == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FullSearchEstimator(p=0)
        with pytest.raises(ValueError):
            FullSearchEstimator(block_size=0)

    def test_estimate_shape_mismatch(self):
        est = FullSearchEstimator(p=2)
        with pytest.raises(ValueError):
            est.estimate(np.zeros((48, 64), dtype=np.uint8), np.zeros((48, 48), dtype=np.uint8))
