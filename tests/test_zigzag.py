"""Unit tests for repro.codec.zigzag."""

import numpy as np
import pytest

from repro.codec.zigzag import (
    CoefficientEvent,
    ZIGZAG_INDEX,
    block_to_events,
    events_to_block,
    scan,
    unscan,
)


class TestScanOrder:
    def test_starts_at_dc_and_first_antidiagonal(self):
        # Classic zig-zag: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2), ...
        assert ZIGZAG_INDEX[:6].tolist() == [0, 1, 8, 16, 9, 2]

    def test_ends_at_bottom_right(self):
        assert ZIGZAG_INDEX[-1] == 63

    def test_is_permutation(self):
        assert sorted(ZIGZAG_INDEX.tolist()) == list(range(64))

    def test_scan_unscan_inverse(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-50, 50, (8, 8))
        np.testing.assert_array_equal(unscan(scan(block)), block)

    def test_scan_wrong_shape(self):
        with pytest.raises(ValueError):
            scan(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            unscan(np.zeros(32))


class TestCoefficientEvent:
    def test_zero_level_rejected(self):
        with pytest.raises(ValueError):
            CoefficientEvent(last=False, run=0, level=0)

    def test_run_range(self):
        with pytest.raises(ValueError):
            CoefficientEvent(last=False, run=64, level=1)
        with pytest.raises(ValueError):
            CoefficientEvent(last=False, run=-1, level=1)


class TestBlockToEvents:
    def test_empty_block(self):
        assert block_to_events(np.zeros((8, 8), dtype=np.int64)) == []

    def test_single_dc(self):
        block = np.zeros((8, 8), dtype=np.int64)
        block[0, 0] = 5
        events = block_to_events(block)
        assert events == [CoefficientEvent(last=True, run=0, level=5)]

    def test_runs_counted(self):
        block = np.zeros((8, 8), dtype=np.int64)
        block[0, 0] = 3   # scan position 0
        block[1, 0] = -2  # scan position 2 → run of 1 after position 0
        events = block_to_events(block)
        assert events == [
            CoefficientEvent(last=False, run=0, level=3),
            CoefficientEvent(last=True, run=1, level=-2),
        ]

    def test_skip_first_omits_dc(self):
        block = np.zeros((8, 8), dtype=np.int64)
        block[0, 0] = 99  # must be ignored
        block[0, 1] = 4   # scan position 1 → run 0 after skipping DC
        events = block_to_events(block, skip_first=1)
        assert events == [CoefficientEvent(last=True, run=0, level=4)]

    def test_last_flag_on_final_event_only(self):
        rng = np.random.default_rng(1)
        block = rng.integers(-3, 4, (8, 8))
        events = block_to_events(block)
        if events:
            assert all(not e.last for e in events[:-1])
            assert events[-1].last


class TestRoundTrip:
    @pytest.mark.parametrize("skip_first", [0, 1])
    def test_events_to_block_inverse(self, skip_first):
        rng = np.random.default_rng(2)
        for _ in range(20):
            block = rng.integers(-5, 6, (8, 8))
            if skip_first:
                block[0, 0] = 0
            events = block_to_events(block, skip_first=skip_first)
            if not events:
                continue
            back = events_to_block(events, skip_first=skip_first)
            np.testing.assert_array_equal(back, block)

    def test_empty_events_give_zero_block(self):
        np.testing.assert_array_equal(events_to_block([]), np.zeros((8, 8)))

    def test_bad_last_placement_rejected(self):
        events = [
            CoefficientEvent(last=True, run=0, level=1),
            CoefficientEvent(last=True, run=0, level=1),
        ]
        with pytest.raises(ValueError, match="LAST"):
            events_to_block(events)

    def test_overflow_rejected(self):
        events = [CoefficientEvent(last=False, run=63, level=1),
                  CoefficientEvent(last=True, run=10, level=1)]
        with pytest.raises(ValueError, match="overflow"):
            events_to_block(events)
