"""Unit tests for repro.analysis.motion_field."""

import numpy as np
import pytest

from repro.analysis.motion_field import (
    error_map,
    field_entropy_bits,
    field_smoothness,
    mean_vector,
)
from repro.me.types import MotionField, MotionVector


def uniform_field(rows, cols, hx, hy):
    field = MotionField(rows, cols)
    for r, c, _ in field:
        field.set(r, c, MotionVector(hx, hy))
    return field


class TestSmoothness:
    def test_uniform_field_is_perfectly_smooth(self):
        assert field_smoothness(uniform_field(3, 4, 6, -2)) == 0.0

    def test_single_cell_field(self):
        assert field_smoothness(uniform_field(1, 1, 4, 4)) == 0.0

    def test_checkerboard_is_rough(self):
        field = MotionField(2, 2)
        for r, c, _ in field:
            field.set(r, c, MotionVector(10 if (r + c) % 2 else -10, 0))
        assert field_smoothness(field) == pytest.approx(20.0)

    def test_ramp_field(self):
        field = MotionField(1, 4)
        for c in range(4):
            field.set(0, c, MotionVector(2 * c, 0))
        assert field_smoothness(field) == pytest.approx(2.0)


class TestEntropy:
    def test_uniform_field_near_zero_entropy(self):
        """Only the first block (zero predictor) emits a non-zero MVD,
        so entropy is small but not exactly zero."""
        assert field_entropy_bits(uniform_field(4, 4, 8, 8)) < 0.4
        assert field_entropy_bits(MotionField.zeros(4, 4)) == pytest.approx(0.0, abs=1e-9)

    def test_random_field_high_entropy(self):
        rng = np.random.default_rng(0)
        field = MotionField(4, 6)
        for r, c, _ in field:
            field.set(r, c, MotionVector(int(rng.integers(-15, 16)), int(rng.integers(-15, 16))))
        assert field_entropy_bits(field) > 3.0

    def test_incomplete_field_rejected(self):
        with pytest.raises(ValueError):
            field_entropy_bits(MotionField(2, 2))


class TestErrorMap:
    def test_exact_field_all_zero(self):
        field = uniform_field(3, 3, 6, -4)
        errors = error_map(field, MotionVector(6, -4))
        assert (errors == 0).all()

    def test_chebyshev_in_pixels(self):
        field = uniform_field(1, 1, 6, 0)
        assert error_map(field, MotionVector(0, 0))[0, 0] == 3
        assert error_map(field, MotionVector(4, 0))[0, 0] == 1

    def test_half_pel_error_truncates_to_zero(self):
        field = uniform_field(1, 1, 1, 0)  # off by 0.5 px
        assert error_map(field, MotionVector(0, 0))[0, 0] == 0


class TestMeanVector:
    def test_uniform(self):
        assert mean_vector(uniform_field(2, 2, 6, -4)) == (3.0, -2.0)

    def test_mixed(self):
        field = MotionField(1, 2)
        field.set(0, 0, MotionVector(0, 0))
        field.set(0, 1, MotionVector(4, 8))
        assert mean_vector(field) == (1.0, 2.0)
