"""Unit tests for repro.codec.dct."""

import numpy as np
import pytest

from repro.codec.dct import dct_matrix, forward_dct, inverse_dct


class TestDctMatrix:
    def test_orthonormal(self):
        c = dct_matrix()
        np.testing.assert_allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_first_row_constant(self):
        c = dct_matrix()
        np.testing.assert_allclose(c[0], np.full(8, np.sqrt(1 / 8)))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            dct_matrix(0)


class TestForwardInverse:
    def test_round_trip_identity(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(0, 50, (10, 8, 8))
        np.testing.assert_allclose(inverse_dct(forward_dct(blocks)), blocks, atol=1e-9)

    def test_constant_block_concentrates_in_dc(self):
        block = np.full((8, 8), 100.0)
        coefficients = forward_dct(block)
        assert coefficients[0, 0] == pytest.approx(800.0)  # 8 * mean
        assert np.abs(coefficients).sum() == pytest.approx(800.0)

    def test_parseval_energy_preserved(self):
        rng = np.random.default_rng(1)
        block = rng.normal(0, 30, (8, 8))
        coefficients = forward_dct(block)
        assert (coefficients**2).sum() == pytest.approx((block**2).sum())

    def test_horizontal_cosine_maps_to_single_coefficient(self):
        i = np.arange(8)
        basis = np.cos((2 * i + 1) * 3 * np.pi / 16)  # k = 3
        block = np.tile(basis, (8, 1))
        coefficients = forward_dct(block)
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 3] = True
        assert np.abs(coefficients[~mask]).max() < 1e-12
        assert abs(coefficients[0, 3]) > 1.0

    def test_batched_shapes(self):
        blocks = np.zeros((3, 5, 8, 8))
        assert forward_dct(blocks).shape == (3, 5, 8, 8)

    def test_wrong_tail_shape_rejected(self):
        with pytest.raises(ValueError):
            forward_dct(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_dct(np.zeros((8, 7)))

    def test_linearity(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        np.testing.assert_allclose(
            forward_dct(a + 2 * b), forward_dct(a) + 2 * forward_dct(b), atol=1e-12
        )
