"""Decoder round-trip tests — the codec's strongest invariant.

The decoder must reconstruct, bit-exactly, the frames the encoder's
internal loop produced.  Any asymmetry in quantizer rounding, VLC
tables, MV prediction or half-pel interpolation breaks these.
"""

import numpy as np
import pytest

from repro.codec.decoder import Decoder, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.video.frame import Frame, FrameGeometry
from repro.video.sequence import Sequence
from repro.video.synthesis.sequences import make_sequence

from .conftest import shifted_plane, textured_plane


def moving_sequence(n=4, seed=110, dx=2, with_chroma=True):
    base_y = textured_plane(48, 64, seed=seed)
    base_cb = textured_plane(24, 32, seed=seed + 1, amplitude=25.0)
    base_cr = textured_plane(24, 32, seed=seed + 2, amplitude=25.0)
    frames = []
    for i in range(n):
        y = shifted_plane(base_y, 0, dx * i)
        cb = shifted_plane(base_cb, 0, dx * i // 2) if with_chroma else None
        cr = shifted_plane(base_cr, 0, dx * i // 2) if with_chroma else None
        frames.append(Frame(y, cb, cr, index=i))
    return Sequence(frames, fps=30, name="rt")


@pytest.mark.parametrize("estimator", ["pbm", "fsbm", "acbm", "ds"])
def test_round_trip_exact_per_estimator(estimator):
    seq = moving_sequence(3)
    result = encode_sequence(
        seq, qp=10, estimator=estimator,
        estimator_kwargs={"p": 7}, keep_reconstruction=True,
    )
    decoded = decode_bitstream(result.bitstream)
    assert len(decoded) == 3
    for dec, ref in zip(decoded, result.reconstruction):
        assert dec == ref


@pytest.mark.parametrize("qp", [1, 2, 9, 16, 31])
def test_round_trip_across_qp_ladder(qp):
    seq = moving_sequence(2)
    result = encode_sequence(seq, qp=qp, estimator="pbm", keep_reconstruction=True)
    decoded = decode_bitstream(result.bitstream)
    for dec, ref in zip(decoded, result.reconstruction):
        assert dec == ref


def test_round_trip_on_synthetic_preset():
    seq = make_sequence("carphone", frames=3)
    result = encode_sequence(seq, qp=14, estimator="acbm", keep_reconstruction=True)
    decoded = decode_bitstream(result.bitstream)
    for dec, ref in zip(decoded, result.reconstruction):
        assert dec == ref


def test_decode_frame_limit():
    seq = moving_sequence(4)
    result = encode_sequence(seq, qp=12, estimator="pbm")
    decoded = decode_bitstream(result.bitstream, frames=2)
    assert len(decoded) == 2


def test_decoder_rejects_corrupt_start_code():
    seq = moving_sequence(2)
    result = encode_sequence(seq, qp=12, estimator="pbm")
    corrupted = bytes([result.bitstream[0] ^ 0xFF]) + result.bitstream[1:]
    with pytest.raises(ValueError, match="start code"):
        Decoder(corrupted).decode_frame()


def test_decoder_requires_reference_for_p_frame():
    """A hand-built stream that opens with a P-frame header must be
    rejected: there is no reference to predict from."""
    from repro.codec.bitstream import BitWriter
    from repro.codec.encoder import START_CODE, START_CODE_BITS

    writer = BitWriter()
    writer.write_bits(START_CODE, START_CODE_BITS)
    writer.write_bit(1)       # P-frame
    writer.write_bits(12, 5)  # qp
    writer.write_bits(15, 5)  # p
    writer.write_bits(3, 8)   # mb_rows
    writer.write_bits(4, 8)   # mb_cols
    with pytest.raises(ValueError, match="reference"):
        Decoder(writer.getvalue()).decode_frame()


def test_half_pel_vectors_survive_round_trip():
    """Force half-pel motion (0.5 px/frame) and verify exactness."""
    from repro.me.subpel import half_pel_block

    base = textured_plane(48, 64, seed=111)
    second = np.empty_like(base)
    # Whole frame at half-pel offset (interior exact, border replicated).
    second[:, :] = base
    second[:48, : 64 - 1] = half_pel_block(base, 0, 1, 48, 63)
    seq = Sequence([Frame(base, index=0), Frame(second, index=1)], fps=30)
    result = encode_sequence(seq, qp=8, estimator="fsbm",
                             estimator_kwargs={"p": 3}, keep_reconstruction=True)
    decoded = decode_bitstream(result.bitstream)
    for dec, ref in zip(decoded, result.reconstruction):
        assert dec == ref
