"""Golden tests for the shared-memory transport layer (:mod:`repro.transport`).

The contracts under test:

* **arena lifetime** — :class:`FrameArena` hands out handles whose
  segments live exactly as long as the refcounts (sealed slabs) or the
  arena (open slabs) say, ``close()`` is idempotent and total, and no
  ``/dev/shm`` entry survives a ``with`` block — whatever was or
  wasn't released;
* **ownership transfer** — :func:`export` / :func:`materialize` move a
  value through one one-shot segment and leave ``/dev/shm`` clean;
* **typed sharing** — ``Frame``, whole ``Sequence`` renders
  (``SharedSequence``), bare arrays and ``ParsedPicture`` survive the
  handle round trip bit-identically, scalar skeletons pass through
  untouched, and the accounting (:func:`payload_bytes`,
  :func:`handle_count`) matches what actually moved — including nested
  Fig. 4 frame-pair tuples and sweep source lists;
* **render-once store** — :class:`FrameStore` places each distinct
  experiment source a single time and hands every caller the same
  handles.

Spawn-side attach-on-first-use is exercised end to end by the
``use_shm`` pool tests in ``tests/test_parallel.py`` — these tests stay
in-process.
"""

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.decoder import FrameIndex
from repro.codec.encoder import encode_sequence
from repro.streaming.pipeline import parse_payload
from repro.transport import (
    FrameArena,
    FrameHandle,
    FrameStore,
    SharedSequence,
    attach_array,
    detach_segment,
    export,
    export_segment,
    handle_count,
    materialize,
    payload_bytes,
    read_array,
    share,
    unlink_segment,
)
from repro.video.frame import Frame, FrameGeometry
from repro.video.sequence import Sequence

SMALL = FrameGeometry(32, 32)


def shm_entries(prefix: str) -> list[str]:
    """Live ``/dev/shm`` segments under ``prefix`` (the leak sweep)."""
    return sorted(glob.glob(f"/dev/shm/{prefix}*"))


def random_frame(seed=0, geometry=SMALL, index=0) -> Frame:
    rng = np.random.default_rng(seed)
    ch, cw = geometry.chroma_height, geometry.chroma_width
    return Frame(
        rng.integers(0, 256, (geometry.height, geometry.width), dtype=np.uint8),
        rng.integers(0, 256, (ch, cw), dtype=np.uint8),
        rng.integers(0, 256, (ch, cw), dtype=np.uint8),
        index=index,
    )


@pytest.fixture(scope="module")
def parsed_pictures():
    """One intra and one inter ParsedPicture off a real v2 stream."""
    clip = Sequence([random_frame(seed=i, index=i) for i in range(3)], fps=30, name="tx")
    encode = encode_sequence(clip, qp=18, estimator="tss", bitstream_version=2)
    index = FrameIndex.scan(encode.bitstream)
    return [parse_payload(index.payload(encode.bitstream, i)) for i in range(len(index))]


# -- handles ---------------------------------------------------------------


class TestFrameHandle:
    def test_nbytes(self):
        assert FrameHandle("seg", 0, (4, 5), "<i2").nbytes == 40
        assert FrameHandle("seg", 64, (), "<f8").nbytes == 8
        assert FrameHandle("seg", 0, (0, 3), "|u1").nbytes == 0

    def test_pickle_is_small_and_payload_independent(self):
        import pickle

        tiny = FrameHandle("repro-x", 0, (2, 2), "|u1")
        huge = FrameHandle("repro-x", 0, (4096, 4096), "<f8")
        # A few bytes of integer-width variance, never payload bytes.
        assert len(pickle.dumps(huge)) <= len(pickle.dumps(tiny)) + 8
        assert len(pickle.dumps(huge)) < 200


# -- the arena -------------------------------------------------------------


class TestFrameArena:
    def test_place_and_read_round_trip(self):
        arr = np.arange(24, dtype=np.int16).reshape(4, 6)
        with FrameArena(name_prefix="repro-t-rt") as arena:
            handle = arena.place(arr)
            out = read_array(handle)
            assert out.dtype == arr.dtype and out.shape == arr.shape
            np.testing.assert_array_equal(out, arr)
        assert not shm_entries("repro-t-rt")

    def test_bytes_place_as_uint8(self):
        with FrameArena(name_prefix="repro-t-bytes") as arena:
            handle = arena.place(b"\x00\x01\xfe\xff")
            assert handle.shape == (4,) and np.dtype(handle.dtype) == np.uint8
            assert read_array(handle).tobytes() == b"\x00\x01\xfe\xff"

    def test_placements_are_aligned(self):
        with FrameArena(name_prefix="repro-t-align") as arena:
            offsets = [arena.place(np.zeros(13, dtype=np.uint8)).offset for _ in range(5)]
        assert all(offset % 64 == 0 for offset in offsets)
        assert len(set(offsets)) == 5  # bump allocation, no overlap

    def test_oversized_array_gets_dedicated_segment(self):
        big = np.arange(4096, dtype=np.uint8)
        with FrameArena(slab_bytes=1024, name_prefix="repro-t-big") as arena:
            small = arena.place(np.zeros(8, dtype=np.uint8))
            handle = arena.place(big)
            assert handle.segment != small.segment
            np.testing.assert_array_equal(read_array(handle), big)
        assert not shm_entries("repro-t-big")

    def test_release_refcounts_sealed_segments(self):
        """Filling a slab seals it; the sealed slab dies with its last
        handle while the still-open slab lives until close()."""
        with FrameArena(slab_bytes=256, name_prefix="repro-t-refs") as arena:
            first = arena.place(np.zeros(200, dtype=np.uint8))
            second = arena.place(np.zeros(200, dtype=np.uint8))  # seals slab 1
            assert arena.open_segments == 2
            assert arena.outstanding_handles == 2
            arena.release(first)  # sealed slab, last ref → destroyed now
            assert arena.open_segments == 1
            assert not glob.glob(f"/dev/shm/{first.segment}")
            arena.release(second)  # open slab → survives for allocation
            assert arena.open_segments == 1
            assert arena.outstanding_handles == 0
        assert not shm_entries("repro-t-refs")

    def test_over_release_raises(self):
        with FrameArena(name_prefix="repro-t-over") as arena:
            handle = arena.place(np.zeros(4, dtype=np.uint8))
            arena.release(handle)
            with pytest.raises(ValueError, match="more times than placed"):
                arena.release(handle)

    def test_release_of_foreign_handle_raises(self):
        with FrameArena(name_prefix="repro-t-foreign") as arena:
            with pytest.raises(ValueError, match="not .*owned by this arena"):
                arena.release(FrameHandle("repro-nowhere-0", 0, (1,), "|u1"))

    def test_close_idempotent_and_place_after_close_raises(self):
        arena = FrameArena(name_prefix="repro-t-closed")
        arena.place(np.zeros(4, dtype=np.uint8))
        arena.close()
        arena.close()  # no-op, no raise
        assert arena.open_segments == 0
        assert not shm_entries("repro-t-closed")
        with pytest.raises(ValueError, match="close"):
            arena.place(np.zeros(4, dtype=np.uint8))

    def test_close_unlinks_unreleased_segments(self):
        """The teardown guarantee: handles never released still die
        with the arena — nothing leaks from an abandoned run."""
        arena = FrameArena(slab_bytes=128, name_prefix="repro-t-abandon")
        for i in range(8):
            arena.place(np.full(100, i, dtype=np.uint8))
        assert arena.open_segments > 1
        assert shm_entries("repro-t-abandon")
        arena.close()
        assert not shm_entries("repro-t-abandon")

    def test_empty_array_placement(self):
        with FrameArena(name_prefix="repro-t-empty") as arena:
            handle = arena.place(np.zeros((0, 3), dtype=np.int32))
            assert handle.nbytes == 0
            assert read_array(handle).shape == (0, 3)

    def test_slab_bytes_validated(self):
        with pytest.raises(ValueError, match="slab_bytes"):
            FrameArena(slab_bytes=0)


class TestAttach:
    def test_attach_view_aliases_read_copy_owns(self):
        arr = np.arange(16, dtype=np.uint8)
        with FrameArena(name_prefix="repro-t-attach") as arena:
            handle = arena.place(arr)
            owned = read_array(handle)
            view = attach_array(handle)
            view[0] = 99  # mutate through the shared mapping
            assert attach_array(handle)[0] == 99  # view sees shared pages
            assert owned[0] == 0  # the copy took no lifetime along
            del view
            detach_segment(handle.segment)  # release mapping before unlink

    def test_detach_unknown_segment_is_noop(self):
        detach_segment("repro-never-created")


# -- ownership transfer ----------------------------------------------------


class TestExportSegment:
    def test_round_trip_single_segment_then_unlink(self):
        arrays = [
            np.arange(10, dtype=np.int32),
            np.zeros((2, 3), dtype=np.float64),
            np.array([], dtype=np.uint8),
        ]
        handles = export_segment(arrays, name_prefix="repro-t-tx")
        assert len({h.segment for h in handles}) == 1  # one segment per export
        assert shm_entries("repro-t-tx")
        for handle, arr in zip(handles, arrays):
            np.testing.assert_array_equal(read_array(handle), arr)
        unlink_segment(handles[0].segment)
        assert not shm_entries("repro-t-tx")

    def test_empty_export(self):
        assert export_segment([], name_prefix="repro-t-none") == []
        assert not shm_entries("repro-t-none")

    def test_unlink_is_idempotent(self):
        handles = export_segment([np.zeros(4, dtype=np.uint8)], name_prefix="repro-t-dbl")
        unlink_segment(handles[0].segment)
        unlink_segment(handles[0].segment)  # second unlink is a no-op
        assert not shm_entries("repro-t-dbl")


# -- typed sharing ---------------------------------------------------------


class TestShare:
    def test_frame_round_trip_via_arena(self):
        frame = random_frame(seed=3, index=7)
        with FrameArena(name_prefix="repro-t-frame") as arena:
            shared = share(frame, arena.place)
            assert handle_count(shared) == 3
            rebuilt = materialize(shared, unlink=False)  # arena owns lifetime
            assert rebuilt == frame and rebuilt.index == 7
        assert not shm_entries("repro-t-frame")

    def test_parsed_picture_round_trip_via_export(self, parsed_pictures):
        for parsed in parsed_pictures:
            shared = export(parsed, name_prefix="repro-t-parsed")
            assert handle_count(shared) == len(
                [a for a in (parsed.levels, parsed.dc_levels, parsed.hx, parsed.hy)
                 if a is not None]
            )
            assert materialize(shared, unlink=True) == parsed
        assert not shm_entries("repro-t-parsed")

    def test_intra_and_inter_shapes_covered(self, parsed_pictures):
        """The fixture really exercises both optional-member layouts."""
        intra, *inter = parsed_pictures
        assert intra.dc_levels is not None and intra.hx is None
        assert all(p.hx is not None and p.dc_levels is None for p in inter)

    def test_containers_recurse_preserving_type(self):
        frames = (random_frame(seed=1), [random_frame(seed=2)])
        with FrameArena(name_prefix="repro-t-nest") as arena:
            shared = share(frames, arena.place)
            assert isinstance(shared, tuple) and isinstance(shared[1], list)
            assert handle_count(shared) == 6
            rebuilt = materialize(shared, unlink=False)
        assert rebuilt[0] == frames[0] and rebuilt[1][0] == frames[1][0]

    def test_scalar_values_pass_through(self):
        for value in (3.5, "cell", None, (1, "two")):
            assert share(value, place=None) == value
            assert export(value) == value
            assert materialize(value) == value
            assert handle_count(value) == 0

    def test_payload_bytes_accounting(self):
        frame = random_frame()
        raw = 32 * 32 + 2 * 16 * 16
        assert payload_bytes(frame) == raw
        assert payload_bytes([frame, frame]) == 2 * raw
        assert payload_bytes(b"\x00" * 17) == 17
        assert payload_bytes("scalar") == 0

    def test_sequence_round_trip_via_arena(self):
        clip = Sequence(
            [random_frame(seed=i, index=i) for i in range(3)], fps=12.5, name="clip"
        )
        with FrameArena(name_prefix="repro-t-seq") as arena:
            shared = share(clip, arena.place)
            assert isinstance(shared, SharedSequence)
            assert shared.name == "clip" and shared.fps == 12.5
            assert handle_count(shared) == 9  # three planes per frame
            rebuilt = materialize(shared, unlink=False)
            assert isinstance(rebuilt, Sequence)
            assert rebuilt.name == clip.name and rebuilt.fps == clip.fps
            assert list(rebuilt) == list(clip)
        assert not shm_entries("repro-t-seq")

    def test_bare_array_round_trip(self):
        array = np.arange(64, dtype=np.uint8).reshape(8, 8)
        with FrameArena(name_prefix="repro-t-arr") as arena:
            shared = share(array, arena.place)
            assert isinstance(shared, FrameHandle)
            assert handle_count(shared) == 1
            np.testing.assert_array_equal(materialize(shared, unlink=False), array)
        assert not shm_entries("repro-t-arr")

    def test_payload_bytes_recurses_experiment_shapes(self):
        """The accounting covers what experiment specs actually carry:
        whole Sequence renders (sweep sources) and bare-array frame
        pairs (Fig. 4), nested inside ordinary containers."""
        per_frame = 32 * 32 + 2 * 16 * 16
        clip = Sequence([random_frame(seed=i) for i in range(2)], fps=30, name="s")
        pair = (
            np.zeros((8, 8), dtype=np.uint8),
            np.ones((8, 8), dtype=np.uint8),
        )
        assert payload_bytes(clip) == 2 * per_frame
        assert payload_bytes(pair) == 128
        assert payload_bytes([clip, pair, "label"]) == 2 * per_frame + 128


# -- the render-once store -------------------------------------------------


class TestFrameStore:
    def test_source_frames_rendered_once_and_identical(self):
        from repro.experiments.config import ExperimentConfig
        from repro.parallel.jobs import rendered_source

        config = ExperimentConfig(
            sequences=("miss_america",), qps=(16,), fps_list=(30,), frames=4
        )
        with FrameArena(name_prefix="repro-t-store") as arena:
            store = FrameStore(arena)
            first = store.source_frames("miss_america", config)
            second = store.source_frames("miss_america", config)
            assert first is second  # one render, one placement
            assert store.distinct_sources == 1
            rebuilt = materialize(first, unlink=False)
            assert list(rebuilt) == list(rendered_source("miss_america", config))
        assert not shm_entries("repro-t-store")

    def test_rig_frames_memoized_and_identical(self):
        from repro.experiments.fig4_characterization import rig_frames_cached

        motions = ((2, -1), (-3, 2))
        geometry = FrameGeometry(96, 80)
        with FrameArena(name_prefix="repro-t-rig") as arena:
            store = FrameStore(arena)
            first = store.rig_frames(motions, geometry, p=7, seed=3)
            second = store.rig_frames(motions, geometry, p=7, seed=3)
            assert first is second
            assert len(first) == len(motions) + 1
            assert store.distinct_sources == 1
            for handle, frame in zip(
                first, rig_frames_cached(motions, geometry, 7, 3)
            ):
                np.testing.assert_array_equal(read_array(handle), frame)
        assert not shm_entries("repro-t-rig")

    def test_place_delegates_to_arena(self):
        with FrameArena(name_prefix="repro-t-deleg") as arena:
            store = FrameStore(arena)
            handle = store.place(np.arange(6, dtype=np.int16))
            np.testing.assert_array_equal(
                read_array(handle), np.arange(6, dtype=np.int16)
            )
        assert not shm_entries("repro-t-deleg")


# -- property round trips --------------------------------------------------


class TestShareProperties:
    """Hypothesis round trips: whatever the dims and payloads, share →
    materialize is the identity and ``/dev/shm`` ends clean."""

    @given(
        seed=st.integers(0, 2**16),
        height=st.integers(4, 24),
        width=st.integers(4, 24),
    )
    @settings(max_examples=25, deadline=None)
    def test_fig4_frame_pair_round_trip(self, seed, height, width):
        rng = np.random.default_rng(seed)
        pair = (
            rng.integers(0, 256, (height, width), dtype=np.uint8),
            rng.integers(0, 256, (height, width), dtype=np.uint8),
        )
        shared = export(pair, name_prefix="repro-t-prop")
        assert handle_count(shared) == 2
        assert all(isinstance(h, FrameHandle) for h in shared)
        rebuilt = materialize(shared, unlink=True)
        assert isinstance(rebuilt, tuple)
        for original, copy in zip(pair, rebuilt):
            np.testing.assert_array_equal(copy, original)
        assert not shm_entries("repro-t-prop")

    @given(
        seeds=st.lists(st.integers(0, 2**16), min_size=1, max_size=3),
        fps=st.sampled_from([10.0, 15.0, 30.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_sweep_source_list_round_trip(self, seeds, fps):
        clips = [
            Sequence(
                [random_frame(seed=seed + i, index=i) for i in range(2)],
                fps=fps,
                name=f"clip{position}",
            )
            for position, seed in enumerate(seeds)
        ]
        with FrameArena(name_prefix="repro-t-prop") as arena:
            shared = share(clips, arena.place)
            assert isinstance(shared, list)
            assert all(isinstance(s, SharedSequence) for s in shared)
            assert handle_count(shared) == 6 * len(clips)
            rebuilt = materialize(shared, unlink=False)
            for original, copy in zip(clips, rebuilt):
                assert copy.name == original.name and copy.fps == original.fps
                assert list(copy) == list(original)
        assert not shm_entries("repro-t-prop")
