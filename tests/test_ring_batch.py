"""Golden tests for the batched first-ring driver and ACBM's lazy
per-frame SAD surface.

The contract: enabling the engine's ring batching (``use_engine=True``,
the default) changes **nothing observable** — motion fields, SADs,
position counts and classifier decisions are bit-identical to the seed
per-block path (``use_engine=False``) for all six fast searches and for
ACBM at any ``surface_threshold``.
"""

import numpy as np
import pytest

from repro.core.parameters import ACBMParameters
from repro.me.engine.kernels import frame_ring_sad
from repro.me.engine.reference_plane import ReferencePlane
from repro.me.estimator import create_estimator
from repro.me.metrics import sad
from repro.video.frame import FrameGeometry
from repro.video.synthesis.sequences import make_sequence

FAST_SEARCHES = ("tss", "ntss", "fss", "ds", "hexbs", "cds")
GEOMETRY = FrameGeometry(96, 80)


@pytest.fixture(scope="module")
def frame_pair():
    seq = make_sequence("foreman", frames=3, seed=1, geometry=GEOMETRY)
    return seq[0].y, seq[1].y


def fields_identical(a, b) -> bool:
    ahx, ahy = a.to_arrays()
    bhx, bhy = b.to_arrays()
    return bool(np.array_equal(ahx, bhx) and np.array_equal(ahy, bhy))


def stats_tuple(stats):
    return (stats.blocks, stats.positions, stats.full_search_blocks, stats.decisions)


class TestFrameRingSad:
    def test_matches_per_candidate_sad(self, frame_pair):
        ref, cur = frame_pair
        offsets = ((0, 0), (-2, 1), (3, -4), (8, 8), (-15, 0))
        out = frame_ring_sad(cur, ReferencePlane.wrap(ref), offsets, 16)
        rows, cols = GEOMETRY.height // 16, GEOMETRY.width // 16
        assert out.shape == (rows, cols, len(offsets))
        for r in range(rows):
            for c in range(cols):
                y, x = r * 16, c * 16
                for k, (dx, dy) in enumerate(offsets):
                    y0, x0 = y + dy, x + dx
                    inside = (
                        0 <= y0 <= GEOMETRY.height - 16 and 0 <= x0 <= GEOMETRY.width - 16
                    )
                    if inside:
                        expected = sad(
                            cur[y : y + 16, x : x + 16], ref[y0 : y0 + 16, x0 : x0 + 16]
                        )
                        assert out[r, c, k] == expected
                    else:
                        assert out[r, c, k] == -1

    def test_raw_reference_equivalent_to_plane(self, frame_pair):
        ref, cur = frame_pair
        offsets = ((0, 0), (1, 1), (-8, 3))
        assert np.array_equal(
            frame_ring_sad(cur, ref, offsets, 16),
            frame_ring_sad(cur, ReferencePlane.wrap(ref), offsets, 16),
        )

    def test_rejects_bad_inputs(self, frame_pair):
        ref, cur = frame_pair
        with pytest.raises(ValueError):
            frame_ring_sad(cur, ref[:, :-16], ((0, 0),), 16)
        with pytest.raises(ValueError):
            frame_ring_sad(cur, ref, (), 16)
        with pytest.raises(ValueError):
            frame_ring_sad(cur[:-1], ref[:-1], ((0, 0),), 16)


class TestFastSearchRingGolden:
    @pytest.mark.parametrize("name", FAST_SEARCHES)
    def test_bit_identical_to_per_block(self, frame_pair, name):
        ref, cur = frame_pair
        batched = create_estimator(name, p=15)
        seed_path = create_estimator(name, p=15, use_engine=False)
        field_b, stats_b = batched.estimate(cur, ref)
        field_s, stats_s = seed_path.estimate(cur, ref)
        assert fields_identical(field_b, field_s)
        assert stats_tuple(stats_b) == stats_tuple(stats_s)

    @pytest.mark.parametrize("name", FAST_SEARCHES)
    def test_first_ring_is_fixed_and_in_window(self, name):
        est = create_estimator(name, p=15)
        ring = est.first_ring()
        assert ring is not None and (0, 0) in ring
        assert len(ring) == len(set(ring))  # no duplicate gathers
        assert all(max(abs(dx), abs(dy)) <= 15 for dx, dy in ring)

    @pytest.mark.parametrize("name", ("tss", "ntss"))
    def test_small_p_ring_stays_in_window(self, frame_pair, name):
        """The step-derived rings shrink with p and stay bit-identical."""
        ref, cur = frame_pair
        batched = create_estimator(name, p=3)
        seed_path = create_estimator(name, p=3, use_engine=False)
        field_b, stats_b = batched.estimate(cur, ref)
        field_s, stats_s = seed_path.estimate(cur, ref)
        assert fields_identical(field_b, field_s)
        assert stats_tuple(stats_b) == stats_tuple(stats_s)


class TestACBMSurfaceGolden:
    @pytest.mark.parametrize(
        "params",
        [
            None,  # paper operating point
            ACBMParameters.always_full_search(),
            ACBMParameters.never_full_search(),
        ],
    )
    @pytest.mark.parametrize("threshold", [0, 3, 10**9])
    def test_bit_identical_for_any_threshold(self, frame_pair, params, threshold):
        ref, cur = frame_pair
        batched = create_estimator(
            "acbm", p=15, params=params, surface_threshold=threshold
        )
        seed_path = create_estimator("acbm", p=15, params=params, use_engine=False)
        field_b, stats_b = batched.estimate(cur, ref, qp=16)
        field_s, stats_s = seed_path.estimate(cur, ref, qp=16)
        assert fields_identical(field_b, field_s)
        assert stats_tuple(stats_b) == stats_tuple(stats_s)

    def test_surface_built_lazily(self, frame_pair):
        """Frames whose critical count stays at/below the threshold never
        pay the whole-frame surface; above it the surface is built once."""
        ref, cur = frame_pair
        calls = []
        est = create_estimator(
            "acbm", p=15, params=ACBMParameters.always_full_search(), surface_threshold=2
        )
        import repro.core.acbm as acbm_module

        original = acbm_module.frame_sad_surfaces

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        acbm_module.frame_sad_surfaces = counting
        try:
            est.estimate(cur, ref, qp=16)
            assert len(calls) == 1  # built once, shared by all later blocks
            calls.clear()
            lazy = create_estimator(
                "acbm",
                p=15,
                params=ACBMParameters.never_full_search(),
                surface_threshold=2,
            )
            lazy.estimate(cur, ref, qp=16)
            assert calls == []  # no critical block ever crossed the threshold
        finally:
            acbm_module.frame_sad_surfaces = original

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            create_estimator("acbm", surface_threshold=-1)
