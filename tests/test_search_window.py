"""Unit tests for repro.me.search_window."""

import pytest

from repro.me.search_window import SearchWindow, clamped_window, half_pel_window


class TestSearchWindow:
    def test_num_positions_full(self):
        w = SearchWindow(-15, 15, -15, 15)
        assert w.num_positions == 31 * 31  # 961: the paper's integer count

    def test_must_contain_zero(self):
        with pytest.raises(ValueError):
            SearchWindow(1, 5, -2, 2)
        with pytest.raises(ValueError):
            SearchWindow(-5, -1, -2, 2)

    def test_contains(self):
        w = SearchWindow(-2, 3, -1, 1)
        assert w.contains(0, 0)
        assert w.contains(-2, 1)
        assert not w.contains(-3, 0)
        assert not w.contains(0, 2)

    def test_clamp(self):
        w = SearchWindow(-2, 3, -1, 1)
        assert w.clamp(10, -10) == (3, -1)
        assert w.clamp(0, 0) == (0, 0)
        assert w.clamp(-5, 0) == (-2, 0)


class TestClampedWindow:
    def test_interior_block_full_window(self):
        w = clamped_window(64, 64, 16, 16, 144, 176, p=15)
        assert (w.dx_min, w.dx_max, w.dy_min, w.dy_max) == (-15, 15, -15, 15)

    def test_top_left_corner(self):
        w = clamped_window(0, 0, 16, 16, 144, 176, p=15)
        assert (w.dx_min, w.dy_min) == (0, 0)
        assert (w.dx_max, w.dy_max) == (15, 15)

    def test_bottom_right_corner(self):
        w = clamped_window(128, 160, 16, 16, 144, 176, p=15)
        assert (w.dx_max, w.dy_max) == (0, 0)
        assert (w.dx_min, w.dy_min) == (-15, -15)

    def test_near_edge_partial_clip(self):
        w = clamped_window(16, 170 - 16, 16, 16, 144, 176, p=15)
        assert w.dx_max == 176 - 16 - (170 - 16)  # 6
        assert w.dx_min == -15
        assert w.dy_min == -15

    def test_block_outside_plane_rejected(self):
        with pytest.raises(ValueError):
            clamped_window(140, 0, 16, 16, 144, 176, p=15)

    def test_negative_p_rejected(self):
        with pytest.raises(ValueError):
            clamped_window(0, 0, 16, 16, 144, 176, p=-1)

    def test_p_zero_single_position(self):
        w = clamped_window(64, 64, 16, 16, 144, 176, p=0)
        assert w.num_positions == 1


class TestHalfPelWindow:
    def test_doubles_bounds(self):
        w = half_pel_window(SearchWindow(-3, 5, -2, 0))
        assert (w.dx_min, w.dx_max, w.dy_min, w.dy_max) == (-6, 10, -4, 0)

    def test_full_search_half_pel_count(self):
        """Full ±15 window in half-pel units spans ±30."""
        w = half_pel_window(SearchWindow(-15, 15, -15, 15))
        assert w.contains(30, -30)
        assert not w.contains(31, 0)
