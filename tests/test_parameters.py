"""Unit tests for repro.core.parameters."""

import pytest

from repro.core.parameters import ACBMParameters


class TestACBMParameters:
    def test_paper_defaults(self):
        p = ACBMParameters.paper_defaults()
        assert (p.alpha, p.beta, p.gamma) == (1000.0, 8.0, 0.25)

    def test_default_constructor_matches_paper(self):
        assert ACBMParameters() == ACBMParameters.paper_defaults()

    def test_threshold_formula(self):
        p = ACBMParameters(alpha=1000, beta=8, gamma=0.25)
        # α + β·Qp² at the paper's Qp extremes.
        assert p.threshold(16) == 1000 + 8 * 256
        assert p.threshold(30) == 1000 + 8 * 900

    def test_threshold_grows_with_qp(self):
        p = ACBMParameters.paper_defaults()
        values = [p.threshold(qp) for qp in range(1, 32)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_threshold_qp_range(self):
        p = ACBMParameters.paper_defaults()
        with pytest.raises(ValueError):
            p.threshold(0)
        with pytest.raises(ValueError):
            p.threshold(32)

    @pytest.mark.parametrize("kwargs", [dict(alpha=-1), dict(beta=-0.1), dict(gamma=-1)])
    def test_negative_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ACBMParameters(**kwargs)

    def test_always_full_search_threshold_zero(self):
        p = ACBMParameters.always_full_search()
        assert p.threshold(30) == 0.0
        assert p.gamma == 0.0

    def test_never_full_search_threshold_infinite(self):
        p = ACBMParameters.never_full_search()
        assert p.threshold(1) == float("inf")

    def test_with_updates_single_field(self):
        p = ACBMParameters.paper_defaults().with_(gamma=0.5)
        assert p.gamma == 0.5
        assert p.alpha == 1000.0

    def test_with_rejects_unknown(self):
        with pytest.raises(TypeError, match="unknown"):
            ACBMParameters.paper_defaults().with_(delta=1.0)

    def test_frozen(self):
        p = ACBMParameters.paper_defaults()
        with pytest.raises(AttributeError):
            p.alpha = 5.0
