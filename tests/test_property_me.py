"""Property-based tests (hypothesis) for the motion-estimation layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.me.metrics import intra_sad, sad, sad_deviation, sad_map
from repro.me.search_window import clamped_window, half_pel_window
from repro.me.subpel import half_pel_block
from repro.me.types import MotionVector

planes = st.builds(
    lambda seed: np.random.default_rng(seed).integers(0, 256, (48, 64), dtype=np.uint8),
    st.integers(min_value=0, max_value=100_000),
)

blocks16 = st.builds(
    lambda seed: np.random.default_rng(seed).integers(0, 256, (16, 16), dtype=np.uint8),
    st.integers(min_value=0, max_value=100_000),
)


# -- metric axioms --------------------------------------------------------


@given(blocks16, blocks16)
def test_sad_is_a_metric(a, b):
    assert sad(a, b) >= 0
    assert sad(a, b) == sad(b, a)
    assert sad(a, a) == 0
    if sad(a, b) == 0:
        assert np.array_equal(a, b)


@given(blocks16, blocks16, blocks16)
@settings(max_examples=40)
def test_sad_triangle_inequality(a, b, c):
    assert sad(a, c) <= sad(a, b) + sad(b, c)


@given(blocks16, st.integers(min_value=-50, max_value=50))
def test_intra_sad_shift_invariant(block, offset):
    shifted = np.clip(block.astype(np.int64) + offset, 0, 255)
    if shifted.min() > 0 and shifted.max() < 255:  # no clipping occurred
        assert intra_sad(shifted) == intra_sad(block.astype(np.int64) + offset)


@given(blocks16)
def test_intra_sad_zero_iff_constant(block):
    value = intra_sad(block)
    assert value >= 0.0
    if np.all(block == block.flat[0]):
        assert value == 0.0


@given(
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200)
)
def test_sad_deviation_invariants(sads):
    arr = np.array(sads, dtype=np.int64)
    dev = sad_deviation(arr)
    assert dev >= 0
    assert dev == (arr - arr.min()).sum()
    # Adding a constant to every candidate leaves the deviation unchanged.
    assert sad_deviation(arr + 17) == dev


@given(planes, st.integers(min_value=0, max_value=32), st.integers(min_value=0, max_value=48))
@settings(max_examples=30)
def test_sad_map_consistent_with_sad(plane, by, bx):
    block = plane[by : by + 16, bx : bx + 16]
    window = plane[max(0, by - 4) : by + 20, max(0, bx - 4) : bx + 20]
    if window.shape[0] < 16 or window.shape[1] < 16:
        return
    surface = sad_map(block, window)
    assert surface.min() >= 0
    i, j = np.unravel_index(np.argmin(surface), surface.shape)
    assert surface[i, j] == sad(block, window[i : i + 16, j : j + 16])


# -- search window laws -----------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=20),
)
def test_clamped_window_contains_zero_and_respects_p(mb_row, mb_col, p):
    window = clamped_window(16 * mb_row, 16 * mb_col, 16, 16, 48, 64, p)
    assert window.contains(0, 0)
    assert -p <= window.dx_min <= 0 <= window.dx_max <= p
    assert -p <= window.dy_min <= 0 <= window.dy_max <= p
    # Every candidate keeps the block inside the plane.
    assert 16 * mb_col + window.dx_min >= 0
    assert 16 * mb_col + window.dx_max + 16 <= 64
    assert 16 * mb_row + window.dy_min >= 0
    assert 16 * mb_row + window.dy_max + 16 <= 48


@given(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=15),
)
def test_half_pel_window_supports_interpolation(mb_row, mb_col, p):
    """Every half-pel candidate in the doubled window must have full
    interpolation support inside the plane — i.e. half_pel_block never
    raises for in-window candidates."""
    plane = np.zeros((48, 64), dtype=np.uint8)
    window = clamped_window(16 * mb_row, 16 * mb_col, 16, 16, 48, 64, p)
    hwin = half_pel_window(window)
    for hx in (hwin.dx_min, hwin.dx_max, 0):
        for hy in (hwin.dy_min, hwin.dy_max, 0):
            half_pel_block(plane, 2 * 16 * mb_row + hy, 2 * 16 * mb_col + hx, 16, 16)


# -- interpolation bounds -----------------------------------------------------


@given(
    planes,
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=95),
)
@settings(max_examples=50)
def test_half_pel_block_within_pixel_bounds(plane, hy, hx):
    """Bilinear samples never leave the convex hull of their support."""
    if (hy >> 1) + 17 > 48 or (hx >> 1) + 17 > 64:
        return
    out = half_pel_block(plane, hy, hx, 16, 16)
    region = plane[hy >> 1 : (hy >> 1) + 17, hx >> 1 : (hx >> 1) + 17]
    assert out.min() >= region.min()
    assert out.max() <= region.max()


# -- motion vector algebra -----------------------------------------------------

mv_strategy = st.builds(
    MotionVector,
    st.integers(min_value=-62, max_value=62),
    st.integers(min_value=-62, max_value=62),
)


@given(mv_strategy, mv_strategy)
def test_mv_group_laws(a, b):
    zero = MotionVector.zero()
    assert a + zero == a
    assert a - a == zero
    assert a + b == b + a
    assert -(-a) == a
    assert (a + b) - b == a


@given(mv_strategy)
def test_mv_pixel_views_consistent(mv):
    assert MotionVector.from_pixels(mv.x_pixels, mv.y_pixels) == mv
    assert mv.chebyshev_pixels() == max(abs(mv.x_pixels), abs(mv.y_pixels))
