"""Tests for the experiments CLI (repro.experiments.runner)."""

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("fig4", "fig5", "fig6", "table1", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_common_options_after_command(self):
        args = build_parser().parse_args(["table1", "--frames", "9", "--seed", "3"])
        assert args.frames == 9
        assert args.seed == 3

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_fig4_prints_classes(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "error=0" in out
        assert "true-vector fraction" in out

    def test_table1_small_run(self, capsys):
        argv = [
            "table1", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "--fps", "30",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "max reduction vs FSBM" in out

    def test_fig5_small_run(self, capsys):
        argv = [
            "fig5", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "16",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss_america" in out
        assert "acbm" in out and "fsbm" in out and "pbm" in out
