"""Tests for the experiments CLI (repro.experiments.runner)."""

import pytest

from repro.experiments.runner import build_parser, main
from repro.kernels import numba_available

#: Provenance keys write_records stamps into every BENCH_*.json.
STAMP_KEYS = {"backend", "machine_numba"} | (
    {"backend_numba_version"} if numba_available() else set()
)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("fig4", "fig5", "fig6", "table1", "all", "decode-bench"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_decode_bench_options(self):
        args = build_parser().parse_args(
            ["decode-bench", "--frames", "2", "--rounds", "1", "--json", "out.json"]
        )
        assert args.frames == 2
        assert args.rounds == 1
        assert args.json == "out.json"
        assert args.estimator == "fsbm"
        assert args.parse_only is False
        assert args.bitstream_version == 1

    def test_decode_bench_parse_and_version_options(self):
        args = build_parser().parse_args(
            ["decode-bench", "--parse-only", "--bitstream-version", "2"]
        )
        assert args.parse_only is True
        assert args.bitstream_version == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decode-bench", "--bitstream-version", "3"])

    def test_common_options_after_command(self):
        args = build_parser().parse_args(["table1", "--frames", "9", "--seed", "3"])
        assert args.frames == 9
        assert args.seed == 3

    def test_stream_subcommands_exist(self):
        parser = build_parser()
        args = parser.parse_args(["stream-encode", "--from-yuv", "clip.yuv"])
        assert args.command == "stream-encode"
        assert args.geometry.width == 176 and args.geometry.height == 144
        assert args.bitstream_version == 2
        args = parser.parse_args(["stream-decode", "stream.v2", "--chunk-size", "7"])
        assert args.command == "stream-decode"
        assert args.chunk_size == 7
        assert args.verify is False
        args = parser.parse_args(["stream-bench", "--frames", "4"])
        assert args.command == "stream-bench"
        assert args.chunk_size == 1500

    def test_stream_encode_geometry_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["stream-encode", "--from-yuv", "c.yuv", "--geometry", "cif"]
        )
        assert args.geometry.width == 352
        args = parser.parse_args(
            ["stream-encode", "--from-yuv", "c.yuv", "--geometry", "64x48"]
        )
        assert (args.geometry.width, args.geometry.height) == (64, 48)
        with pytest.raises(SystemExit):
            parser.parse_args(["stream-encode", "--from-yuv", "c.yuv", "--geometry", "65x48"])

    def test_transport_and_shm_options(self):
        parser = build_parser()
        args = parser.parse_args(["transport-bench", "--frames", "4"])
        assert args.command == "transport-bench"
        assert args.rounds == 3 and args.estimator == "tss"
        args = parser.parse_args(
            ["decode-bench", "--bitstream-version", "2", "--jobs", "2", "--shm"]
        )
        assert args.shm is True
        # Every --jobs subcommand takes the tri-state --shm/--no-shm.
        for command in ("fig4", "fig5", "fig6", "table1", "all"):
            assert parser.parse_args([command]).shm is None
            assert parser.parse_args([command, "--shm"]).shm is True
            assert parser.parse_args([command, "--no-shm"]).shm is False
        args = parser.parse_args(["stream-decode", "s.v2", "--pipeline", "process"])
        assert args.pipeline == "process"
        assert parser.parse_args(["stream-decode", "s.v2"]).pipeline == "off"
        assert parser.parse_args(["stream-bench"]).pipeline == "thread"
        with pytest.raises(SystemExit):
            parser.parse_args(["stream-decode", "s.v2", "--pipeline", "fork"])

    def test_stream_encode_requires_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream-encode"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_fig4_prints_classes(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "error=0" in out
        assert "true-vector fraction" in out

    def test_table1_small_run(self, capsys):
        argv = [
            "table1", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "--fps", "30",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "max reduction vs FSBM" in out

    def test_fig5_small_run(self, capsys):
        argv = [
            "fig5", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "16",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss_america" in out
        assert "acbm" in out and "fsbm" in out and "pbm" in out

    @pytest.mark.parametrize(
        "base_argv",
        [
            pytest.param(
                ["fig5", "--frames", "4", "--sequences", "miss_america",
                 "--qps", "30", "16"],
                id="fig5",
            ),
            pytest.param(["fig4"], id="fig4"),
        ],
    )
    def test_stdout_byte_identical_across_jobs_and_shm(self, capsys, base_argv):
        """The transport is invisible in the report: jobs ∈ {1, 2} ×
        shm ∈ {on, off} print byte-identical stdout, and nothing
        outlives the run in /dev/shm."""
        import glob

        outputs = []
        for jobs in ("1", "2"):
            for shm_flag in ("--shm", "--no-shm"):
                assert main(base_argv + ["--jobs", jobs, shm_flag]) == 0
                outputs.append(capsys.readouterr().out)
                assert not glob.glob("/dev/shm/repro-*")
        assert outputs[0]  # the runs actually printed a report
        assert len(set(outputs)) == 1

    def test_decode_bench_small_run(self, capsys, tmp_path):
        """A 2-frame encode→decode round trip: verifies bit-identity,
        prints a speedup and records the JSON payload."""
        import json

        out_path = tmp_path / "BENCH_decode.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out and "True" in out
        assert "speedup" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "decode_per_block_ms", "decode_batched_ms", "decode_speedup",
        } | STAMP_KEYS
        assert records["decode_per_block_ms"] > 0
        assert records["decode_batched_ms"] > 0

    def test_decode_bench_parse_only(self, capsys, tmp_path):
        """--parse-only reports the parse/reconstruct split and records
        the VLC payload (BENCH_vlc.json keys)."""
        import json

        out_path = tmp_path / "BENCH_vlc.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--parse-only", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "symbols identical" in out and "True" in out
        assert "decode split" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "vlc_parse_lut_ms", "vlc_parse_seed_ms", "vlc_parse_speedup",
            "vlc_parse_mbps", "vlc_reconstruct_ms",
        } | STAMP_KEYS
        assert records["vlc_parse_speedup"] > 0

    def test_decode_bench_parse_only_rejects_v2(self, capsys):
        argv = ["decode-bench", "--parse-only", "--bitstream-version", "2"]
        assert main(argv) == 2

    def test_decode_bench_parse_only_rejects_jobs(self, capsys):
        """--jobs has no effect on the serial parse timing — reject it
        loudly instead of silently ignoring it."""
        argv = ["decode-bench", "--parse-only", "--jobs", "4"]
        assert main(argv) == 2

    def test_stream_encode_decode_round_trip(self, capsys, tmp_path):
        """The CI smoke in miniature: YUV file → stream-encode (v2) →
        stream-decode in 7-byte chunks with whole-buffer identity
        gated, decoded planes written back out as YUV."""
        import numpy as np

        from repro.video.frame import Frame, FrameGeometry
        from repro.video.sequence import Sequence
        from repro.video.yuv_io import frame_size_bytes, write_yuv

        geometry = FrameGeometry(32, 32)
        rng = np.random.default_rng(3)
        clip = Sequence(
            [
                Frame(
                    rng.integers(0, 256, (32, 32), dtype=np.uint8),
                    rng.integers(0, 256, (16, 16), dtype=np.uint8),
                    rng.integers(0, 256, (16, 16), dtype=np.uint8),
                    index=i,
                )
                for i in range(3)
            ],
            fps=30,
        )
        yuv = tmp_path / "clip.yuv"
        write_yuv(yuv, clip)
        stream = tmp_path / "stream.v2"
        assert main([
            "stream-encode", "--from-yuv", str(yuv), "--geometry", "32x32",
            "--qp", "20", "--estimator", "tss", "--out", str(stream),
        ]) == 0
        decoded = tmp_path / "decoded.yuv"
        assert main([
            "stream-decode", str(stream), "--chunk-size", "7",
            "--out", str(decoded), "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "identical to whole-buffer decode: True" in out
        assert decoded.stat().st_size == 3 * frame_size_bytes(geometry)

    def test_stream_decode_rejects_zero_chunk_size(self, capsys, tmp_path):
        stream = tmp_path / "s.v2"
        stream.write_bytes(b"\x00\x00\x01\xb6")
        assert main(["stream-decode", str(stream), "--chunk-size", "0"]) == 2
        assert "chunk-size" in capsys.readouterr().err
        assert main(["stream-decode", str(stream), "--max-buffered", "0"]) == 2
        assert "max-buffered" in capsys.readouterr().err

    def test_stream_decode_reports_missing_input(self, capsys, tmp_path):
        assert main(["stream-decode", str(tmp_path / "nope.v2")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_stream_decode_reports_corrupt_stream(self, capsys, tmp_path):
        bad = tmp_path / "bad.v2"
        bad.write_bytes(b"\x00\x00\x01\xb6" + (1 << 20).to_bytes(4, "big") + b"\x00" * 32)
        assert main(["stream-decode", str(bad)]) == 1
        assert "overruns" in capsys.readouterr().err

    def test_stream_bench_small_run(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_stream.json"
        argv = [
            "stream-bench", "--frames", "3", "--sequences", "miss_america",
            "--qps", "20", "--rounds", "1", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-identical (streamed == whole-buffer == encoder loop): True" in out
        assert "stream-encode byte-identical (v1 and v2): True" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "stream_whole_decode_ms", "stream_push_decode_ms",
            "stream_vs_whole_speedup", "stream_decode_mbps",
            "stream_peak_buffered_bytes", "stream_buffer_bound_bytes",
            "stream_pipeline_decode_ms", "stream_pipeline_speedup",
            "stream_pipeline_peak_buffered_bytes",
            "stream_bytes_copied", "stream_handles_passed",
            "machine_cpu_count",
        } | STAMP_KEYS
        assert records["stream_peak_buffered_bytes"] < records["stream_buffer_bound_bytes"]
        assert records["stream_pipeline_decode_ms"] > 0

    def test_decode_bench_shm_requires_a_parallel_transport(self, capsys):
        """--shm changes how payloads cross the worker pipe; without a
        parallel path (v2 or --jobs >= 2) there is nothing to smoke."""
        assert main(["decode-bench", "--shm"]) == 2
        assert "--shm" in capsys.readouterr().err

    def test_transport_bench_small_run(self, capsys, tmp_path):
        """The zero-copy claims in miniature: spec/result pickles shrink
        to handles, the 2-worker shm decode and RD sweep are
        bit-identical, and the run leaves /dev/shm clean."""
        import json

        out_path = tmp_path / "BENCH_transport.json"
        argv = [
            "transport-bench", "--frames", "2", "--sequences", "miss_america",
            "--qps", "20", "--rounds", "1", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out and "True" in out
        assert "transport sweep bench" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "transport_spec_pickle_bytes_plain", "transport_spec_pickle_bytes_shm",
            "transport_payload_bytes_per_frame_plain",
            "transport_payload_bytes_per_frame_shm",
            "transport_result_pickle_bytes_plain", "transport_result_pickle_bytes_shm",
            "transport_decode_plain_ms", "transport_decode_shm_ms",
            "transport_shm_speedup",
            "transport_sweep_encode_spec_bytes_value",
            "transport_sweep_encode_spec_bytes_shm",
            "transport_sweep_encode_pickle_shrink",
            "transport_sweep_sweepjob_spec_bytes_value",
            "transport_sweep_sweepjob_spec_bytes_shm",
            "transport_sweep_sweepjob_pickle_shrink",
            "transport_sweep_fig4_spec_bytes_value",
            "transport_sweep_fig4_spec_bytes_shm",
            "transport_sweep_fig4_pickle_shrink",
            "transport_sweep_payload_bytes_per_job_value",
            "transport_sweep_payload_bytes_per_job_shm",
            "transport_sweep_plain_ms", "transport_sweep_shm_ms",
            "transport_sweep_shm_speedup",
            "machine_cpu_count",
        } | STAMP_KEYS
        assert records["transport_payload_bytes_per_frame_shm"] == 0.0
        assert records["transport_spec_pickle_bytes_shm"] < records[
            "transport_spec_pickle_bytes_plain"
        ]
        assert records["transport_sweep_payload_bytes_per_job_shm"] == 0.0
        for kind in ("encode", "sweepjob", "fig4"):
            assert records[f"transport_sweep_{kind}_pickle_shrink"] >= 3.0

    def test_decode_bench_v2(self, capsys, tmp_path):
        """--bitstream-version 2 verifies the frame index and the
        parallel symbol parse alongside the usual decode identity.
        Note this spawns a small 2-worker pool: run_decode_bench
        always drives the indexed parse with at least two workers so
        the verification covers the real parallel path (the same
        pipeline CI smokes via --jobs 2)."""
        import json

        out_path = tmp_path / "BENCH_decode.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--bitstream-version", "2", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(v2)" in out
        assert "parallel parse" in out and "True" in out
        # v2 records are version-suffixed so they can never collide
        # with the v1 keys the committed baselines gate on.
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "decode_v2_per_block_ms", "decode_v2_batched_ms", "decode_v2_speedup",
        } | STAMP_KEYS
