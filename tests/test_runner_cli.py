"""Tests for the experiments CLI (repro.experiments.runner)."""

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("fig4", "fig5", "fig6", "table1", "all", "decode-bench"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_decode_bench_options(self):
        args = build_parser().parse_args(
            ["decode-bench", "--frames", "2", "--rounds", "1", "--json", "out.json"]
        )
        assert args.frames == 2
        assert args.rounds == 1
        assert args.json == "out.json"
        assert args.estimator == "fsbm"
        assert args.parse_only is False
        assert args.bitstream_version == 1

    def test_decode_bench_parse_and_version_options(self):
        args = build_parser().parse_args(
            ["decode-bench", "--parse-only", "--bitstream-version", "2"]
        )
        assert args.parse_only is True
        assert args.bitstream_version == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decode-bench", "--bitstream-version", "3"])

    def test_common_options_after_command(self):
        args = build_parser().parse_args(["table1", "--frames", "9", "--seed", "3"])
        assert args.frames == 9
        assert args.seed == 3

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_fig4_prints_classes(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "error=0" in out
        assert "true-vector fraction" in out

    def test_table1_small_run(self, capsys):
        argv = [
            "table1", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "--fps", "30",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "max reduction vs FSBM" in out

    def test_fig5_small_run(self, capsys):
        argv = [
            "fig5", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "16",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss_america" in out
        assert "acbm" in out and "fsbm" in out and "pbm" in out

    def test_decode_bench_small_run(self, capsys, tmp_path):
        """A 2-frame encode→decode round trip: verifies bit-identity,
        prints a speedup and records the JSON payload."""
        import json

        out_path = tmp_path / "BENCH_decode.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out and "True" in out
        assert "speedup" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "decode_per_block_ms", "decode_batched_ms", "decode_speedup",
        }
        assert records["decode_per_block_ms"] > 0
        assert records["decode_batched_ms"] > 0

    def test_decode_bench_parse_only(self, capsys, tmp_path):
        """--parse-only reports the parse/reconstruct split and records
        the VLC payload (BENCH_vlc.json keys)."""
        import json

        out_path = tmp_path / "BENCH_vlc.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--parse-only", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "symbols identical" in out and "True" in out
        assert "decode split" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "vlc_parse_lut_ms", "vlc_parse_seed_ms", "vlc_parse_speedup",
            "vlc_parse_mbps", "vlc_reconstruct_ms",
        }
        assert records["vlc_parse_speedup"] > 0

    def test_decode_bench_parse_only_rejects_v2(self, capsys):
        argv = ["decode-bench", "--parse-only", "--bitstream-version", "2"]
        assert main(argv) == 2

    def test_decode_bench_parse_only_rejects_jobs(self, capsys):
        """--jobs has no effect on the serial parse timing — reject it
        loudly instead of silently ignoring it."""
        argv = ["decode-bench", "--parse-only", "--jobs", "4"]
        assert main(argv) == 2

    def test_decode_bench_v2(self, capsys, tmp_path):
        """--bitstream-version 2 verifies the frame index and the
        parallel symbol parse alongside the usual decode identity.
        Note this spawns a small 2-worker pool: run_decode_bench
        always drives the indexed parse with at least two workers so
        the verification covers the real parallel path (the same
        pipeline CI smokes via --jobs 2)."""
        import json

        out_path = tmp_path / "BENCH_decode.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--bitstream-version", "2", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(v2)" in out
        assert "parallel parse" in out and "True" in out
        # v2 records are version-suffixed so they can never collide
        # with the v1 keys the committed baselines gate on.
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "decode_v2_per_block_ms", "decode_v2_batched_ms", "decode_v2_speedup",
        }
