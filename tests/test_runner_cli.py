"""Tests for the experiments CLI (repro.experiments.runner)."""

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("fig4", "fig5", "fig6", "table1", "all", "decode-bench"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_decode_bench_options(self):
        args = build_parser().parse_args(
            ["decode-bench", "--frames", "2", "--rounds", "1", "--json", "out.json"]
        )
        assert args.frames == 2
        assert args.rounds == 1
        assert args.json == "out.json"
        assert args.estimator == "fsbm"

    def test_common_options_after_command(self):
        args = build_parser().parse_args(["table1", "--frames", "9", "--seed", "3"])
        assert args.frames == 9
        assert args.seed == 3

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_fig4_prints_classes(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "error=0" in out
        assert "true-vector fraction" in out

    def test_table1_small_run(self, capsys):
        argv = [
            "table1", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "--fps", "30",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "max reduction vs FSBM" in out

    def test_fig5_small_run(self, capsys):
        argv = [
            "fig5", "--frames", "4", "--sequences", "miss_america",
            "--qps", "30", "16",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss_america" in out
        assert "acbm" in out and "fsbm" in out and "pbm" in out

    def test_decode_bench_small_run(self, capsys, tmp_path):
        """A 2-frame encode→decode round trip: verifies bit-identity,
        prints a speedup and records the JSON payload."""
        import json

        out_path = tmp_path / "BENCH_decode.json"
        argv = [
            "decode-bench", "--frames", "2", "--sequences", "miss_america",
            "--rounds", "1", "--json", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out and "True" in out
        assert "speedup" in out
        records = json.loads(out_path.read_text())
        assert set(records) == {
            "decode_per_block_ms", "decode_batched_ms", "decode_speedup",
        }
        assert records["decode_per_block_ms"] > 0
        assert records["decode_batched_ms"] > 0
