"""Shared fixtures.

Everything here is deterministic: fixed seeds, tiny geometries (64x48
is the smallest legal multiple-of-16 frame with a non-square MB grid)
so the whole suite stays fast while exercising real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.frame import Frame, FrameGeometry
from repro.video.sequence import Sequence

#: Small but non-trivial geometry: 4x3 macroblocks.
SMALL = FrameGeometry(64, 48)


def backend_matrix():
    """Fixture factory parametrizing a golden suite over every kernel
    backend loadable here (``repro.kernels``).

    The golden modules (``test_engine``, ``test_reconstruction``,
    ``test_vlc_lut``, ``test_gop``) instantiate it at module scope::

        kernel_backend = backend_matrix()

    so each of their tests runs once per available backend with that
    backend pinned — on a pure-NumPy machine that is just ``[numpy]``;
    with numba installed every golden equivalence is re-proven against
    the compiled kernels (the references they compare against are the
    seed per-block/per-bit paths, which never dispatch).  Module scope
    keeps hypothesis's function-scoped-fixture health check quiet.
    """
    from repro.kernels import available_backend_names

    @pytest.fixture(scope="module", autouse=True, params=available_backend_names())
    def kernel_backend(request):
        from repro.kernels import reset_backend, set_backend

        set_backend(request.param)
        yield request.param
        reset_backend()

    return kernel_backend


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_geometry() -> FrameGeometry:
    return SMALL


def textured_plane(height: int, width: int, seed: int = 7, amplitude: float = 60.0) -> np.ndarray:
    """A reproducible textured uint8 plane (not a fixture so tests can
    parameterize it)."""
    gen = np.random.default_rng(seed)
    coarse = gen.random((height // 8 + 2, width // 8 + 2))
    ys = np.linspace(0, coarse.shape[0] - 1.001, height)
    xs = np.linspace(0, coarse.shape[1] - 1.001, width)
    y0 = ys.astype(int)
    x0 = xs.astype(int)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    plane = (
        coarse[np.ix_(y0, x0)] * (1 - fy) * (1 - fx)
        + coarse[np.ix_(y0, x0 + 1)] * (1 - fy) * fx
        + coarse[np.ix_(y0 + 1, x0)] * fy * (1 - fx)
        + coarse[np.ix_(y0 + 1, x0 + 1)] * fy * fx
    )
    fine = gen.random((height, width))
    out = 128.0 + amplitude * (plane - 0.5) * 2.0 + 10.0 * (fine - 0.5)
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def shifted_plane(plane: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Integer shift with edge replication.

    ``out(y, x) = plane(y - dy, x - dx)``: content moves by (+dy, +dx).
    A block of the shifted plane therefore matches ``plane`` at
    displacement (-dx, -dy), i.e. the true motion vector (searching the
    shifted plane against ``plane`` as reference) is
    ``MotionVector(-2*dx, -2*dy)`` in half-pel units."""
    h, w = plane.shape
    ys = np.clip(np.arange(h) - dy, 0, h - 1)
    xs = np.clip(np.arange(w) - dx, 0, w - 1)
    return plane[np.ix_(ys, xs)]


@pytest.fixture
def textured() -> np.ndarray:
    return textured_plane(48, 64)


@pytest.fixture
def small_frame(textured) -> Frame:
    return Frame(textured)


@pytest.fixture
def small_sequence(textured) -> Sequence:
    frames = [Frame(shifted_plane(textured, 0, i), index=i) for i in range(4)]
    return Sequence(frames, fps=30.0, name="unit")
