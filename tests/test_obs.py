"""Observability layer: tracing, metrics, export, report, and the
zero-interference + cross-process-merge contracts.

The two load-bearing guarantees:

* **Zero interference** — tracing on or off, every backend emits
  byte-identical bitstreams and frames (the codec never reads obs
  state).
* **Mergeable timelines** — spans recorded inside spawned workers (the
  job pool in both transports, the process-mode parse stage) ship back
  and splice into the parent tracer with their own pid/tid stamps,
  nesting under the parent's ``job`` spans by timestamp containment;
  a failing worker still delivers the events it collected before dying.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.experiments.config import ExperimentConfig
from repro.kernels import available_backend_names, reset_backend, set_backend
from repro.obs import metrics, trace
from repro.obs.export import chrome_trace, load_trace, validate_trace, write_trace
from repro.obs.report import frame_rows, render_report
from repro.obs.metrics import MetricsRegistry
from repro.parallel import EncodeJob, JobSpec, ParseFrameJob, run_jobs
from repro.streaming import DecodeSession, EncodeSession
from repro.video.synthesis.sequences import make_sequence

TINY = ExperimentConfig(
    sequences=("miss_america",), qps=(20,), fps_list=(30,), frames=4
)


@dataclass(frozen=True)
class ObsFailJob(JobSpec):
    """Module-level (spawn-picklable) job that always raises."""

    def describe(self) -> str:
        return "obs-fail"

    def run(self, rng=None):
        raise ValueError("injected obs failure")


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test leaves the global tracer off and empty."""
    yield
    trace.TRACER.disable()
    trace.TRACER.drain()


@pytest.fixture(scope="module")
def v2_encode():
    clip = make_sequence("miss_america", frames=3, seed=0)
    return clip, encode_sequence(
        clip, qp=20, estimator="tss", bitstream_version=2
    )


def _span_contains(parent: dict, child: dict) -> bool:
    return (
        parent["pid"] == child["pid"]
        and parent["ts"] <= child["ts"] + 1e-6
        and child["ts"] + child.get("dur", 0.0)
        <= parent["ts"] + parent["dur"] + 1e-6
    )


class TestTracer:
    def test_disabled_helpers_return_shared_noops(self):
        """The disabled fast path allocates nothing: one singleton span,
        one singleton phase set, for every call site."""
        assert not trace.enabled()
        assert trace.span("x") is trace.span("y")
        assert trace.phases() is trace.phases()
        with trace.span("x", a=1) as s:
            s.set(b=2)
        assert s.duration_s == 0.0
        assert trace.TRACER.events == []

    def test_span_records_complete_event(self):
        trace.TRACER.enable()
        with trace.span("unit.work", frame=3) as s:
            s.set(bits=99)
        (event,) = trace.TRACER.drain()
        assert event["name"] == "unit.work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert {"ts", "pid", "tid"} <= set(event)
        assert event["args"] == {"frame": 3, "bits": 99}
        assert s.duration_s > 0.0

    def test_begin_end_and_instant(self):
        trace.TRACER.enable()
        token = trace.begin("queued", seq=1)
        trace.instant("marker", hit=True)
        trace.end(token)
        complete, instant = sorted(trace.TRACER.drain(), key=lambda e: e["ph"])
        assert complete["name"] == "queued" and complete["ph"] == "X"
        assert instant["name"] == "marker" and instant["ph"] == "i"
        # A disabled begin() yields None and end() must accept it.
        trace.TRACER.disable()
        trace.end(trace.begin("ignored"))

    def test_phases_sum_exactly_and_lay_out_contiguously(self):
        trace.TRACER.enable()
        ph = trace.phases()
        for _ in range(3):
            with ph("a"):
                pass
            with ph("b"):
                pass
        ph.emit(frame=0)
        events = trace.TRACER.drain()
        assert [e["name"] for e in events] == ["a", "b"]
        # Buckets are laid back to back from the first measurement.
        assert events[1]["ts"] == pytest.approx(events[0]["ts"] + events[0]["dur"])
        assert all(e["args"] == {"frame": 0} for e in events)
        ph.emit()  # second emit is a no-op
        assert trace.TRACER.drain() == []

    def test_adopt_preserves_foreign_stamps(self):
        trace.TRACER.enable()
        foreign = {"name": "w", "ph": "X", "ts": 1.0, "dur": 2.0, "pid": 424242, "tid": 1}
        trace.TRACER.adopt([foreign])
        assert trace.TRACER.drain() == [foreign]


class TestMetrics:
    def test_instruments_get_or_create_identity_stable(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        assert reg.counter("c") is c
        c.inc(2)
        reg.reset()
        assert c.value == 0 and reg.counter("c") is c
        with pytest.raises(TypeError):
            reg.gauge("c")

    def test_counter_gauge_histogram_semantics(self):
        reg = MetricsRegistry()
        c, g, h = reg.counter("c"), reg.gauge("g"), reg.histogram("h")
        c.inc()
        c.inc(4)
        c.advance_to(3)  # behind: no-op
        c.advance_to(9)
        g.set(5)
        g.add(-2)
        h.observe(10)
        h.observe(20)
        assert c.value == 9
        assert (g.value, g.peak) == (3, 5)
        assert (h.count, h.total, h.mean) == (2, 30.0, 15.0)
        snap = reg.snapshot()
        assert snap["c"] == 9
        assert snap["g"] == {"value": 3, "peak": 5}
        assert snap["h"]["values"] == [10, 20]
        json.loads(reg.to_json())  # snapshot is JSON-clean


class TestExport:
    def test_chrome_trace_labels_processes(self):
        import os

        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": os.getpid(), "tid": 1},
            {"name": "b", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 999999, "tid": 1},
        ]
        data = chrome_trace(events)
        labels = {
            e["pid"]: e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels[os.getpid()] == "repro"
        assert labels[999999] == "repro worker 999999"
        validate_trace(data)

    def test_write_load_roundtrip(self, tmp_path):
        trace.TRACER.enable()
        with trace.span("roundtrip"):
            pass
        path = write_trace(tmp_path / "t.json", trace.TRACER.drain())
        data = load_trace(path)
        assert any(e["name"] == "roundtrip" for e in data["traceEvents"])

    @pytest.mark.parametrize(
        "bad",
        [
            [],
            {"traceEvents": "nope"},
            {"traceEvents": [{"name": "x"}]},
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0, "pid": 1, "tid": 1}]},
        ],
    )
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_trace(bad)


class TestReport:
    def test_frame_rows_and_rendering(self):
        trace.TRACER.enable()
        with trace.span("encode.frame", frame=0, type="I", bits=100):
            ph = trace.phases()
            with ph("encode.transform_quant"):
                pass
            ph.emit()
        with trace.span("decode.frame", frame=0, type="I"):
            with trace.span("decode.parse"):
                pass
        rows = frame_rows(trace.TRACER.events)
        assert [r["kind"] for r in rows] == ["encode", "decode"]
        assert rows[0]["bits"] == 100
        assert rows[0]["transform_quant_ms"] >= 0.0
        assert rows[1]["parse_ms"] >= 0.0
        text = render_report(trace.TRACER.drain())
        assert "encode" in text and "decode" in text
        assert "2 frame spans" in text

    def test_empty_trace_renders_hint(self):
        assert "no frame spans" in render_report([])


class TestZeroInterference:
    """Tracing on or off, every backend emits the seed's exact bytes."""

    @pytest.mark.parametrize("backend", available_backend_names())
    @pytest.mark.parametrize("version", [1, 2])
    def test_bitstream_and_frames_identical(self, backend, version):
        clip = make_sequence("miss_america", frames=3, seed=0)
        set_backend(backend)
        try:
            untraced = encode_sequence(
                clip, qp=20, estimator="tss", bitstream_version=version
            )
            trace.TRACER.enable()
            traced = encode_sequence(
                clip, qp=20, estimator="tss", bitstream_version=version
            )
            traced_frames = decode_bitstream(traced.bitstream)
            trace.TRACER.disable()
            untraced_frames = decode_bitstream(untraced.bitstream)
        finally:
            reset_backend()
        assert traced.bitstream == untraced.bitstream
        assert all(a == b for a, b in zip(traced_frames, untraced_frames))
        assert len(trace.TRACER.drain()) > 0


class TestCrossProcessMerge:
    """Worker spans ship back and nest under the parent's job spans."""

    def _run_traced(self, jobs, **kwargs):
        trace.TRACER.enable()
        results = run_jobs(jobs, workers=2, **kwargs)
        trace.TRACER.disable()
        return results, trace.TRACER.drain()

    def _assert_worker_nesting(self, events):
        import os

        parent_pid = os.getpid()
        pids = {e["pid"] for e in events}
        worker_pids = pids - {parent_pid}
        assert len(worker_pids) >= 2, f"expected 2 worker pids, got {pids}"
        job_spans = [e for e in events if e["name"] == "job" and e["ph"] == "X"]
        assert {e["pid"] for e in job_spans} == worker_pids
        # Every worker-side non-job span nests inside a job span of the
        # same pid (timestamp containment on the shared monotonic clock).
        for event in events:
            if event["pid"] == parent_pid or event["name"] == "job":
                continue
            if event["ph"] != "X":
                continue
            assert any(_span_contains(job, event) for job in job_spans), (
                f"unparented worker span: {event['name']} pid {event['pid']}"
            )
        # The parent records the run_jobs envelope around everything.
        assert any(
            e["name"] == "run_jobs" and e["pid"] == parent_pid for e in events
        )

    def test_pickling_transport_merges_worker_spans(self, v2_encode):
        _, encode = v2_encode
        index = FrameIndex.scan(encode.bitstream)
        jobs = [
            ParseFrameJob(index.payload(encode.bitstream, i))
            for i in range(len(index))
        ]
        results, events = self._run_traced(jobs, use_shm=False)
        assert results == run_jobs(jobs, workers=1)
        self._assert_worker_nesting(events)
        assert any(e["name"] == "decode.parse" for e in events)

    def test_shm_transport_merges_worker_spans(self, v2_encode):
        _, encode = v2_encode
        index = FrameIndex.scan(encode.bitstream)
        jobs = [
            ParseFrameJob(index.payload(encode.bitstream, i))
            for i in range(len(index))
        ]
        results, events = self._run_traced(jobs, use_shm=True)
        assert results == run_jobs(jobs, workers=1)
        self._assert_worker_nesting(events)

    def test_encode_jobs_ship_frame_spans(self, v2_encode):
        jobs = [
            EncodeJob("miss_america", 30, "tss", qp, TINY) for qp in (30, 20)
        ]
        _, events = self._run_traced(jobs)
        import os

        worker_frames = [
            e
            for e in events
            if e["name"] == "encode.frame" and e["pid"] != os.getpid()
        ]
        assert worker_frames, "worker encode.frame spans did not merge"

    def test_worker_failure_ships_partial_trace(self, v2_encode):
        """A dying worker's events still reach the parent timeline, and
        the error message stays in the historical format."""
        import os

        _, encode = v2_encode
        index = FrameIndex.scan(encode.bitstream)
        jobs = [
            ParseFrameJob(index.payload(encode.bitstream, i))
            for i in range(len(index))
        ] + [ObsFailJob()]
        trace.TRACER.enable()
        with pytest.raises(RuntimeError, match=r"parallel job failed .*injected obs failure"):
            run_jobs(jobs, workers=2, chunk_size=len(jobs))
        trace.TRACER.disable()
        events = trace.TRACER.drain()
        foreign = [e for e in events if e["pid"] != os.getpid()]
        assert foreign, "failing worker shipped no partial events"
        # The failing job's span completed (the context manager exits
        # before the exception is wrapped) and rode along.
        assert any(
            e["name"] == "job" and e["args"].get("job") == "obs-fail" for e in foreign
        )


class TestParseStageTracing:
    def test_thread_pipeline_records_into_process_tracer(self, v2_encode):
        trace.TRACER.enable()
        session = DecodeSession(pipeline="thread")
        _, encode = v2_encode
        session.feed(encode.bitstream)
        frames = list(session.frames())
        session.close()
        frames += list(session.frames())
        trace.TRACER.disable()
        events = trace.TRACER.drain()
        import os

        parses = [e for e in events if e["name"] == "decode.parse"]
        assert len(parses) >= len(frames)
        assert all(e["pid"] == os.getpid() for e in events)

    def test_process_pipeline_ships_child_events(self, v2_encode):
        trace.TRACER.enable()
        session = DecodeSession(pipeline="process")
        _, encode = v2_encode
        session.feed(encode.bitstream)
        frames = list(session.frames())
        session.close()
        frames += list(session.frames())
        trace.TRACER.disable()
        events = trace.TRACER.drain()
        import os

        child_parses = [
            e
            for e in events
            if e["name"] == "decode.parse" and e["pid"] != os.getpid()
        ]
        assert len(frames) == 3
        assert len(child_parses) >= len(frames), (
            "process-mode parse spans did not ship back"
        )


class TestSessionStats:
    def test_decode_session_stalls_and_bits_history(self, v2_encode):
        _, encode = v2_encode
        index = FrameIndex.scan(encode.bitstream)
        payload_bits = [8 * (e - s) for s, e in index.ranges]
        session = DecodeSession(max_buffered_frames=1)
        # Feed everything without draining: once demand hits zero every
        # further feed is a backpressure stall.
        for start in range(0, len(encode.bitstream), 64):
            session.feed(encode.bitstream[start : start + 64])
        frames = list(session.frames())
        session.close()
        frames += list(session.frames())
        stats = session.stats()
        assert len(frames) == len(payload_bits)
        assert stats.stalls > 0
        assert f"{stats.stalls} stalls" in stats.as_text()
        assert list(stats.bits_out) == payload_bits
        # The mirrors live in the session's own registry too.
        assert session.registry.counter("session.stalls").value == stats.stalls

    def test_stats_without_stalls_stay_quiet(self, v2_encode):
        _, encode = v2_encode
        session = DecodeSession(max_buffered_frames=8)
        session.feed(encode.bitstream)
        list(session.frames())
        session.close()
        list(session.frames())
        stats = session.stats()
        assert stats.stalls == 0
        assert "stalls" not in stats.as_text()

    def test_encode_session_bits_out_history(self):
        clip = make_sequence("miss_america", frames=3, seed=0)
        session = EncodeSession(estimator="tss", qp=20, bitstream_version=2)
        b"".join(session.encode_iter(iter(clip)))
        stats = session.stats()
        assert stats.bits_out == tuple(r.bits for r in session.records)
        assert len(stats.bits_out) == 3
        assert stats.frames_in == 3


class TestCodecMetricsLedger:
    @pytest.mark.parametrize("version", [1, 2])
    def test_encode_bits_split_by_syntax_element(self, version):
        """The split sums exactly to the total — v2's framing and
        padding bits are charged to the headers bucket."""
        reg = metrics.REGISTRY
        names = [
            "encode.frames",
            "encode.bits",
            "encode.bits.headers",
            "encode.bits.mode",
            "encode.bits.mv",
            "encode.bits.coefficients",
            "me.sad_evaluations",
        ]
        before = {n: reg.counter(n).value for n in names}
        clip = make_sequence("miss_america", frames=3, seed=0)
        encode_sequence(clip, qp=20, estimator="tss", bitstream_version=version)
        delta = {n: reg.counter(n).value - before[n] for n in names}
        assert delta["encode.frames"] == 3
        assert delta["encode.bits"] > 0
        assert (
            delta["encode.bits.headers"]
            + delta["encode.bits.mode"]
            + delta["encode.bits.mv"]
            + delta["encode.bits.coefficients"]
            == delta["encode.bits"]
        )
        assert delta["me.sad_evaluations"] > 0

    def test_decode_and_cache_counters_advance(self, v2_encode):
        reg = metrics.REGISTRY
        _, encode = v2_encode
        before_frames = reg.counter("decode.frames").value
        before_wraps = reg.counter("refplane.hits").value + reg.counter("refplane.misses").value
        decode_bitstream(encode.bitstream)
        assert reg.counter("decode.frames").value - before_frames == 3
        assert (
            reg.counter("refplane.hits").value + reg.counter("refplane.misses").value
            > before_wraps
        )
        assert reg.counter("vlc.lut_builds").value > 0


class TestRunnerIntegration:
    def test_trace_and_metrics_flags_write_files(self, tmp_path, capsys):
        from repro.experiments.runner import main

        trace_path = tmp_path / "run_trace.json"
        metrics_path = tmp_path / "run_metrics.json"
        rc = main(
            [
                "decode-bench",
                "--frames", "2",
                "--rounds", "1",
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
            ]
        )
        assert rc == 0
        data = load_trace(trace_path)
        names = {e["name"] for e in data["traceEvents"]}
        assert {"encode.frame", "decode.frame"} <= names
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["encode.frames"] >= 2
        # The global tracer was torn down after the run.
        assert not trace.TRACER.enabled
        assert trace.TRACER.events == []
        capsys.readouterr()

    def test_report_subcommand_renders_table(self, tmp_path, capsys):
        from repro.experiments.runner import main

        trace_path = tmp_path / "report_trace.json"
        assert main(
            ["decode-bench", "--frames", "2", "--rounds", "1", "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "kind" in out and "total_ms" in out
        assert "frame spans" in out

    def test_report_rejects_garbage(self, tmp_path, capsys):
        from repro.experiments.runner import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad)]) == 1
        capsys.readouterr()
