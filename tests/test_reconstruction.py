"""Golden-equivalence tests for the reconstruction engine.

The reconstruction kernels (``repro.me.engine.reconstruction`` /
``chroma_plane``) re-implement the decode/closed-loop hot path as
whole-frame batched NumPy.  Nothing about the numbers is allowed to
change: every test pins a batched path against the seed per-block
reference it replaced — same chroma vector derivation and clamping,
same interpolated samples, same rounding, same reconstructed frames,
same bitstream bytes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.decoder import decode_bitstream
from repro.codec.encoder import Encoder, encode_sequence
from repro.codec.macroblock import (
    chroma_mv,
    join_luma_blocks,
    predict_chroma_block,
    split_luma_blocks,
)
from repro.me.engine import (
    ChromaReferencePlane,
    ReferencePlane,
    add_residual_clip,
    chroma_mv_grids,
    frame_mc_chroma,
    frame_mc_luma,
    tile_blocks,
    tile_luma_blocks,
)
from repro.me.subpel import predict_block
from repro.me.types import MotionVector
from repro.video.frame import Frame
from repro.video.sequence import Sequence
from repro.video.synthesis.sequences import make_sequence

from .conftest import backend_matrix, shifted_plane, textured_plane

#: Every golden equivalence below re-runs per available kernel backend.
kernel_backend = backend_matrix()


def random_plane(seed: int, h: int = 48, w: int = 64) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, (h, w), dtype=np.uint8)


def random_field(seed: int, rows: int, cols: int, plane_h: int, plane_w: int, s: int = 16):
    """Random legal half-pel motion grids: every block's support stays
    inside the plane (the decoder's guarantee for luma vectors)."""
    rng = np.random.default_rng(seed)
    ys = s * np.arange(rows)[:, None]
    xs = s * np.arange(cols)[None, :]
    hy_min, hy_max = -2 * ys, 2 * (plane_h - s - ys)
    hx_min, hx_max = -2 * xs, 2 * (plane_w - s - xs)
    hy = rng.integers(
        np.maximum(hy_min, -2 * 15), np.minimum(hy_max, 2 * 15) + 1, size=(rows, cols)
    )
    hx = rng.integers(
        np.maximum(hx_min, -2 * 15), np.minimum(hx_max, 2 * 15) + 1, size=(rows, cols)
    )
    return hx, hy


def moving_sequence(n=4, seed=210, dx=2, with_chroma=True):
    base_y = textured_plane(48, 64, seed=seed)
    base_cb = textured_plane(24, 32, seed=seed + 1, amplitude=25.0)
    base_cr = textured_plane(24, 32, seed=seed + 2, amplitude=25.0)
    frames = []
    for i in range(n):
        y = shifted_plane(base_y, 0, dx * i)
        cb = shifted_plane(base_cb, 0, dx * i // 2) if with_chroma else None
        cr = shifted_plane(base_cr, 0, dx * i // 2) if with_chroma else None
        frames.append(Frame(y, cb, cr, index=i))
    return Sequence(frames, fps=30, name="recon")


# -- chroma vector derivation --------------------------------------------


class TestChromaMvGrids:
    @settings(max_examples=50, deadline=None)
    @given(hx=st.integers(-64, 64), hy=st.integers(-64, 64))
    def test_matches_scalar_chroma_mv(self, hx, hy):
        """Property: the vectorized halving agrees with the scalar
        H.263 derivation on every component value."""
        gx, gy = chroma_mv_grids(np.array([[hx]]), np.array([[hy]]))
        scalar = chroma_mv(MotionVector(hx, hy))
        assert (int(gx[0, 0]), int(gy[0, 0])) == (scalar.hx, scalar.hy)

    def test_exhaustive_small_range(self):
        values = np.arange(-33, 34)
        gx, gy = chroma_mv_grids(values[None, :], values[None, :])
        for i, v in enumerate(values.tolist()):
            scalar = chroma_mv(MotionVector(v, v))
            assert int(gx[0, i]) == scalar.hx
            assert int(gy[0, i]) == scalar.hy


# -- whole-frame luma MC --------------------------------------------------


class TestFrameMcLuma:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_predict_block(self, seed):
        ref = textured_plane(48, 64, seed=seed)
        plane = ReferencePlane(ref)
        hx, hy = random_field(seed + 100, 3, 4, 48, 64)
        pred = frame_mc_luma(plane, hx, hy)
        for r in range(3):
            for c in range(4):
                mv = MotionVector(int(hx[r, c]), int(hy[r, c]))
                np.testing.assert_array_equal(
                    pred[16 * r : 16 * r + 16, 16 * c : 16 * c + 16],
                    predict_block(ref, 16 * r, 16 * c, mv, 16, 16),
                )

    def test_zero_field_is_reference(self):
        ref = random_plane(9)
        zeros = np.zeros((3, 4), dtype=np.int64)
        np.testing.assert_array_equal(frame_mc_luma(ReferencePlane(ref), zeros, zeros), ref)

    def test_out_of_plane_rejected(self):
        plane = ReferencePlane(random_plane(10))
        hx = np.zeros((3, 4), dtype=np.int64)
        hy = np.zeros((3, 4), dtype=np.int64)
        hx[0, 0] = -1  # support leaves the plane at the left border
        with pytest.raises(ValueError, match="leaves"):
            frame_mc_luma(plane, hx, hy)

    def test_grid_shape_mismatch_rejected(self):
        plane = ReferencePlane(random_plane(11))
        with pytest.raises(ValueError, match="block grid"):
            frame_mc_luma(plane, np.zeros((2, 4), dtype=np.int64), np.zeros((2, 4), dtype=np.int64))


# -- whole-frame chroma MC ------------------------------------------------


class TestFrameMcChroma:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), p=st.integers(1, 15))
    def test_matches_predict_chroma_block(self, seed, p):
        """Property: batched chroma MC reproduces the per-block
        prediction — H.263 rounding, derivation and border clamping
        included — for arbitrary luma vectors (clamping legalizes
        whatever the derivation produces)."""
        ref = random_plane(seed, 24, 32)  # chroma plane of a 48x64 frame
        rng = np.random.default_rng(seed + 1)
        hx = rng.integers(-2 * p - 3, 2 * p + 4, (3, 4))
        hy = rng.integers(-2 * p - 3, 2 * p + 4, (3, 4))
        pred = frame_mc_chroma(ReferencePlane(ref), hx, hy, p)
        for r in range(3):
            for c in range(4):
                mv = MotionVector(int(hx[r, c]), int(hy[r, c]))
                np.testing.assert_array_equal(
                    pred[8 * r : 8 * r + 8, 8 * c : 8 * c + 8],
                    predict_chroma_block(ref, 8 * r, 8 * c, mv, p),
                )

    def test_border_clamp_exercised(self):
        """Odd vectors at the frame border: the away-from-zero rounding
        exceeds the luma-implied support and must clamp identically to
        the per-block path."""
        ref = random_plane(77, 24, 32)
        p = 7
        hx = np.full((3, 4), -2 * p - 1, dtype=np.int64)
        hy = np.full((3, 4), 2 * p + 1, dtype=np.int64)
        pred = frame_mc_chroma(ReferencePlane(ref), hx, hy, p)
        for r in range(3):
            for c in range(4):
                mv = MotionVector(int(hx[r, c]), int(hy[r, c]))
                np.testing.assert_array_equal(
                    pred[8 * r : 8 * r + 8, 8 * c : 8 * c + 8],
                    predict_chroma_block(ref, 8 * r, 8 * c, mv, p),
                )


class TestChromaReferencePlane:
    def test_predict_chroma_block_reads_cache(self):
        """predict_chroma_block with a wrapped plane returns the exact
        samples of the raw-array interpolation path."""
        cb = random_plane(50, 24, 32)
        cr = random_plane(51, 24, 32)
        chroma = ChromaReferencePlane(cb, cr)
        for mv in (MotionVector(5, -3), MotionVector(-1, 1), MotionVector(0, 0)):
            np.testing.assert_array_equal(
                predict_chroma_block(chroma.cb, 8, 16, mv, 7),
                predict_chroma_block(cb, 8, 16, mv, 7),
            )
            np.testing.assert_array_equal(
                predict_chroma_block(chroma.cr, 8, 16, mv, 7),
                predict_chroma_block(cr, 8, 16, mv, 7),
            )

    def test_wrap_rejects_uncacheable(self):
        ok = np.zeros((8, 8), dtype=np.uint8)
        assert ChromaReferencePlane.wrap(ok.astype(np.float64), ok) is None
        assert ChromaReferencePlane.wrap(ok, np.zeros((8, 10), dtype=np.uint8)) is None
        assert ChromaReferencePlane.wrap(ok, ok) is not None

    def test_mc_frame_matches_per_plane_calls(self):
        cb = random_plane(52, 24, 32)
        cr = random_plane(53, 24, 32)
        chroma = ChromaReferencePlane(cb, cr)
        hx, hy = random_field(54, 3, 4, 48, 64)
        pred_cb, pred_cr = chroma.mc_frame(hx, hy, 15)
        np.testing.assert_array_equal(pred_cb, frame_mc_chroma(chroma.cb, hx, hy, 15))
        np.testing.assert_array_equal(pred_cr, frame_mc_chroma(chroma.cr, hx, hy, 15))


# -- tiling / residual helpers -------------------------------------------


class TestTileHelpers:
    def test_tile_luma_blocks_inverts_split(self):
        plane = random_plane(60, 32, 48)
        rows, cols = 2, 3
        stacks = np.stack(
            [
                np.stack([split_luma_blocks(plane[16 * r : 16 * r + 16, 16 * c : 16 * c + 16])
                          for c in range(cols)])
                for r in range(rows)
            ]
        )
        np.testing.assert_array_equal(tile_luma_blocks(stacks), plane)

    def test_tile_luma_blocks_matches_join(self):
        blocks = np.random.default_rng(61).integers(0, 256, (2, 3, 4, 8, 8))
        tiled = tile_luma_blocks(blocks)
        for r in range(2):
            for c in range(3):
                np.testing.assert_array_equal(
                    tiled[16 * r : 16 * r + 16, 16 * c : 16 * c + 16],
                    join_luma_blocks(blocks[r, c]),
                )

    def test_tile_blocks_round_trip(self):
        plane = random_plane(62, 24, 32)
        grid = plane.reshape(3, 8, 4, 8).transpose(0, 2, 1, 3)
        np.testing.assert_array_equal(tile_blocks(grid), plane)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            tile_blocks(np.zeros((2, 3, 8, 4)))
        with pytest.raises(ValueError):
            tile_luma_blocks(np.zeros((2, 3, 6, 8, 8)))

    def test_add_residual_clip_matches_per_block_arithmetic(self):
        rng = np.random.default_rng(63)
        pred = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        residual = rng.normal(0, 40, (48, 64))
        expected = np.clip(np.rint(residual + pred.astype(np.float64)), 0, 255).astype(np.uint8)
        np.testing.assert_array_equal(add_residual_clip(pred, residual), expected)


# -- golden equivalence: decoder -----------------------------------------


class TestGoldenDecoder:
    @pytest.mark.parametrize("estimator", ["pbm", "fsbm", "acbm"])
    def test_batched_decode_bit_identical(self, estimator):
        """The tentpole guarantee: the batched decoder reconstructs the
        same frames, bit for bit, as the seed per-block loop — and both
        match the encoder's closed-loop reconstruction."""
        seq = moving_sequence(3)
        result = encode_sequence(
            seq, qp=10, estimator=estimator,
            estimator_kwargs={"p": 7}, keep_reconstruction=True,
        )
        batched = decode_bitstream(result.bitstream, use_engine=True)
        per_block = decode_bitstream(result.bitstream, use_engine=False)
        assert len(batched) == len(per_block) == 3
        for b, s, r in zip(batched, per_block, result.reconstruction):
            assert b == s
            assert b == r

    @pytest.mark.parametrize("qp", [1, 9, 16, 31])
    def test_batched_decode_across_qp_ladder(self, qp):
        seq = moving_sequence(2)
        result = encode_sequence(seq, qp=qp, estimator="pbm", keep_reconstruction=True)
        batched = decode_bitstream(result.bitstream, use_engine=True)
        per_block = decode_bitstream(result.bitstream, use_engine=False)
        for b, s in zip(batched, per_block):
            assert b == s

    def test_intra_only_stream(self):
        """Single-frame stream: the batched intra path (whole-frame
        dequantize + IDCT + tiling) against the per-block loop."""
        seq = moving_sequence(1)
        result = encode_sequence(seq, qp=12, estimator="pbm", keep_reconstruction=True)
        batched = decode_bitstream(result.bitstream, use_engine=True)
        per_block = decode_bitstream(result.bitstream, use_engine=False)
        assert len(batched) == len(per_block) == 1
        assert batched[0] == per_block[0] == result.reconstruction[0]

    def test_synthetic_preset_round_trip(self):
        seq = make_sequence("carphone", frames=3)
        result = encode_sequence(seq, qp=14, estimator="acbm", keep_reconstruction=True)
        batched = decode_bitstream(result.bitstream, use_engine=True)
        for b, r in zip(batched, result.reconstruction):
            assert b == r

    def test_half_pel_motion_stream(self):
        """Half-pel vectors exercise the cached half-plane gathers in
        both luma and chroma MC."""
        from repro.me.subpel import half_pel_block

        base = textured_plane(48, 64, seed=211)
        second = np.empty_like(base)
        second[:, :] = base
        second[:48, : 64 - 1] = half_pel_block(base, 0, 1, 48, 63)
        seq = Sequence([Frame(base, index=0), Frame(second, index=1)], fps=30)
        result = encode_sequence(seq, qp=8, estimator="fsbm",
                                 estimator_kwargs={"p": 3}, keep_reconstruction=True)
        batched = decode_bitstream(result.bitstream, use_engine=True)
        per_block = decode_bitstream(result.bitstream, use_engine=False)
        for b, s, r in zip(batched, per_block, result.reconstruction):
            assert b == s == r


# -- golden equivalence: encoder -----------------------------------------


class TestGoldenEncoder:
    @pytest.mark.parametrize("estimator", ["pbm", "fsbm", "acbm"])
    def test_bitstream_identical_with_engine(self, estimator):
        """Engine on/off produces byte-identical bitstreams and
        identical reconstructions through the closed-loop encoder —
        the shared chroma plane changes no sample."""
        seq = moving_sequence(3, seed=220)
        on = Encoder(estimator=estimator, qp=12, estimator_kwargs={"p": 7},
                     keep_reconstruction=True, use_engine=True).encode(seq)
        off = Encoder(estimator=estimator, qp=12, estimator_kwargs={"p": 7},
                      keep_reconstruction=True, use_engine=False).encode(seq)
        assert on.bitstream == off.bitstream
        assert on.mean_psnr_y == off.mean_psnr_y
        for a, b in zip(on.reconstruction, off.reconstruction):
            assert a == b

    def test_synthetic_preset_identical(self):
        seq = make_sequence("miss_america", frames=3, seed=1)
        on = encode_sequence(seq, qp=16, estimator="fsbm", use_engine=True)
        off = encode_sequence(seq, qp=16, estimator="fsbm", use_engine=False)
        assert on.bitstream == off.bitstream

    def test_engine_reconstruction_decodes_exactly(self):
        """End to end with every batched path on: encode (engine MC) →
        decode (batched reconstruction) is still the exact closed loop."""
        seq = make_sequence("foreman", frames=3, seed=2)
        result = encode_sequence(
            seq, qp=18, estimator="fsbm", keep_reconstruction=True, use_engine=True
        )
        decoded = decode_bitstream(result.bitstream, use_engine=True)
        for d, r in zip(decoded, result.reconstruction):
            assert d == r
