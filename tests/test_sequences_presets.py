"""Tests for the synthetic sequence presets and the scene renderer.

These pin the *calibrated properties* the experiments depend on: the
texture ordering of the four analogs, their determinism, and the
renderer's contracts.
"""

import numpy as np
import pytest

from repro.me.metrics import block_activity_map
from repro.video.frame import QCIF
from repro.video.synthesis.motion_models import CameraPath
from repro.video.synthesis.sequences import (
    SceneSpec,
    available_sequences,
    make_scene_spec,
    make_sequence,
    render_scene,
)
from repro.video.synthesis.texture import flat_field


class TestMakeSequence:
    @pytest.mark.parametrize("name", available_sequences())
    def test_renders_requested_frames(self, name):
        seq = make_sequence(name, frames=3)
        assert len(seq) == 3
        assert seq.geometry == QCIF
        assert seq.fps == 30.0
        assert seq.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sequence"):
            make_sequence("akiyo")

    def test_bad_frame_count(self):
        with pytest.raises(ValueError):
            make_sequence("foreman", frames=0)

    def test_deterministic_in_seed(self):
        a = make_sequence("carphone", frames=2, seed=5)
        b = make_sequence("carphone", frames=2, seed=5)
        for fa, fb in zip(a, b):
            assert fa == fb

    def test_seed_changes_content(self):
        a = make_sequence("carphone", frames=1, seed=0)
        b = make_sequence("carphone", frames=1, seed=1)
        assert a[0] != b[0]

    def test_frames_are_indexed(self):
        seq = make_sequence("table", frames=3)
        assert [f.index for f in seq] == [0, 1, 2]


class TestCalibration:
    """The paper-level properties the presets were tuned for."""

    @pytest.fixture(scope="class")
    def activity(self):
        out = {}
        for name in available_sequences():
            seq = make_sequence(name, frames=2)
            out[name] = float(np.median(block_activity_map(seq[1].y)))
        return out

    def test_miss_america_is_smoothest(self, activity):
        others = [v for k, v in activity.items() if k != "miss_america"]
        assert activity["miss_america"] < min(others)

    def test_textured_presets_far_above_miss_america(self, activity):
        """All three 'hard' analogs carry real texture; their *cost*
        ordering under ACBM also depends on motion predictability and is
        pinned by the integration tests, not here."""
        for name in ("table", "carphone", "foreman"):
            assert activity[name] > 3000
            assert activity[name] > 5 * activity["miss_america"]

    def test_foreman_reaches_paper_intra_range(self, activity):
        """Fig. 4's x-axis runs to ~12000; textured foreman blocks must
        populate the multi-thousand region."""
        assert activity["foreman"] > 3000

    def test_consecutive_frames_differ(self):
        seq = make_sequence("miss_america", frames=2)
        assert seq[0] != seq[1]

    @pytest.mark.parametrize("name", available_sequences())
    def test_luma_range_used(self, name):
        frame = make_sequence(name, frames=1)[0]
        assert frame.y.max() - frame.y.min() > 50

    @pytest.mark.parametrize("name", available_sequences())
    def test_chroma_not_constant(self, name):
        frame = make_sequence(name, frames=1)[0]
        assert frame.cb.std() > 0.5
        assert frame.cr.std() > 0.5


class TestSceneSpec:
    def test_background_too_small_rejected(self):
        with pytest.raises(ValueError, match="world-sized"):
            SceneSpec(
                name="x",
                geometry=QCIF,
                frames=1,
                margin=16,
                background=flat_field(100, 100),
                camera=CameraPath.static(1, 16, 16),
            )

    def test_short_camera_path_rejected(self):
        with pytest.raises(ValueError, match="poses"):
            SceneSpec(
                name="x",
                geometry=QCIF,
                frames=5,
                margin=16,
                background=flat_field(144 + 32, 176 + 32),
                camera=CameraPath.static(2, 16, 16),
            )

    def test_make_scene_spec_exposes_preset(self):
        spec = make_scene_spec("foreman", frames=4)
        assert spec.name == "foreman"
        assert spec.frames == 4
        assert len(spec.sprites) >= 1


class TestRenderScene:
    def test_flat_scene_stays_flat_without_noise(self):
        spec = SceneSpec(
            name="flat",
            geometry=QCIF,
            frames=2,
            margin=16,
            background=flat_field(144 + 32, 176 + 32, level=100.0),
            camera=CameraPath.static(2, 16, 16),
            sensor_noise_sigma=0.0,
            shimmer_sigma=0.0,
            chroma_gain=(0.0, 0.0),
        )
        seq = render_scene(spec)
        assert (seq[0].y == 100).all()
        assert (seq[1].y == 100).all()
        assert (seq[0].cb == 128).all()

    def test_shimmer_only_affects_textured_areas(self):
        """Gradient-coupled shimmer must leave flat regions untouched."""
        h, w = 144 + 32, 176 + 32
        background = flat_field(h, w, level=100.0)
        background[:, w // 2 :] = np.random.default_rng(0).integers(
            60, 200, (h, w - w // 2)
        )
        spec = SceneSpec(
            name="half",
            geometry=QCIF,
            frames=2,
            margin=16,
            background=background,
            camera=CameraPath.static(2, 16, 16),
            sensor_noise_sigma=0.0,
            shimmer_sigma=8.0,
            chroma_gain=(0.0, 0.0),
        )
        seq = render_scene(spec)
        diff = seq[1].y.astype(int) - seq[0].y.astype(int)
        flat_half = np.abs(diff[:, : 176 // 2 - 8])
        textured_half = np.abs(diff[:, 176 // 2 + 8 :])
        assert flat_half.mean() < 0.05
        assert textured_half.mean() > 1.0
