"""Unit tests for repro.codec.vlc and repro.codec.vlc_tables."""

import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.vlc import (
    VLCTable,
    canonical_codes,
    huffman_code_lengths,
    read_se_golomb,
    read_ue_golomb,
    se_golomb_bits,
    se_golomb_code,
    ue_golomb_code,
)
from repro.codec.vlc_tables import (
    CBPY_TABLE,
    ESCAPE,
    MCBPC_TABLE,
    TCOEF_TABLE,
    tcoef_event_bits,
    tcoef_symbol,
)
from repro.codec.zigzag import CoefficientEvent


class TestHuffman:
    def test_two_symbols_one_bit_each(self):
        lengths = huffman_code_lengths(["a", "b"], [1.0, 1.0])
        assert lengths == {"a": 1, "b": 1}

    def test_rare_symbols_get_longer_codes(self):
        lengths = huffman_code_lengths(["hot", "warm", "cold"], [8.0, 2.0, 1.0])
        assert lengths["hot"] < lengths["cold"]

    def test_kraft_equality(self):
        weights = [13.0, 7.0, 5.0, 3.0, 2.0, 1.0, 1.0]
        lengths = huffman_code_lengths(list("abcdefg"), weights)
        assert sum(2.0 ** -l for l in lengths.values()) == pytest.approx(1.0)

    def test_single_symbol(self):
        assert huffman_code_lengths(["x"], [1.0]) == {"x": 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            huffman_code_lengths([], [])
        with pytest.raises(ValueError):
            huffman_code_lengths(["a", "b"], [1.0, 0.0])

    def test_deterministic(self):
        symbols = list(range(20))
        weights = [1.0] * 20  # fully tied: order must break ties
        a = huffman_code_lengths(symbols, weights)
        b = huffman_code_lengths(symbols, weights)
        assert a == b


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = {"a": 1, "b": 2, "c": 3, "d": 3}
        codes = canonical_codes(lengths, ["a", "b", "c", "d"])
        bits = {
            sym: format(value, f"0{length}b") for sym, (value, length) in codes.items()
        }
        values = list(bits.values())
        for i, x in enumerate(values):
            for j, y in enumerate(values):
                if i != j:
                    assert not y.startswith(x)

    def test_lexicographic_by_length(self):
        codes = canonical_codes({"a": 1, "b": 2, "c": 2}, ["a", "b", "c"])
        assert codes["a"] == (0b0, 1)
        assert codes["b"] == (0b10, 2)
        assert codes["c"] == (0b11, 2)


class TestVLCTable:
    def test_encode_decode_round_trip_all_symbols(self):
        table = VLCTable(list(range(30)), [1.0 / (i + 1) for i in range(30)])
        writer = BitWriter()
        for sym in range(30):
            writer.write_code(table.encode(sym))
        reader = BitReader(writer.getvalue())
        for sym in range(30):
            assert table.decode(reader) == sym

    def test_kraft_sum_is_one(self):
        table = VLCTable(list("abcde"), [5, 3, 2, 1, 1])
        assert table.kraft_sum() == pytest.approx(1.0)

    def test_unknown_symbol(self):
        table = VLCTable(["x"], [1.0])
        with pytest.raises(KeyError):
            table.encode("y")

    def test_contains(self):
        table = VLCTable(["x", "y"], [1.0, 1.0])
        assert "x" in table and "z" not in table


class TestExpGolomb:
    def test_ue_known_values(self):
        assert ue_golomb_code(0) == (1, 1)      # "1"
        assert ue_golomb_code(1) == (2, 3)      # "010"
        assert ue_golomb_code(2) == (3, 3)      # "011"
        assert ue_golomb_code(3) == (4, 5)      # "00100"

    def test_ue_rejects_negative(self):
        with pytest.raises(ValueError):
            ue_golomb_code(-1)

    def test_se_zero_is_one_bit(self):
        assert se_golomb_bits(0) == 1

    def test_se_symmetry(self):
        for v in range(1, 40):
            assert se_golomb_bits(v) == se_golomb_bits(-v) or abs(
                se_golomb_bits(v) - se_golomb_bits(-v)
            ) <= 2

    def test_se_round_trip(self):
        writer = BitWriter()
        values = list(range(-40, 41))
        for v in values:
            writer.write_code(se_golomb_code(v))
        reader = BitReader(writer.getvalue())
        for v in values:
            assert read_se_golomb(reader) == v

    def test_ue_round_trip(self):
        writer = BitWriter()
        for v in range(100):
            writer.write_code(ue_golomb_code(v))
        reader = BitReader(writer.getvalue())
        for v in range(100):
            assert read_ue_golomb(reader) == v

    def test_longer_values_cost_more_bits(self):
        assert se_golomb_bits(1) < se_golomb_bits(10) < se_golomb_bits(100)


class TestTcoefTable:
    def test_most_common_event_has_short_code(self):
        """(LAST=0, RUN=0, LEVEL=1) must get one of the shortest codes,
        as in H.263's table."""
        assert TCOEF_TABLE.code_length((0, 0, 1)) <= 4

    def test_code_length_grows_with_run_and_level(self):
        assert TCOEF_TABLE.code_length((0, 0, 1)) < TCOEF_TABLE.code_length((0, 5, 1))
        assert TCOEF_TABLE.code_length((0, 0, 1)) < TCOEF_TABLE.code_length((0, 0, 5))

    def test_escape_in_table(self):
        assert ESCAPE in TCOEF_TABLE

    def test_kraft_equality(self):
        assert TCOEF_TABLE.kraft_sum() == pytest.approx(1.0)

    def test_symbol_mapping(self):
        assert tcoef_symbol(CoefficientEvent(False, 3, -2)) == (0, 3, 2)
        assert tcoef_symbol(CoefficientEvent(True, 0, 1)) == (1, 0, 1)
        assert tcoef_symbol(CoefficientEvent(False, 50, 1)) is ESCAPE
        assert tcoef_symbol(CoefficientEvent(False, 0, 99)) is ESCAPE

    def test_event_bits_includes_sign(self):
        event = CoefficientEvent(False, 0, 1)
        assert tcoef_event_bits(event) == TCOEF_TABLE.code_length((0, 0, 1)) + 1

    def test_escape_bits(self):
        event = CoefficientEvent(False, 40, 1)
        assert tcoef_event_bits(event) == TCOEF_TABLE.code_length(ESCAPE) + 15


class TestPatternTables:
    def test_cbpy_covers_all_patterns(self):
        for pattern in range(16):
            value, length = CBPY_TABLE.encode(pattern)
            assert length >= 1

    def test_mcbpc_covers_all_patterns(self):
        for pattern in range(4):
            MCBPC_TABLE.encode(pattern)

    def test_empty_pattern_is_cheapest(self):
        assert CBPY_TABLE.code_length(0) == min(
            CBPY_TABLE.code_length(p) for p in range(16)
        )
        assert MCBPC_TABLE.code_length(0) == min(
            MCBPC_TABLE.code_length(p) for p in range(4)
        )
