"""Kernel-backend registry, selection edge cases, and compiled-kernel
bit identity.

The numba backend's kernels are plain Python functions that only get
``@njit``-wrapped lazily, so everything about them except raw speed is
testable without numba: ``make_backend(jit=False)`` builds a
"numba-sim" backend running the identical kernel bodies un-jitted.
This module pins

* registry semantics — ``REPRO_BACKEND`` resolution, the loud error
  for a forced-but-missing numba, the silent ``auto`` fallback,
  spawn-boundary name filtering;
* the flat packed LUTs against the nested LUT walk, code-for-code;
* encode/decode **bit identity** (byte-identical bitstreams, identical
  frames) between the numpy backend and the sim backend across v1/v2
  syntax, GOP structure, intra prediction and multi-reference;
* **error parity** — corrupt and truncated streams raise the same
  exception type and message under every backend, because the compiled
  scan never consumes bits unless the whole structure parsed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.decoder import decode_bitstream, parse_bitstream_symbols
from repro.codec.encoder import Encoder
from repro.codec.macroblock import read_block_levels
from repro.codec.vlc_tables import ESCAPE, TCOEF_TABLE
from repro.kernels import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backend_names,
    get_backend,
    numba_available,
    reset_backend,
    set_backend,
)
from repro.kernels.lut_pack import (
    PACKED_TCOEF,
    TCOEF_FIRST_BITS,
    tcoef_symbol_id,
)
from repro.kernels.numba_backend import k_read_vlc, make_backend
from repro.video.frame import Frame
from repro.video.sequence import Sequence

from .conftest import shifted_plane, textured_plane


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Each test starts from an unpinned registry with no env override
    and leaves the same way."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    reset_backend()
    yield
    reset_backend()


@pytest.fixture(scope="module")
def sim_backend() -> KernelBackend:
    return make_backend(jit=False)


def small_clip(frames: int = 4, seed: int = 7) -> Sequence:
    base = textured_plane(48, 64, seed=seed)
    return Sequence(
        [Frame(shifted_plane(base, (i % 3) - 1, i % 2), index=i) for i in range(frames)],
        fps=30.0,
        name="backendclip",
    )


# -- registry / selection edge cases -------------------------------------


class TestRegistry:
    def test_default_resolution(self):
        """No env, no pin: numba when importable, else numpy."""
        expected = "numba" if numba_available() else "numpy"
        assert get_backend().name == expected

    def test_env_var_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        reset_backend()
        assert get_backend().name == "numpy"

    def test_auto_falls_back_silently(self, monkeypatch):
        """``auto`` never raises — it is the spelling for 'numba if you
        have it', so a numba-less machine just gets numpy."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        reset_backend()
        assert get_backend().name in ("numpy", "numba")

    def test_forced_numba_without_numba_raises(self, monkeypatch):
        """``REPRO_BACKEND=numba`` on a machine without numba must fail
        loudly, naming the env var — not silently un-accelerate."""
        if numba_available():
            pytest.skip("numba installed — the forced path succeeds here")
        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        reset_backend()
        with pytest.raises(RuntimeError, match=BACKEND_ENV_VAR):
            get_backend()
        with pytest.raises(RuntimeError, match="--backend"):
            set_backend("numba")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("cuda")

    def test_set_backend_instance_and_reset(self, sim_backend):
        assert set_backend(sim_backend) is sim_backend
        assert get_backend() is sim_backend
        reset_backend()
        assert get_backend().name in ("numpy", "numba")

    def test_available_names(self):
        names = available_backend_names()
        assert names[0] == "numpy" or "numpy" in names
        assert ("numba" in names) == numba_available()

    def test_runner_backend_flag(self, capsys):
        """The runner's global --backend flag: numpy accepted, numba
        without numba exits 2 with the registry's error."""
        from repro.experiments.runner import main

        assert main(["decode-bench", "--frames", "1", "--rounds", "1",
                     "--backend", "numpy"]) == 0
        if not numba_available():
            assert main(["decode-bench", "--frames", "1", "--rounds", "1",
                         "--backend", "numba"]) == 2
            assert BACKEND_ENV_VAR in capsys.readouterr().err

    def test_spawn_name_filter(self, sim_backend):
        """Only real installable backend names cross the spawn boundary:
        an explicit request wins; a pinned sim instance (unknown to a
        fresh child process) must not travel."""
        from repro.parallel.pool import _spawn_backend_name

        assert _spawn_backend_name("numpy") == "numpy"
        set_backend("numpy")
        assert _spawn_backend_name(None) == "numpy"
        set_backend(sim_backend)
        assert _spawn_backend_name(None) is None
        assert _spawn_backend_name("numba") == "numba"


# -- packed LUTs ----------------------------------------------------------


class TestPackedLut:
    def test_packed_tcoef_matches_nested_walk(self):
        """Every TCOEF code decodes to the same symbol through the flat
        packed array as through the nested LUT walk."""
        for symbol, _code in TCOEF_TABLE.items():
            writer = BitWriter()
            writer.write_code(TCOEF_TABLE.encode(symbol))
            data = np.frombuffer(writer.getvalue(), dtype=np.uint8)
            sym_id, new_pos = k_read_vlc(
                data, 0, 8 * len(data), PACKED_TCOEF, TCOEF_FIRST_BITS
            )
            assert sym_id == tcoef_symbol_id(symbol)
            assert new_pos == TCOEF_TABLE.code_length(symbol)
            reader = BitReader(writer.getvalue())
            assert reader.read_vlc(TCOEF_TABLE.lut, TCOEF_TABLE.lut_first_bits) == symbol

    def test_invalid_prefix_signals_fallback(self):
        """An INVALID packed entry returns -1 (replay in Python) without
        consuming bits.  The real tables are complete Huffman codes with
        no invalid prefixes, so pin the path on a hand-built 1-bit LUT:
        prefix ``0`` invalid, prefix ``1`` a length-1 leaf for symbol 5."""
        from repro.kernels.lut_pack import INVALID

        lut = np.array([INVALID, (1 << 16) | 5], dtype=np.int32)
        sym_id, _pos = k_read_vlc(np.zeros(1, dtype=np.uint8), 0, 8, lut, 1)
        assert sym_id == -1
        sym_id, new_pos = k_read_vlc(np.array([0x80], dtype=np.uint8), 0, 8, lut, 1)
        assert sym_id == 5
        assert new_pos == 1

    def test_truncated_stream_signals_fallback(self):
        """Bits run out mid-code: the kernel reports fallback rather
        than inventing padding (the Python replay raises the EOFError)."""
        symbol = next(sym for sym, (_v, length) in TCOEF_TABLE.items() if length >= 4)
        writer = BitWriter()
        writer.write_code(TCOEF_TABLE.encode(symbol))
        data = np.frombuffer(writer.getvalue(), dtype=np.uint8)
        nbits = TCOEF_TABLE.code_length(symbol) - 1  # one bit short
        sym_id, _pos = k_read_vlc(data, 0, nbits, PACKED_TCOEF, TCOEF_FIRST_BITS)
        assert sym_id == -1


# -- bit identity: sim backend vs numpy backend ---------------------------


ENCODER_CONFIGS = [
    dict(estimator="fsbm", qp=16, bitstream_version=1),
    dict(estimator="tss", qp=12, bitstream_version=2, i_period=2),
    dict(estimator="fsbm", qp=20, bitstream_version=2, i_period=3, n_ref_frames=2),
]


class TestSimBitIdentity:
    @pytest.mark.parametrize("config", ENCODER_CONFIGS)
    def test_encode_decode_identical(self, sim_backend, config):
        """Encoding and decoding under the (un-jitted) numba kernels is
        byte- and sample-identical to the numpy backend — v1 seed
        syntax, v2 GOP/intra-pred syntax and multi-reference alike."""
        clip = small_clip()
        set_backend("numpy")
        bs_numpy = Encoder(keep_reconstruction=False, **config).encode(clip).bitstream
        frames_numpy = decode_bitstream(bs_numpy)
        set_backend(sim_backend)
        bs_sim = Encoder(keep_reconstruction=False, **config).encode(clip).bitstream
        frames_sim = decode_bitstream(bs_numpy)
        assert bs_sim == bs_numpy
        assert len(frames_sim) == len(frames_numpy)
        assert all(a == b for a, b in zip(frames_sim, frames_numpy))

    def test_parse_symbols_identical(self, sim_backend):
        clip = small_clip()
        set_backend("numpy")
        bs = Encoder(
            estimator="tss", qp=14, bitstream_version=2, i_period=2,
            keep_reconstruction=False,
        ).encode(clip).bitstream
        parsed_numpy = parse_bitstream_symbols(bs)
        set_backend(sim_backend)
        parsed_sim = parse_bitstream_symbols(bs)
        assert len(parsed_sim) == len(parsed_numpy)
        assert all(a == b for a, b in zip(parsed_sim, parsed_numpy))


# -- error parity ---------------------------------------------------------


def _decode_outcome(bitstream: bytes):
    """(type name, message) of the decode failure, or the frame count."""
    try:
        return len(decode_bitstream(bitstream))
    except Exception as exc:  # noqa: BLE001 — parity is the whole point
        return (type(exc).__name__, str(exc))


class TestErrorParity:
    def test_corrupt_streams_fail_identically(self, sim_backend):
        """Bit flips and truncations anywhere in a valid stream produce
        the same exception type and message under both backends (the
        compiled scan backs off without consuming bits, so the Python
        path reports every error)."""
        clip = small_clip()
        set_backend("numpy")
        good = Encoder(
            estimator="tss", qp=18, bitstream_version=1, keep_reconstruction=False
        ).encode(clip).bitstream
        cases = [good[:n] for n in range(0, len(good), 97)]
        rng = np.random.default_rng(3)
        for _ in range(40):
            corrupt = bytearray(good)
            corrupt[rng.integers(0, len(good))] ^= 1 << rng.integers(0, 8)
            cases.append(bytes(corrupt))
        outcomes_numpy = []
        for case in cases:
            set_backend("numpy")
            outcomes_numpy.append(_decode_outcome(case))
        for case, expected in zip(cases, outcomes_numpy):
            set_backend(sim_backend)
            assert _decode_outcome(case) == expected

    def test_escape_level_zero_message_parity(self, sim_backend):
        """The one structure error the compiled scan detects itself
        (escape level 0) still surfaces with the Python path's exact
        message, because the scan defers to the replay."""
        writer = BitWriter()
        writer.write_code(TCOEF_TABLE.encode(ESCAPE))
        writer.write_bit(1)          # last
        writer.write_bits(0, 6)      # run
        writer.write_bits(0, 8)      # level 0 — illegal
        data = writer.getvalue()
        messages = []
        for backend in ("numpy", sim_backend):
            set_backend(backend)
            out = np.zeros(64, dtype=np.int64)
            with pytest.raises(ValueError) as excinfo:
                read_block_levels(BitReader(data), out)
            messages.append(str(excinfo.value))
            assert not out.any()
        assert messages[0] == messages[1] == "escape-coded level of 0 is illegal"

    def test_block_overflow_message_parity(self, sim_backend):
        """Events overflowing the 64-coefficient block: same ValueError
        either way (the compiled scan defers the overflow exactly like
        the reference path, so truncation stays an EOFError)."""
        long_run = next(
            sym for sym, _ in TCOEF_TABLE.items()
            if sym is not ESCAPE and sym[1] >= 10 and not sym[0]
        )
        writer = BitWriter()
        for _ in range(8):
            writer.write_code(TCOEF_TABLE.encode(long_run))
            writer.write_bit(0)
        last_sym = next(sym for sym, _ in TCOEF_TABLE.items() if sym is not ESCAPE and sym[0])
        writer.write_code(TCOEF_TABLE.encode(last_sym))
        writer.write_bit(0)
        data = writer.getvalue()
        messages = []
        for backend in ("numpy", sim_backend):
            set_backend(backend)
            out = np.zeros(64, dtype=np.int64)
            with pytest.raises(ValueError, match="overflow the block") as excinfo:
                read_block_levels(BitReader(data), out)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]


# -- sim backend kernel smoke --------------------------------------------


class TestSimKernels:
    def test_sad_surfaces_match_numpy(self, sim_backend):
        from repro.me.engine.kernels import sad_surfaces_numpy

        rng = np.random.default_rng(11)
        cur = rng.integers(0, 256, (48, 64), dtype=np.uint8)
        ref = rng.integers(0, 256, (48, 64), dtype=np.uint8)
        expected = sad_surfaces_numpy(cur, ref, 16, 7)
        got = sim_backend.sad_surfaces(cur, ref, 16, 7)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_dequant_matches_numpy(self, sim_backend):
        from repro.codec.quantizer import dequantize

        rng = np.random.default_rng(5)
        levels = rng.integers(-40, 41, (8, 8)).astype(np.int64)
        for qp in (1, 7, 16, 31):
            assert np.array_equal(sim_backend.dequant(levels, qp), dequantize(levels, qp))

    def test_idct_is_shared_binding(self, sim_backend):
        """No backend reimplements the IDCT — float reassociation could
        flip rint half-cases, so all backends bind the same matmul."""
        from repro.codec.dct import inverse_dct
        from repro.kernels.numpy_backend import BACKEND as NUMPY_BACKEND

        assert sim_backend.idct is inverse_dct
        assert NUMPY_BACKEND.idct is inverse_dct
