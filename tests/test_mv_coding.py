"""Unit tests for repro.codec.mv_coding (H.263 median prediction + MVD)."""

import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.mv_coding import (
    field_bits,
    mvd_bits,
    predict_mv,
    read_mvd,
    write_mvd,
)
from repro.me.types import MotionField, MotionVector


def field_with(entries, rows=3, cols=4):
    field = MotionField(rows, cols)
    for (r, c), mv in entries.items():
        field.set(r, c, mv)
    return field


class TestPredictMv:
    def test_first_block_predicts_zero(self):
        field = MotionField(3, 4)
        assert predict_mv(field, 0, 0) == MotionVector.zero()

    def test_top_row_uses_left(self):
        field = field_with({(0, 0): MotionVector(6, 2)})
        assert predict_mv(field, 0, 1) == MotionVector(6, 2)

    def test_median_of_three(self):
        field = field_with(
            {
                (1, 0): MotionVector(2, 0),    # left
                (0, 1): MotionVector(4, 2),    # above
                (0, 2): MotionVector(6, -2),   # above-right
            }
        )
        assert predict_mv(field, 1, 1) == MotionVector(4, 0)

    def test_missing_above_right_treated_as_zero(self):
        field = field_with(
            {
                (1, 2): MotionVector(4, 4),   # left of (1,3)
                (0, 3): MotionVector(4, 4),   # above (last column)
            },
        )
        # above-right outside grid → zero; median(4, 4, 0) = 4.
        assert predict_mv(field, 1, 3) == MotionVector(4, 4)

    def test_left_missing_on_row_start(self):
        field = field_with(
            {
                (0, 0): MotionVector(8, 0),
                (0, 1): MotionVector(8, 0),
            }
        )
        # left → zero; median(0, 8, 8) = 8.
        assert predict_mv(field, 1, 0) == MotionVector(8, 0)

    def test_component_wise_median(self):
        field = field_with(
            {
                (1, 0): MotionVector(10, -4),
                (0, 1): MotionVector(0, 0),
                (0, 2): MotionVector(2, 8),
            }
        )
        assert predict_mv(field, 1, 1) == MotionVector(2, 0)


class TestMvdBits:
    def test_zero_difference_costs_two_bits(self):
        # One 1-bit exp-Golomb zero per component.
        assert mvd_bits(MotionVector(4, -2), MotionVector(4, -2)) == 2

    def test_cost_grows_with_difference(self):
        pred = MotionVector.zero()
        assert mvd_bits(MotionVector(1, 0), pred) < mvd_bits(MotionVector(20, 0), pred)

    def test_write_matches_declared_bits(self):
        writer = BitWriter()
        mv, pred = MotionVector(-7, 9), MotionVector(1, -1)
        written = write_mvd(writer, mv, pred)
        assert written == mvd_bits(mv, pred) == writer.bit_count

    def test_write_read_round_trip(self):
        cases = [
            (MotionVector(0, 0), MotionVector(0, 0)),
            (MotionVector(31, -31), MotionVector.zero()),
            (MotionVector(-5, 17), MotionVector(3, 3)),
        ]
        writer = BitWriter()
        for mv, pred in cases:
            write_mvd(writer, mv, pred)
        reader = BitReader(writer.getvalue())
        for mv, pred in cases:
            assert read_mvd(reader, pred) == mv


class TestFieldBits:
    def test_uniform_field_is_cheap(self):
        uniform = MotionField(4, 6)
        for r, c, _ in uniform:
            uniform.set(r, c, MotionVector(8, -4))
        jagged = MotionField(4, 6)
        import random

        rnd = random.Random(3)
        for r, c, _ in jagged:
            jagged.set(r, c, MotionVector(rnd.randint(-15, 15) * 2, rnd.randint(-15, 15) * 2))
        assert field_bits(uniform) < field_bits(jagged)

    def test_zero_field_minimum_cost(self):
        field = MotionField.zeros(4, 6)
        assert field_bits(field) == 2 * 24  # 1 bit per component per MB

    def test_incomplete_field_rejected(self):
        with pytest.raises(ValueError):
            field_bits(MotionField(2, 2))

    def test_smooth_fields_beat_incoherent_ones(self):
        """The paper's R(mv) argument: predictive (smooth) fields cost
        fewer bits than full-search (incoherent) fields."""
        smooth = MotionField(3, 4)
        for r, c, _ in smooth:
            smooth.set(r, c, MotionVector(2 * c // 2, 0))  # slowly varying
        noisy = MotionField(3, 4)
        values = [(-20, 14), (8, -30), (0, 0), (22, 2), (-6, -8), (30, 30),
                  (-30, 4), (2, -22), (16, 16), (-12, 28), (6, -2), (26, -18)]
        for (r, c, _), (hx, hy) in zip(noisy, values):
            noisy.set(r, c, MotionVector(hx, hy))
        assert field_bits(smooth) < field_bits(noisy)
