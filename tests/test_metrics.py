"""Unit tests for repro.me.metrics (the paper's Section 2-3 formulas)."""

import numpy as np
import pytest

from repro.me.metrics import (
    block_activity_map,
    intra_sad,
    mse,
    sad,
    sad_deviation,
    sad_map,
    satd,
)


class TestSad:
    def test_identical_blocks(self):
        block = np.full((16, 16), 77, dtype=np.uint8)
        assert sad(block, block) == 0

    def test_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        assert sad(a, b) == 10

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        b = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        assert sad(a, b) == sad(b, a)

    def test_no_uint8_overflow(self):
        a = np.full((4, 4), 255, dtype=np.uint8)
        b = np.zeros((4, 4), dtype=np.uint8)
        assert sad(a, b) == 16 * 255

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sad(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_returns_python_int(self):
        assert isinstance(sad(np.zeros((2, 2)), np.ones((2, 2))), int)


class TestMse:
    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 2)
        assert mse(a, b) == 4.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 2)))


class TestIntraSad:
    def test_flat_block_is_zero(self):
        assert intra_sad(np.full((16, 16), 93, dtype=np.uint8)) == 0.0

    def test_known_value(self):
        # mean = 2, |devs| = 1, 1, 1, 1
        block = np.array([[1, 3], [1, 3]], dtype=np.uint8)
        assert intra_sad(block) == 4.0

    def test_non_integer_mean(self):
        block = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        # mean 0.75: |devs| = 0.75 + 3*0.25 = 1.5
        assert intra_sad(block) == pytest.approx(1.5)

    def test_scales_with_contrast(self):
        lo = np.tile(np.array([[100, 110]], dtype=np.uint8), (8, 8))
        hi = np.tile(np.array([[50, 200]], dtype=np.uint8), (8, 8))
        assert intra_sad(hi) > intra_sad(lo)

    def test_invariant_to_brightness_offset(self):
        rng = np.random.default_rng(1)
        block = rng.integers(10, 100, (16, 16))
        assert intra_sad(block + 50) == pytest.approx(intra_sad(block))


class TestSadDeviation:
    def test_all_equal_gives_zero(self):
        assert sad_deviation(np.full(25, 100)) == 0

    def test_known_value(self):
        assert sad_deviation(np.array([5, 7, 10])) == (0 + 2 + 5)

    def test_sharp_minimum_large_deviation(self):
        flat = np.full(100, 50)
        sharp = np.full(100, 50)
        sharp[0] = 0
        assert sad_deviation(sharp) > sad_deviation(flat)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sad_deviation(np.array([], dtype=np.int64))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sad_deviation(np.array([3, -1]))


class TestSadMap:
    def test_matches_naive_computation(self):
        rng = np.random.default_rng(2)
        block = rng.integers(0, 256, (4, 4), dtype=np.uint8)
        window = rng.integers(0, 256, (7, 9), dtype=np.uint8)
        got = sad_map(block, window)
        assert got.shape == (4, 6)
        for i in range(4):
            for j in range(6):
                assert got[i, j] == sad(block, window[i : i + 4, j : j + 4])

    def test_zero_at_true_position(self):
        rng = np.random.default_rng(3)
        window = rng.integers(0, 256, (20, 20), dtype=np.uint8)
        block = window[5:13, 7:15]
        got = sad_map(block, window)
        assert got[5, 7] == 0

    def test_window_too_small(self):
        with pytest.raises(ValueError):
            sad_map(np.zeros((8, 8)), np.zeros((4, 4)))

    def test_dtype_int64(self):
        got = sad_map(np.zeros((2, 2), dtype=np.uint8), np.zeros((4, 4), dtype=np.uint8))
        assert got.dtype == np.int64


class TestSatd:
    def test_identical_is_zero(self):
        block = np.random.default_rng(4).integers(0, 256, (8, 8), dtype=np.uint8)
        assert satd(block, block) == 0

    def test_dc_difference(self):
        a = np.zeros((8, 8), dtype=np.uint8)
        b = np.full((8, 8), 3, dtype=np.uint8)
        # Hadamard of constant −3 concentrates in the DC term: 64 * 3.
        assert satd(a, b) == 192

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            satd(np.zeros((6, 6)), np.zeros((6, 6)))

    def test_nonnegative(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        b = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        assert satd(a, b) >= 0


class TestBlockActivityMap:
    def test_matches_per_block_intra_sad(self):
        rng = np.random.default_rng(6)
        plane = rng.integers(0, 256, (48, 64), dtype=np.uint8)
        amap = block_activity_map(plane, block_size=16)
        assert amap.shape == (3, 4)
        for r in range(3):
            for c in range(4):
                block = plane[16 * r : 16 * r + 16, 16 * c : 16 * c + 16]
                assert amap[r, c] == pytest.approx(intra_sad(block))

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            block_activity_map(np.zeros((20, 32)), block_size=16)
