"""End-to-end tests of the paper's headline claims (Section 4).

These are the acceptance criteria from DESIGN.md section 5, run on
reduced workloads: shapes and orderings, not absolute numbers.
"""

import pytest

from repro.codec.encoder import encode_sequence
from repro.experiments.table1_complexity import fsbm_reference_positions
from repro.video.synthesis.sequences import make_sequence


@pytest.fixture(scope="module")
def foreman30():
    return make_sequence("foreman", frames=13, seed=0)


@pytest.fixture(scope="module")
def foreman10(foreman30):
    return foreman30.subsample(3)


@pytest.fixture(scope="module")
def miss_america30():
    return make_sequence("miss_america", frames=13, seed=0)


@pytest.fixture(scope="module")
def foreman_results(foreman30, foreman10):
    """Encodes shared by several claims below."""
    out = {}
    for label, seq in (("30", foreman30), ("10", foreman10)):
        for est in ("acbm", "fsbm", "pbm"):
            out[(label, est)] = encode_sequence(seq, qp=20, estimator=est)
    return out


class TestClaimQualityMatchesFsbm:
    """"similar quality levels to the ones obtained with the FSBM"."""

    def test_acbm_psnr_within_tolerance_of_fsbm(self, foreman_results):
        for fps in ("30", "10"):
            acbm = foreman_results[(fps, "acbm")]
            fsbm = foreman_results[(fps, "fsbm")]
            assert acbm.mean_psnr_y >= fsbm.mean_psnr_y - 0.25

    def test_acbm_rate_not_worse_than_fsbm(self, foreman_results):
        """The "slightly better rate-distortion" comes from the cheaper
        (smoother) motion field: at matched Qp, rate must not exceed
        FSBM's by more than a hair."""
        for fps in ("30", "10"):
            acbm = foreman_results[(fps, "acbm")]
            fsbm = foreman_results[(fps, "fsbm")]
            assert acbm.rate_kbps <= fsbm.rate_kbps * 1.02


class TestClaimComplexityReduction:
    """"reductions of up to 95% in the computational load"."""

    def test_acbm_cheaper_than_fsbm_on_foreman(self, foreman_results):
        acbm = foreman_results[("30", "acbm")]
        assert acbm.avg_positions_per_mb < fsbm_reference_positions(15)

    def test_miss_america_reduction_is_dramatic(self, miss_america30):
        result = encode_sequence(miss_america30, qp=28, estimator="acbm")
        reduction = 1.0 - result.avg_positions_per_mb / fsbm_reference_positions(15)
        assert reduction > 0.9  # the "up to 95%" regime

    def test_cost_ordering_smooth_below_textured(self, miss_america30, foreman30):
        smooth = encode_sequence(miss_america30, qp=22, estimator="acbm")
        textured = encode_sequence(foreman30, qp=22, estimator="acbm")
        assert smooth.avg_positions_per_mb < textured.avg_positions_per_mb

    def test_cost_grows_as_qp_shrinks(self, foreman30):
        costs = [
            encode_sequence(foreman30[:7], qp=qp, estimator="acbm").avg_positions_per_mb
            for qp in (30, 22, 16)
        ]
        assert costs[0] <= costs[1] <= costs[2]


class TestClaimPbmGapGrowsAtLowFrameRate:
    """"the difference between PBM and ACBM becomes larger as the frame
    rate decreases" (Figs. 5 vs 6)."""

    @staticmethod
    def _quality_gap(results, fps):
        """ACBM advantage over PBM in dB, charging rate differences at
        0.1 dB per % rate (enough to rank clearly dominated points)."""
        acbm = results[(fps, "acbm")]
        pbm = results[(fps, "pbm")]
        psnr_gap = acbm.mean_psnr_y - pbm.mean_psnr_y
        rate_gap = (pbm.rate_kbps - acbm.rate_kbps) / acbm.rate_kbps
        return psnr_gap + 10.0 * rate_gap

    def test_gap_wider_at_10fps(self, foreman_results):
        gap30 = self._quality_gap(foreman_results, "30")
        gap10 = self._quality_gap(foreman_results, "10")
        assert gap10 > gap30

    def test_pbm_clearly_dominated_at_10fps(self, foreman_results):
        """At 10 fps the predictive search is trapped by the displaced
        periodic texture: worse PSNR at (much) higher rate."""
        acbm = foreman_results[("10", "acbm")]
        pbm = foreman_results[("10", "pbm")]
        assert pbm.rate_kbps > acbm.rate_kbps * 1.1
        assert pbm.mean_psnr_y < acbm.mean_psnr_y + 0.05


class TestClaimPbmIsCheapButSequenceDependent:
    def test_pbm_cost_tiny_everywhere(self, foreman_results):
        for fps in ("30", "10"):
            pbm = foreman_results[(fps, "pbm")]
            assert pbm.avg_positions_per_mb < 60

    def test_acbm_tracks_pbm_cost_on_easy_content(self, miss_america30):
        acbm = encode_sequence(miss_america30, qp=28, estimator="acbm")
        pbm = encode_sequence(miss_america30, qp=28, estimator="pbm")
        assert acbm.avg_positions_per_mb < 3 * pbm.avg_positions_per_mb


class TestCifSupport:
    """The paper also evaluates CIF (352x288); the whole pipeline must
    work there, not just at QCIF."""

    def test_cif_encode_decode_round_trip(self):
        from repro.codec.decoder import decode_bitstream
        from repro.video.frame import CIF

        seq = make_sequence("miss_america", frames=3, geometry=CIF)
        assert seq.geometry == CIF
        result = encode_sequence(seq, qp=22, estimator="acbm", keep_reconstruction=True)
        assert result.search_stats.blocks == 2 * CIF.mb_count
        decoded = decode_bitstream(result.bitstream)
        assert all(d == r for d, r in zip(decoded, result.reconstruction))
