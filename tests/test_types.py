"""Unit tests for repro.me.types."""

import numpy as np
import pytest

from repro.me.types import BlockResult, MotionField, MotionVector


class TestMotionVector:
    def test_half_pel_representation(self):
        mv = MotionVector(3, -2)
        assert mv.x_pixels == 1.5
        assert mv.y_pixels == -1.0

    def test_from_pixels(self):
        assert MotionVector.from_pixels(1.5, -2.0) == MotionVector(3, -4)

    def test_from_pixels_off_grid_rejected(self):
        with pytest.raises(ValueError, match="half-pel grid"):
            MotionVector.from_pixels(0.25, 0.0)

    def test_rejects_non_integer_components(self):
        with pytest.raises(TypeError):
            MotionVector(1.5, 0)

    def test_accepts_numpy_integers(self):
        mv = MotionVector(np.int64(4), np.int32(-6))
        assert (mv.hx, mv.hy) == (4, -6)
        assert isinstance(mv.hx, int)

    def test_zero(self):
        assert MotionVector.zero().is_zero
        assert not MotionVector(1, 0).is_zero

    def test_integer_pel_predicate(self):
        assert MotionVector(4, -2).is_integer_pel
        assert not MotionVector(3, 0).is_integer_pel

    def test_integer_part_truncates_toward_zero(self):
        assert MotionVector(3, -3).integer_part() == MotionVector(2, -2)
        assert MotionVector(-1, 1).integer_part() == MotionVector(0, 0)

    def test_algebra(self):
        a = MotionVector(2, 4)
        b = MotionVector(-1, 1)
        assert a + b == MotionVector(1, 5)
        assert a - b == MotionVector(3, 3)
        assert -a == MotionVector(-2, -4)

    def test_chebyshev_pixels(self):
        assert MotionVector(6, -4).chebyshev_pixels() == 3.0
        assert MotionVector(1, 0).chebyshev_pixels() == 0.5

    def test_magnitude_pixels(self):
        assert MotionVector(6, 8).magnitude_pixels() == pytest.approx(5.0)

    def test_hashable_and_equal(self):
        assert len({MotionVector(1, 2), MotionVector(1, 2), MotionVector(2, 1)}) == 2

    def test_repr_in_pixels(self):
        assert repr(MotionVector(3, -4)) == "MV(+1.5, -2)"


class TestBlockResult:
    def test_valid(self):
        r = BlockResult(mv=MotionVector.zero(), sad=10, positions=5)
        assert not r.used_full_search

    def test_negative_sad_rejected(self):
        with pytest.raises(ValueError):
            BlockResult(mv=MotionVector.zero(), sad=-1, positions=1)

    def test_zero_positions_rejected(self):
        with pytest.raises(ValueError):
            BlockResult(mv=MotionVector.zero(), sad=0, positions=0)


class TestMotionField:
    def test_starts_unset(self):
        field = MotionField(2, 3)
        assert field.get(0, 0) is None
        assert not field.is_complete

    def test_set_get(self):
        field = MotionField(2, 3)
        field.set(1, 2, MotionVector(4, 6))
        assert field.get(1, 2) == MotionVector(4, 6)

    def test_out_of_range_get_returns_none(self):
        field = MotionField(2, 2)
        assert field.get(-1, 0) is None
        assert field.get(0, 5) is None

    def test_out_of_range_set_raises(self):
        with pytest.raises(IndexError):
            MotionField(2, 2).set(2, 0, MotionVector.zero())

    def test_zeros_constructor(self):
        field = MotionField.zeros(3, 4)
        assert field.is_complete
        assert all(mv.is_zero for _, _, mv in field)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MotionField(0, 5)

    def test_iteration_raster_order(self):
        field = MotionField.zeros(2, 2)
        coords = [(r, c) for r, c, _ in field]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_vectors_skips_unset(self):
        field = MotionField(1, 3)
        field.set(0, 1, MotionVector(2, 0))
        assert field.vectors() == [MotionVector(2, 0)]

    def test_to_arrays(self):
        field = MotionField.zeros(2, 2)
        field.set(0, 1, MotionVector(3, -5))
        hx, hy = field.to_arrays()
        assert hx[0, 1] == 3
        assert hy[0, 1] == -5
        assert hx.shape == (2, 2)

    def test_to_arrays_requires_complete(self):
        with pytest.raises(ValueError, match="unset"):
            MotionField(1, 2).to_arrays()

    def test_repr_counts(self):
        field = MotionField(2, 2)
        field.set(0, 0, MotionVector.zero())
        assert "1 set" in repr(field)
