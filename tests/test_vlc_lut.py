"""Golden equivalence tests for the table-driven VLC decode path.

Three contracts:

* **round trip** — random symbol sequences encode → LUT-decode back to
  the identical sequence (and likewise through the seed bit-walk);
* **same bytes, same symbols** — the LUT + word-level reader and the
  seed per-bit reader decode identical symbol streams from identical
  bytes, including where and how they fail on corrupt/truncated input;
* **Golomb parity** — the peeked exp-Golomb reader matches the seed bit
  loop value-for-value.

``tests/test_bitstream_v2.py`` extends the same guarantees to whole
pictures and streams.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter, ScalarBitReader
from repro.codec.macroblock import read_events, write_events
from repro.codec.vlc import (
    LUT_FIRST_BITS,
    VLCTable,
    read_se_golomb,
    read_ue_golomb,
    se_golomb_code,
    ue_golomb_code,
)
from repro.codec.vlc_tables import ALL_TABLES
from repro.codec.zigzag import CoefficientEvent

from .conftest import backend_matrix

#: Every golden equivalence below re-runs per available kernel backend.
kernel_backend = backend_matrix()


def _decode_all(table, reader, count):
    return [table.decode(reader) for _ in range(count)]


class TestLutStructure:
    def test_every_table_compiles_a_lut(self):
        for name, table in ALL_TABLES.items():
            assert table.lut_first_bits == min(table.max_length, LUT_FIRST_BITS), name
            assert len(table.lut) == 1 << table.lut_first_bits, name

    def test_complete_code_fills_every_slot(self):
        """Kraft sum 1 ⇒ every peek index resolves to an entry."""
        for name, table in ALL_TABLES.items():
            assert all(entry is not None for entry in table.lut), name

    def test_short_codes_resolve_in_one_hit(self):
        for table in ALL_TABLES.values():
            for sym, (value, length) in table.items():
                if length <= table.lut_first_bits:
                    entry = table.lut[value << (table.lut_first_bits - length)]
                    assert entry == (sym, length, None)


class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("name", sorted(ALL_TABLES))
    def test_all_symbols_round_trip_both_paths(self, name):
        table = ALL_TABLES[name]
        symbols = [sym for sym, _ in table.items()]
        writer = BitWriter()
        for sym in symbols:
            writer.write_code(table.encode(sym))
        data = writer.getvalue()
        lut_path = _decode_all(table, BitReader(data), len(symbols))
        seed_path = _decode_all(table, ScalarBitReader(data), len(symbols))
        assert lut_path == symbols
        assert seed_path == symbols

    @pytest.mark.parametrize("name", sorted(ALL_TABLES))
    def test_random_bytes_decode_identically(self, name):
        """Arbitrary bytes (mostly invalid streams): both readers must
        produce the same symbol prefix and the same terminal error."""
        table = ALL_TABLES[name]
        rng = random.Random(1234)
        for _ in range(200):
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 10)))
            outcomes = []
            for reader in (BitReader(data), ScalarBitReader(data)):
                decoded, error = [], None
                try:
                    while True:
                        decoded.append(table.decode(reader))
                except (EOFError, ValueError) as exc:
                    error = (type(exc).__name__, str(exc))
                outcomes.append((decoded, error))
            assert outcomes[0] == outcomes[1], data.hex()


@st.composite
def tcoef_symbols(draw):
    table = ALL_TABLES["tcoef"]
    symbols = [sym for sym, _ in table.items()]
    return draw(st.lists(st.sampled_from(symbols), min_size=1, max_size=60))


class TestHypothesisRoundTrip:
    @settings(max_examples=60)
    @given(tcoef_symbols())
    def test_tcoef_sequences(self, symbols):
        table = ALL_TABLES["tcoef"]
        writer = BitWriter()
        for sym in symbols:
            writer.write_code(table.encode(sym))
        data = writer.getvalue()
        assert _decode_all(table, BitReader(data), len(symbols)) == symbols
        assert _decode_all(table, ScalarBitReader(data), len(symbols)) == symbols

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.sampled_from(sorted(ALL_TABLES)), st.integers(0, 10_000)),
            min_size=1,
            max_size=60,
        )
    )
    def test_mixed_table_sequences(self, picks):
        """Interleaved symbols from every table — the shape of a real
        macroblock layer (MCBPC, CBPY, TCOEF share one bitstream)."""
        chosen = []
        writer = BitWriter()
        for name, index in picks:
            table = ALL_TABLES[name]
            symbols = [sym for sym, _ in table.items()]
            sym = symbols[index % len(symbols)]
            chosen.append((name, sym))
            writer.write_code(table.encode(sym))
        data = writer.getvalue()
        for reader in (BitReader(data), ScalarBitReader(data)):
            for name, sym in chosen:
                assert ALL_TABLES[name].decode(reader) == sym

    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=-500, max_value=500), min_size=1, max_size=80))
    def test_se_golomb_sequences(self, values):
        writer = BitWriter()
        for v in values:
            writer.write_code(se_golomb_code(v))
        data = writer.getvalue()
        fast, seed = BitReader(data), ScalarBitReader(data)
        assert [read_se_golomb(fast) for _ in values] == values
        assert [read_se_golomb(seed) for _ in values] == values
        assert fast.bits_consumed == seed.bits_consumed

    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=80))
    def test_ue_golomb_sequences(self, values):
        writer = BitWriter()
        for v in values:
            writer.write_code(ue_golomb_code(v))
        data = writer.getvalue()
        fast, seed = BitReader(data), ScalarBitReader(data)
        assert [read_ue_golomb(fast) for _ in values] == values
        assert [read_ue_golomb(seed) for _ in values] == values

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 40),
                st.integers(-127, 127).filter(lambda v: v != 0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_event_lists(self, raw_events):
        """write_events → read_events through both readers, including
        escape-coded events (runs/levels outside the table)."""
        total = sum(run + 1 for run, _ in raw_events)
        if total > 64:
            raw_events = raw_events[:1]
        events = [
            CoefficientEvent(last=(i == len(raw_events) - 1), run=run, level=level)
            for i, (run, level) in enumerate(raw_events)
        ]
        writer = BitWriter()
        write_events(writer, events)
        data = writer.getvalue()
        assert read_events(BitReader(data)) == events
        assert read_events(ScalarBitReader(data)) == events


class TestBlockLevelErrorParity:
    """read_block_levels (LUT fast path) must fail exactly like
    events_to_block(read_events(...)) (seed path) on corrupt bytes:
    same exception type, message, and — when the list is readable —
    same decoded levels."""

    @staticmethod
    def _outcome_fast(data):
        import numpy as np

        from repro.codec.macroblock import read_block_levels

        out = np.zeros(64, dtype=np.int64)
        try:
            read_block_levels(BitReader(data), out)
        except (EOFError, ValueError) as exc:
            return (type(exc).__name__, str(exc)), None
        return None, out.reshape(8, 8)

    @staticmethod
    def _outcome_seed(data):
        from repro.codec.zigzag import events_to_block

        try:
            block = events_to_block(read_events(ScalarBitReader(data)))
        except (EOFError, ValueError) as exc:
            return (type(exc).__name__, str(exc)), None
        return None, block

    def test_truncated_overflowing_stream_stays_eof(self):
        """Events overflow the block *and* the stream truncates before
        LAST: the reference path raises EOFError (it reads all events
        before validating), and the fast path must match."""
        data = bytes.fromhex("7942fdb3ffbf1d6276d9f36017af152b8cb2")
        fast_err, _ = self._outcome_fast(data)
        seed_err, _ = self._outcome_seed(data)
        assert fast_err == seed_err
        assert fast_err[0] == "EOFError"

    def test_random_bytes_block_parity(self):
        import numpy as np

        rng = random.Random(99)
        for _ in range(400):
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 24)))
            fast_err, fast_block = self._outcome_fast(data)
            seed_err, seed_block = self._outcome_seed(data)
            assert fast_err == seed_err, data.hex()
            if fast_err is None:
                assert np.array_equal(fast_block, seed_block), data.hex()


class TestGolombErrorParity:
    def test_truncated_stream(self):
        # "0001" then EOF: prefix promises more bits than exist.
        data = bytes([0b00010000])
        for reader in (BitReader(data), ScalarBitReader(data)):
            read_ue_golomb(reader)  # consumes "0001000" -> value 7
            with pytest.raises(EOFError):
                read_ue_golomb(reader)

    def test_malformed_all_zeros(self):
        data = bytes(16)  # > 64 leading zeros
        for reader in (BitReader(data), ScalarBitReader(data)):
            with pytest.raises(ValueError, match="malformed exp-Golomb"):
                read_ue_golomb(reader)


class TestCustomTableLut:
    def test_deep_codes_cascade(self):
        """A skewed weight model forces codes past LUT_FIRST_BITS; the
        cascade must still decode every symbol on both paths."""
        symbols = list(range(40))
        weights = [2.0 ** -i if i < 30 else 2.0 ** -30 for i in range(40)]
        table = VLCTable(symbols, weights)
        assert table.max_length > LUT_FIRST_BITS
        writer = BitWriter()
        for sym in symbols:
            writer.write_code(table.encode(sym))
        data = writer.getvalue()
        assert _decode_all(table, BitReader(data), len(symbols)) == symbols
        assert _decode_all(table, ScalarBitReader(data), len(symbols)) == symbols
