"""Unit tests for repro.video.synthesis.motion_models."""

import numpy as np
import pytest

from repro.video.synthesis.motion_models import (
    CameraPath,
    CameraPose,
    crop_window,
    sample_bilinear,
    translate,
)


class TestSampleBilinear:
    def test_integer_coordinates_exact(self):
        plane = np.arange(20.0).reshape(4, 5)
        ys = np.array([[1.0]])
        xs = np.array([[3.0]])
        assert sample_bilinear(plane, ys, xs)[0, 0] == plane[1, 3]

    def test_midpoint_average(self):
        plane = np.array([[0.0, 10.0]])
        out = sample_bilinear(plane, np.array([[0.0]]), np.array([[0.5]]))
        assert out[0, 0] == pytest.approx(5.0)

    def test_clamps_outside(self):
        plane = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = sample_bilinear(plane, np.array([[-5.0]]), np.array([[99.0]]))
        assert out[0, 0] == pytest.approx(2.0)


class TestTranslate:
    def test_integer_shift_moves_content(self):
        plane = np.zeros((6, 6))
        plane[2, 2] = 9.0
        out = translate(plane, 1.0, 2.0)
        assert out[3, 4] == pytest.approx(9.0)

    def test_zero_shift_identity(self):
        plane = np.random.default_rng(0).random((5, 7))
        np.testing.assert_allclose(translate(plane, 0.0, 0.0), plane)

    def test_half_shift_averages(self):
        plane = np.zeros((1, 4))
        plane[0, 1] = 10.0
        out = translate(plane, 0.0, 0.5)
        assert out[0, 1] == pytest.approx(5.0)
        assert out[0, 2] == pytest.approx(5.0)


class TestCropWindow:
    def test_no_zoom_is_slice(self):
        world = np.arange(100.0).reshape(10, 10)
        out = crop_window(world, 2.0, 3.0, 4, 5)
        np.testing.assert_allclose(out, world[2:6, 3:8])

    def test_fractional_offset_interpolates(self):
        world = np.arange(100.0).reshape(10, 10)
        out = crop_window(world, 0.5, 0.0, 2, 2)
        np.testing.assert_allclose(out, (world[0:2, 0:2] + world[1:3, 0:2]) / 2.0)

    def test_zoom_keeps_centre(self):
        world = np.zeros((20, 20))
        world[10, 10] = 100.0
        flat = crop_window(world, 5.0, 5.0, 11, 11)
        zoomed = crop_window(world, 5.0, 5.0, 11, 11, zoom=1.25)
        # Centre pixel of the window maps to the same world point.
        assert flat[5, 5] == zoomed[5, 5]

    def test_zoom_magnifies(self):
        rng = np.random.default_rng(4)
        world = rng.random((64, 64)) * 100
        flat = crop_window(world, 16.0, 16.0, 32, 32)
        zoomed = crop_window(world, 16.0, 16.0, 32, 32, zoom=2.0)
        # At zoom 2 the window spans half the world distance, so the
        # sampled field varies more slowly.
        assert np.abs(np.diff(zoomed, axis=1)).mean() < np.abs(np.diff(flat, axis=1)).mean()

    def test_rejects_non_positive_zoom(self):
        with pytest.raises(ValueError):
            crop_window(np.zeros((4, 4)), 0, 0, 2, 2, zoom=0.0)


class TestCameraPath:
    def test_static(self):
        path = CameraPath.static(5, 7.0, 9.0)
        assert len(path) == 5
        assert all(p == CameraPose(7.0, 9.0) for p in path.poses)

    def test_pan_velocity(self):
        path = CameraPath.pan(4, 0.0, 0.0, 1.0, 2.0)
        assert path[3] == CameraPose(3.0, 6.0)

    def test_pan_reversal(self):
        path = CameraPath.pan(6, 0.0, 0.0, 0.0, 1.0, reverse_at=3)
        xs = [p.offset_x for p in path.poses]
        assert xs == [0.0, 1.0, 2.0, 3.0, 2.0, 1.0]

    def test_shake_deterministic(self):
        a = CameraPath.shake(10, 0, 0, sigma=0.5, seed=3)
        b = CameraPath.shake(10, 0, 0, sigma=0.5, seed=3)
        assert a.poses == b.poses

    def test_shake_bounded(self):
        path = CameraPath.shake(200, 10.0, 10.0, sigma=0.5, seed=1)
        for pose in path.poses:
            assert abs(pose.offset_y - 10.0) <= 1.5 + 1e-9
            assert abs(pose.offset_x - 10.0) <= 1.5 + 1e-9

    def test_shake_drift(self):
        path = CameraPath.shake(5, 0.0, 0.0, sigma=0.0, seed=0, drift_x=2.0)
        assert path[4].offset_x == pytest.approx(8.0)

    def test_zoom_path(self):
        path = CameraPath.zoom(3, 0, 0, start_zoom=1.0, zoom_per_frame=0.1)
        assert [p.zoom for p in path.poses] == pytest.approx([1.0, 1.1, 1.2])

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            CameraPath([])
