"""Unit tests for repro.codec.quantizer (H.263 rules)."""

import numpy as np
import pytest

from repro.codec.quantizer import (
    INTRA_DC_STEP,
    LEVEL_MAX,
    check_qp,
    dequantize,
    dequantize_intra_dc,
    quantize_inter,
    quantize_intra_ac,
    quantize_intra_dc,
)


class TestCheckQp:
    @pytest.mark.parametrize("qp", [0, 32, -3])
    def test_rejects_out_of_range(self, qp):
        with pytest.raises(ValueError):
            check_qp(qp)

    @pytest.mark.parametrize("qp", [1, 16, 31])
    def test_accepts_valid(self, qp):
        assert check_qp(qp) == qp


class TestInterQuantizer:
    def test_dead_zone_swallows_small_coefficients(self):
        qp = 10
        coefficients = np.array([0.0, 4.9, -4.9, 14.9, 24.9])
        levels = quantize_inter(coefficients, qp)
        # |c| < qp/2 + 2qp = 25 maps to level 0 or ±1 per the formula:
        # floor((|c| - 5) / 20): 4.9 → floor(-0.005) handled as 0 ...
        np.testing.assert_array_equal(levels, [0, 0, 0, 0, 0])

    def test_level_one_threshold(self):
        qp = 10
        assert quantize_inter(np.array([25.0]), qp)[0] == 1
        assert quantize_inter(np.array([-25.0]), qp)[0] == -1
        assert quantize_inter(np.array([24.99]), qp)[0] == 0

    def test_sign_symmetry(self):
        qp = 7
        c = np.linspace(-400, 400, 101)
        np.testing.assert_array_equal(quantize_inter(c, qp), -quantize_inter(-c, qp))

    def test_level_clamped(self):
        assert quantize_inter(np.array([1e9]), 1)[0] == LEVEL_MAX


class TestIntraAcQuantizer:
    def test_no_dead_zone(self):
        qp = 10
        assert quantize_intra_ac(np.array([20.0]), qp)[0] == 1
        assert quantize_inter(np.array([20.0]), qp)[0] == 0  # contrast

    def test_truncation(self):
        assert quantize_intra_ac(np.array([39.9]), 10)[0] == 1
        assert quantize_intra_ac(np.array([40.0]), 10)[0] == 2


class TestDequantize:
    @pytest.mark.parametrize("qp", [1, 5, 10, 16, 31])
    def test_zero_stays_zero(self, qp):
        assert dequantize(np.array([0]), qp)[0] == 0.0

    def test_odd_qp_reconstruction(self):
        # |rec| = qp * (2|level| + 1), qp odd
        assert dequantize(np.array([2]), 5)[0] == 25.0
        assert dequantize(np.array([-2]), 5)[0] == -25.0

    def test_even_qp_reconstruction(self):
        # |rec| = qp * (2|level| + 1) - 1, qp even
        assert dequantize(np.array([2]), 10)[0] == 49.0
        assert dequantize(np.array([-2]), 10)[0] == -49.0

    def test_reconstruction_within_quantizer_cell(self):
        """|rec(quant(c)) - c| <= 2*qp for coefficients above the dead
        zone — the basic fidelity bound."""
        qp = 8
        c = np.linspace(-800, 800, 1601)
        rec = dequantize(quantize_inter(c, qp), qp)
        above = np.abs(c) >= 2.5 * qp
        assert np.abs(rec[above] - c[above]).max() <= 2 * qp

    def test_quantize_dequantize_idempotent(self):
        """Requantizing a reconstruction reproduces the same levels —
        no drift in the closed loop."""
        qp = 6
        c = np.linspace(-500, 500, 401)
        levels = quantize_inter(c, qp)
        again = quantize_inter(dequantize(levels, qp), qp)
        np.testing.assert_array_equal(levels, again)


class TestIntraDc:
    def test_step_eight(self):
        assert quantize_intra_dc(np.array([800.0]))[0] == 100
        assert dequantize_intra_dc(np.array([100]))[0] == 800.0

    def test_clamped_to_code_range(self):
        assert quantize_intra_dc(np.array([0.0]))[0] == 1
        assert quantize_intra_dc(np.array([1e6]))[0] == 254

    def test_dequantize_range_checked(self):
        with pytest.raises(ValueError):
            dequantize_intra_dc(np.array([0]))
        with pytest.raises(ValueError):
            dequantize_intra_dc(np.array([255]))

    def test_round_trip_error_bounded(self):
        dc = np.linspace(8.0, 2000.0, 250)
        rec = dequantize_intra_dc(quantize_intra_dc(dc))
        assert np.abs(rec - dc).max() <= INTRA_DC_STEP / 2 + 1e-9
