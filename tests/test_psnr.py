"""Unit tests for repro.analysis.psnr."""

import math

import numpy as np
import pytest

from repro.analysis.psnr import plane_mse, psnr, sequence_psnr
from repro.video.frame import QCIF, grey_frame


class TestPlaneMse:
    def test_identical(self):
        plane = np.random.default_rng(0).integers(0, 256, (16, 16))
        assert plane_mse(plane, plane) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.array([[2, 0], [0, 2]])
        assert plane_mse(a, b) == 2.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            plane_mse(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plane_mse(np.zeros((0, 2)), np.zeros((0, 2)))


class TestPsnr:
    def test_identical_is_infinite(self):
        plane = np.full((8, 8), 7)
        assert psnr(plane, plane) == math.inf

    def test_uniform_error_formula(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 16.0)
        # PSNR = 10 log10(255^2 / 256) ≈ 24.05 dB
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 256), abs=1e-9)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, (16, 16))
        b = rng.integers(0, 256, (16, 16))
        assert psnr(a, b) == psnr(b, a)

    def test_typical_video_range(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, (64, 64)).astype(np.float64)
        b = np.clip(a + rng.normal(0, 5, a.shape), 0, 255)
        assert 30.0 < psnr(a, b) < 40.0


class TestSequencePsnr:
    def test_mean_over_frames(self):
        originals = [grey_frame(QCIF, value=100), grey_frame(QCIF, value=100)]
        recon = [grey_frame(QCIF, value=100), grey_frame(QCIF, value=104)]
        value = sequence_psnr(originals, recon)
        assert value == math.inf or value > 30  # inf + finite → numpy mean inf
        # Make both finite for a concrete check:
        recon2 = [grey_frame(QCIF, value=102), grey_frame(QCIF, value=104)]
        expected = (psnr(originals[0].y, recon2[0].y) + psnr(originals[1].y, recon2[1].y)) / 2
        assert sequence_psnr(originals, recon2) == pytest.approx(expected)

    def test_chroma_plane_selector(self):
        originals = [grey_frame(QCIF)]
        recon = [grey_frame(QCIF)]
        assert sequence_psnr(originals, recon, plane="cb") == math.inf

    def test_invalid_plane(self):
        with pytest.raises(ValueError):
            sequence_psnr([], [], plane="alpha")

    def test_empty_pairs(self):
        with pytest.raises(ValueError):
            sequence_psnr([], [])
