"""Unit tests for repro.video.sequence."""

import pytest

from repro.video.frame import QCIF, grey_frame
from repro.video.sequence import Sequence


def make_seq(n=10, fps=30.0):
    return Sequence([grey_frame(QCIF, index=i) for i in range(n)], fps=fps, name="t")


class TestSequence:
    def test_length_and_iteration(self):
        seq = make_seq(5)
        assert len(seq) == 5
        assert [f.index for f in seq] == [0, 1, 2, 3, 4]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequence([], fps=30)

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            Sequence([grey_frame(QCIF)], fps=0)

    def test_rejects_mixed_geometry(self):
        from repro.video.frame import CIF

        with pytest.raises(ValueError, match="mixed"):
            Sequence([grey_frame(QCIF), grey_frame(CIF)], fps=30)

    def test_indexing(self):
        seq = make_seq(5)
        assert seq[2].index == 2
        assert seq[-1].index == 4

    def test_slicing_returns_sequence(self):
        seq = make_seq(6)
        sub = seq[1:4]
        assert isinstance(sub, Sequence)
        assert len(sub) == 3
        assert sub.fps == seq.fps
        assert sub.name == seq.name

    def test_duration(self):
        assert make_seq(30, fps=30).duration == pytest.approx(1.0)
        assert make_seq(30, fps=10).duration == pytest.approx(3.0)

    def test_geometry(self):
        assert make_seq(2).geometry == QCIF


class TestSubsample:
    def test_factor_three_keeps_every_third(self):
        seq = make_seq(10, fps=30).subsample(3)
        assert [f.index for f in seq] == [0, 3, 6, 9]
        assert seq.fps == pytest.approx(10.0)

    def test_factor_one_is_identity_copy(self):
        seq = make_seq(4)
        out = seq.subsample(1)
        assert len(out) == 4
        assert out.fps == seq.fps

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            make_seq(4).subsample(0)

    def test_preserves_original_indices(self):
        seq = make_seq(7, fps=30).subsample(2)
        assert [f.index for f in seq] == [0, 2, 4, 6]

    def test_paper_rates(self):
        """30 fps source yields the paper's 15 and 10 fps variants."""
        source = make_seq(30, fps=30)
        assert source.subsample(2).fps == pytest.approx(15.0)
        assert source.subsample(3).fps == pytest.approx(10.0)


class TestPairs:
    def test_pairs_order(self):
        seq = make_seq(4)
        pairs = list(seq.pairs())
        assert len(pairs) == 3
        assert [(p.index, c.index) for p, c in pairs] == [(0, 1), (1, 2), (2, 3)]

    def test_single_frame_has_no_pairs(self):
        assert list(make_seq(1).pairs()) == []


def test_repr_mentions_name_and_fps():
    text = repr(make_seq(3, fps=10))
    assert "'t'" in text and "10" in text
