"""Golden tests for GOP structure: ``i_Period``, spatial intra modes,
multi-reference P-frames, per-GOP parallel encode and random access.

The contracts under test:

* the default configuration (``i_period=None``, ``n_ref_frames=1``)
  still emits the **seed syntax byte-for-byte** — pinned by SHA-256
  against pre-GOP encodes;
* GOP streams round-trip bit-identically through every decode path
  (batched engine, per-block reference, seed ``ScalarBitReader``);
* an I-frame resets the reference list, so per-GOP parallel encode
  splices a stream **byte-identical** to the serial encoder for any
  ``--jobs``;
* decoding from any I-frame reproduces the full decode's tail
  bit-identically, and seeking to a P-frame is rejected.
"""

import hashlib

import numpy as np
import pytest

from repro.codec.bitstream import ScalarBitReader
from repro.codec.decoder import (
    FrameIndex,
    decode_bitstream,
    parse_bitstream_symbols,
)
from repro.codec.encoder import (
    MAX_REF_FRAMES,
    PICTURE_HEADER_BITS,
    Encoder,
    encode_sequence,
)
from repro.codec.intra import (
    INTRA_VERTICAL,
    choose_intra_modes,
    intra_mode_costs_reference,
    intra_predict,
)
from repro.me.engine import intra_mode_cost_surfaces
from repro.parallel import encode_sequence_parallel, split_gops
from repro.streaming import StreamDecoder, StreamEncoder
from repro.transport import export, handle_count, materialize
from repro.video.frame import Frame
from repro.video.sequence import Sequence
from repro.video.synthesis.sequences import make_sequence

from .conftest import backend_matrix, shifted_plane, textured_plane

#: Every golden equivalence below re-runs per available kernel backend.
kernel_backend = backend_matrix()

I_PERIOD = 3


def gop_clip(frames: int = 8, seed: int = 7) -> Sequence:
    """Small (64x48) moving clip — enough frames for three GOPs."""
    base = textured_plane(48, 64, seed=seed)
    return Sequence(
        [Frame(shifted_plane(base, (i % 3) - 1, i % 2), index=i) for i in range(frames)],
        fps=30.0,
        name="gopclip",
    )


def oscillating_clip(frames: int = 6) -> Sequence:
    """Content alternates A/B/A/B — with two references, matching the
    frame *two back* beats the immediate predecessor, so the encoder
    must actually use reference index 1."""
    a = textured_plane(48, 64, seed=3)
    b = shifted_plane(a, 3, 2)
    return Sequence(
        [Frame([a, b][i % 2].copy(), index=i) for i in range(frames)],
        fps=30.0,
        name="osc",
    )


class TestConfigValidation:
    def test_i_period_must_be_positive(self):
        for bad in (0, -1, -5):
            with pytest.raises(ValueError, match="i_Period must be a positive GOP length"):
                Encoder(i_period=bad)

    def test_n_ref_frames_bounded_by_wire_field(self):
        for bad in (0, -1, MAX_REF_FRAMES + 1):
            with pytest.raises(ValueError, match="nRefFrames must be between 1 and 8"):
                Encoder(n_ref_frames=bad)

    def test_defaults_stay_on_seed_syntax(self):
        encoder = Encoder()
        assert encoder.i_period is None
        assert encoder.n_ref_frames == 1
        assert not encoder.gop_syntax


#: SHA-256 of default-path (``i_period=None``) encodes, recorded at the
#: seed revision this PR grew from: the GOP layer must not move a byte.
GOLDEN_SEED_STREAMS = {
    ("miss_america", 5, 16, "tss", 1): (
        "6457fb8e0c673e68d107593cfd097d09ed4a49c2d25e677b9f3b9af0337bf4da"
    ),
    ("miss_america", 5, 16, "tss", 2): (
        "77eb9679adac4704b45bbc137810f06ac3c43f61deb6db045053fbd4a7e9322b"
    ),
    ("foreman", 4, 22, "fsbm", 1): (
        "892c2bf90f17587f29865f147091c3d5e6b2e4a8f5a6027461546930f13c3bf3"
    ),
    ("foreman", 4, 22, "fsbm", 2): (
        "effa25188f95e5804f39084abd05a4c9d5728237014273ceca9db71d5ee03d3c"
    ),
    ("carphone", 3, 28, "acbm", 1): (
        "8583aba2e2088af51a0ab3658963ae89f67713040b14757f9872ec18779d5125"
    ),
}


class TestSeedCompatibility:
    @pytest.mark.parametrize("case", sorted(GOLDEN_SEED_STREAMS))
    def test_default_path_byte_identical_to_seed(self, case):
        sequence, frames, qp, estimator, version = case
        result = encode_sequence(
            make_sequence(sequence, frames=frames, seed=0),
            qp=qp,
            estimator=estimator,
            bitstream_version=version,
        )
        digest = hashlib.sha256(result.bitstream).hexdigest()
        assert digest == GOLDEN_SEED_STREAMS[case]


class TestGopRoundTrip:
    @pytest.fixture(scope="class")
    def clip(self):
        return gop_clip()

    def test_frame_type_pattern(self, clip):
        result = encode_sequence(
            clip, qp=18, estimator="tss", bitstream_version=2, i_period=I_PERIOD
        )
        assert [r.frame_type for r in result.frames] == list("IPPIPPIP")
        assert result.keyframes == (0, 3, 6)
        index = FrameIndex.scan(result.bitstream)
        assert index.frame_types(result.bitstream) == tuple("IPPIPPIP")
        assert index.keyframes(result.bitstream) == (0, 3, 6)

    @pytest.mark.parametrize("version", [1, 2])
    def test_decode_paths_bit_identical(self, clip, version):
        result = encode_sequence(
            clip,
            qp=18,
            estimator="tss",
            keep_reconstruction=True,
            bitstream_version=version,
            i_period=I_PERIOD,
        )
        engine = decode_bitstream(result.bitstream)
        per_block = decode_bitstream(result.bitstream, use_engine=False)
        assert engine == result.reconstruction
        assert per_block == result.reconstruction
        # The seed one-bit-at-a-time reader parses identical symbols.
        lut = parse_bitstream_symbols(result.bitstream)
        seed = parse_bitstream_symbols(result.bitstream, reader_factory=ScalarBitReader)
        assert lut == seed

    def test_engine_and_scalar_encodes_byte_identical(self, clip):
        kwargs = dict(
            qp=18, estimator="tss", bitstream_version=2, i_period=I_PERIOD, n_ref_frames=2
        )
        batched = encode_sequence(clip, use_engine=True, **kwargs)
        scalar = encode_sequence(clip, use_engine=False, **kwargs)
        assert batched.bitstream == scalar.bitstream

    def test_multi_reference_actually_used(self):
        clip = oscillating_clip()
        result = encode_sequence(
            clip,
            qp=18,
            estimator="tss",
            keep_reconstruction=True,
            bitstream_version=2,
            i_period=6,
            n_ref_frames=2,
        )
        parsed = parse_bitstream_symbols(result.bitstream)
        assert any(p.ref_idx is not None and p.ref_idx.any() for p in parsed)
        assert decode_bitstream(result.bitstream) == result.reconstruction
        assert decode_bitstream(result.bitstream, use_engine=False) == result.reconstruction


class TestSplitGops:
    def test_half_open_ranges_cover_tail(self):
        assert split_gops(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_period_longer_than_clip_is_one_gop(self):
        assert split_gops(10, 20) == [(0, 10)]


class TestParallelGopEncode:
    @pytest.fixture(scope="class")
    def clip(self):
        return gop_clip()

    @pytest.fixture(scope="class")
    def serial(self, clip):
        return encode_sequence(
            clip, qp=18, estimator="tss", bitstream_version=2, i_period=I_PERIOD
        )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_splice_byte_identical_to_serial(self, clip, serial, jobs):
        parallel = encode_sequence_parallel(
            clip, qp=18, estimator="tss", i_period=I_PERIOD, jobs=jobs
        )
        assert parallel.bitstream == serial.bitstream
        assert [r.frame_type for r in parallel.frames] == [
            r.frame_type for r in serial.frames
        ]
        assert [r.bits for r in parallel.frames] == [r.bits for r in serial.frames]

    def test_requires_gop_cuts(self, clip):
        with pytest.raises(ValueError, match="nothing to split"):
            encode_sequence_parallel(clip, qp=18, estimator="tss", i_period=None)

    def test_requires_byte_aligned_v2(self, clip):
        with pytest.raises(ValueError, match="cannot be spliced"):
            encode_sequence_parallel(
                clip, qp=18, estimator="tss", i_period=I_PERIOD, bitstream_version=1
            )


class TestRandomAccess:
    @pytest.fixture(scope="class")
    def encoded(self):
        return encode_sequence(
            gop_clip(), qp=18, estimator="tss", bitstream_version=2, i_period=I_PERIOD
        )

    def test_seek_from_every_keyframe_matches_full_decode(self, encoded):
        full = decode_bitstream(encoded.bitstream)
        for kf in encoded.keyframes:
            tail = decode_bitstream(encoded.bitstream, start_frame=kf)
            assert tail == full[kf:]
            assert [f.index for f in tail] == list(range(kf, len(full)))

    def test_seek_to_p_frame_rejected_with_keyframe_list(self, encoded):
        with pytest.raises(ValueError, match=r"random access needs an I-frame.*\[0, 3, 6\]"):
            decode_bitstream(encoded.bitstream, start_frame=4)

    def test_seek_out_of_range(self, encoded):
        with pytest.raises(ValueError, match="out of range"):
            decode_bitstream(encoded.bitstream, start_frame=99)


class TestStreamingGop:
    @pytest.fixture(scope="class")
    def clip(self):
        return gop_clip()

    @pytest.fixture(scope="class")
    def whole(self, clip):
        return encode_sequence(
            clip,
            qp=18,
            estimator="tss",
            keep_reconstruction=True,
            bitstream_version=2,
            i_period=I_PERIOD,
        )

    def test_stream_encode_byte_identical_and_tracks_keyframes(self, clip, whole):
        encoder = StreamEncoder(
            estimator="tss", qp=18, bitstream_version=2, i_period=I_PERIOD
        )
        streamed = b"".join(encoder.encode_iter(iter(clip)))
        assert streamed == whole.bitstream
        assert encoder.keyframes == (0, 3, 6)

    def test_stream_decode_tracks_keyframes(self, whole):
        decoder = StreamDecoder(max_buffered_frames=16)
        decoder.feed(whole.bitstream)
        frames = list(decoder.frames())
        decoder.close()
        assert frames == whole.reconstruction
        assert decoder.keyframes == [0, 3, 6]


class TestIntraModes:
    def test_batched_costs_match_reference(self):
        y = textured_plane(48, 64, seed=11)
        assert np.array_equal(intra_mode_cost_surfaces(y), intra_mode_costs_reference(y))

    def test_vertical_wins_on_column_constant_content(self):
        # Every row identical -> the row above predicts interior MBs
        # exactly; DC (flat 128) cannot.
        row = np.clip(40 + 2 * np.arange(64), 0, 255).astype(np.uint8)
        y = np.tile(row, (48, 1))
        modes = choose_intra_modes(intra_mode_costs_reference(y))
        assert (modes[1:, :] == INTRA_VERTICAL).all()

    def test_illegal_mode_rejected_by_predictor(self):
        with pytest.raises(ValueError, match="illegal intra prediction mode 3"):
            intra_predict(np.zeros((48, 64), dtype=np.uint8), 1, 1, 16, 3)

    def test_illegal_wire_mode_rejected_by_parser(self):
        clip = Sequence([Frame(textured_plane(48, 64))], fps=30.0, name="one")
        result = encode_sequence(
            clip, qp=16, estimator="tss", bitstream_version=1, i_period=1
        )
        corrupt = bytearray(result.bitstream)
        # Force the first macroblock's 2-bit mode field (right after the
        # 43-bit picture header) to the reserved value 3.
        shift = 8 - PICTURE_HEADER_BITS % 8 - 2
        corrupt[PICTURE_HEADER_BITS // 8] |= 0b11 << shift
        with pytest.raises(ValueError, match="illegal intra prediction mode 3"):
            parse_bitstream_symbols(bytes(corrupt))


class TestTransportGop:
    def test_extended_pictures_round_trip_shared_memory(self):
        result = encode_sequence(
            oscillating_clip(),
            qp=18,
            estimator="tss",
            bitstream_version=2,
            i_period=6,
            n_ref_frames=2,
        )
        pictures = parse_bitstream_symbols(result.bitstream)
        assert pictures[0].modes is not None  # extended I carries modes
        assert any(p.ref_idx is not None for p in pictures[1:])
        for parsed in pictures:
            shared = export(parsed, name_prefix="repro-t-gop")
            arrays = (
                parsed.levels, parsed.dc_levels, parsed.hx, parsed.hy,
                parsed.modes, parsed.ref_idx,
            )
            assert handle_count(shared) == sum(1 for a in arrays if a is not None)
            assert materialize(shared, unlink=True) == parsed
