"""Test suite for the conf_date_LopezCLS05 reproduction (package so
relative conftest imports resolve under pytest's importlib mode)."""
