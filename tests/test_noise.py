"""Unit tests for repro.video.synthesis.noise."""

import numpy as np
import pytest

from repro.video.synthesis.noise import value_noise, white_noise


class TestValueNoise:
    def test_range_is_unit_interval(self):
        field = value_noise(40, 60, cell=8, octaves=3, seed=1)
        assert field.min() == pytest.approx(0.0)
        assert field.max() == pytest.approx(1.0)

    def test_deterministic_in_seed(self):
        a = value_noise(32, 32, cell=8, seed=42)
        b = value_noise(32, 32, cell=8, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = value_noise(32, 32, cell=8, seed=1)
        b = value_noise(32, 32, cell=8, seed=2)
        assert not np.array_equal(a, b)

    def test_shape(self):
        assert value_noise(24, 56, cell=16, seed=0).shape == (24, 56)

    def test_more_octaves_adds_high_frequency(self):
        """Fine octaves raise mean local gradient."""
        smooth_field = value_noise(64, 64, cell=32, octaves=1, seed=3)
        rough_field = value_noise(64, 64, cell=32, octaves=5, seed=3)

        def mean_grad(f):
            return np.abs(np.diff(f, axis=1)).mean()

        assert mean_grad(rough_field) > 1.3 * mean_grad(smooth_field)

    def test_rng_and_seed_mutually_exclusive(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError, match="exactly one"):
            value_noise(8, 8, cell=4, rng=gen, seed=1)
        with pytest.raises(ValueError, match="exactly one"):
            value_noise(8, 8, cell=4)

    def test_accepts_rng_object(self):
        gen = np.random.default_rng(0)
        field = value_noise(8, 8, cell=4, rng=gen)
        assert field.shape == (8, 8)

    @pytest.mark.parametrize("kwargs", [dict(cell=0), dict(octaves=0)])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            value_noise(8, 8, seed=0, **{"cell": 4, **kwargs})


class TestWhiteNoise:
    def test_zero_sigma_is_zero(self):
        gen = np.random.default_rng(0)
        assert white_noise(4, 4, 0.0, gen).max() == 0.0

    def test_statistics(self):
        gen = np.random.default_rng(0)
        field = white_noise(200, 200, 2.0, gen)
        assert abs(field.mean()) < 0.1
        assert field.std() == pytest.approx(2.0, rel=0.05)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            white_noise(4, 4, -1.0, np.random.default_rng(0))
