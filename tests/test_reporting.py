"""Unit tests for repro.analysis.reporting."""

import pytest

from repro.analysis.rd import RDCurve, RDPoint
from repro.analysis.reporting import format_histogram, format_rd_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "2.50" in text
        assert "30" in text

    def test_title_first_line(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_float_format_override(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text

    def test_empty_rows_ok(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_columns_aligned(self):
        text = format_table(["name", "n"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[3])  # header and row same width


class TestFormatRdSeries:
    def test_contains_curve_labels_and_points(self):
        curves = [
            RDCurve("acbm", [RDPoint(16, 60.0, 31.0), RDPoint(30, 20.0, 27.0)]),
            RDCurve("pbm", [RDPoint(16, 55.0, 30.0)]),
        ]
        text = format_rd_series(curves, title="fig")
        assert text.splitlines()[0] == "fig"
        assert "[acbm]" in text and "[pbm]" in text
        assert "60.00" in text and "31.00" in text


class TestFormatHistogram:
    def test_bars_scale_with_counts(self):
        text = format_histogram({0: 100, 1: 50, 2: 0}, bar_width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_sorted_by_key(self):
        text = format_histogram({2: 1, 0: 1, 1: 1})
        keys = [line.split()[0] for line in text.splitlines()]
        assert keys == ["0", "1", "2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_histogram({})

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            format_histogram({0: 0})
