"""Smoke tests: every shipped example must run end to end.

Executed as subprocesses (the way users run them) with reduced
workloads so the suite stays fast.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name, *args, timeout=240):
    # The examples import `repro`; make the src/ layout visible even
    # when the suite itself found it via pytest's pythonpath setting
    # rather than an exported PYTHONPATH.
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_quickstart(tmp_path):
    proc = run_example("quickstart.py", "--frames", "3", "--qp", "24")
    assert proc.returncode == 0, proc.stderr
    assert "positions/MB" in proc.stdout
    for estimator in ("pbm", "acbm", "fsbm"):
        assert estimator in proc.stdout


def test_quality_cost_tradeoff():
    proc = run_example("quality_cost_tradeoff.py", "--frames", "3", "--qp", "24")
    assert proc.returncode == 0, proc.stderr
    assert "gamma sweep" in proc.stdout
    assert "pure-FSBM limit" in proc.stdout


def test_characterization(tmp_path):
    csv_path = tmp_path / "fig4.csv"
    proc = run_example("characterization.py", "--csv", str(csv_path))
    assert proc.returncode == 0, proc.stderr
    assert "true-vector fraction" in proc.stdout
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("frame_pair,")


def test_streaming(tmp_path):
    proc = run_example("streaming.py", "--frames", "3", "--chunk-size", "256")
    assert proc.returncode == 0, proc.stderr
    assert "bit-identical to whole-buffer decode: True" in proc.stdout
    assert "peak buffered" in proc.stdout


def test_transport(tmp_path):
    proc = run_example("transport.py", "--frames", "3", "--chunk-size", "256")
    assert proc.returncode == 0, proc.stderr
    assert "results identical: True" in proc.stdout
    assert "bit-identical to whole-buffer decode: True" in proc.stdout
    assert "/dev/shm leftovers: none" in proc.stdout


def test_gop(tmp_path):
    proc = run_example("gop.py", "--frames", "5", "--i-period", "2", "--jobs", "2")
    assert proc.returncode == 0, proc.stderr
    assert "frame types: IPIPI" in proc.stdout
    assert "parallel splice byte-identical to serial: True" in proc.stdout
    assert "tail bit-identical to full decode: True" in proc.stdout


def test_observability(tmp_path):
    proc = run_example("observability.py", "--frames", "3")
    assert proc.returncode == 0, proc.stderr
    assert "trace-event JSON valid: True" in proc.stdout
    assert "distinct pids" in proc.stdout
    assert "bits by syntax element" in proc.stdout
    assert "frame spans" in proc.stdout


def test_custom_sequence(tmp_path):
    proc = run_example(
        "custom_sequence.py", "--outdir", str(tmp_path), "--frames", "4", "--qp", "20"
    )
    assert proc.returncode == 0, proc.stderr
    assert "bit-exact: True" in proc.stdout
    assert (tmp_path / "custom_source.yuv").exists()
    assert (tmp_path / "custom_recon.yuv").exists()
