"""Golden tests for the process-parallel orchestration layer.

The contract under test: every experiment harness produces
**byte-identical** output for any ``--jobs`` value — results merge in
job order and all job inputs derive from explicit seeds — and the job
pool's per-job seeding is a pure function of ``(base_seed, index)``.

Process-spawning tests are deliberately few and tiny (each worker pays
a spawn + import); the cheap determinism properties run in-process.
"""

import glob
from dataclasses import dataclass

import numpy as np
import pytest

from repro.codec.decoder import FrameIndex
from repro.codec.encoder import Encoder, encode_sequence
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4_characterization import run_fig4
from repro.experiments.rd_curves import (
    SweepCell,
    build_estimator,
    run_rd_sweep,
    sweep_jobs,
)
from repro.experiments.table1_complexity import run_table1
from repro.parallel import (
    DecodeJob,
    EncodeJob,
    Fig4PairJob,
    JobSpec,
    ParseFrameJob,
    SweepJob,
    derive_job_seeds,
    run_jobs,
)
from repro.video.frame import FrameGeometry
from repro.video.synthesis.sequences import make_sequence

TINY = ExperimentConfig(
    sequences=("miss_america",), qps=(30, 16), fps_list=(30,), frames=4
)


@dataclass(frozen=True)
class SquareJob(JobSpec):
    """Trivial picklable job for pool-mechanics tests."""

    value: int

    def describe(self) -> str:
        return f"square {self.value}"

    def run(self, rng=None):
        return self.value * self.value


@dataclass(frozen=True)
class DrawJob(JobSpec):
    """Returns one random draw — exercises the per-job seeding."""

    index: int

    def describe(self) -> str:
        return f"draw {self.index}"

    def run(self, rng=None):
        # Both the provided generator and the reseeded global RNG must
        # be deterministic per (base_seed, job index).
        return (float(rng.random()), float(np.random.random()))


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        a = derive_job_seeds(7, 4)
        b = derive_job_seeds(7, 4)
        states_a = [s.generate_state(2).tolist() for s in a]
        states_b = [s.generate_state(2).tolist() for s in b]
        assert states_a == states_b
        assert len({tuple(s) for s in states_a}) == 4

    def test_prefix_stable(self):
        """Job i's seed does not depend on how many jobs follow it."""
        three = derive_job_seeds(0, 3)
        five = derive_job_seeds(0, 5)
        assert [s.generate_state(1)[0] for s in three] == [
            s.generate_state(1)[0] for s in five[:3]
        ]

    def test_empty_and_negative(self):
        assert derive_job_seeds(0, 0) == []
        with pytest.raises(ValueError):
            derive_job_seeds(0, -1)


class TestPoolMechanics:
    def test_results_in_job_order(self):
        jobs = [SquareJob(v) for v in (3, 1, 4, 1, 5)]
        assert run_jobs(jobs) == [9, 1, 16, 1, 25]

    def test_progress_in_process(self):
        messages = []
        run_jobs([SquareJob(2), SquareJob(3)], progress=messages.append)
        assert messages == ["square 2", "square 3"]

    def test_empty_job_list(self):
        assert run_jobs([], workers=4) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            run_jobs([SquareJob(1)], chunk_size=0)

    def test_draws_deterministic_per_job(self):
        jobs = [DrawJob(i) for i in range(4)]
        forward = run_jobs(jobs, base_seed=11)
        assert run_jobs(jobs, base_seed=11) == forward
        assert len({draw for draw, _ in forward}) == 4  # independent streams
        assert run_jobs(jobs, base_seed=12) != forward

    def test_spawned_workers_match_in_process(self):
        """Placement/order independence: the same jobs (including ones
        consuming the global RNG) give the same results from spawned
        workers as from the serial fallback."""
        jobs = [SquareJob(v) for v in range(6)] + [DrawJob(i) for i in range(2)]
        serial = run_jobs(jobs, workers=1, base_seed=5)
        parallel = run_jobs(jobs, workers=2, base_seed=5, chunk_size=3)
        assert parallel == serial

    def test_caller_rng_stream_preserved(self):
        """In-process execution reseeds the global RNG per job but must
        hand the caller's stream back untouched."""
        np.random.seed(42)
        expected_next = np.random.RandomState(42).random_sample(3)
        assert np.random.random() == expected_next[0]
        run_jobs([DrawJob(0), DrawJob(1)], base_seed=0)
        assert np.random.random() == expected_next[1]

    def test_in_process_exception_propagates(self):
        @dataclass(frozen=True)
        class BoomJob(JobSpec):
            def describe(self) -> str:
                return "boom"

            def run(self, rng=None):
                raise RuntimeError("kaboom")

        with pytest.raises(RuntimeError, match="kaboom"):
            run_jobs([BoomJob()], workers=1)


@dataclass(frozen=True)
class FailJob(JobSpec):
    """Module-level (spawn-picklable) job that always raises."""

    def describe(self) -> str:
        return "fail"

    def run(self, rng=None):
        raise ValueError("injected failure")


class TestSharedMemoryTransport:
    """``use_shm=True`` moves payloads and results as shared-memory
    handles; everything observable — results, ordering, progress,
    errors — matches the pickling path, and ``/dev/shm`` ends clean."""

    @pytest.fixture(scope="class")
    def v2(self):
        clip = make_sequence("miss_america", frames=3, seed=0)
        return encode_sequence(clip, qp=20, estimator="tss", bitstream_version=2)

    @staticmethod
    def shm_leftovers() -> list[str]:
        return sorted(
            glob.glob("/dev/shm/repro-jobs*") + glob.glob("/dev/shm/repro-result*")
        )

    def test_shm_results_byte_identical_and_leak_free(self, v2):
        """Parse jobs and a decode job — payload handles down, result
        exports back — against spawned workers, compared to the
        in-process serial reference."""
        index = FrameIndex.scan(v2.bitstream)
        jobs = [
            ParseFrameJob(index.payload(v2.bitstream, i)) for i in range(len(index))
        ] + [DecodeJob(v2.bitstream)]
        serial = run_jobs(jobs, workers=1)
        shm = run_jobs(jobs, workers=2, use_shm=True)
        assert shm == serial
        assert not self.shm_leftovers()

    def test_use_shm_in_process_is_a_noop(self, v2):
        """workers=1 has no boundary to cross: the flag is ignored and
        no segment is ever created."""
        jobs = [SquareJob(3), DecodeJob(v2.bitstream)]
        assert run_jobs(jobs, workers=1, use_shm=True) == run_jobs(jobs, workers=1)
        assert not self.shm_leftovers()

    def test_pack_shm_defaults_to_identity(self):
        """Specs without array payloads ride the pickle stream unchanged
        (pack_shm is the base-class identity)."""
        job = SquareJob(5)
        assert job.pack_shm(store=None) is job

    def test_progress_fires_per_completed_job_despite_chunking(self):
        """The ProgressFn guarantee: exactly one call per job as it
        completes — supplying a callback forces per-job dispatch, so
        chunk_size cannot batch the reporting."""
        jobs = [SquareJob(v) for v in range(5)]
        messages = []
        results = run_jobs(jobs, workers=2, chunk_size=3, progress=messages.append)
        assert results == [0, 1, 4, 9, 16]
        assert sorted(messages) == sorted(job.describe() for job in jobs)

    def test_shm_failure_path_leaves_dev_shm_clean(self, v2):
        """A failing job mid-run must not orphan input slabs or result
        exports from jobs that already completed."""
        index = FrameIndex.scan(v2.bitstream)
        jobs = [
            ParseFrameJob(index.payload(v2.bitstream, i)) for i in range(len(index))
        ] + [FailJob()]
        with pytest.raises(RuntimeError, match="injected failure"):
            run_jobs(jobs, workers=2, use_shm=True)
        assert not self.shm_leftovers()


class TestJobSpecs:
    def test_specs_hashable(self):
        jobs = {
            EncodeJob("miss_america", 30, "pbm", 16, TINY),
            DecodeJob(b"\x00\x01", use_engine=True),
            Fig4PairJob(0, ((1, 0),), FrameGeometry(96, 80), 7, 16, 3),
            SweepJob(TINY, ("pbm",)),
        }
        assert len(jobs) == 4

    def test_sweep_job_expansion_order(self):
        expanded = SweepJob(TINY, ("acbm", "pbm")).expand()
        assert [(j.estimator, j.qp) for j in expanded] == [
            ("acbm", 30), ("acbm", 16), ("pbm", 30), ("pbm", 16),
        ]
        assert sweep_jobs(TINY, ("acbm", "pbm")) == expanded

    def test_borrowed_renders_rejects_mismatched_renders(self):
        from repro.parallel import borrowed_renders

        wrong_frames = make_sequence("miss_america", frames=5, seed=0)
        with pytest.raises(ValueError, match="5 frames"):
            with borrowed_renders({"miss_america": wrong_frames}, TINY):
                pass
        wrong_geometry = make_sequence(
            "miss_america", frames=TINY.frames, seed=0, geometry=FrameGeometry(96, 80)
        )
        with pytest.raises(ValueError, match="config wants"):
            with borrowed_renders({"miss_america": wrong_geometry}, TINY):
                pass

    def test_borrowed_renders_scoped_to_the_call(self):
        """A caller-held render serves only the borrowing call — it must
        not poison the process-global memo for later sweeps."""
        from repro.parallel import borrowed_renders, clear_render_cache, rendered_source

        clear_render_cache()
        lent = make_sequence(
            "miss_america", frames=TINY.frames, seed=99, geometry=TINY.geometry
        )
        with borrowed_renders({"miss_america": lent}, TINY):
            assert rendered_source("miss_america", TINY) is lent
        fresh = rendered_source("miss_america", TINY)
        assert fresh is not lent  # evicted on exit; re-rendered from config.seed

    def test_encode_job_matches_seed_serial_reference(self):
        """One cell computed through the job spec equals the seed's
        historical inline loop body."""
        job = EncodeJob("miss_america", 30, "pbm", 16, TINY)
        cell = job.run()
        source = make_sequence(
            "miss_america", frames=TINY.frames, seed=TINY.seed, geometry=TINY.geometry
        )
        clip = source.subsample(TINY.subsample_factor(30))
        encoder = Encoder(
            estimator=build_estimator("pbm", TINY), qp=16, keep_reconstruction=False
        )
        encode = encoder.encode(clip)
        stats = encode.search_stats
        reference = SweepCell(
            sequence="miss_america",
            fps=30,
            estimator="pbm",
            qp=16,
            rate_kbps=encode.rate_kbps,
            psnr_y=encode.mean_psnr_y,
            avg_positions=stats.avg_positions_per_block,
            full_search_fraction=stats.full_search_fraction,
            skipped_mbs=sum(f.skipped_mbs for f in encode.frames),
            mv_bits=sum(f.mv_bits for f in encode.frames),
            coefficient_bits=sum(f.coefficient_bits for f in encode.frames),
        )
        assert cell == reference


class TestHarnessEquivalence:
    """Parallel sweeps are byte-identical to serial ones."""

    def test_rd_sweep_jobs2_byte_identical(self):
        serial = run_rd_sweep(TINY, estimators=("pbm",), jobs=1)
        parallel = run_rd_sweep(TINY, estimators=("pbm",), jobs=2)
        assert parallel.cells == serial.cells
        assert parallel.as_text(30) == serial.as_text(30)

    def test_table1_jobs4_byte_identical(self):
        serial = run_table1(TINY, jobs=1)
        parallel = run_table1(TINY, jobs=4)
        assert parallel.as_text() == serial.as_text()
        assert parallel.columns == serial.columns

    def test_fig4_jobs2_identical(self):
        kwargs = dict(
            motions=((2, -1), (-3, 2), (5, 4)),
            geometry=FrameGeometry(96, 80),
            p=7,
            seed=3,
        )
        serial = run_fig4(jobs=1, **kwargs)
        parallel = run_fig4(jobs=2, **kwargs)
        assert parallel.observations == serial.observations

    def test_progress_fires_per_job_in_parallel(self):
        messages = []
        run_rd_sweep(TINY, estimators=("pbm",), jobs=2, progress=messages.append)
        assert sorted(messages) == [
            "miss_america@30fps pbm qp=16",
            "miss_america@30fps pbm qp=30",
        ]


@dataclass(frozen=True)
class BackendProbeJob(JobSpec):
    """Reports the kernel backend active inside the worker."""

    tag: int = 0

    def describe(self) -> str:
        return f"probe {self.tag}"

    def run(self, rng=None):
        from repro.kernels import get_backend

        return get_backend().name


class TestGopShmTransport:
    """``encode_sequence_parallel(..., use_shm=True)`` ships GOP source
    planes as shared-memory handles (``GopEncodeJob.pack_shm``) instead
    of pickled bytes — byte-identical output, clean ``/dev/shm``."""

    @pytest.fixture(scope="class")
    def clip(self):
        return make_sequence("miss_america", frames=6, seed=0)

    @staticmethod
    def shm_leftovers() -> list[str]:
        return sorted(glob.glob("/dev/shm/repro-*"))

    def test_gop_shm_byte_identical_and_leak_free(self, clip):
        from repro.parallel import encode_sequence_parallel

        serial = Encoder(
            estimator="tss", qp=20, i_period=3, bitstream_version=2,
            keep_reconstruction=False,
        ).encode(clip)
        shm = encode_sequence_parallel(
            clip, qp=20, estimator="tss", i_period=3, jobs=2, use_shm=True
        )
        assert shm.bitstream == serial.bitstream
        assert not self.shm_leftovers()

    def test_gop_shm_in_process_matches(self, clip):
        from repro.parallel import encode_sequence_parallel

        plain = encode_sequence_parallel(
            clip, qp=20, estimator="tss", i_period=3, jobs=1
        )
        shm = encode_sequence_parallel(
            clip, qp=20, estimator="tss", i_period=3, jobs=1, use_shm=True
        )
        assert shm.bitstream == plain.bitstream
        assert not self.shm_leftovers()

    def test_pack_shm_roundtrips_planes(self, clip):
        """pack_shm replaces pickled plane bytes with FrameHandles; the
        worker-side frame iteration reconstructs identical frames."""
        from repro.parallel.jobs import GopEncodeJob
        from repro.transport import FrameArena, FrameStore

        frames = list(clip)[0:3]
        geometry = clip.geometry
        job = GopEncodeJob(
            width=geometry.width,
            height=geometry.height,
            start=0,
            planes=tuple(
                (f.y.tobytes(), f.cb.tobytes(), f.cr.tobytes(), f.index) for f in frames
            ),
            estimator="tss",
            qp=20,
            i_period=3,
            n_ref_frames=1,
            bitstream_version=2,
            use_engine=True,
            estimator_kwargs=(),
        )
        with FrameArena(name_prefix="repro-jobs-test") as arena:
            packed = job.pack_shm(FrameStore(arena))
            assert packed.planes is None
            assert len(packed.plane_handles) == 3
            for original, shipped in zip(job._frames(), packed._frames()):
                assert original == shipped
            assert packed.describe() == job.describe()
        assert not self.shm_leftovers()


class TestExperimentShmTransport:
    """The experiment fan-out specs — ``EncodeJob``, ``SweepJob``,
    ``Fig4PairJob`` — travel zero-copy: sources render once in the
    parent through a :class:`FrameStore`, workers read handles, results
    are identical and ``/dev/shm`` ends clean on every path."""

    FIG4_KWARGS = dict(
        motions=((2, -1), (-3, 2), (5, 4)),
        geometry=FrameGeometry(96, 80),
        p=7,
        seed=3,
    )

    @staticmethod
    def shm_leftovers() -> list[str]:
        return sorted(glob.glob("/dev/shm/repro-*"))

    def test_encode_job_pack_shm_runs_identically(self):
        from repro.transport import FrameArena, FrameStore

        job = EncodeJob("miss_america", 30, "pbm", 16, TINY)
        plain = job.run()
        with FrameArena(name_prefix="repro-jobs-test") as arena:
            store = FrameStore(arena)
            packed = job.pack_shm(store)
            assert packed.source is not None
            assert packed.run() == plain
            # Re-packing an already-packed spec is the identity.
            assert packed.pack_shm(store) is packed
        assert not self.shm_leftovers()

    def test_store_renders_each_distinct_source_once(self):
        from repro.transport import FrameArena, FrameStore

        with FrameArena(name_prefix="repro-jobs-test") as arena:
            store = FrameStore(arena)
            cells = SweepJob(TINY, ("pbm", "acbm")).expand()
            packed = [cell.pack_shm(store) for cell in cells]
            assert store.distinct_sources == 1
            # Every cell of the one clip carries the *same* handles —
            # one placed copy, no duplicate slabs.
            assert all(spec.source is packed[0].source for spec in packed)
        assert not self.shm_leftovers()

    def test_sweep_job_pack_shm_packs_cells(self):
        from repro.transport import FrameArena, FrameStore

        job = SweepJob(TINY, ("pbm",))
        plain = job.run()
        with FrameArena(name_prefix="repro-jobs-test") as arena:
            packed = job.pack_shm(FrameStore(arena))
            assert packed.cells is not None
            assert all(cell.source is not None for cell in packed.cells)
            assert packed.expand() == packed.cells
            assert packed.run() == plain
        assert not self.shm_leftovers()

    def test_fig4_pair_job_pack_shm_runs_identically(self):
        from repro.transport import FrameArena, FrameStore

        job = Fig4PairJob(pair_index=1, **self.FIG4_KWARGS)
        plain = job.run()
        with FrameArena(name_prefix="repro-jobs-test") as arena:
            packed = job.pack_shm(FrameStore(arena))
            assert packed.pair is not None
            observations = packed.run()
            assert observations == plain
            # The worker only holds two frames, yet the observations
            # must still carry the rig-wide pair index.
            assert all(obs.frame_pair == 1 for obs in observations)
        assert not self.shm_leftovers()

    def test_use_shm_auto_resolution(self):
        from repro.parallel.pool import _resolve_use_shm

        encode_jobs = [EncodeJob("miss_america", 30, "pbm", qp, TINY) for qp in (30, 16)]
        plain_jobs = [SquareJob(1), SquareJob(2)]
        assert _resolve_use_shm("auto", encode_jobs, workers=2) is True
        assert _resolve_use_shm("auto", encode_jobs, workers=1) is False
        assert _resolve_use_shm("auto", encode_jobs[:1], workers=2) is False
        assert _resolve_use_shm("auto", plain_jobs, workers=2) is False
        assert _resolve_use_shm(True, plain_jobs, workers=1) is True
        with pytest.raises(ValueError, match="use_shm"):
            run_jobs(plain_jobs, workers=1, use_shm="maybe")

    def test_experiment_jobs_spawned_shm_identical_and_leak_free(self):
        jobs = list(SweepJob(TINY, ("pbm",)).expand()) + [
            Fig4PairJob(pair_index=0, **self.FIG4_KWARGS)
        ]
        serial = run_jobs(jobs, workers=1)
        shm = run_jobs(jobs, workers=2, use_shm=True)
        assert shm == serial
        assert not self.shm_leftovers()

    def test_experiment_shm_failure_path_leaves_dev_shm_clean(self):
        jobs = list(SweepJob(TINY, ("pbm",)).expand()) + [FailJob()]
        with pytest.raises(RuntimeError, match="injected failure"):
            run_jobs(jobs, workers=2, use_shm=True)
        assert not self.shm_leftovers()


class TestBackendThreading:
    """The kernel-backend choice survives both run_jobs paths."""

    def test_backend_pinned_in_process_and_restored(self):
        from repro.kernels import get_backend

        before = get_backend()
        assert run_jobs([BackendProbeJob(1)], workers=1, backend="numpy") == ["numpy"]
        assert get_backend() is before

    def test_backend_ships_to_spawned_workers(self):
        names = run_jobs(
            [BackendProbeJob(1), BackendProbeJob(2)], workers=2, backend="numpy"
        )
        assert names == ["numpy", "numpy"]
