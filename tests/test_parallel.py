"""Golden tests for the process-parallel orchestration layer.

The contract under test: every experiment harness produces
**byte-identical** output for any ``--jobs`` value — results merge in
job order and all job inputs derive from explicit seeds — and the job
pool's per-job seeding is a pure function of ``(base_seed, index)``.

Process-spawning tests are deliberately few and tiny (each worker pays
a spawn + import); the cheap determinism properties run in-process.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4_characterization import run_fig4
from repro.experiments.rd_curves import (
    SweepCell,
    build_estimator,
    run_rd_sweep,
    sweep_jobs,
)
from repro.experiments.table1_complexity import run_table1
from repro.parallel import (
    DecodeJob,
    EncodeJob,
    Fig4PairJob,
    JobSpec,
    SweepJob,
    derive_job_seeds,
    run_jobs,
)
from repro.video.frame import FrameGeometry
from repro.video.synthesis.sequences import make_sequence

TINY = ExperimentConfig(
    sequences=("miss_america",), qps=(30, 16), fps_list=(30,), frames=4
)


@dataclass(frozen=True)
class SquareJob(JobSpec):
    """Trivial picklable job for pool-mechanics tests."""

    value: int

    def describe(self) -> str:
        return f"square {self.value}"

    def run(self, rng=None):
        return self.value * self.value


@dataclass(frozen=True)
class DrawJob(JobSpec):
    """Returns one random draw — exercises the per-job seeding."""

    index: int

    def describe(self) -> str:
        return f"draw {self.index}"

    def run(self, rng=None):
        # Both the provided generator and the reseeded global RNG must
        # be deterministic per (base_seed, job index).
        return (float(rng.random()), float(np.random.random()))


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        a = derive_job_seeds(7, 4)
        b = derive_job_seeds(7, 4)
        states_a = [s.generate_state(2).tolist() for s in a]
        states_b = [s.generate_state(2).tolist() for s in b]
        assert states_a == states_b
        assert len({tuple(s) for s in states_a}) == 4

    def test_prefix_stable(self):
        """Job i's seed does not depend on how many jobs follow it."""
        three = derive_job_seeds(0, 3)
        five = derive_job_seeds(0, 5)
        assert [s.generate_state(1)[0] for s in three] == [
            s.generate_state(1)[0] for s in five[:3]
        ]

    def test_empty_and_negative(self):
        assert derive_job_seeds(0, 0) == []
        with pytest.raises(ValueError):
            derive_job_seeds(0, -1)


class TestPoolMechanics:
    def test_results_in_job_order(self):
        jobs = [SquareJob(v) for v in (3, 1, 4, 1, 5)]
        assert run_jobs(jobs) == [9, 1, 16, 1, 25]

    def test_progress_in_process(self):
        messages = []
        run_jobs([SquareJob(2), SquareJob(3)], progress=messages.append)
        assert messages == ["square 2", "square 3"]

    def test_empty_job_list(self):
        assert run_jobs([], workers=4) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            run_jobs([SquareJob(1)], chunk_size=0)

    def test_draws_deterministic_per_job(self):
        jobs = [DrawJob(i) for i in range(4)]
        forward = run_jobs(jobs, base_seed=11)
        assert run_jobs(jobs, base_seed=11) == forward
        assert len({draw for draw, _ in forward}) == 4  # independent streams
        assert run_jobs(jobs, base_seed=12) != forward

    def test_spawned_workers_match_in_process(self):
        """Placement/order independence: the same jobs (including ones
        consuming the global RNG) give the same results from spawned
        workers as from the serial fallback."""
        jobs = [SquareJob(v) for v in range(6)] + [DrawJob(i) for i in range(2)]
        serial = run_jobs(jobs, workers=1, base_seed=5)
        parallel = run_jobs(jobs, workers=2, base_seed=5, chunk_size=3)
        assert parallel == serial

    def test_caller_rng_stream_preserved(self):
        """In-process execution reseeds the global RNG per job but must
        hand the caller's stream back untouched."""
        np.random.seed(42)
        expected_next = np.random.RandomState(42).random_sample(3)
        assert np.random.random() == expected_next[0]
        run_jobs([DrawJob(0), DrawJob(1)], base_seed=0)
        assert np.random.random() == expected_next[1]

    def test_in_process_exception_propagates(self):
        @dataclass(frozen=True)
        class BoomJob(JobSpec):
            def describe(self) -> str:
                return "boom"

            def run(self, rng=None):
                raise RuntimeError("kaboom")

        with pytest.raises(RuntimeError, match="kaboom"):
            run_jobs([BoomJob()], workers=1)


class TestJobSpecs:
    def test_specs_hashable(self):
        jobs = {
            EncodeJob("miss_america", 30, "pbm", 16, TINY),
            DecodeJob(b"\x00\x01", use_engine=True),
            Fig4PairJob(0, ((1, 0),), FrameGeometry(96, 80), 7, 16, 3),
            SweepJob(TINY, ("pbm",)),
        }
        assert len(jobs) == 4

    def test_sweep_job_expansion_order(self):
        expanded = SweepJob(TINY, ("acbm", "pbm")).expand()
        assert [(j.estimator, j.qp) for j in expanded] == [
            ("acbm", 30), ("acbm", 16), ("pbm", 30), ("pbm", 16),
        ]
        assert sweep_jobs(TINY, ("acbm", "pbm")) == expanded

    def test_borrowed_renders_rejects_mismatched_renders(self):
        from repro.parallel import borrowed_renders

        wrong_frames = make_sequence("miss_america", frames=5, seed=0)
        with pytest.raises(ValueError, match="5 frames"):
            with borrowed_renders({"miss_america": wrong_frames}, TINY):
                pass
        wrong_geometry = make_sequence(
            "miss_america", frames=TINY.frames, seed=0, geometry=FrameGeometry(96, 80)
        )
        with pytest.raises(ValueError, match="config wants"):
            with borrowed_renders({"miss_america": wrong_geometry}, TINY):
                pass

    def test_borrowed_renders_scoped_to_the_call(self):
        """A caller-held render serves only the borrowing call — it must
        not poison the process-global memo for later sweeps."""
        from repro.parallel import borrowed_renders, clear_render_cache, rendered_source

        clear_render_cache()
        lent = make_sequence(
            "miss_america", frames=TINY.frames, seed=99, geometry=TINY.geometry
        )
        with borrowed_renders({"miss_america": lent}, TINY):
            assert rendered_source("miss_america", TINY) is lent
        fresh = rendered_source("miss_america", TINY)
        assert fresh is not lent  # evicted on exit; re-rendered from config.seed

    def test_encode_job_matches_seed_serial_reference(self):
        """One cell computed through the job spec equals the seed's
        historical inline loop body."""
        job = EncodeJob("miss_america", 30, "pbm", 16, TINY)
        cell = job.run()
        source = make_sequence(
            "miss_america", frames=TINY.frames, seed=TINY.seed, geometry=TINY.geometry
        )
        clip = source.subsample(TINY.subsample_factor(30))
        encoder = Encoder(
            estimator=build_estimator("pbm", TINY), qp=16, keep_reconstruction=False
        )
        encode = encoder.encode(clip)
        stats = encode.search_stats
        reference = SweepCell(
            sequence="miss_america",
            fps=30,
            estimator="pbm",
            qp=16,
            rate_kbps=encode.rate_kbps,
            psnr_y=encode.mean_psnr_y,
            avg_positions=stats.avg_positions_per_block,
            full_search_fraction=stats.full_search_fraction,
            skipped_mbs=sum(f.skipped_mbs for f in encode.frames),
            mv_bits=sum(f.mv_bits for f in encode.frames),
            coefficient_bits=sum(f.coefficient_bits for f in encode.frames),
        )
        assert cell == reference


class TestHarnessEquivalence:
    """Parallel sweeps are byte-identical to serial ones."""

    def test_rd_sweep_jobs2_byte_identical(self):
        serial = run_rd_sweep(TINY, estimators=("pbm",), jobs=1)
        parallel = run_rd_sweep(TINY, estimators=("pbm",), jobs=2)
        assert parallel.cells == serial.cells
        assert parallel.as_text(30) == serial.as_text(30)

    def test_table1_jobs4_byte_identical(self):
        serial = run_table1(TINY, jobs=1)
        parallel = run_table1(TINY, jobs=4)
        assert parallel.as_text() == serial.as_text()
        assert parallel.columns == serial.columns

    def test_fig4_jobs2_identical(self):
        kwargs = dict(
            motions=((2, -1), (-3, 2), (5, 4)),
            geometry=FrameGeometry(96, 80),
            p=7,
            seed=3,
        )
        serial = run_fig4(jobs=1, **kwargs)
        parallel = run_fig4(jobs=2, **kwargs)
        assert parallel.observations == serial.observations

    def test_progress_fires_per_job_in_parallel(self):
        messages = []
        run_rd_sweep(TINY, estimators=("pbm",), jobs=2, progress=messages.append)
        assert sorted(messages) == [
            "miss_america@30fps pbm qp=16",
            "miss_america@30fps pbm qp=30",
        ]
