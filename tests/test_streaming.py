"""Golden tests for the streaming subsystem (:mod:`repro.streaming`).

The two contracts everything else hangs off:

* **decode**: :class:`StreamDecoder` fed *any* chunking of a version-2
  stream — 1-byte feeds, splits inside start codes and length fields,
  random cuts (hypothesis) — produces frames bit-identical to
  :func:`decode_bitstream` over the whole buffer, and truncated or
  corrupt tails raise the same errors the whole-buffer scan raises;
* **encode**: :class:`StreamEncoder` pulling frames from an iterator
  (including straight off an on-disk YUV file) emits bytes identical to
  the whole-sequence :class:`Encoder`, in both wire formats.
"""

import glob
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import FRAME_START_CODE, encode_sequence
from repro.streaming import (
    DecodeSession,
    EncodeSession,
    ParseStage,
    ScanState,
    StreamDecoder,
    StreamEncoder,
    stream_decode,
)
from repro.streaming.pipeline import normalize_pipeline, parse_payload
from repro.video.frame import Frame, FrameGeometry
from repro.video.sequence import Sequence
from repro.video.yuv_io import iter_yuv_frames, read_yuv, write_yuv

SMALL = FrameGeometry(32, 32)


def random_sequence(n=4, seed=7, geometry=SMALL):
    rng = np.random.default_rng(seed)
    ch, cw = geometry.chroma_height, geometry.chroma_width
    frames = [
        Frame(
            rng.integers(0, 256, (geometry.height, geometry.width), dtype=np.uint8),
            rng.integers(0, 256, (ch, cw), dtype=np.uint8),
            rng.integers(0, 256, (ch, cw), dtype=np.uint8),
            index=i,
        )
        for i in range(n)
    ]
    return Sequence(frames, fps=30, name="stream-test")


@pytest.fixture(scope="module")
def clip():
    return random_sequence(4)


@pytest.fixture(scope="module")
def v2(clip):
    return encode_sequence(
        clip, qp=18, estimator="tss", keep_reconstruction=True, bitstream_version=2
    )


@pytest.fixture(scope="module")
def v1(clip):
    return encode_sequence(
        clip, qp=18, estimator="tss", keep_reconstruction=True, bitstream_version=1
    )


@pytest.fixture(scope="module")
def whole(v2):
    return decode_bitstream(v2.bitstream)


def assert_frames_equal(actual, expected):
    assert len(actual) == len(expected)
    assert all(a == b for a, b in zip(actual, expected))


# -- incremental scanner ---------------------------------------------------


class TestScanState:
    @pytest.mark.parametrize("chunk", [1, 7, 13, 64, 10**6])
    def test_ranges_match_whole_buffer_scan(self, v2, chunk):
        index = FrameIndex.scan(v2.bitstream)
        state = ScanState(keep_payloads=False)
        for start in range(0, len(v2.bitstream), chunk):
            state.feed(v2.bitstream[start : start + chunk])
        state.finish()
        assert state.ranges == list(index.ranges)
        assert state.frames_scanned == len(index)
        assert not state.payloads  # keep_payloads=False records ranges only

    def test_payloads_match_index_payloads(self, v2):
        index = FrameIndex.scan(v2.bitstream)
        state = ScanState()
        state.feed(v2.bitstream)
        state.finish()
        assert list(state.payloads) == [
            index.payload(v2.bitstream, i) for i in range(len(index))
        ]

    def test_accumulator_stays_bounded(self, v2):
        """The scanner holds at most one in-flight frame plus the tail
        of the current chunk — never the whole stream."""
        index = FrameIndex.scan(v2.bitstream)
        largest_frame = max(end - start for start, end in index.ranges) + 8
        chunk = 16
        state = ScanState(keep_payloads=False)
        for start in range(0, len(v2.bitstream), chunk):
            state.feed(v2.bitstream[start : start + chunk])
            assert state.buffered_bytes <= largest_frame + chunk
        state.finish()

    def test_feed_after_finish_rejected(self, v2):
        state = ScanState()
        state.feed(v2.bitstream)
        state.finish()
        with pytest.raises(ValueError, match="finish"):
            state.feed(b"\x00")

    def test_short_tail_ignored_like_whole_buffer(self, v2):
        """A trailing fragment too short to open a frame is ignored by
        the incremental and whole-buffer scanners alike."""
        padded = v2.bitstream + b"\x00" * 13
        state = ScanState(keep_payloads=False)
        state.feed(padded)
        state.finish()  # does not raise
        assert state.frames_scanned == len(FrameIndex.scan(padded))

    def test_trailing_garbage_error_names_offset(self, v2):
        """Frame-sized garbage after the last frame raises the same
        error, with the same byte offset, from both scanners."""
        junk = v2.bitstream + b"\x00" * 64
        with pytest.raises(ValueError, match=f"start code at byte {len(v2.bitstream)}") as whole_err:
            FrameIndex.scan(junk)
        state = ScanState()
        with pytest.raises(ValueError, match=f"start code at byte {len(v2.bitstream)}") as inc_err:
            state.feed(junk)
        assert str(whole_err.value) == str(inc_err.value)

    def test_overrun_error_names_offsets(self, v2):
        """A length field pointing past end of stream names the frame's
        byte offset, the declared end and the actual end — from the
        whole-buffer scan and from the incremental finish() alike."""
        last_start = FrameIndex.scan(v2.bitstream).ranges[-1][0] - 8
        truncated = v2.bitstream[:-1]
        with pytest.raises(ValueError, match=f"frame at byte {last_start} overruns") as whole_err:
            FrameIndex.scan(truncated)
        assert f"ends at byte {len(truncated)}" in str(whole_err.value)
        state = ScanState()
        state.feed(truncated)
        with pytest.raises(ValueError, match=f"frame at byte {last_start} overruns") as inc_err:
            state.finish()
        assert str(whole_err.value) == str(inc_err.value)

    def test_v1_stream_rejected_with_version_error(self, v1):
        state = ScanState()
        with pytest.raises(ValueError, match="version-2"):
            state.feed(v1.bitstream)

    def test_short_v1_fragment_rejected_at_finish(self):
        """A non-v2 stream too short to be judged during feed must not
        pass for a clean empty stream: finish() raises the version
        error, matching FrameIndex.scan's classification."""
        state = ScanState()
        state.feed(b"\x7e\x7e" + b"\x00" * 10)  # < MIN_FRAME_BYTES
        with pytest.raises(ValueError, match="version-2"):
            state.finish()
        # ... while a short *v2* fragment stays an ignorable tail.
        state = ScanState()
        state.feed(b"\x00\x00\x01\xb6\x00\x00")
        state.finish()
        assert state.frames_scanned == 0

    def test_counters_consistent_after_mid_chunk_error(self, v2):
        """Frames completed before garbage in the same chunk are kept,
        and bytes_fed/buffered_bytes account for the whole chunk even
        though feed() raised."""
        junk = v2.bitstream + b"\xff" * 64
        state = ScanState()
        with pytest.raises(ValueError, match="start code"):
            state.feed(junk)
        assert state.frames_scanned == len(FrameIndex.scan(v2.bitstream))
        assert state.bytes_fed == len(junk)
        assert state.buffered_bytes == 64  # the offending tail is retained


# -- push decoder ----------------------------------------------------------


class TestStreamDecoder:
    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 7, 8, 9, 13, 64, 10**6])
    def test_fixed_chunkings_bit_identical(self, v2, whole, chunk):
        """Every fixed chunk size — including 1-byte feeds and sizes
        that split every start code and length field — decodes
        bit-identically to the whole-buffer decode."""
        chunks = [v2.bitstream[i : i + chunk] for i in range(0, len(v2.bitstream), chunk)]
        assert_frames_equal(list(stream_decode(chunks)), whole)

    @pytest.mark.parametrize("cut", range(1, 16))
    def test_boundary_inside_framing_fields(self, v2, whole, cut):
        """One cut placed at every offset through the first frame's
        start code, length field and picture header."""
        chunks = [v2.bitstream[:cut], v2.bitstream[cut:]]
        assert_frames_equal(list(stream_decode(chunks)), whole)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_chunkings_bit_identical(self, v2, whole, data):
        stream = v2.bitstream
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, len(stream)), min_size=0, max_size=40),
                label="cuts",
            )
        )
        points = [0, *cuts, len(stream)]
        chunks = [stream[a:b] for a, b in zip(points, points[1:])]
        assert_frames_equal(list(stream_decode(chunks)), whole)

    def test_matches_encoder_closed_loop(self, v2):
        decoded = list(stream_decode([v2.bitstream]))
        assert_frames_equal(decoded, v2.reconstruction)

    def test_frames_emitted_as_soon_as_complete(self, v2):
        """Each frame is drainable the moment its payload's last byte
        arrives — not at end of stream."""
        index = FrameIndex.scan(v2.bitstream)
        decoder = StreamDecoder(max_buffered_frames=len(index))
        pos = 0
        for i, (_, end) in enumerate(index.ranges):
            decoder.feed(v2.bitstream[pos:end])
            pos = end
            assert decoder.frames_decoded == i + 1
        decoder.close()

    def test_backpressure_demand(self, v2, whole):
        decoder = StreamDecoder(max_buffered_frames=1)
        demand = decoder.feed(v2.bitstream)
        assert demand == 0  # full: drain before feeding more
        drained = []
        for frame in decoder.frames():
            drained.append(frame)
        assert decoder.demand == 1  # empty again
        decoder.close()
        assert_frames_equal(drained, whole)

    def test_pending_payloads_stay_compressed(self, v2):
        """Past the buffer bound, completed frames wait as payload
        bytes, not decoded pixels."""
        decoder = StreamDecoder(max_buffered_frames=1)
        decoder.feed(v2.bitstream)
        raw_frame = 32 * 32 + 2 * 16 * 16
        # one decoded frame + the remaining payloads' compressed bytes
        assert decoder.buffered_bytes < raw_frame + len(v2.bitstream)
        assert decoder.frames_decoded == 1

    def test_callback_mode(self, v2, whole):
        got = []
        decoder = StreamDecoder(on_frame=got.append)
        for i in range(0, len(v2.bitstream), 11):
            assert decoder.feed(v2.bitstream[i : i + 11]) > 0  # demand never drops
        decoder.close()
        assert_frames_equal(got, whole)
        assert list(decoder.frames()) == []  # callback consumed everything

    def test_feed_after_close_rejected(self, v2):
        decoder = StreamDecoder()
        decoder.feed(v2.bitstream)
        list(decoder.frames())
        decoder.close()
        with pytest.raises(ValueError, match="close"):
            decoder.feed(b"\x00")

    def test_truncated_tail_raises_on_close(self, v2):
        """Cutting the stream mid-payload decodes every complete frame,
        then close() raises the whole-buffer scanner's overrun error."""
        index = FrameIndex.scan(v2.bitstream)
        cut = index.ranges[-1][1] - 3  # 3 bytes short of the last frame
        decoder = StreamDecoder(max_buffered_frames=len(index))
        decoder.feed(v2.bitstream[:cut])
        got = list(decoder.frames())
        assert len(got) == len(index) - 1
        with pytest.raises(ValueError, match="overruns"):
            decoder.close()

    def test_corrupt_length_field_fails_like_whole_buffer(self, v2):
        """An inflated length field must fail the streamed decode just
        as it fails every whole-buffer mode (check_frame_length)."""
        corrupt = bytearray(v2.bitstream + b"\x00\x00")
        last_start = FrameIndex.scan(v2.bitstream).ranges[-1][0]
        field = last_start - 4
        length = int.from_bytes(corrupt[field : field + 4], "big") + 2
        corrupt[field : field + 4] = length.to_bytes(4, "big")
        corrupt = bytes(corrupt)
        with pytest.raises(ValueError, match="length field"):
            decode_bitstream(corrupt)
        decoder = StreamDecoder(max_buffered_frames=10)
        with pytest.raises(ValueError, match="length field"):
            decoder.feed(corrupt)
            decoder.close()

    def test_v1_stream_rejected(self, v1):
        decoder = StreamDecoder()
        with pytest.raises(ValueError, match="version-2"):
            decoder.feed(v1.bitstream)

    def test_max_buffered_frames_validated(self):
        with pytest.raises(ValueError, match="max_buffered_frames"):
            StreamDecoder(max_buffered_frames=0)


# -- pipelined decode ------------------------------------------------------


def shm_pipe_segments() -> list[str]:
    """Shared segments the process-mode parse stage may have leaked."""
    return sorted(glob.glob("/dev/shm/repro-pipe*"))


@pytest.fixture(scope="module")
def payloads(v2):
    index = FrameIndex.scan(v2.bitstream)
    return [index.payload(v2.bitstream, i) for i in range(len(index))]


@pytest.fixture(scope="module")
def corrupt_stream(v2):
    """``v2`` with one payload byte flipped so the serial decode raises
    — found by scanning offsets, since a flip can land in dead padding
    and decode cleanly."""
    start, end = FrameIndex.scan(v2.bitstream).ranges[-1]
    for offset in range(start + 4, end, 3):
        corrupt = bytearray(v2.bitstream)
        corrupt[offset] ^= 0xFF
        corrupt = bytes(corrupt)
        try:
            list(stream_decode([corrupt]))
        except Exception as exc:  # noqa: BLE001 - parity is about *any* error
            return corrupt, exc
    pytest.fail("no corrupting offset found in the last payload")


class TestParseStage:
    def test_normalize_pipeline(self):
        assert normalize_pipeline(False) is None
        assert normalize_pipeline(None) is None
        assert normalize_pipeline(True) == "thread"
        assert normalize_pipeline("thread") == "thread"
        assert normalize_pipeline("process") == "process"
        with pytest.raises(ValueError, match="pipeline"):
            normalize_pipeline("fork")

    def test_kind_and_depth_validated(self):
        with pytest.raises(ValueError, match="kind"):
            ParseStage(kind="fork")
        with pytest.raises(ValueError, match="depth"):
            ParseStage(depth=0)

    def test_thread_stage_results_in_order_nothing_copied(self, payloads):
        stage = ParseStage(kind="thread", depth=len(payloads))
        try:
            for payload in payloads:
                stage.submit(payload)
            results = [stage.poll(block=True) for _ in payloads]
        finally:
            stage.close()
        assert [seq for _tag, seq, _v in results] == list(range(len(payloads)))
        assert all(tag == "ok" for tag, _seq, _v in results)
        assert [v for _tag, _seq, v in results] == [parse_payload(p) for p in payloads]
        assert stage.bytes_copied == 0 and stage.handles_passed == 0

    def test_process_stage_ships_handles_and_cleans_up(self, payloads):
        stage = ParseStage(kind="process", depth=len(payloads))
        try:
            for payload in payloads:
                stage.submit(payload)
            results = [stage.poll(block=True) for _ in payloads]
        finally:
            stage.close()
        assert [v for _tag, _seq, v in results] == [parse_payload(p) for p in payloads]
        # Only the compressed feed crossed by value; the parsed arrays
        # came back as shared-memory handles, >= 1 per picture.
        assert stage.bytes_copied == sum(len(p) for p in payloads)
        assert stage.handles_passed >= len(payloads)
        assert not shm_pipe_segments()

    def test_close_discards_in_flight_without_leaks(self, payloads):
        stage = ParseStage(kind="process", depth=2)
        for payload in payloads:
            stage.submit(payload)
        stage.close()  # results never collected — discarded and unlinked
        stage.close()  # idempotent
        assert not shm_pipe_segments()
        with pytest.raises(ValueError, match="closed"):
            stage.submit(b"")


class TestPipelinedDecoder:
    @pytest.mark.parametrize("chunk", [1, 7, 64, 10**6])
    def test_thread_chunkings_bit_identical(self, v2, whole, chunk):
        """Any chunking — including 1-byte feeds — through the
        thread-pipelined session decodes bit-identically to serial."""
        chunks = [v2.bitstream[i : i + chunk] for i in range(0, len(v2.bitstream), chunk)]
        assert_frames_equal(list(stream_decode(chunks, pipeline="thread")), whole)

    def test_process_mode_bit_identical_and_leak_free(self, v2, whole):
        chunks = [v2.bitstream[i : i + 7] for i in range(0, len(v2.bitstream), 7)]
        assert_frames_equal(list(stream_decode(chunks, pipeline="process")), whole)
        assert not shm_pipe_segments()

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_chunkings_bit_identical(self, v2, whole, data):
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, len(v2.bitstream)), min_size=0, max_size=40),
                label="cuts",
            )
        )
        points = [0, *cuts, len(v2.bitstream)]
        chunks = [v2.bitstream[a:b] for a, b in zip(points, points[1:])]
        assert_frames_equal(list(stream_decode(chunks, pipeline=True)), whole)

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_error_parity_mid_pipeline(self, corrupt_stream, kind):
        """A corrupt payload fed mid-stream raises the serial path's
        exact error — same type, same message — from the pipelined
        session, and tears the stage down without leaking."""
        corrupt, serial_exc = corrupt_stream
        decoder = StreamDecoder(max_buffered_frames=10, pipeline=kind)
        with pytest.raises(type(serial_exc)) as err:
            for i in range(0, len(corrupt), 11):
                decoder.feed(corrupt[i : i + 11])
                list(decoder.frames())
            decoder.close()
            list(decoder.frames())
        assert str(err.value) == str(serial_exc)
        assert not shm_pipe_segments()

    def test_backpressure_bound_holds(self, v2, whole):
        """A demand-honoring producer never sees more decoded frames
        buffered than ``max_buffered_frames``, pipeline or not."""
        decoder = StreamDecoder(max_buffered_frames=1, pipeline="thread")
        out = []
        pos = 0
        while pos < len(v2.bitstream):
            if decoder.demand > 0:
                decoder.feed(v2.bitstream[pos : pos + 64])
                pos += 64
            else:
                out.extend(decoder.frames())
            assert decoder.frames_decoded - len(out) <= decoder.max_buffered_frames
        decoder.close()
        out.extend(decoder.frames())
        assert_frames_equal(out, whole)

    def test_callback_mode_pipelined(self, v2, whole):
        got = []
        decoder = StreamDecoder(on_frame=got.append, pipeline="thread")
        for i in range(0, len(v2.bitstream), 11):
            decoder.feed(v2.bitstream[i : i + 11])
        decoder.close()
        assert list(decoder.frames()) == []  # the callback consumed everything
        assert_frames_equal(got, whole)

    def test_truncated_tail_raises_on_close(self, v2):
        """Complete frames decode despite a truncated tail, and close()
        raises the scanner's overrun error.  The pipelined drain is
        asynchronous while demand remains (frames() only *waits* when
        it would otherwise stall the producer), so poll until the
        in-flight parses land."""
        index = FrameIndex.scan(v2.bitstream)
        cut = index.ranges[-1][1] - 3
        decoder = StreamDecoder(max_buffered_frames=len(index), pipeline="thread")
        decoder.feed(v2.bitstream[:cut])
        got = []
        for _ in range(10_000):
            got.extend(decoder.frames())
            if len(got) == len(index) - 1:
                break
            time.sleep(0.001)
        assert len(got) == len(index) - 1
        with pytest.raises(ValueError, match="overruns"):
            decoder.close()

    def test_invalid_pipeline_flag_rejected(self):
        with pytest.raises(ValueError, match="pipeline"):
            StreamDecoder(pipeline="fork")


# -- iterator encoder ------------------------------------------------------


class TestStreamEncoder:
    @pytest.mark.parametrize("version", [1, 2])
    def test_byte_identical_to_whole_sequence_encoder(self, clip, v1, v2, version):
        reference = v1 if version == 1 else v2
        encoder = StreamEncoder(estimator="tss", qp=18, bitstream_version=version)
        streamed = b"".join(encoder.encode_iter(iter(clip)))
        assert streamed == reference.bitstream
        assert [r.bits for r in encoder.records] == [r.bits for r in reference.frames]

    def test_v2_chunks_are_framed_pictures(self, clip, v2):
        encoder = StreamEncoder(estimator="tss", qp=18, bitstream_version=2)
        chunks = list(encoder.encode_iter(iter(clip)))
        assert len(chunks) == len(clip)
        start = FRAME_START_CODE.to_bytes(4, "big")
        assert all(chunk.startswith(start) for chunk in chunks)
        index = FrameIndex.scan(v2.bitstream)
        assert [len(c) for c in chunks] == [
            end - start_ + 8 for start_, end in index.ranges
        ]

    def test_v1_emits_incrementally_with_final_padding(self, clip, v1):
        """v1 pictures pack unaligned: whole bytes flow out per picture
        and the zero-padded final partial byte arrives last."""
        encoder = StreamEncoder(estimator="tss", qp=18, bitstream_version=1)
        chunks = list(encoder.encode_iter(iter(clip)))
        assert b"".join(chunks) == v1.bitstream
        assert len(chunks) >= len(clip)

    def test_empty_iterator_raises(self):
        encoder = StreamEncoder(estimator="tss", qp=18)
        with pytest.raises(ValueError, match="at least one frame"):
            list(encoder.encode_iter(iter([])))

    def test_mixed_geometry_raises(self, clip):
        other = random_sequence(1, seed=9, geometry=FrameGeometry(48, 32))
        encoder = StreamEncoder(estimator="tss", qp=18)
        with pytest.raises(ValueError, match="mixed geometries"):
            list(encoder.encode_iter([clip[0], other[0]]))

    def test_encode_straight_from_yuv_file(self, clip, tmp_path):
        """The bounded-ingest path: iter_yuv_frames → StreamEncoder →
        StreamDecoder round trip, no Sequence ever materialized."""
        path = tmp_path / "clip.yuv"
        write_yuv(path, clip)
        encoder = StreamEncoder(estimator="tss", qp=18, bitstream_version=2)
        streamed = b"".join(encoder.encode_iter(iter_yuv_frames(path, SMALL)))
        reference = encode_sequence(
            read_yuv(path, SMALL), qp=18, estimator="tss",
            keep_reconstruction=True, bitstream_version=2,
        )
        assert streamed == reference.bitstream
        decoded = list(stream_decode([streamed[i : i + 7] for i in range(0, len(streamed), 7)]))
        assert_frames_equal(decoded, reference.reconstruction)


# -- sessions --------------------------------------------------------------


class TestSessions:
    def test_decode_session_stats(self, v2, whole):
        session = DecodeSession(max_buffered_frames=2)
        out = []
        for i in range(0, len(v2.bitstream), 100):
            session.feed(v2.bitstream[i : i + 100])
            out.extend(session.frames())
        session.close()
        out.extend(session.frames())
        assert_frames_equal(out, whole)
        stats = session.stats()
        raw_frame = 32 * 32 + 2 * 16 * 16
        assert stats.frames_in == stats.frames_out == len(whole)
        assert stats.bytes_in == len(v2.bitstream)
        assert stats.bytes_out == len(whole) * raw_frame
        assert stats.buffered_bytes == 0
        assert 0 < stats.peak_buffered_bytes <= 2 * raw_frame + len(v2.bitstream)
        assert stats.wall_s > 0
        assert "frames" in stats.as_text()

    @pytest.mark.parametrize("pipeline", [False, "thread"])
    def test_decode_session_in_process_modes_copy_nothing(self, v2, whole, pipeline):
        """Serial and thread-pipelined sessions move every payload by
        reference: the transport ledger stays at zero and stays out of
        the stats text."""
        session = DecodeSession(max_buffered_frames=4, pipeline=pipeline)
        out = []
        session.feed(v2.bitstream)
        out.extend(session.frames())
        session.close()
        out.extend(session.frames())
        assert_frames_equal(out, whole)
        stats = session.stats()
        assert stats.bytes_copied == 0 and stats.handles_passed == 0
        assert "transport" not in stats.as_text()

    def test_decode_session_process_mode_ledger(self, v2, whole):
        """Process mode copies exactly the compressed payload bytes down
        and brings the parsed bulk back as handles — what the stats
        surface (and ``stream-bench --json``) report."""
        index = FrameIndex.scan(v2.bitstream)
        compressed = sum(len(index.payload(v2.bitstream, i)) for i in range(len(index)))
        session = DecodeSession(max_buffered_frames=len(index), pipeline="process")
        out = []
        session.feed(v2.bitstream)
        out.extend(session.frames())
        session.close()
        out.extend(session.frames())
        assert_frames_equal(out, whole)
        stats = session.stats()
        assert stats.bytes_copied == compressed
        assert stats.handles_passed >= len(whole)
        assert "transport" in stats.as_text()
        assert not shm_pipe_segments()

    def test_encode_session_stats(self, clip, v2):
        session = EncodeSession(estimator="tss", qp=18, bitstream_version=2)
        streamed = b"".join(session.encode_iter(iter(clip)))
        assert streamed == v2.bitstream
        stats = session.stats()
        raw_frame = 32 * 32 + 2 * 16 * 16
        assert stats.frames_in == stats.frames_out == len(clip)
        assert stats.bytes_in == len(clip) * raw_frame
        assert stats.bytes_out == len(v2.bitstream)
        assert len(session.records) == len(clip)
