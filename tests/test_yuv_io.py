"""Unit tests for repro.video.yuv_io."""

import numpy as np
import pytest

from repro.video.frame import Frame, FrameGeometry, QCIF
from repro.video.sequence import Sequence
from repro.video.yuv_io import frame_size_bytes, iter_yuv_frames, read_yuv, write_yuv

SMALL = FrameGeometry(32, 16)


def random_sequence(n=3, seed=5):
    rng = np.random.default_rng(seed)
    frames = [
        Frame(
            rng.integers(0, 256, (16, 32), dtype=np.uint8),
            rng.integers(0, 256, (8, 16), dtype=np.uint8),
            rng.integers(0, 256, (8, 16), dtype=np.uint8),
            index=i,
        )
        for i in range(n)
    ]
    return Sequence(frames, fps=30, name="io")


class TestFrameSize:
    def test_qcif_frame_size(self):
        # 176*144 + 2 * 88*72 = 38016 bytes — the well-known QCIF size.
        assert frame_size_bytes(QCIF) == 38016

    def test_small(self):
        assert frame_size_bytes(SMALL) == 32 * 16 + 2 * 16 * 8


class TestRoundTrip:
    def test_write_then_read_is_identity(self, tmp_path):
        seq = random_sequence(4)
        path = tmp_path / "clip.yuv"
        written = write_yuv(path, seq)
        assert written == 4 * frame_size_bytes(SMALL)
        back = read_yuv(path, SMALL, fps=30)
        assert len(back) == 4
        for a, b in zip(seq, back):
            assert a == b

    def test_read_respects_max_frames(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(5))
        back = read_yuv(path, SMALL, max_frames=2)
        assert len(back) == 2

    def test_read_assigns_indices(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(3))
        back = read_yuv(path, SMALL)
        assert [f.index for f in back] == [0, 1, 2]

    def test_default_name_is_filename(self, tmp_path):
        path = tmp_path / "myclip.yuv"
        write_yuv(path, random_sequence(1))
        assert read_yuv(path, SMALL).name == "myclip.yuv"


class TestErrors:
    def test_wrong_geometry_detected(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(2))
        with pytest.raises(ValueError, match="not a multiple"):
            list(iter_yuv_frames(path, QCIF))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.yuv"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="no frames"):
            read_yuv(path, SMALL)
