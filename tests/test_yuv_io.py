"""Unit tests for repro.video.yuv_io."""

import numpy as np
import pytest

from repro.video.frame import Frame, FrameGeometry, QCIF
from repro.video.sequence import Sequence
from repro.video.yuv_io import frame_size_bytes, iter_yuv_frames, read_yuv, write_yuv

SMALL = FrameGeometry(32, 16)


def random_sequence(n=3, seed=5):
    rng = np.random.default_rng(seed)
    frames = [
        Frame(
            rng.integers(0, 256, (16, 32), dtype=np.uint8),
            rng.integers(0, 256, (8, 16), dtype=np.uint8),
            rng.integers(0, 256, (8, 16), dtype=np.uint8),
            index=i,
        )
        for i in range(n)
    ]
    return Sequence(frames, fps=30, name="io")


class TestFrameSize:
    def test_qcif_frame_size(self):
        # 176*144 + 2 * 88*72 = 38016 bytes — the well-known QCIF size.
        assert frame_size_bytes(QCIF) == 38016

    def test_small(self):
        assert frame_size_bytes(SMALL) == 32 * 16 + 2 * 16 * 8


class TestRoundTrip:
    def test_write_then_read_is_identity(self, tmp_path):
        seq = random_sequence(4)
        path = tmp_path / "clip.yuv"
        written = write_yuv(path, seq)
        assert written == 4 * frame_size_bytes(SMALL)
        back = read_yuv(path, SMALL, fps=30)
        assert len(back) == 4
        for a, b in zip(seq, back):
            assert a == b

    def test_read_respects_max_frames(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(5))
        back = read_yuv(path, SMALL, max_frames=2)
        assert len(back) == 2

    def test_iter_respects_max_frames(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(5))
        frames = list(iter_yuv_frames(path, SMALL, max_frames=3))
        assert [f.index for f in frames] == [0, 1, 2]

    def test_read_assigns_indices(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(3))
        back = read_yuv(path, SMALL)
        assert [f.index for f in back] == [0, 1, 2]

    def test_default_name_is_filename(self, tmp_path):
        path = tmp_path / "myclip.yuv"
        write_yuv(path, random_sequence(1))
        assert read_yuv(path, SMALL).name == "myclip.yuv"


class TestErrors:
    def test_wrong_geometry_detected(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(2))
        with pytest.raises(ValueError, match="not a multiple"):
            list(iter_yuv_frames(path, QCIF))

    def test_truncated_trailing_frame_names_byte_count(self, tmp_path):
        """A file cut mid-frame raises an error naming exactly how many
        trailing bytes the partial frame left behind."""
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(3))
        data = path.read_bytes()
        path.write_bytes(data[:-37])
        per_frame = frame_size_bytes(SMALL)
        with pytest.raises(ValueError, match=f"{per_frame - 37} trailing bytes"):
            list(iter_yuv_frames(path, SMALL))

    def test_truncation_error_even_when_bounded(self, tmp_path):
        """max_frames does not mask a corrupt file: the size check runs
        before any frame is yielded."""
        path = tmp_path / "clip.yuv"
        write_yuv(path, random_sequence(3))
        path.write_bytes(path.read_bytes()[:-1])
        leftover = frame_size_bytes(SMALL) - 1
        with pytest.raises(ValueError, match=f"{leftover} trailing bytes"):
            list(iter_yuv_frames(path, SMALL, max_frames=1))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.yuv"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="no frames"):
            read_yuv(path, SMALL)
