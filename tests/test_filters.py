"""Unit tests for repro.video.filters."""

import numpy as np
import pytest

from repro.video.filters import (
    binomial_kernel,
    box_kernel,
    convolve_cols,
    convolve_rows,
    downsample2,
    gradient_magnitude,
    smooth,
)


class TestKernels:
    def test_box_normalized(self):
        k = box_kernel(3)
        assert len(k) == 7
        assert k.sum() == pytest.approx(1.0)
        assert (k == k[0]).all()

    def test_binomial_normalized(self):
        k = binomial_kernel(2)
        assert len(k) == 5
        assert k.sum() == pytest.approx(1.0)
        # Binomial(4): 1 4 6 4 1 / 16
        np.testing.assert_allclose(k, np.array([1, 4, 6, 4, 1]) / 16.0)

    def test_radius_zero_is_identity(self):
        assert box_kernel(0).tolist() == [1.0]
        assert binomial_kernel(0).tolist() == [1.0]

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            box_kernel(-1)
        with pytest.raises(ValueError):
            binomial_kernel(-1)


class TestConvolve:
    def test_constant_plane_unchanged(self):
        plane = np.full((8, 10), 42.0)
        out = smooth(plane, radius=2)
        np.testing.assert_allclose(out, plane)

    def test_shape_preserved(self):
        plane = np.random.default_rng(0).random((13, 17))
        assert smooth(plane, radius=3).shape == (13, 17)

    def test_rows_vs_cols_transpose_symmetry(self):
        plane = np.random.default_rng(1).random((6, 9))
        k = binomial_kernel(1)
        np.testing.assert_allclose(
            convolve_cols(plane, k), convolve_rows(plane.T, k).T
        )

    def test_smoothing_reduces_variance(self):
        plane = np.random.default_rng(2).random((32, 32)) * 100
        out = smooth(plane, radius=2)
        assert out.var() < plane.var()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            smooth(np.zeros((4, 4)), radius=1, kernel="sinc")

    def test_box_kernel_option(self):
        plane = np.random.default_rng(3).random((8, 8))
        out = smooth(plane, radius=1, kernel="box")
        assert out.shape == plane.shape


class TestGradient:
    def test_flat_has_zero_gradient(self):
        assert gradient_magnitude(np.full((5, 5), 9.0)).max() == 0.0

    def test_step_edge(self):
        plane = np.zeros((4, 6))
        plane[:, 3:] = 10.0
        g = gradient_magnitude(plane)
        assert g[:, 3].max() == pytest.approx(10.0)
        assert g[:, 1].max() == 0.0

    def test_shape_preserved(self):
        assert gradient_magnitude(np.zeros((7, 9))).shape == (7, 9)


class TestDownsample:
    def test_means_of_quads(self):
        plane = np.array([[1.0, 3.0], [5.0, 7.0]])
        np.testing.assert_allclose(downsample2(plane), [[4.0]])

    def test_shape_halved(self):
        assert downsample2(np.zeros((10, 8))).shape == (5, 4)

    def test_odd_shape_rejected(self):
        with pytest.raises(ValueError):
            downsample2(np.zeros((5, 4)))
