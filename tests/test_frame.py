"""Unit tests for repro.video.frame."""

import numpy as np
import pytest

from repro.video.frame import (
    CHROMA_BLOCK_SIZE,
    CIF,
    MACROBLOCK_SIZE,
    QCIF,
    Frame,
    FrameGeometry,
    grey_frame,
)


class TestFrameGeometry:
    def test_qcif_dimensions(self):
        assert (QCIF.width, QCIF.height) == (176, 144)

    def test_cif_dimensions(self):
        assert (CIF.width, CIF.height) == (352, 288)

    def test_qcif_macroblock_grid(self):
        assert (QCIF.mb_cols, QCIF.mb_rows) == (11, 9)
        assert QCIF.mb_count == 99

    def test_chroma_dimensions_are_half(self):
        assert QCIF.chroma_width == 88
        assert QCIF.chroma_height == 72

    def test_pixels(self):
        assert QCIF.pixels == 176 * 144

    @pytest.mark.parametrize("w,h", [(0, 16), (16, 0), (-16, 16)])
    def test_rejects_non_positive(self, w, h):
        with pytest.raises(ValueError):
            FrameGeometry(w, h)

    @pytest.mark.parametrize("w,h", [(17, 16), (16, 20), (100, 100)])
    def test_rejects_non_multiple_of_16(self, w, h):
        with pytest.raises(ValueError):
            FrameGeometry(w, h)

    def test_equality(self):
        assert FrameGeometry(176, 144) == QCIF


class TestFrame:
    def test_default_chroma_is_neutral_grey(self):
        frame = grey_frame(QCIF)
        assert (frame.cb == 128).all()
        assert (frame.cr == 128).all()

    def test_geometry_roundtrip(self):
        frame = grey_frame(CIF)
        assert frame.geometry == CIF
        assert (frame.width, frame.height) == (352, 288)

    def test_rejects_wrong_chroma_shape(self):
        y = np.zeros((48, 64), dtype=np.uint8)
        bad_cb = np.zeros((24, 30), dtype=np.uint8)
        with pytest.raises(ValueError, match="Cb"):
            Frame(y, bad_cb, np.zeros((24, 32), dtype=np.uint8))

    def test_rejects_one_dimensional_luma(self):
        with pytest.raises(ValueError):
            Frame(np.zeros(176, dtype=np.uint8))

    def test_float_input_is_rounded_and_clamped(self):
        y = np.full((48, 64), 300.0)
        y[0, 0] = -5.0
        y[0, 1] = 127.5
        frame = Frame(y)
        assert frame.y[0, 0] == 0
        assert frame.y[0, 1] == 128
        assert frame.y[1, 1] == 255
        assert frame.y.dtype == np.uint8

    def test_luma_block_is_view(self):
        frame = grey_frame(QCIF)
        block = frame.luma_block(0, 0)
        block[:] = 7
        assert frame.y[0, 0] == 7

    def test_luma_block_positions(self):
        y = np.arange(48 * 64, dtype=np.float64).reshape(48, 64) % 251
        frame = Frame(y)
        block = frame.luma_block(1, 2)
        np.testing.assert_array_equal(block, frame.y[16:32, 32:48])
        assert block.shape == (MACROBLOCK_SIZE, MACROBLOCK_SIZE)

    def test_chroma_blocks(self):
        frame = grey_frame(QCIF)
        cb, cr = frame.chroma_blocks(2, 3)
        assert cb.shape == (CHROMA_BLOCK_SIZE, CHROMA_BLOCK_SIZE)
        assert cr.shape == (CHROMA_BLOCK_SIZE, CHROMA_BLOCK_SIZE)

    @pytest.mark.parametrize("r,c", [(-1, 0), (0, -1), (9, 0), (0, 11)])
    def test_block_out_of_range(self, r, c):
        frame = grey_frame(QCIF)
        with pytest.raises(IndexError):
            frame.luma_block(r, c)

    def test_copy_is_independent(self):
        frame = grey_frame(QCIF)
        clone = frame.copy()
        clone.y[0, 0] = 9
        assert frame.y[0, 0] == 128

    def test_equality_by_pixels(self):
        a = grey_frame(QCIF, value=100)
        b = grey_frame(QCIF, value=100)
        c = grey_frame(QCIF, value=101)
        assert a == b
        assert a != c

    def test_equality_ignores_index(self):
        a = grey_frame(QCIF, index=0)
        b = grey_frame(QCIF, index=5)
        assert a == b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(grey_frame(QCIF))

    def test_luma_float_dtype(self):
        frame = grey_frame(QCIF)
        assert frame.luma_float().dtype == np.float64

    def test_repr(self):
        assert "176x144" in repr(grey_frame(QCIF, index=3))
