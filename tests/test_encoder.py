"""Unit and integration tests for repro.codec.encoder."""

import numpy as np
import pytest

from repro.codec.encoder import EncodeResult, Encoder, encode_sequence
from repro.me.full_search import FullSearchEstimator
from repro.video.frame import Frame, FrameGeometry, grey_frame
from repro.video.sequence import Sequence

from .conftest import shifted_plane, textured_plane

SMALL = FrameGeometry(64, 48)


def small_sequence(n=3, seed=100, noise=0.0):
    base = textured_plane(48, 64, seed=seed)
    rng = np.random.default_rng(seed + 1)
    frames = []
    for i in range(n):
        plane = shifted_plane(base, 0, i).astype(np.float64)
        if noise:
            plane += rng.normal(0, noise, plane.shape)
        frames.append(Frame(np.clip(plane, 0, 255), index=i))
    return Sequence(frames, fps=30.0, name="small")


class TestConstruction:
    def test_estimator_by_name(self):
        enc = Encoder(estimator="fsbm", qp=10, estimator_kwargs={"p": 7})
        assert enc.estimator.name == "fsbm"
        assert enc.estimator.p == 7

    def test_estimator_instance(self):
        est = FullSearchEstimator(p=5)
        assert Encoder(estimator=est, qp=10).estimator is est

    def test_kwargs_with_instance_rejected(self):
        with pytest.raises(ValueError):
            Encoder(estimator=FullSearchEstimator(), estimator_kwargs={"p": 3})

    def test_qp_validated(self):
        with pytest.raises(ValueError):
            Encoder(qp=0)
        with pytest.raises(ValueError):
            Encoder(qp=32)


class TestEncode:
    def test_first_frame_intra_rest_inter(self):
        result = encode_sequence(small_sequence(3), qp=12, estimator="pbm")
        assert [f.frame_type for f in result.frames] == ["I", "P", "P"]

    def test_bits_positive_and_summed(self):
        result = encode_sequence(small_sequence(3), qp=12, estimator="pbm")
        assert all(f.bits > 0 for f in result.frames)
        assert result.total_bits == sum(f.bits for f in result.frames)

    def test_bitstream_length_matches_bits(self):
        result = encode_sequence(small_sequence(3), qp=12, estimator="pbm")
        assert len(result.bitstream) == (result.total_bits + 7) // 8

    def test_reconstruction_tracks_original(self):
        result = encode_sequence(
            small_sequence(3), qp=4, estimator="fsbm",
            estimator_kwargs={"p": 7}, keep_reconstruction=True,
        )
        assert len(result.reconstruction) == 3
        assert result.mean_psnr_y > 30.0

    def test_keep_reconstruction_off(self):
        result = encode_sequence(small_sequence(2), qp=12)
        assert result.reconstruction == []

    def test_rate_kbps_formula(self):
        result = encode_sequence(small_sequence(3), qp=12, estimator="pbm")
        expected = result.total_bits / 3 * 30.0 / 1000.0
        assert result.rate_kbps == pytest.approx(expected)

    def test_search_stats_merged_over_p_frames(self):
        result = encode_sequence(small_sequence(4), qp=12, estimator="pbm")
        stats = result.search_stats
        assert stats.blocks == 3 * SMALL.mb_count  # 3 P-frames x 12 MBs

    def test_mean_psnr_p_frames_requires_p_frames(self):
        single = Sequence([grey_frame(SMALL)], fps=30)
        result = encode_sequence(single, qp=10)
        with pytest.raises(ValueError):
            result.mean_psnr_p_frames

    def test_static_scene_mostly_skipped(self):
        frames = [grey_frame(SMALL, value=90, index=i) for i in range(3)]
        result = encode_sequence(Sequence(frames, fps=30), qp=10, estimator="pbm")
        p_frames = [f for f in result.frames if f.frame_type == "P"]
        assert all(f.skipped_mbs == SMALL.mb_count for f in p_frames)
        # A fully skipped P frame costs the header + 1 bit per MB.
        assert all(f.bits < 100 for f in p_frames)


class TestQualityVsQp:
    def test_lower_qp_means_higher_quality_and_rate(self):
        seq = small_sequence(3, noise=2.0)
        fine = encode_sequence(seq, qp=4, estimator="pbm")
        coarse = encode_sequence(seq, qp=28, estimator="pbm")
        assert fine.mean_psnr_y > coarse.mean_psnr_y + 3.0
        assert fine.total_bits > coarse.total_bits

    def test_monotone_rate_over_qp_ladder(self):
        seq = small_sequence(3, noise=2.0)
        rates = [encode_sequence(seq, qp=qp, estimator="pbm").total_bits
                 for qp in (6, 12, 18, 24, 30)]
        assert rates == sorted(rates, reverse=True)


class TestEstimatorEffects:
    def test_good_me_beats_no_me_on_moving_content(self):
        """FSBM coding of a translating scene must cost far fewer bits
        than coding with a zero-motion-only estimator (TSS at p=1 is a
        close proxy: it can barely move)."""
        base = textured_plane(48, 64, seed=101)
        frames = [Frame(shifted_plane(base, 0, 3 * i), index=i) for i in range(3)]
        seq = Sequence(frames, fps=30, name="pan")
        moving = encode_sequence(seq, qp=8, estimator="fsbm", estimator_kwargs={"p": 7})
        stuck = encode_sequence(seq, qp=8, estimator="tss", estimator_kwargs={"p": 1})
        assert moving.total_bits < stuck.total_bits

    def test_repr_mentions_key_facts(self):
        result = encode_sequence(small_sequence(2), qp=13, estimator="pbm")
        text = repr(result)
        assert "qp=13" in text and "small" in text
