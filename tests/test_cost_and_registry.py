"""Unit tests for repro.me.cost and the estimator registry."""

import pytest

from repro.me.cost import LAMBDA_SCALE, lagrange_lambda, motion_cost
from repro.me.estimator import available_estimators, create_estimator
from repro.me.types import MotionVector


class TestLagrange:
    def test_lambda_linear_in_qp_for_sad_domain(self):
        assert lagrange_lambda(10) == pytest.approx(LAMBDA_SCALE * 10)

    def test_qp_range_enforced(self):
        with pytest.raises(ValueError):
            lagrange_lambda(0)
        with pytest.raises(ValueError):
            lagrange_lambda(32)

    def test_motion_cost_formula(self):
        bits_fn = lambda d: abs(d.hx) + abs(d.hy) + 2  # toy bit model
        j = motion_cost(100, MotionVector(2, 0), MotionVector(0, 0), qp=10, bits_fn=bits_fn)
        assert j == pytest.approx(100 + LAMBDA_SCALE * 10 * 4)

    def test_motion_cost_rejects_negative_sad(self):
        with pytest.raises(ValueError):
            motion_cost(-1, MotionVector.zero(), MotionVector.zero(), 10, lambda d: 0)

    def test_cheaper_vector_wins_at_high_qp(self):
        """The Lagrangian trade-off: at coarse Qp, a slightly worse SAD
        with a much cheaper MVD gives lower J — the PBM advantage the
        paper describes."""
        bits = lambda d: abs(d.hx) + abs(d.hy) + 1
        pred = MotionVector.zero()
        smooth = motion_cost(520, MotionVector(0, 0), pred, 30, bits)
        jagged = motion_cost(500, MotionVector(20, -14), pred, 30, bits)
        assert smooth < jagged


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_estimators()
        assert set(names) >= {"acbm", "fsbm", "pbm", "tss", "fss", "ds", "cds"}

    def test_create_by_name(self):
        est = create_estimator("fsbm", p=7)
        assert est.name == "fsbm"
        assert est.p == 7

    def test_create_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="acbm"):
            create_estimator("epzs")

    def test_extended_baselines_registered(self):
        assert "ntss" in available_estimators()
        assert "hexbs" in available_estimators()

    def test_kwargs_forwarded(self):
        est = create_estimator("pbm", refine_steps=5)
        assert est.refine_steps == 5

    def test_duplicate_registration_rejected(self):
        from repro.me.estimator import register_estimator

        with pytest.raises(ValueError, match="already registered"):

            @register_estimator("fsbm")
            class Dup:  # pragma: no cover - never instantiated
                pass
