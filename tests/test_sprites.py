"""Unit tests for repro.video.synthesis.sprites."""

import numpy as np
import pytest

from repro.video.synthesis.sprites import (
    Sprite,
    bounce_path,
    disc_mask,
    ellipse_mask,
    linear_path,
    piecewise_path,
    rect_mask,
    sway_path,
)


class TestMasks:
    def test_ellipse_centre_opaque_corners_transparent(self):
        m = ellipse_mask(21, 31)
        assert m[10, 15] == pytest.approx(1.0)
        assert m[0, 0] == 0.0
        assert m[-1, -1] == 0.0

    def test_ellipse_range(self):
        m = ellipse_mask(16, 16)
        assert m.min() >= 0.0 and m.max() <= 1.0

    def test_rect_interior_opaque(self):
        m = rect_mask(10, 12, softness=2.0)
        assert m[5, 6] == pytest.approx(1.0)
        assert m[0, 0] < 1.0

    def test_disc_is_square_ellipse(self):
        np.testing.assert_allclose(disc_mask(9), ellipse_mask(9, 9, softness=1.0))

    @pytest.mark.parametrize("fn", [ellipse_mask, rect_mask])
    def test_bad_softness(self, fn):
        with pytest.raises(ValueError):
            fn(8, 8, softness=0.0)


class TestSpriteValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            Sprite(np.zeros((4, 4)), np.zeros((4, 5)), linear_path((0, 0), (0, 0)))

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Sprite(np.zeros((2, 2)), np.full((2, 2), 1.5), linear_path((0, 0), (0, 0)))


class TestRenderOnto:
    def test_opaque_blit_at_integer_position(self):
        world = np.zeros((10, 10))
        sprite = Sprite(np.full((3, 3), 5.0), np.ones((3, 3)), linear_path((2, 4), (0, 0)))
        sprite.render_onto(world, 0)
        assert world[3, 5] == pytest.approx(5.0)
        assert world[1, 4] == 0.0

    def test_moves_with_frame_index(self):
        sprite = Sprite(np.full((2, 2), 7.0), np.ones((2, 2)), linear_path((0, 0), (0, 3)))
        w0 = np.zeros((8, 12))
        w1 = np.zeros((8, 12))
        sprite.render_onto(w0, 0)
        sprite.render_onto(w1, 1)
        assert w0[0, 0] == pytest.approx(7.0)
        assert w1[0, 0] < 7.0
        assert w1[0, 3] == pytest.approx(7.0)

    def test_subpixel_position_spreads_energy(self):
        sprite = Sprite(np.full((2, 2), 8.0), np.ones((2, 2)), linear_path((0, 0.5), (0, 0)))
        world = np.zeros((4, 4))
        sprite.render_onto(world, 0)
        # Trailing edge (the spill-over column): both texture and alpha
        # interpolate toward the zero padding, so it gets 0.5 * 4.0.
        assert world[0, 2] == pytest.approx(2.0)
        # Leading edge clamps (edge replication); real sprites rely on
        # soft masks whose border is zero, so no visible artifact.
        assert world[0, 0] == pytest.approx(8.0)
        assert world[0, 1] == pytest.approx(8.0)

    def test_clipped_at_world_edge(self):
        sprite = Sprite(np.full((4, 4), 3.0), np.ones((4, 4)), linear_path((-2, -2), (0, 0)))
        world = np.zeros((6, 6))
        sprite.render_onto(world, 0)  # must not raise
        assert world[0, 0] == pytest.approx(3.0)
        assert world[3, 3] == 0.0

    def test_fully_outside_is_noop(self):
        sprite = Sprite(np.full((2, 2), 3.0), np.ones((2, 2)), linear_path((100, 100), (0, 0)))
        world = np.zeros((6, 6))
        sprite.render_onto(world, 0)
        assert world.max() == 0.0


class TestTrajectories:
    def test_linear(self):
        path = linear_path((1.0, 2.0), (0.5, -1.0))
        assert path(0) == (1.0, 2.0)
        assert path(4) == (3.0, -2.0)

    def test_sway_returns_to_centre(self):
        path = sway_path((5.0, 5.0), (2.0, 2.0), period=8.0)
        y0, _ = path(0)
        y8, _ = path(8)
        assert y0 == pytest.approx(y8)

    def test_sway_bounded_by_amplitude(self):
        path = sway_path((0.0, 0.0), (2.0, 3.0), period=7.0)
        for i in range(30):
            y, x = path(i)
            assert abs(y) <= 2.0 + 1e-9
            assert abs(x) <= 3.0 + 1e-9

    def test_sway_bad_period(self):
        with pytest.raises(ValueError):
            sway_path((0, 0), (1, 1), period=0.0)

    def test_bounce_stays_in_bounds(self):
        path = bounce_path((5.0, 5.0), (3.7, 2.9), (0.0, 10.0, 0.0, 20.0))
        for i in range(100):
            y, x = path(i)
            assert 0.0 <= y <= 10.0
            assert 0.0 <= x <= 20.0

    def test_bounce_reflects(self):
        path = bounce_path((0.0, 0.0), (1.0, 0.0), (0.0, 3.0, 0.0, 3.0))
        ys = [path(i)[0] for i in range(7)]
        assert ys == pytest.approx([0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0])

    def test_bounce_degenerate_bounds(self):
        with pytest.raises(ValueError):
            bounce_path((0, 0), (1, 1), (5.0, 5.0, 0.0, 1.0))

    def test_piecewise_switches_segment(self):
        path = piecewise_path(
            [(0, linear_path((0.0, 0.0), (1.0, 0.0))), (3, linear_path((10.0, 0.0), (0.0, 1.0)))]
        )
        assert path(2) == (2.0, 0.0)
        assert path(3) == (10.0, 0.0)
        assert path(5) == (10.0, 2.0)

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            piecewise_path([])
        with pytest.raises(ValueError):
            piecewise_path([(2, linear_path((0, 0), (0, 0)))])
