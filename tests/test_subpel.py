"""Unit tests for repro.me.subpel (H.263 half-pel interpolation)."""

import numpy as np
import pytest

from repro.me.search_window import SearchWindow, clamped_window
from repro.me.subpel import half_pel_block, predict_block, refine_half_pel
from repro.me.types import MotionVector

from .conftest import textured_plane


class TestHalfPelBlock:
    def test_integer_position_is_copy(self):
        ref = textured_plane(32, 32)
        out = half_pel_block(ref, 6, 10, 8, 8)
        np.testing.assert_array_equal(out, ref[3:11, 5:13])

    def test_horizontal_half_rounding(self):
        ref = np.array([[10, 13]], dtype=np.uint8)
        out = half_pel_block(ref, 0, 1, 1, 1)
        # (10 + 13 + 1) >> 1 = 12 — upward rounding per H.263.
        assert out[0, 0] == 12

    def test_vertical_half_rounding(self):
        ref = np.array([[10], [13]], dtype=np.uint8)
        out = half_pel_block(ref, 1, 0, 1, 1)
        assert out[0, 0] == 12

    def test_centre_rounding(self):
        ref = np.array([[1, 2], [3, 5]], dtype=np.uint8)
        out = half_pel_block(ref, 1, 1, 1, 1)
        # (1 + 2 + 3 + 5 + 2) >> 2 = 3
        assert out[0, 0] == 3

    def test_support_check(self):
        ref = np.zeros((8, 8), dtype=np.uint8)
        with pytest.raises(ValueError, match="support"):
            half_pel_block(ref, 1, 0, 8, 8)  # needs row 8 for interpolation
        # Integer position at the very edge is fine.
        half_pel_block(ref, 0, 0, 8, 8)

    def test_output_dtype_uint8(self):
        ref = np.full((4, 4), 255, dtype=np.uint8)
        assert half_pel_block(ref, 1, 1, 2, 2).dtype == np.uint8

    def test_range_preserved(self):
        ref = np.full((4, 4), 255, dtype=np.uint8)
        assert half_pel_block(ref, 1, 1, 2, 2).max() == 255


class TestRefineHalfPel:
    def test_exact_half_pel_motion_recovered(self):
        """Content shifted by exactly 0.5 px: refinement must beat the
        integer anchor."""
        ref = textured_plane(48, 64, seed=11)
        # Current block = half-pel interpolated reference at (+0.5, 0).
        cur_block = half_pel_block(ref, 2 * 16, 2 * 16 + 1, 16, 16)
        window = clamped_window(16, 16, 16, 16, 48, 64, p=4)
        from repro.me.metrics import sad

        anchor = MotionVector(0, 0)
        anchor_sad = sad(cur_block, ref[16:32, 16:32])
        mv, best_sad, evaluated = refine_half_pel(
            cur_block, ref, 16, 16, anchor, anchor_sad, window
        )
        assert mv == MotionVector(1, 0)
        assert best_sad == 0
        assert evaluated == 8

    def test_rejects_half_pel_anchor(self):
        ref = np.zeros((32, 32), dtype=np.uint8)
        window = SearchWindow(-2, 2, -2, 2)
        with pytest.raises(ValueError, match="integer-pel"):
            refine_half_pel(ref[:16, :16], ref, 8, 8, MotionVector(1, 0), 0, window)

    def test_corner_block_skips_outside_candidates(self):
        ref = textured_plane(48, 64, seed=12)
        cur = ref.copy()
        window = clamped_window(0, 0, 16, 16, 48, 64, p=4)
        from repro.me.metrics import sad

        anchor_sad = sad(cur[:16, :16], ref[:16, :16])
        _, _, evaluated = refine_half_pel(
            cur[:16, :16], ref, 0, 0, MotionVector(0, 0), anchor_sad, window
        )
        # At the top-left corner only the 3 inward half-pel neighbours exist.
        assert evaluated == 3

    def test_never_worse_than_anchor(self):
        ref = textured_plane(48, 64, seed=13)
        cur = textured_plane(48, 64, seed=14)
        window = clamped_window(16, 16, 16, 16, 48, 64, p=4)
        from repro.me.metrics import sad

        anchor_sad = sad(cur[16:32, 16:32], ref[16:32, 16:32])
        _, best_sad, _ = refine_half_pel(
            cur[16:32, 16:32], ref, 16, 16, MotionVector(0, 0), anchor_sad, window
        )
        assert best_sad <= anchor_sad


class TestPredictBlock:
    def test_integer_fast_path(self):
        ref = textured_plane(48, 64, seed=15)
        out = predict_block(ref, 16, 16, MotionVector(4, -2), 16, 16)
        np.testing.assert_array_equal(out, ref[15:31, 18:34])

    def test_half_pel_path_matches_half_pel_block(self):
        ref = textured_plane(48, 64, seed=16)
        mv = MotionVector(3, 1)
        out = predict_block(ref, 16, 16, mv, 16, 16)
        np.testing.assert_array_equal(out, half_pel_block(ref, 33, 35, 16, 16))

    def test_out_of_plane_rejected(self):
        ref = np.zeros((48, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            predict_block(ref, 0, 0, MotionVector(-2, 0), 16, 16)
