"""Golden tests for the version-2 bitstream format and the parse layer.

Pins the ISSUE's equivalence contract: version-1 streams keep the seed
layout (no alignment, no framing bytes), version 2 adds byte-aligned
start codes + length fields around bit-identical picture payloads, the
:class:`FrameIndex` scanner splits a v2 stream without parsing, and the
parallel symbol parse (``decode_bitstream(..., jobs=N)``) is
bit-identical to the serial decode in every mode.
"""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, ScalarBitReader
from repro.codec.decoder import (
    FrameIndex,
    ParsedPicture,
    decode_bitstream,
    detect_version,
    parse_bitstream_symbols,
    parse_picture,
    reconstruct_picture,
)
from repro.codec.encoder import (
    FRAME_START_CODE,
    START_CODE,
    Encoder,
    encode_sequence,
)
from repro.parallel import ParseFrameJob, run_jobs
from repro.video.synthesis.sequences import make_sequence


@pytest.fixture(scope="module")
def clip():
    return make_sequence("miss_america", frames=4, seed=0)


@pytest.fixture(scope="module")
def v1(clip):
    return encode_sequence(clip, qp=20, estimator="tss", keep_reconstruction=True)


@pytest.fixture(scope="module")
def v2(clip):
    return encode_sequence(
        clip, qp=20, estimator="tss", keep_reconstruction=True, bitstream_version=2
    )


class TestFormat:
    def test_version_detection(self, v1, v2):
        assert detect_version(v1.bitstream) == 1
        assert detect_version(v2.bitstream) == 2
        assert v1.bitstream_version == 1
        assert v2.bitstream_version == 2

    def test_v1_opens_with_picture_start_code(self, v1):
        assert int.from_bytes(v1.bitstream[:2], "big") == START_CODE

    def test_v2_opens_with_frame_start_code(self, v2):
        assert int.from_bytes(v2.bitstream[:4], "big") == FRAME_START_CODE

    def test_invalid_version_rejected(self):
        with pytest.raises(ValueError, match="bitstream_version"):
            Encoder(bitstream_version=3)

    def test_v2_frames_are_byte_aligned(self, v2):
        """Every v2 frame record charges framing + padding, so the
        per-frame bits sum to exactly the emitted bytes."""
        assert sum(f.bits for f in v2.frames) == 8 * len(v2.bitstream)

    def test_same_reconstruction_both_versions(self, v1, v2):
        assert all(a == b for a, b in zip(v1.reconstruction, v2.reconstruction))

    def test_v2_payloads_hold_v1_picture_bits(self, v1, v2):
        """The symbols inside each v2 payload are the same bits v1
        emits — v2 only adds framing and padding.  The first frame's
        payload must therefore be a prefix-match of the v1 stream."""
        index = FrameIndex.scan(v2.bitstream)
        first = index.payload(v2.bitstream, 0)
        assert v1.bitstream[: len(first) - 1] == first[: len(first) - 1]


class TestFrameIndex:
    def test_scan_matches_frames(self, v2):
        index = FrameIndex.scan(v2.bitstream)
        assert len(index) == len(v2.reconstruction)
        # Ranges are in order, non-overlapping, and the last ends the
        # stream.
        previous_end = 0
        for start, end in index.ranges:
            assert start == previous_end + 8  # start code + length field
            assert end > start
            previous_end = end
        assert previous_end == len(v2.bitstream)

    def test_each_payload_parses_standalone(self, v2):
        index = FrameIndex.scan(v2.bitstream)
        for i in range(len(index)):
            parsed = parse_picture(BitReader(index.payload(v2.bitstream, i)))
            expected = "I" if i == 0 else "P"
            assert parsed.header.frame_type == expected

    def test_rejects_v1_stream(self, v1):
        with pytest.raises(ValueError, match="version-2"):
            FrameIndex.scan(v1.bitstream)

    def test_short_trailing_junk_ignored_like_serial_decoder(self, v2):
        """A tail too short to hold a minimal frame is ignored by the
        scanner exactly as Decoder.has_more ignores it — the indexed
        (jobs>1) and sequential decoders accept the same streams."""
        padded = v2.bitstream + b"\x00" * 13
        index = FrameIndex.scan(padded)
        assert len(index) == len(v2.reconstruction)
        serial = decode_bitstream(padded, jobs=1)
        indexed = decode_bitstream(padded, jobs=2)
        assert len(serial) == len(indexed) == len(v2.reconstruction)
        assert all(a == b for a, b in zip(serial, indexed))

    def test_long_trailing_junk_rejected_like_serial_decoder(self, v2):
        """A frame-sized junk tail fails both decoders the same way."""
        junk = v2.bitstream + b"\x00" * 64
        with pytest.raises(ValueError, match="start code"):
            FrameIndex.scan(junk)
        with pytest.raises(ValueError, match="start code"):
            decode_bitstream(junk, jobs=1)

    def test_rejects_corrupt_length(self, v2):
        corrupt = bytearray(v2.bitstream)
        corrupt[4:8] = (2 ** 32 - 1).to_bytes(4, "big")
        with pytest.raises(ValueError, match="overruns"):
            FrameIndex.scan(bytes(corrupt))

    @pytest.mark.parametrize("delta", [-1, +1])
    def test_corrupt_length_fails_in_every_mode(self, v2, delta):
        """A length field off by one byte must be rejected by the
        sequential decoder, the sequential parse and the indexed path
        alike — a corrupt stream can never decode in one mode and
        raise in another."""
        corrupt = bytearray(v2.bitstream)
        length = int.from_bytes(corrupt[4:8], "big") + delta
        corrupt[4:8] = length.to_bytes(4, "big")
        corrupt = bytes(corrupt)
        with pytest.raises(ValueError):
            decode_bitstream(corrupt, jobs=1)
        with pytest.raises(ValueError):
            parse_bitstream_symbols(corrupt)
        with pytest.raises(ValueError):
            FrameIndex.scan(corrupt)

    def test_rejects_bad_start_code(self, v2):
        corrupt = bytearray(v2.bitstream)
        corrupt[3] ^= 0xFF
        with pytest.raises(ValueError, match="start code"):
            FrameIndex.scan(bytes(corrupt))


class TestDecodeEquivalence:
    @pytest.mark.parametrize("use_engine", [True, False])
    def test_both_versions_both_paths(self, v1, v2, use_engine):
        for encode in (v1, v2):
            decoded = decode_bitstream(encode.bitstream, use_engine=use_engine)
            assert len(decoded) == len(encode.reconstruction)
            assert all(d == r for d, r in zip(decoded, encode.reconstruction))

    def test_lut_parse_equals_seed_parse(self, v1, v2):
        for encode in (v1, v2):
            fast = parse_bitstream_symbols(encode.bitstream)
            seed = parse_bitstream_symbols(
                encode.bitstream, reader_factory=ScalarBitReader
            )
            assert len(fast) == len(seed) == len(encode.reconstruction)
            assert all(a == b for a, b in zip(fast, seed))

    def test_reconstruct_from_parsed_matches_decode(self, v2):
        parsed = parse_bitstream_symbols(v2.bitstream)
        reference = None
        for i, picture in enumerate(parsed):
            reference = reconstruct_picture(picture, reference, i)
            assert reference == v2.reconstruction[i]


class TestParallelParse:
    def test_parse_jobs_match_serial_parse(self, v2):
        """ParseFrameJob through the (in-process) pool reproduces the
        sequential parse picture-for-picture."""
        index = FrameIndex.scan(v2.bitstream)
        jobs = [
            ParseFrameJob(payload=index.payload(v2.bitstream, i))
            for i in range(len(index))
        ]
        parsed = run_jobs(jobs)
        serial = parse_bitstream_symbols(v2.bitstream)
        assert len(parsed) == len(serial)
        assert all(a == b for a, b in zip(parsed, serial))

    def test_jobs_path_bit_identical(self, v2):
        """The one spawn test here (kept tiny, like test_parallel.py):
        two workers parse the indexed frames, and the result must be
        bit-identical to the serial decoder."""
        serial = decode_bitstream(v2.bitstream, jobs=1)
        indexed = decode_bitstream(v2.bitstream, jobs=2)
        assert all(a == b for a, b in zip(indexed, serial))
        assert len(indexed) == len(serial)

    def test_jobs_respects_frame_limit(self, v2):
        assert len(decode_bitstream(v2.bitstream, frames=2, jobs=2)) == 2

    def test_jobs_ignored_for_v1_and_per_block(self, v1, v2):
        """Non-splittable modes fall back to the serial decoder."""
        assert all(
            a == b
            for a, b in zip(
                decode_bitstream(v1.bitstream, jobs=4), decode_bitstream(v1.bitstream)
            )
        )
        assert all(
            a == b
            for a, b in zip(
                decode_bitstream(v2.bitstream, use_engine=False, jobs=4),
                decode_bitstream(v2.bitstream),
            )
        )

    def test_parse_frame_job_validates_payload_length(self, v2):
        """An inflated length field hands the job extra trailing bytes;
        the job must reject the payload just like check_frame_length
        does in the sequential decoder — a corrupt length field fails
        in every mode."""
        index = FrameIndex.scan(v2.bitstream)
        payload = index.payload(v2.bitstream, 0)
        with pytest.raises(ValueError, match="length field"):
            ParseFrameJob(payload=payload + b"\x00\x00").run()

    def test_inflated_last_length_fails_serial_and_parse(self, v2):
        """Grow the *last* frame's length field and append the promised
        bytes: FrameIndex.scan accepts the shape, so the length check
        is the only guard — serial decode, serial parse and the job
        path must all reject it."""
        last_start, _ = FrameIndex.scan(v2.bitstream).ranges[-1]
        corrupt = bytearray(v2.bitstream + b"\x00\x00")
        field = last_start - 4
        length = int.from_bytes(corrupt[field : field + 4], "big") + 2
        corrupt[field : field + 4] = length.to_bytes(4, "big")
        corrupt = bytes(corrupt)
        index = FrameIndex.scan(corrupt)  # shape-valid: ends exactly at EOS
        assert len(index) == len(v2.reconstruction)
        with pytest.raises(ValueError, match="length field"):
            decode_bitstream(corrupt, jobs=1)
        with pytest.raises(ValueError, match="length field"):
            parse_bitstream_symbols(corrupt)
        with pytest.raises(ValueError, match="length field"):
            ParseFrameJob(payload=index.payload(corrupt, len(index) - 1)).run()

    def test_parse_frame_job_is_hashable_spec(self, v2):
        index = FrameIndex.scan(v2.bitstream)
        job = ParseFrameJob(payload=index.payload(v2.bitstream, 0))
        assert hash(job) == hash(ParseFrameJob(payload=index.payload(v2.bitstream, 0)))
        assert "parse" in job.describe()
        assert isinstance(job.run(), ParsedPicture)


class TestParsedPicture:
    def test_equality_compares_arrays(self, v2):
        a, b = parse_bitstream_symbols(v2.bitstream)[:2]
        assert a == a
        assert a != b
        changed = ParsedPicture(
            header=a.header,
            levels=a.levels.copy(),
            dc_levels=None if a.dc_levels is None else a.dc_levels.copy(),
            hx=a.hx,
            hy=a.hy,
        )
        assert changed == a
        changed.levels[0] += 1
        assert changed != a

    def test_inter_pictures_carry_motion(self, v2):
        pictures = parse_bitstream_symbols(v2.bitstream)
        assert pictures[0].dc_levels is not None and pictures[0].hx is None
        for picture in pictures[1:]:
            assert picture.dc_levels is None
            assert picture.hx is not None and picture.hx.dtype == np.int64
            assert picture.hx.shape == (
                picture.header.mb_rows,
                picture.header.mb_cols,
            )
