"""Unit tests for the classic fast-search baselines (TSS, 4SS, DS, CDS)."""

import numpy as np
import pytest

from repro.me.cross_diamond import CrossDiamondEstimator
from repro.me.diamond import DiamondEstimator
from repro.me.estimator import BlockContext
from repro.me.four_step import FourStepEstimator
from repro.me.full_search import FullSearchEstimator
from repro.me.hexagon import HexagonEstimator
from repro.me.new_three_step import NewThreeStepEstimator
from repro.me.three_step import ThreeStepEstimator, initial_step
from repro.me.types import MotionField, MotionVector

from .conftest import shifted_plane, textured_plane

ALL_FAST = [
    ThreeStepEstimator,
    NewThreeStepEstimator,
    FourStepEstimator,
    DiamondEstimator,
    CrossDiamondEstimator,
    HexagonEstimator,
]


def context(cur, ref, r=1, c=1):
    rows, cols = cur.shape[0] // 16, cur.shape[1] // 16
    return BlockContext(cur, ref, r, c, 16, MotionField(rows, cols), None, 16)


class TestInitialStep:
    def test_classic_p7_gives_4(self):
        assert initial_step(7) == 4

    def test_paper_p15_gives_8(self):
        assert initial_step(15) == 8

    def test_minimum_is_one(self):
        assert initial_step(1) == 1


class TestRegisteredNames:
    def test_names(self):
        assert ThreeStepEstimator().name == "tss"
        assert NewThreeStepEstimator().name == "ntss"
        assert FourStepEstimator().name == "fss"
        assert DiamondEstimator().name == "ds"
        assert CrossDiamondEstimator().name == "cds"
        assert HexagonEstimator().name == "hexbs"


@pytest.mark.parametrize("cls", ALL_FAST)
class TestCommonBehaviour:
    def test_zero_motion(self, cls):
        ref = textured_plane(64, 80, seed=50)
        result = cls(p=15, half_pel=False).search_block(context(ref, ref))
        assert result.mv == MotionVector.zero()
        assert result.sad == 0

    def test_finds_moderate_translation(self, cls):
        # 2 px diagonal: inside every pattern's guaranteed reach (NTSS's
        # second-step stop caps its first-stage capture radius at 2).
        ref = textured_plane(64, 80, seed=51)
        cur = shifted_plane(ref, -2, 2)  # true mv = (-2, +2) px
        result = cls(p=15, half_pel=False).search_block(context(cur, ref))
        assert result.mv == MotionVector(-4, 4)

    def test_far_cheaper_than_full_search(self, cls):
        ref = textured_plane(64, 80, seed=52)
        cur = shifted_plane(ref, 1, -1)
        result = cls(p=15, half_pel=False).search_block(context(cur, ref))
        assert result.positions < 969 / 5

    def test_never_worse_than_zero_vector_start(self, cls):
        """The origin is always evaluated, so the result SAD can't
        exceed the zero-displacement SAD."""
        from repro.me.metrics import sad

        ref = textured_plane(64, 80, seed=53)
        cur = textured_plane(64, 80, seed=54)
        result = cls(p=15, half_pel=False).search_block(context(cur, ref))
        assert result.sad <= sad(cur[16:32, 16:32], ref[16:32, 16:32])

    def test_vector_stays_in_window(self, cls):
        ref = textured_plane(64, 80, seed=55)
        cur = shifted_plane(ref, 9, 9)
        result = cls(p=7, half_pel=False).search_block(context(cur, ref))
        assert result.mv.chebyshev_pixels() <= 7

    def test_half_pel_adds_at_most_8_positions(self, cls):
        ref = textured_plane(64, 80, seed=56)
        cur = shifted_plane(ref, 1, 1)
        coarse = cls(p=15, half_pel=False).search_block(context(cur, ref))
        fine = cls(p=15, half_pel=True).search_block(context(cur, ref))
        assert coarse.positions <= fine.positions <= coarse.positions + 8

    def test_estimate_whole_frame(self, cls):
        ref = textured_plane(48, 64, seed=57)
        cur = shifted_plane(ref, 0, 1)
        field, stats = cls(p=7).estimate(cur, ref)
        assert field.is_complete
        assert stats.blocks == 12


class TestTssSpecifics:
    def test_position_budget(self):
        """TSS at p=15: 1 + 4 stages x <=8 new points + <=8 half-pel."""
        ref = textured_plane(96, 96, seed=58)
        cur = shifted_plane(ref, 5, -7)
        result = ThreeStepEstimator(p=15).search_block(context(cur, ref, 2, 2))
        assert result.positions <= 1 + 4 * 8 + 8


class TestDiamondSpecifics:
    def test_recentre_bound_enforced(self):
        with pytest.raises(ValueError):
            DiamondEstimator(max_recentres=0)

    def test_moderate_displacement_reached_by_walking(self):
        ref = textured_plane(96, 112, seed=59)
        cur = shifted_plane(ref, 0, -6)
        result = DiamondEstimator(p=15, half_pel=False).search_block(context(cur, ref, 2, 3))
        assert result.mv == MotionVector(12, 0)


class TestCrossDiamondSpecifics:
    def test_stationary_early_stop(self):
        """Centre-stop blocks cost at most 5 evaluations before half-pel."""
        ref = textured_plane(64, 80, seed=60)
        result = CrossDiamondEstimator(p=15, half_pel=False).search_block(context(ref, ref))
        assert result.positions == 5

    def test_small_cross_stop(self):
        ref = textured_plane(64, 80, seed=61)
        cur = shifted_plane(ref, 0, -1)
        result = CrossDiamondEstimator(p=15, half_pel=False).search_block(context(cur, ref))
        assert result.mv == MotionVector(2, 0)
        assert result.positions <= 9


class TestAgainstFullSearch:
    @pytest.mark.parametrize("cls", ALL_FAST)
    def test_fast_search_sad_close_to_optimum_on_smooth_motion(self, cls):
        ref = textured_plane(64, 80, seed=62)
        cur = shifted_plane(ref, 2, 2)
        fast = cls(p=15, half_pel=False).search_block(context(cur, ref))
        full = FullSearchEstimator(p=15, half_pel=False).search_block(context(cur, ref))
        assert fast.sad == full.sad  # unimodal surface: all find the optimum


class TestNtssSpecifics:
    def test_first_step_stop_is_cheap(self):
        """A static block stops after centre + unit ring + step ring."""
        ref = textured_plane(96, 96, seed=63)
        result = NewThreeStepEstimator(p=15, half_pel=False).search_block(
            context(ref, ref, 2, 2)
        )
        assert result.mv == MotionVector.zero()
        assert result.positions == 17  # 1 + 8 + 8

    def test_second_step_stop_for_unit_motion(self):
        ref = textured_plane(96, 96, seed=64)
        cur = shifted_plane(ref, 0, -1)
        result = NewThreeStepEstimator(p=15, half_pel=False).search_block(
            context(cur, ref, 2, 2)
        )
        assert result.mv == MotionVector(2, 0)
        assert result.positions <= 17 + 5  # at most 5 fresh 3x3 points

    def test_cheaper_than_tss_on_static_content(self):
        ref = textured_plane(96, 96, seed=65)
        ntss = NewThreeStepEstimator(p=15, half_pel=False).search_block(context(ref, ref, 2, 2))
        tss = ThreeStepEstimator(p=15, half_pel=False).search_block(context(ref, ref, 2, 2))
        assert ntss.positions < tss.positions


class TestHexagonSpecifics:
    def test_recentre_bound_enforced(self):
        with pytest.raises(ValueError):
            HexagonEstimator(max_recentres=0)

    def test_walk_overlap_makes_recentres_cheap(self):
        """Each hexagon re-centre shares points with the previous one,
        so a 6-px walk costs far fewer than 6 full patterns."""
        ref = textured_plane(96, 112, seed=66)
        cur = shifted_plane(ref, 0, -6)
        result = HexagonEstimator(p=15, half_pel=False).search_block(context(cur, ref, 2, 3))
        assert result.mv == MotionVector(12, 0)
        assert result.positions <= 1 + 6 + 3 * 5 + 4
