"""Unit tests for repro.core.acbm — the paper's algorithm."""

import numpy as np
import pytest

from repro.core.acbm import ACBMBlockResult, ACBMEstimator
from repro.core.parameters import ACBMParameters
from repro.me.estimator import BlockContext
from repro.me.full_search import FullSearchEstimator
from repro.me.predictive import PredictiveEstimator
from repro.me.types import MotionField, MotionVector

from .conftest import shifted_plane, textured_plane


def context(cur, ref, r=1, c=1, qp=16):
    rows, cols = cur.shape[0] // 16, cur.shape[1] // 16
    return BlockContext(cur, ref, r, c, 16, MotionField(rows, cols), None, qp)


class TestConstruction:
    def test_registered_name(self):
        assert ACBMEstimator().name == "acbm"

    def test_paper_defaults(self):
        est = ACBMEstimator()
        assert est.p == 15
        assert est.params == ACBMParameters.paper_defaults()

    def test_custom_params(self):
        est = ACBMEstimator(params=ACBMParameters(alpha=0, beta=0, gamma=0))
        assert est.params.alpha == 0


class TestDecisionRouting:
    def test_smooth_block_skips_full_search(self):
        flat = np.full((48, 64), 120, dtype=np.uint8)
        result = ACBMEstimator(p=15).search_block(context(flat, flat))
        assert isinstance(result, ACBMBlockResult)
        assert result.decision == "low_cost"
        assert not result.used_full_search
        assert result.positions < 30

    def test_always_full_search_params_route_every_block(self):
        ref = textured_plane(48, 64, seed=70)
        est = ACBMEstimator(p=15, params=ACBMParameters.always_full_search())
        result = est.search_block(context(ref, ref))
        assert result.decision == "critical"
        assert result.used_full_search
        # PBM cost + full 969.
        assert result.positions > 969

    def test_never_full_search_params_route_no_block(self):
        ref = textured_plane(48, 64, seed=71)
        cur = textured_plane(48, 64, seed=72)  # terrible prediction
        est = ACBMEstimator(p=15, params=ACBMParameters.never_full_search())
        result = est.search_block(context(cur, ref))
        assert not result.used_full_search

    def test_result_carries_intra_sad_and_sad_pbm(self):
        from repro.me.metrics import intra_sad

        ref = textured_plane(48, 64, seed=73)
        result = ACBMEstimator(p=15).search_block(context(ref, ref))
        assert result.intra_sad == pytest.approx(intra_sad(ref[16:32, 16:32]))
        assert result.sad_pbm >= 0


class TestQualityGuarantee:
    def test_critical_block_matches_full_search_quality(self):
        """On a critical block ACBM's SAD equals (or beats, via the PBM
        half-pel candidate) FSBM's."""
        rng = np.random.default_rng(74)
        ref = textured_plane(48, 64, seed=74)
        cur = rng.integers(0, 256, (48, 64), dtype=np.uint8)  # uncorrelated
        est = ACBMEstimator(p=15, params=ACBMParameters.always_full_search())
        full = FullSearchEstimator(p=15)
        acbm_result = est.search_block(context(cur, ref))
        full_result = full.search_block(context(cur, ref))
        assert acbm_result.sad <= full_result.sad

    def test_acbm_never_worse_than_pbm(self):
        ref = textured_plane(48, 64, seed=75)
        cur = shifted_plane(ref, 3, -4)
        acbm_result = ACBMEstimator(p=15).search_block(context(cur, ref))
        pbm_result = PredictiveEstimator(p=15).search_block(context(cur, ref))
        assert acbm_result.sad <= pbm_result.sad


class TestCostAccounting:
    def test_accepted_block_costs_pbm_only(self):
        ref = textured_plane(48, 64, seed=76)
        acbm_result = ACBMEstimator(p=15).search_block(context(ref, ref))
        pbm_result = PredictiveEstimator(p=15).search_block(context(ref, ref))
        if not acbm_result.used_full_search:
            assert acbm_result.positions == pbm_result.positions

    def test_critical_block_costs_pbm_plus_fsbm(self):
        ref = textured_plane(96, 96, seed=77)
        cur = np.random.default_rng(78).integers(0, 256, (96, 96), dtype=np.uint8)
        est = ACBMEstimator(p=15, params=ACBMParameters.always_full_search())
        result = est.search_block(context(cur, ref, r=2, c=2))
        pbm_cost = PredictiveEstimator(p=15).search_block(context(cur, ref, r=2, c=2)).positions
        # 961 integer positions plus 3-8 half-pel neighbours (fewer when
        # the integer winner lands on the window edge).
        assert pbm_cost + 961 + 3 <= result.positions <= pbm_cost + 969

    def test_estimate_records_decisions(self):
        ref = textured_plane(48, 64, seed=79)
        cur = shifted_plane(ref, 1, 1)
        _, stats = ACBMEstimator(p=15).estimate(cur, ref, qp=16)
        assert sum(stats.decisions.values()) == stats.blocks
        assert set(stats.decisions) <= {"low_cost", "good_prediction", "critical"}

    def test_qp_monotonicity_of_cost(self):
        """Coarser Qp → larger acceptance region → fewer positions:
        Table 1's row trend, on raw planes."""
        ref = textured_plane(96, 112, seed=80)
        rng = np.random.default_rng(81)
        cur = np.clip(
            shifted_plane(ref, 1, 2).astype(float) + rng.normal(0, 6, ref.shape), 0, 255
        ).astype(np.uint8)
        est = ACBMEstimator(p=15)
        costs = {}
        for qp in (30, 22, 16):
            _, stats = est.estimate(cur, ref, qp=qp)
            costs[qp] = stats.avg_positions_per_block
        assert costs[30] <= costs[22] <= costs[16]


class TestLagrangianArbitration:
    def test_default_is_sad_arbitration(self):
        assert not ACBMEstimator().lagrangian

    def test_lagrangian_prefers_cheap_vector_on_ties(self):
        """On flat content every candidate ties at SAD ~0; the
        Lagrangian tie-break must keep the (free) predictive vector."""
        flat = np.full((48, 64), 128, dtype=np.uint8)
        est = ACBMEstimator(
            p=7, params=ACBMParameters.always_full_search(), lagrangian=True
        )
        result = est.search_block(context(flat, flat, qp=30))
        assert result.used_full_search
        assert result.mv == MotionVector.zero()

    def test_lagrangian_encode_not_worse_rd(self):
        """With J-based arbitration the encode's rate never exceeds the
        SAD-arbitrated one by more than noise, at equal-or-better cost."""
        from repro.codec.encoder import encode_sequence
        from repro.video.synthesis.sequences import make_sequence

        seq = make_sequence("foreman", frames=5)
        plain = encode_sequence(seq, qp=20, estimator=ACBMEstimator(p=15))
        lagr = encode_sequence(seq, qp=20, estimator=ACBMEstimator(p=15, lagrangian=True))
        assert lagr.rate_kbps <= plain.rate_kbps * 1.01
        assert lagr.mean_psnr_y >= plain.mean_psnr_y - 0.1
