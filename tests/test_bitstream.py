"""Unit tests for repro.codec.bitstream."""

import pytest

from repro.codec.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_bit_count_tracks_writes(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bits(0b101, 3)
        assert w.bit_count == 4

    def test_msb_first_packing(self):
        w = BitWriter()
        w.write_bits(0b10110000, 8)
        assert w.getvalue() == bytes([0b10110000])

    def test_padding_to_byte(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])
        assert w.bit_count == 3  # padding not counted

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)

    def test_zero_count_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_count == 0

    def test_write_code_tuple(self):
        w = BitWriter()
        w.write_code((0b11, 2))
        assert w.bit_count == 2
        assert w.getvalue() == bytes([0b11000000])


class TestBitReader:
    def test_reads_back_writer_output(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        w.write_bits(5, 3)
        r = BitReader(w.getvalue())
        assert r.read_bits(12) == 0xABC
        assert r.read_bits(3) == 5

    def test_bits_consumed(self):
        r = BitReader(bytes([0xFF]))
        r.read_bits(3)
        assert r.bits_consumed == 3
        assert r.bits_remaining == 5

    def test_eof(self):
        r = BitReader(bytes([0xFF]))
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_negative_count(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read_bits(-1)


class TestRoundTrip:
    def test_many_values(self):
        values = [(i * 37) % (1 << (i % 16 + 1)) for i in range(200)]
        w = BitWriter()
        for i, v in enumerate(values):
            w.write_bits(v, i % 16 + 1)
        r = BitReader(w.getvalue())
        for i, v in enumerate(values):
            assert r.read_bits(i % 16 + 1) == v
