"""Unit tests for repro.codec.bitstream."""

import pytest

from repro.codec.bitstream import BitReader, BitWriter, ScalarBitReader


class TestBitWriter:
    def test_bit_count_tracks_writes(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bits(0b101, 3)
        assert w.bit_count == 4

    def test_msb_first_packing(self):
        w = BitWriter()
        w.write_bits(0b10110000, 8)
        assert w.getvalue() == bytes([0b10110000])

    def test_padding_to_byte(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])
        assert w.bit_count == 3  # padding not counted

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_value_too_large_for_wide_counts(self):
        """The seed writer skipped range validation past 64-bit counts
        and silently dropped the high bits; every width must raise."""
        with pytest.raises(ValueError):
            BitWriter().write_bits(1 << 64, 64)
        with pytest.raises(ValueError):
            BitWriter().write_bits(1 << 100, 80)
        w = BitWriter()
        w.write_bits((1 << 64) - 1, 64)  # boundary value still fits
        assert w.getvalue() == b"\xff" * 8

    def test_negative_value(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)

    def test_zero_count_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_count == 0

    def test_write_code_tuple(self):
        w = BitWriter()
        w.write_code((0b11, 2))
        assert w.bit_count == 2
        assert w.getvalue() == bytes([0b11000000])

    def test_align_pads_with_zeros(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.align() == 5
        assert w.bit_count == 8
        assert w.byte_length == 1
        assert w.align() == 0  # already aligned
        assert w.getvalue() == bytes([0b10100000])

    def test_patch_u32_overwrites_flushed_bytes(self):
        w = BitWriter()
        w.write_bits(0xAB, 8)
        w.write_bits(0, 32)  # placeholder
        w.write_bits(0xCD, 8)
        w.patch_u32(1, 0xDEADBEEF)
        assert w.getvalue() == bytes([0xAB, 0xDE, 0xAD, 0xBE, 0xEF, 0xCD])

    def test_patch_u32_validates(self):
        w = BitWriter()
        w.write_bits(0, 32)
        with pytest.raises(ValueError):
            w.patch_u32(1, 0)  # overruns flushed buffer
        with pytest.raises(ValueError):
            w.patch_u32(0, 1 << 32)

    def test_drain_hands_out_whole_bytes_only(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        assert w.drain() == bytes([0xAB])  # the partial 0xC nibble stays
        assert w.drain() == b""  # nothing new flushed
        w.write_bits(0xD, 4)
        assert w.drain() == bytes([0xCD])

    def test_drained_chunks_plus_getvalue_reproduce_stream(self):
        undrained = BitWriter()
        drained = BitWriter()
        chunks = []
        for value, count in [(0x7E7E, 16), (3, 5), (0b101, 3), (0xABCDE, 20), (1, 1)]:
            for w in (undrained, drained):
                w.write_bits(value, count)
            chunks.append(drained.drain())
        assert b"".join(chunks) + drained.getvalue() == undrained.getvalue()

    def test_positions_stay_absolute_across_drain(self):
        """byte_length keeps counting drained bytes, patch_u32 still
        targets absolute offsets, and already-drained bytes are
        rejected — the contract the streaming encoder's v2 length
        backpatching rides on."""
        w = BitWriter()
        w.write_bits(0xAB, 8)
        assert w.drain() == bytes([0xAB])
        assert w.byte_length == 1
        pos = w.byte_length
        w.write_bits(0, 32)  # placeholder at absolute byte 1
        w.write_bits(0xCD, 8)
        w.patch_u32(pos, 0xDEADBEEF)
        assert w.getvalue() == bytes([0xDE, 0xAD, 0xBE, 0xEF, 0xCD])
        with pytest.raises(ValueError, match="drained"):
            w.patch_u32(0, 0)


class TestBitReader:
    def test_reads_back_writer_output(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        w.write_bits(5, 3)
        r = BitReader(w.getvalue())
        assert r.read_bits(12) == 0xABC
        assert r.read_bits(3) == 5

    def test_bits_consumed(self):
        r = BitReader(bytes([0xFF]))
        r.read_bits(3)
        assert r.bits_consumed == 3
        assert r.bits_remaining == 5

    def test_eof(self):
        r = BitReader(bytes([0xFF]))
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_negative_count(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read_bits(-1)


class TestPeekSkip:
    def test_peek_does_not_consume(self):
        r = BitReader(bytes([0b10110100]))
        assert r.peek_bits(3) == 0b101
        assert r.peek_bits(3) == 0b101
        assert r.bits_consumed == 0
        assert r.read_bits(3) == 0b101

    def test_peek_zero_pads_past_eof(self):
        r = BitReader(bytes([0xFF]))
        assert r.peek_bits(16) == 0xFF00

    def test_skip_then_read(self):
        r = BitReader(bytes([0b10110100, 0b11001010]))
        r.skip_bits(5)
        assert r.read_bits(6) == 0b100110
        assert r.bits_consumed == 11

    def test_skip_past_eof(self):
        r = BitReader(bytes([0xFF]))
        with pytest.raises(EOFError):
            r.skip_bits(9)

    def test_negative_counts(self):
        r = BitReader(b"\x00")
        with pytest.raises(ValueError):
            r.peek_bits(-1)
        with pytest.raises(ValueError):
            r.skip_bits(-1)

    def test_align(self):
        r = BitReader(bytes([0xAB, 0xCD]))
        assert r.align() == 0  # already aligned
        r.read_bits(3)
        assert r.align() == 5
        assert r.read_bits(8) == 0xCD


class TestScalarBitReaderEquivalence:
    """The word-level reader must read exactly what the seed per-bit
    reference reads, on the same bytes."""

    def test_interleaved_reads_match(self):
        data = bytes((i * 89 + 31) % 256 for i in range(64))
        fast, seed = BitReader(data), ScalarBitReader(data)
        for count in (1, 7, 8, 9, 13, 1, 24, 3, 32, 5, 64, 2):
            assert fast.read_bits(count) == seed.read_bits(count)
            assert fast.bits_consumed == seed.bits_consumed
            assert fast.bits_remaining == seed.bits_remaining

    def test_eof_behaviour_matches(self):
        data = bytes([0x5A])
        fast, seed = BitReader(data), ScalarBitReader(data)
        assert fast.read_bits(8) == seed.read_bits(8)
        with pytest.raises(EOFError):
            fast.read_bit()
        with pytest.raises(EOFError):
            seed.read_bit()


class TestRoundTrip:
    def test_many_values(self):
        values = [(i * 37) % (1 << (i % 16 + 1)) for i in range(200)]
        w = BitWriter()
        for i, v in enumerate(values):
            w.write_bits(v, i % 16 + 1)
        r = BitReader(w.getvalue())
        for i, v in enumerate(values):
            assert r.read_bits(i % 16 + 1) == v

    def test_wide_chunks(self):
        """Chunks wider than the refill word exercise the multi-word
        accumulator paths on both sides."""
        values = [(1 << 70) - 3, 0, (1 << 100) // 7, 12345]
        w = BitWriter()
        for v in values:
            w.write_bits(v, 100)
        r = BitReader(w.getvalue())
        for v in values:
            assert r.read_bits(100) == v
