"""Run the doctests embedded in the public API's docstrings.

Keeps every usage example shown in module/class docstrings executable
— documentation that cannot rot.
"""

import doctest

import pytest

import repro
import repro.codec.decoder
import repro.codec.encoder
import repro.core.acbm
import repro.core.classifier
import repro.core.parameters
import repro.me.estimator
import repro.parallel.pool
import repro.streaming.decoder
import repro.video.synthesis.sequences

MODULES = [
    repro,
    repro.codec.decoder,
    repro.codec.encoder,
    repro.core.acbm,
    repro.core.classifier,
    repro.core.parameters,
    repro.me.estimator,
    repro.parallel.pool,
    repro.streaming.decoder,
    repro.video.synthesis.sequences,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its doctests"
    assert result.failed == 0
