"""Unit tests for repro.video.synthesis.texture."""

import numpy as np
import pytest

from repro.me.metrics import block_activity_map
from repro.video.synthesis.texture import (
    blend,
    checker_field,
    flat_field,
    gradient_field,
    noise_texture,
    stripe_field,
)


class TestFields:
    def test_flat_is_constant(self):
        f = flat_field(16, 32, level=77)
        assert f.shape == (16, 32)
        assert (f == 77.0).all()

    def test_gradient_horizontal_span(self):
        g = gradient_field(16, 32, low=10, high=20, axis=1)
        assert g[:, 0] == pytest.approx(10.0)
        assert g[:, -1] == pytest.approx(20.0)
        assert (np.diff(g, axis=0) == 0).all()

    def test_gradient_vertical(self):
        g = gradient_field(16, 32, low=0, high=15, axis=0)
        assert (np.diff(g, axis=1) == 0).all()
        assert g[-1, 0] == pytest.approx(15.0)

    def test_gradient_bad_axis(self):
        with pytest.raises(ValueError):
            gradient_field(8, 8, axis=2)

    def test_stripes_periodic(self):
        s = stripe_field(8, 48, period=12, axis=1)
        np.testing.assert_allclose(s[:, 0], s[:, 12])
        np.testing.assert_allclose(s[:, 5], s[:, 17])

    def test_stripes_bad_period(self):
        with pytest.raises(ValueError):
            stripe_field(8, 8, period=1)

    def test_checker_alternates(self):
        c = checker_field(32, 32, cell=16, low=0, high=10)
        assert c[0, 0] == 0.0
        assert c[0, 16] == 10.0
        assert c[16, 0] == 10.0
        assert c[16, 16] == 0.0

    def test_checker_bad_cell(self):
        with pytest.raises(ValueError):
            checker_field(8, 8, cell=0)


class TestNoiseTexture:
    def test_clipped_to_8bit_range(self):
        t = noise_texture(32, 32, seed=0, amplitude=400.0)
        assert t.min() >= 0.0
        assert t.max() <= 255.0

    def test_amplitude_scales_activity(self):
        """Per-block Intra_SAD grows with texture amplitude — the lever
        the sequence presets are calibrated with."""
        lo = noise_texture(64, 64, seed=1, amplitude=20.0)
        hi = noise_texture(64, 64, seed=1, amplitude=80.0)
        assert block_activity_map(hi).mean() > 2 * block_activity_map(lo).mean()

    def test_persistence_adds_detail(self):
        soft = noise_texture(64, 64, seed=2, octaves=5, persistence=0.3)
        hard = noise_texture(64, 64, seed=2, octaves=5, persistence=0.9)
        assert np.abs(np.diff(hard, axis=1)).mean() > np.abs(np.diff(soft, axis=1)).mean()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            noise_texture(16, 16, seed=9), noise_texture(16, 16, seed=9)
        )


class TestBlend:
    def test_alpha_zero_keeps_base(self):
        base = np.full((4, 4), 1.0)
        over = np.full((4, 4), 9.0)
        np.testing.assert_allclose(blend(base, over, 0.0), base)

    def test_alpha_one_takes_overlay(self):
        base = np.full((4, 4), 1.0)
        over = np.full((4, 4), 9.0)
        np.testing.assert_allclose(blend(base, over, 1.0), over)

    def test_alpha_half_midpoint(self):
        np.testing.assert_allclose(
            blend(np.zeros((2, 2)), np.full((2, 2), 10.0), 0.5), np.full((2, 2), 5.0)
        )

    def test_alpha_array(self):
        alpha = np.array([[0.0, 1.0]])
        out = blend(np.zeros((1, 2)), np.full((1, 2), 8.0), alpha)
        np.testing.assert_allclose(out, [[0.0, 8.0]])
