"""Unit tests for repro.codec.macroblock."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.dct import forward_dct
from repro.codec.macroblock import (
    chroma_mv,
    code_inter_block,
    code_intra_block,
    decode_inter_block,
    decode_intra_block,
    events_bits,
    join_luma_blocks,
    predict_chroma_block,
    read_events,
    split_luma_blocks,
    write_events,
)
from repro.codec.zigzag import CoefficientEvent
from repro.me.types import MotionVector

from .conftest import textured_plane


class TestLumaBlockSplit:
    def test_order_tl_tr_bl_br(self):
        mb = np.arange(256).reshape(16, 16)
        blocks = split_luma_blocks(mb)
        np.testing.assert_array_equal(blocks[0], mb[:8, :8])
        np.testing.assert_array_equal(blocks[1], mb[:8, 8:])
        np.testing.assert_array_equal(blocks[2], mb[8:, :8])
        np.testing.assert_array_equal(blocks[3], mb[8:, 8:])

    def test_join_is_inverse(self):
        mb = np.random.default_rng(0).integers(0, 256, (16, 16))
        np.testing.assert_array_equal(join_luma_blocks(split_luma_blocks(mb)), mb)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            split_luma_blocks(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            join_luma_blocks(np.zeros((6, 8, 8)))


class TestChromaMv:
    def test_even_components_halved_exactly(self):
        assert chroma_mv(MotionVector(4, -6)) == MotionVector(2, -3)

    def test_odd_components_round_away_from_zero(self):
        assert chroma_mv(MotionVector(3, -3)) == MotionVector(2, -2)
        assert chroma_mv(MotionVector(1, -1)) == MotionVector(1, -1)

    def test_zero(self):
        assert chroma_mv(MotionVector.zero()) == MotionVector.zero()


class TestPredictChromaBlock:
    def test_zero_mv_is_collocated_block(self):
        plane = textured_plane(24, 32, seed=90)
        out = predict_chroma_block(plane, 8, 8, MotionVector.zero(), p=15)
        np.testing.assert_array_equal(out, plane[8:16, 8:16])

    def test_integer_chroma_displacement(self):
        plane = textured_plane(24, 32, seed=91)
        # Luma mv (+4, -8) half-pel → chroma (+2, -4) half-pel = (+1, -2) px.
        out = predict_chroma_block(plane, 8, 8, MotionVector(4, -8), p=15)
        np.testing.assert_array_equal(out, plane[6:14, 9:17])

    def test_border_clamping_never_raises(self):
        plane = textured_plane(24, 32, seed=92)
        for mv in (MotionVector(31, 31), MotionVector(-31, -31)):
            out = predict_chroma_block(plane, 16, 24, mv, p=15)
            assert out.shape == (8, 8)


class TestEventSerialization:
    def test_round_trip_table_events(self):
        events = [
            CoefficientEvent(False, 0, 1),
            CoefficientEvent(False, 2, -3),
            CoefficientEvent(True, 1, 2),
        ]
        writer = BitWriter()
        bits = write_events(writer, events)
        assert bits == events_bits(events) == writer.bit_count
        assert read_events(BitReader(writer.getvalue())) == events

    def test_round_trip_escape_events(self):
        events = [
            CoefficientEvent(False, 45, 1),      # run out of table range
            CoefficientEvent(True, 0, -100),     # level out of table range
        ]
        writer = BitWriter()
        write_events(writer, events)
        assert read_events(BitReader(writer.getvalue())) == events

    def test_empty_events_rejected(self):
        with pytest.raises(ValueError):
            write_events(BitWriter(), [])

    def test_negative_escape_level_two_complement(self):
        events = [CoefficientEvent(True, 30, -90)]
        writer = BitWriter()
        write_events(writer, events)
        assert read_events(BitReader(writer.getvalue())) == events


class TestInterBlockRoundTrip:
    def test_code_then_decode_reproduces_reconstruction(self):
        rng = np.random.default_rng(93)
        residual = rng.normal(0, 20, (8, 8))
        coefficients = forward_dct(residual)
        for qp in (4, 10, 21):
            events, recon = code_inter_block(coefficients, qp)
            back = decode_inter_block(events, qp)
            np.testing.assert_allclose(back, recon)

    def test_zero_residual_gives_no_events(self):
        events, recon = code_inter_block(np.zeros((8, 8)), 10)
        assert events == []
        assert (recon == 0).all()


class TestIntraBlockRoundTrip:
    def test_code_then_decode_reproduces_reconstruction(self):
        rng = np.random.default_rng(94)
        block = rng.integers(0, 256, (8, 8)).astype(np.float64)
        coefficients = forward_dct(block)
        for qp in (5, 12, 28):
            dc_level, events, recon = code_intra_block(coefficients, qp)
            back = decode_intra_block(dc_level, events, qp)
            np.testing.assert_allclose(back, recon)
            assert 1 <= dc_level <= 254

    def test_flat_block_is_dc_only(self):
        block = np.full((8, 8), 96.0)
        dc_level, events, recon = code_intra_block(forward_dct(block), 10)
        assert events == []
        assert dc_level == 96  # 8 * 96 / 8
