"""Unit tests for repro.analysis.rd."""

import pytest

from repro.analysis.rd import RDCurve, RDPoint


def curve(label, points):
    return RDCurve(label, [RDPoint(qp=q, rate_kbps=r, psnr_db=p) for q, r, p in points])


class TestRDPoint:
    def test_valid(self):
        p = RDPoint(qp=16, rate_kbps=40.0, psnr_db=30.0)
        assert p.qp == 16

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            RDPoint(qp=16, rate_kbps=0.0, psnr_db=30.0)

    def test_rejects_non_finite_psnr(self):
        with pytest.raises(ValueError):
            RDPoint(qp=16, rate_kbps=10.0, psnr_db=float("inf"))


class TestRDCurve:
    def test_sorted_by_rate(self):
        c = curve("x", [(16, 60.0, 31.0), (30, 20.0, 27.0), (22, 40.0, 29.0)])
        assert [p.rate_kbps for p in c.points] == [20.0, 40.0, 60.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RDCurve("x", [])

    def test_rate_range(self):
        c = curve("x", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        assert c.rate_range == (20.0, 60.0)

    def test_psnr_at_known_points(self):
        c = curve("x", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        assert c.psnr_at_rate(20.0) == pytest.approx(27.0)
        assert c.psnr_at_rate(60.0) == pytest.approx(31.0)

    def test_psnr_interpolation_monotone(self):
        c = curve("x", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        mid = c.psnr_at_rate(35.0)
        assert 27.0 < mid < 31.0

    def test_psnr_outside_span_rejected(self):
        c = curve("x", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        with pytest.raises(ValueError):
            c.psnr_at_rate(10.0)

    def test_single_point_curve(self):
        c = curve("x", [(20, 30.0, 28.0)])
        assert c.psnr_at_rate(30.0) == 28.0


class TestCurveComparison:
    def test_dominating_curve_has_positive_gain(self):
        better = curve("a", [(30, 20.0, 28.0), (16, 60.0, 32.0)])
        worse = curve("b", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        gain = better.average_psnr_gain_over(worse)
        assert gain == pytest.approx(1.0, abs=0.01)

    def test_antisymmetric(self):
        a = curve("a", [(30, 20.0, 28.0), (16, 60.0, 32.0)])
        b = curve("b", [(30, 25.0, 26.5), (16, 55.0, 31.5)])
        assert a.average_psnr_gain_over(b) == pytest.approx(-b.average_psnr_gain_over(a))

    def test_no_overlap_rejected(self):
        a = curve("a", [(30, 10.0, 28.0), (28, 15.0, 29.0)])
        b = curve("b", [(18, 50.0, 30.0), (16, 60.0, 31.0)])
        with pytest.raises(ValueError, match="no rate range"):
            a.average_psnr_gain_over(b)

    def test_identical_curves_zero_gain(self):
        a = curve("a", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        b = curve("b", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        assert a.average_psnr_gain_over(b) == pytest.approx(0.0, abs=1e-12)

    def test_samples_validated(self):
        a = curve("a", [(30, 20.0, 27.0), (16, 60.0, 31.0)])
        with pytest.raises(ValueError):
            a.average_psnr_gain_over(a, samples=1)

    def test_repr(self):
        text = repr(curve("acbm/foreman@30", [(30, 20.0, 27.0), (16, 60.0, 31.0)]))
        assert "acbm/foreman@30" in text
        assert "2 points" in text
