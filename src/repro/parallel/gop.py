"""Per-GOP parallel encoding.

``i_Period`` cuts a sequence into GOPs — an I-frame plus the P-frames
that depend on it — and the I-frame resets every piece of encoder
state that crosses frames (the reference list and the predictor-seeding
motion field).  GOPs are therefore independent encode units, exactly
like RD-sweep cells: :func:`encode_sequence_parallel` dispatches one
:class:`~repro.parallel.jobs.GopEncodeJob` per GOP through
:func:`~repro.parallel.pool.run_jobs` and concatenates the returned
byte runs in GOP order.

The splice is only valid for version-2 streams, whose pictures end
byte-aligned behind a length field; version-1 pictures end mid-byte, so
their concatenation is not the serial encoder's output.  With that
restriction the splice is *byte-identical* to the serial encode for
every worker count — ``tests/test_gop.py`` and ``BENCH_gop.json`` pin
the identity, the benchmark measures the speedup.
"""

from __future__ import annotations

from repro.codec.encoder import EncodeResult, Encoder
from repro.parallel.jobs import GopEncodeJob
from repro.parallel.pool import ProgressFn, run_jobs
from repro.video.sequence import Sequence


def split_gops(n_frames: int, i_period: int) -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` frame ranges of every GOP: a new one
    opens at each multiple of ``i_period`` (the serial encoder's
    frame-type rule, :meth:`~repro.codec.encoder.Encoder.is_intra_position`)."""
    if i_period < 1:
        raise ValueError(f"i_Period must be a positive GOP length in frames, got {i_period}")
    return [(start, min(start + i_period, n_frames)) for start in range(0, n_frames, i_period)]


def encode_sequence_parallel(
    sequence: Sequence,
    qp: int = 16,
    estimator: str = "acbm",
    estimator_kwargs: dict | None = None,
    i_period: int | None = None,
    n_ref_frames: int = 1,
    jobs: int = 1,
    base_seed: int = 0,
    bitstream_version: int = 2,
    use_engine: bool = True,
    progress: ProgressFn | None = None,
    use_shm: bool | str = False,
) -> EncodeResult:
    """Encode ``sequence`` GOP-by-GOP across ``jobs`` workers.

    Byte-identical to ``Encoder(...).encode(sequence)`` with the same
    parameters for every worker count (results merge in GOP order).
    Requires ``i_period`` (no GOP cuts, nothing to parallelize) and
    ``bitstream_version=2`` (version-1 pictures end mid-byte, so spliced
    GOP runs would not reproduce the serial stream).  The result carries
    no reconstruction — workers drop pixels, like the RD-sweep jobs.

    ``estimator`` must be a registry name: workers rebuild it from the
    spec, so an estimator *instance* cannot cross the spawn boundary.

    ``use_shm=True`` ships each GOP's source planes to workers as
    shared-memory :class:`~repro.transport.FrameHandle` references
    (``GopEncodeJob.pack_shm``) instead of pickled bytes — byte-identical
    output, cheaper transport for large sequences.  ``"auto"`` defers
    to :func:`~repro.parallel.pool.run_jobs`: shm exactly when workers
    actually spawn.
    """
    if i_period is None:
        raise ValueError("parallel GOP encode needs i_period: without GOP cuts there "
                         "is nothing to split")
    if bitstream_version != 2:
        raise ValueError(
            "parallel GOP encode splices byte-aligned version-2 streams; "
            f"version {bitstream_version} pictures end mid-byte and cannot be spliced"
        )
    if not isinstance(estimator, str):
        raise ValueError("parallel GOP encode needs an estimator registry name, not an instance")
    # Validates qp / i_period / n_ref_frames with the serial encoder's
    # exact error messages before any worker spawns.
    Encoder(
        estimator=estimator,
        qp=qp,
        estimator_kwargs=estimator_kwargs,
        i_period=i_period,
        n_ref_frames=n_ref_frames,
        bitstream_version=bitstream_version,
    )
    frames = list(sequence)
    geometry = sequence.geometry
    kwargs_spec = tuple(sorted((estimator_kwargs or {}).items()))
    specs = [
        GopEncodeJob(
            width=geometry.width,
            height=geometry.height,
            start=start,
            planes=tuple(
                (f.y.tobytes(), f.cb.tobytes(), f.cr.tobytes(), f.index)
                for f in frames[start:end]
            ),
            estimator=estimator,
            qp=qp,
            i_period=i_period,
            n_ref_frames=n_ref_frames,
            bitstream_version=bitstream_version,
            use_engine=use_engine,
            estimator_kwargs=kwargs_spec,
        )
        for start, end in split_gops(len(frames), i_period)
    ]
    results = run_jobs(
        specs, workers=jobs, base_seed=base_seed, progress=progress, use_shm=use_shm
    )
    records = [record for _chunk, gop_records in results for record in gop_records]
    bitstream = b"".join(chunk for chunk, _gop_records in results)
    return EncodeResult(
        name=sequence.name,
        qp=qp,
        estimator_name=estimator,
        fps=sequence.fps,
        frames=records,
        bitstream=bitstream,
        reconstruction=[],
        bitstream_version=bitstream_version,
    )
