"""Process-parallel experiment orchestration.

The paper's experiments decompose into independent units — one encode
per RD-sweep cell, one frame pair per Fig. 4 observation batch, one
bitstream per decode — and every estimator is stateless, so the layer
above the frame-level kernels shards *jobs* across processes:

* :mod:`repro.parallel.jobs` — hashable, picklable job specs
  (:class:`EncodeJob`, :class:`DecodeJob`, :class:`SweepJob`,
  :class:`Fig4PairJob`) with module-level execution recipes and
  per-process render memoization.
* :mod:`repro.parallel.pool` — :func:`run_jobs`, a
  ``ProcessPoolExecutor``/``spawn`` wrapper with deterministic per-job
  ``SeedSequence`` seeding, chunked dispatch, progress callbacks and an
  in-process fallback for ``--jobs 1``.

Results always merge in job order, so a harness's output is
byte-identical for any worker count; the golden tests in
``tests/test_parallel.py`` pin that property.
"""

from repro.parallel.gop import encode_sequence_parallel, split_gops
from repro.parallel.jobs import (
    DecodeJob,
    EncodeJob,
    Fig4PairJob,
    GopEncodeJob,
    JobSpec,
    ParseFrameJob,
    SweepJob,
    borrowed_renders,
    clear_render_cache,
    rendered_source,
)
from repro.parallel.pool import WorkerTraceFailure, derive_job_seeds, execute_job, run_jobs

__all__ = [
    "DecodeJob",
    "EncodeJob",
    "Fig4PairJob",
    "GopEncodeJob",
    "JobSpec",
    "ParseFrameJob",
    "SweepJob",
    "WorkerTraceFailure",
    "borrowed_renders",
    "clear_render_cache",
    "derive_job_seeds",
    "encode_sequence_parallel",
    "execute_job",
    "rendered_source",
    "run_jobs",
    "split_gops",
]
