"""Process pool executing job specs with deterministic seeding.

:func:`run_jobs` is the one entry point: it takes a list of
:class:`repro.parallel.jobs.JobSpec` instances and returns their results
**in job order**, whatever the worker count or completion order — the
experiment harnesses rely on that to keep their reports byte-identical
for any ``--jobs`` value.

Execution model
---------------

* ``workers <= 1`` (or a single job): the in-process fallback — no
  executor, no pickling, no spawn cost.  This is the path CI smoke runs
  and the golden tests compare against.
* ``workers > 1``: a ``ProcessPoolExecutor`` over the ``spawn`` start
  method.  ``spawn`` (rather than ``fork``) keeps workers identical
  across platforms and free of inherited NumPy threading state; each
  worker re-imports the package, so job functions must be module-level
  importables (the job specs are frozen dataclasses for exactly this
  reason) and the calling ``__main__`` must be re-importable — a
  script file or ``python -m``, not code piped through stdin (a
  standard ``spawn`` constraint).  Jobs are dispatched in chunks to
  amortize IPC for large fine-grained job lists.

Deterministic seeding
---------------------

Every run derives one ``numpy.random.SeedSequence`` child per job with
:func:`derive_job_seeds` — ``SeedSequence(base_seed).spawn(n)`` — and
reseeds NumPy's global generator from the job's child immediately
before the job runs, in whichever process it landed.  A job's entropy
is therefore a pure function of ``(base_seed, job index)``: results
cannot depend on worker count, job-to-worker placement, or completion
order.  Jobs that want explicit randomness receive a
``numpy.random.Generator`` spawned from the same child.

Shared-memory transport
-----------------------

``use_shm=True`` moves job payloads and result arrays through
:mod:`repro.transport` instead of the executor's pickle stream: specs
are repacked via ``JobSpec.pack_shm`` against a run-scoped
:class:`~repro.transport.FrameStore` (a render-once memo over a
:class:`~repro.transport.FrameArena`; workers attach segments on first
use), and workers :func:`~repro.transport.export` their results'
arrays into one-shot segments the parent materializes and unlinks as
each chunk completes.  What crosses the pipe is handles — a few
hundred bytes per value.  Results are bit-identical to the default
pickling path (``use_shm=False``, which remains exactly the historical
code path); the flag only changes how bytes travel.  In-process runs
(``workers <= 1``) have no boundary to cross and ignore the flag.

``use_shm="auto"`` resolves per call: shared memory when the run will
actually spawn workers (``workers >= 2`` and more than one job) *and*
at least one spec overrides ``pack_shm`` — otherwise the pickling
path.  This is what the experiment harnesses pass by default, so
``--jobs N`` gets zero-copy for free without changing single-process
behaviour.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from multiprocessing import get_context
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.obs import trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.jobs import JobSpec

#: Progress callback signature: receives one line per job (the job's
#: ``describe()``).  The guarantee: **exactly one call per job**, fired
#: in-process immediately *before* the job runs (live progress,
#: matching the serial harnesses' historical timing) and in parallel
#: mode as the job *completes*, in completion order.  To keep the
#: parallel guarantee per-job rather than per-batch, supplying a
#: callback makes the dispatch unit a single job (``chunk_size`` is
#: ignored — per-job completion cannot be observed from inside a
#: worker-side batch).  Lines are not deduplicated — two jobs with
#: equal descriptions produce two calls.
ProgressFn = Callable[[str], None]


def derive_job_seeds(base_seed: int, count: int) -> list[np.random.SeedSequence]:
    """One independent ``SeedSequence`` child per job.

    ``SeedSequence.spawn`` guarantees non-overlapping streams, and the
    i-th child depends only on ``(base_seed, i)`` — never on how many
    workers execute the list or in which order.

    >>> a = derive_job_seeds(0, 3)
    >>> b = derive_job_seeds(0, 3)
    >>> [x.generate_state(1)[0] for x in a] == [y.generate_state(1)[0] for y in b]
    True
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return list(np.random.SeedSequence(base_seed).spawn(count)) if count else []


def execute_job(job: "JobSpec", seed_seq: np.random.SeedSequence):
    """Run one job under its seed: the global NumPy RNG is reseeded from
    the job's own ``SeedSequence`` child (so legacy ``np.random.*``
    consumers inside the job are order-independent too) and the job
    receives a dedicated ``Generator``."""
    np.random.seed(seed_seq.generate_state(4))
    return job.run(rng=np.random.default_rng(seed_seq))


def _chunks(items: Sequence, size: int) -> Iterable[tuple[int, list]]:
    for start in range(0, len(items), size):
        yield start, list(items[start : start + size])


class WorkerTraceFailure(RuntimeError):
    """A traced worker's job failure, carrying the worker's partial
    trace events across the pickle boundary.

    Raised by :func:`_run_chunk` in place of the job's own exception
    when the parent asked for trace collection: ``str()`` is the
    original exception's message (so the parent's ``parallel job
    failed`` report reads identically to the untraced path), and
    :attr:`events` holds everything the worker recorded up to the
    failure — the parent adopts them, which is what makes a failed
    ``--jobs N --trace`` run still produce a partial timeline.
    """

    def __init__(self, message: str, events: list | None = None, cause_type: str = "") -> None:
        super().__init__(message)
        self.events = events or []
        self.cause_type = cause_type

    def __reduce__(self):
        return (type(self), (self.args[0], self.events, self.cause_type))


def _run_chunk(
    payload: list,
    use_shm: bool = False,
    backend: str | None = None,
    collect_trace: bool = False,
) -> list:
    """Worker-side chunk executor: ``payload`` is a list of
    ``(job, seed_sequence)`` pairs, results returned in chunk order.

    ``backend`` pins the worker's kernel backend by registry name before
    any job runs — how the parent's backend choice survives the spawn
    boundary (a spawned child would otherwise re-resolve from its own
    environment).

    ``collect_trace`` enables this worker's own tracer (spawned
    children start with it off) and changes the return shape to
    ``(results, events)``: each job runs under a ``"job"`` span, and the
    drained events — stamped with the *worker's* pid — ship back with
    the results for the parent to adopt.  A failing job raises
    :class:`WorkerTraceFailure` so the partial events still cross.

    Under ``use_shm`` each result's arrays are exported to a one-shot
    shared segment before the return value crosses the pickle boundary
    — the parent materializes (and unlinks) them as the chunk lands.
    Results without array payloads are returned as-is either way.
    """
    if backend is not None:
        from repro.kernels import set_backend

        set_backend(backend)
    if not collect_trace:
        results = [execute_job(job, seed_seq) for job, seed_seq in payload]
        if use_shm:
            from repro.transport import export

            results = [export(result, name_prefix="repro-result") for result in results]
        return results
    tracer = trace.TRACER
    tracer.enable()
    try:
        results = []
        for job, seed_seq in payload:
            with trace.span("job", job=job.describe()):
                results.append(execute_job(job, seed_seq))
    except Exception as exc:
        tracer.disable()
        raise WorkerTraceFailure(str(exc), tracer.drain(), type(exc).__name__) from exc
    tracer.disable()
    events = tracer.drain()
    if use_shm:
        from repro.transport import export

        results = [export(result, name_prefix="repro-result") for result in results]
    return results, events


@contextmanager
def _exported_package_path():
    """Make sure spawned children can import ``repro``.

    ``spawn`` ships the parent's ``sys.path`` to the child, which covers
    the normal ``PYTHONPATH=src`` invocation; exporting the package root
    through the environment additionally covers parents that grew their
    path at runtime (embedding, notebooks).  The variable is restored on
    exit — every spawn happens inside the executor's lifetime, and the
    caller's environment is not ours to rewrite."""
    import repro

    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    before = os.environ.get("PYTHONPATH")
    parts = [p for p in (before or "").split(os.pathsep) if p]
    if pkg_root not in parts and pkg_root in sys.path:
        os.environ["PYTHONPATH"] = os.pathsep.join([pkg_root, *parts])
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = before


def _spawn_backend_name(backend: str | None) -> str | None:
    """The kernel-backend name to pin in spawned workers.

    An explicit request wins; otherwise the parent's *active* backend is
    shipped when it carries a registry name, so a runner-level
    ``--backend`` (or ``REPRO_BACKEND``) choice survives the spawn
    boundary without each call site threading it through.  Instance
    backends without a registry name (e.g. the ``numba-sim`` test
    backend) never cross — workers re-resolve from their environment.
    """
    if backend is not None:
        return backend
    from repro.kernels import get_backend

    name = get_backend().name
    return name if name in ("numpy", "numba") else None


def run_jobs(
    jobs: Sequence["JobSpec"],
    workers: int = 1,
    *,
    base_seed: int = 0,
    progress: ProgressFn | None = None,
    chunk_size: int = 1,
    use_shm: bool | str = False,
    backend: str | None = None,
) -> list:
    """Execute ``jobs`` and return their results in job order.

    Parameters
    ----------
    jobs:
        Job specs (hashable frozen dataclasses with ``run``/``describe``).
    workers:
        Process count; ``<= 1`` runs in-process with zero dispatch
        overhead.  Results are independent of this value by
        construction.
    base_seed:
        Root of the per-job ``SeedSequence`` tree (see
        :func:`derive_job_seeds`).
    progress:
        Optional per-job callable; see :data:`ProgressFn` for the
        exactly-once-per-job guarantee.  Enabling it in parallel mode
        forces per-job dispatch (``chunk_size`` is ignored).
    chunk_size:
        Jobs per dispatch unit.  The default of 1 suits the experiment
        harnesses, whose jobs are whole encodes (seconds each); raise
        it for large lists of sub-second jobs.
    use_shm:
        Move payload arrays through shared memory instead of the pickle
        stream (see the module docstring).  ``"auto"`` turns shm on
        exactly when the run spawns workers and at least one spec is
        shm-capable (overrides ``pack_shm``).  Results are
        bit-identical in every mode; ``False`` is exactly the
        historical pickling path.
    backend:
        Kernel-backend registry name to pin in workers (and, for the
        in-process path, around the run).  ``None`` ships the parent's
        active backend's name automatically — see
        :func:`_spawn_backend_name`.  Backends are bit-identical, so
        this never changes results, only worker speed.
    """
    job_list = list(jobs)
    if not job_list:
        return []
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    seeds = derive_job_seeds(base_seed, len(job_list))
    workers = max(1, int(workers))
    use_shm = _resolve_use_shm(use_shm, job_list, workers)
    with trace.span("run_jobs", jobs=len(job_list), workers=workers, use_shm=use_shm):
        if workers == 1 or len(job_list) == 1:
            # Per-job reseeding must happen here too (or jobs consuming the
            # global RNG would differ between worker counts), but the
            # caller's global RNG stream is not ours to consume — save and
            # restore it so ``run_jobs`` is side-effect-free in-process,
            # exactly like the parallel path (which reseeds only workers,
            # and likewise pins the backend only in workers).
            from repro.kernels import get_backend, set_backend

            rng_state = np.random.get_state()
            previous_backend = get_backend() if backend is not None else None
            if backend is not None:
                set_backend(backend)
            try:
                results = []
                for job, seed_seq in zip(job_list, seeds):
                    if progress is not None:
                        progress(job.describe())
                    with trace.span("job", job=job.describe()):
                        results.append(execute_job(job, seed_seq))
                return results
            finally:
                np.random.set_state(rng_state)
                if previous_backend is not None:
                    set_backend(previous_backend)
        spawn_backend = _spawn_backend_name(backend)
        # Workers are fresh spawned processes whose tracer starts
        # disabled; ship the parent's tracing state so their spans come
        # back with the results (see _run_chunk).
        collect_trace = trace.TRACER.enabled
        if not use_shm:
            return _run_parallel(
                job_list, seeds, workers, progress, chunk_size, use_shm=False,
                backend=spawn_backend, collect_trace=collect_trace,
            )
        from repro.transport import FrameArena, FrameStore

        # The arena must outlive every worker read of a packed spec, i.e.
        # the whole parallel run; its exit unlinks all input segments
        # (including every source the store rendered).  Result segments are
        # one-shot exports the parent materializes (and unlinks) as each
        # chunk completes — see _run_chunk.
        with FrameArena(name_prefix="repro-jobs") as arena:
            store = FrameStore(arena)
            packed = [job.pack_shm(store) for job in job_list]
            return _run_parallel(
                packed, seeds, workers, progress, chunk_size, use_shm=True,
                backend=spawn_backend, collect_trace=collect_trace,
            )


def _resolve_use_shm(use_shm: bool | str, job_list: list, workers: int) -> bool:
    """Resolve the ``use_shm`` mode to a concrete bool.

    ``"auto"`` means: shared memory exactly when the run will spawn
    workers (``workers >= 2`` and more than one job — otherwise the
    in-process fallback runs and there is no boundary to cross) and at
    least one spec is shm-capable, i.e. overrides
    ``JobSpec.pack_shm``.  An all-identity job list would pay arena
    setup for nothing, so it stays on the pickling path.
    """
    if isinstance(use_shm, bool):
        return use_shm
    if use_shm != "auto":
        raise ValueError(f"use_shm must be True, False or 'auto', got {use_shm!r}")
    if workers < 2 or len(job_list) < 2:
        return False
    from repro.parallel.jobs import JobSpec

    return any(type(job).pack_shm is not JobSpec.pack_shm for job in job_list)


def _run_parallel(
    job_list: list,
    seeds: list,
    workers: int,
    progress: ProgressFn | None,
    chunk_size: int,
    use_shm: bool,
    backend: str | None = None,
    collect_trace: bool = False,
) -> list:
    if progress is not None:
        chunk_size = 1  # per-job completion reporting (see ProgressFn)
    results_by_index: list = [None] * len(job_list)
    workers = min(workers, len(job_list))
    with _exported_package_path():
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as executor:
            futures = {}
            for start, chunk in _chunks(list(zip(job_list, seeds)), chunk_size):
                futures[
                    executor.submit(_run_chunk, chunk, use_shm, backend, collect_trace)
                ] = (
                    start,
                    len(chunk),
                )
            failure: tuple[Exception, int, int] | None = None
            for future in as_completed(futures):
                start, length = futures[future]
                try:
                    chunk_results = future.result()
                except Exception as exc:
                    # Fail fast: without cancel_futures the context
                    # manager's shutdown would first run every queued
                    # chunk to completion and discard the results.
                    executor.shutdown(wait=False, cancel_futures=True)
                    failure = (exc, start, length)
                    break
                if collect_trace:
                    chunk_results, worker_events = chunk_results
                    trace.TRACER.adopt(worker_events)
                if use_shm:
                    from repro.transport import materialize

                    chunk_results = [materialize(r, unlink=True) for r in chunk_results]
                results_by_index[start : start + length] = chunk_results
                if progress is not None:
                    for job in job_list[start : start + length]:
                        progress(job.describe())
        if failure is not None:
            exc, start, length = failure
            if isinstance(exc, WorkerTraceFailure) and exc.events:
                # The failing worker's partial timeline still merges —
                # a crashed --jobs N --trace run stays diagnosable.
                trace.TRACER.adopt(exc.events)
            if use_shm:
                _reap_exported_results(futures, traced=collect_trace)
            descriptions = ", ".join(
                j.describe() for j in job_list[start : start + length]
            )
            raise RuntimeError(f"parallel job failed ({descriptions}): {exc}") from exc
    return results_by_index


def _reap_exported_results(futures: dict, traced: bool = False) -> None:
    """Failure-path hygiene under shm transport: chunks that completed
    before the failure surfaced may have exported result segments the
    parent never materialized — unlink them so the error leaves
    ``/dev/shm`` as clean as success does."""
    from repro.transport import materialize

    for future in futures:
        if future.done() and not future.cancelled() and future.exception() is None:
            try:
                chunk = future.result()
                if traced:
                    chunk = chunk[0]
                for result in chunk:
                    materialize(result, unlink=True)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
