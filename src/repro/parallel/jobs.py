"""Hashable job specifications for the experiment orchestration layer.

Each spec is a frozen dataclass describing one self-contained unit of
work — an encode of one ``(sequence, fps, estimator, Qp)`` cell, one
bitstream decode, one Fig. 4 frame pair — plus ``run()``, the
module-level execution recipe :func:`repro.parallel.pool.run_jobs`
invokes in whatever process the job lands.  Specs are hashable and
carry only primitives/frozen configs, so they pickle cheaply across the
``spawn`` boundary and can key caches and dedup sets.

On the **pickling transport** workers re-derive their inputs from the
spec: sequence renders are memoized **per process**
(:func:`rendered_source`), so a worker that executes several cells of
the same clip pays the synthesis cost once, exactly like the serial
harness's shared cache.  All rendering takes explicit seeds from the
spec, which is what makes job outputs independent of placement and
execution order.

On the **shared-memory transport** the per-process memo is retired
from the worker side entirely: ``pack_shm`` rewrites each spec against
a parent-owned :class:`~repro.transport.FrameStore`, which renders each
distinct source exactly once and hands every spec the same handles —
workers attach the segments and never render (or memo) anything.  The
memo keeps serving the parent and the pickling path; both transports
produce byte-identical results because the render recipes are
deterministic in ``(name, frames, seed, geometry)``.

Heavy imports (codec, experiments) happen inside ``run`` bodies: the
experiment modules import this package to build job lists, so importing
them here at module level would cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.experiments.config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.rd_curves import SweepCell
    from repro.transport import FrameHandle, FrameStore, SharedSequence
    from repro.video.frame import FrameGeometry
    from repro.video.sequence import Sequence


class JobSpec:
    """Minimal job interface: ``run`` does the work, ``describe`` is the
    one-line progress label.  Subclasses are frozen dataclasses.

    ``pack_shm`` is the zero-copy seam: handed a
    :class:`~repro.transport.FrameStore` it returns a spec whose bulk
    payloads live in shared memory
    (:class:`~repro.transport.FrameHandle`\\ s instead of the bytes).
    Specs that carry one-off blobs use :meth:`FrameStore.place`
    directly; the experiment specs (:class:`EncodeJob`,
    :class:`SweepJob`, :class:`Fig4PairJob`) go through the store's
    memoized render surface, so every cell of a sweep shares one placed
    copy of its source.  The default is the identity — a spec with no
    bulk payload behaves identically under both transports.
    """

    def run(self, rng: np.random.Generator | None = None):
        raise NotImplementedError

    def describe(self) -> str:
        return repr(self)

    def pack_shm(self, store: "FrameStore") -> "JobSpec":
        return self


#: Per-process memo of 30 fps source renders keyed by
#: ``(name, frames, seed, geometry)``.  Bounded by the experiment's
#: sequence roster (four clips in the paper's setup), so no eviction.
#: Pickle-path only in workers: under shared-memory transport specs
#: arrive pre-packed with handles and never consult this memo.
_RENDER_CACHE: dict = {}


def rendered_source(name: str, config: ExperimentConfig) -> "Sequence":
    """The 30 fps source render for ``name`` under ``config``, memoized
    in this process.

    Callers: the parent (directly and through
    :meth:`repro.transport.FrameStore.source_frames`) and
    pickle-transport workers re-deriving an :class:`EncodeJob`'s
    source.  Shm-transport workers read handles instead and never reach
    this function."""
    key = (name, config.frames, config.seed, config.geometry)
    source = _RENDER_CACHE.get(key)
    if source is None:
        from repro.video.synthesis.sequences import make_sequence

        source = make_sequence(
            name, frames=config.frames, seed=config.seed, geometry=config.geometry
        )
        _RENDER_CACHE[key] = source
    return source


@contextmanager
def borrowed_renders(sources: "Mapping[str, Sequence]", config: ExperimentConfig):
    """Lend caller-held renders to the per-process memo for one call
    (the benchmark suites share one session-scoped cache this way).
    Only reaches the calling process — workers re-render on first use.

    Frame count and geometry are validated up front; the synthesis seed
    is not observable on a rendered :class:`Sequence`, so borrowed
    entries are *evicted on exit* — a render that lies about its seed
    can only affect the sweep it was handed to (the seed serial loop's
    blast radius), never later sweeps served by the process-global
    memo.  Entries the memo already holds are left in place.
    """
    for name, source in sources.items():
        if len(source) != config.frames or source.geometry != config.geometry:
            raise ValueError(
                f"cached render {name!r} is {len(source)} frames of {source.geometry}, "
                f"config wants {config.frames} frames of {config.geometry}"
            )
    borrowed: list[tuple] = []
    for name, source in sources.items():
        key = (name, config.frames, config.seed, config.geometry)
        if key not in _RENDER_CACHE:
            _RENDER_CACHE[key] = source
            borrowed.append(key)
    try:
        yield
    finally:
        for key in borrowed:
            _RENDER_CACHE.pop(key, None)


def clear_render_cache() -> None:
    """Drop this process's render memo (hermetic benchmarking/tests)."""
    _RENDER_CACHE.clear()


@dataclass(frozen=True)
class EncodeJob(JobSpec):
    """One RD-sweep cell: encode one clip variant, summarize the run.

    The 30 fps source travels one of two ways: absent ``source`` (the
    pickling path) the worker re-renders it from ``(sequence, config)``
    through the per-process memo; with ``source`` set (:meth:`pack_shm`
    against a :class:`~repro.transport.FrameStore`) the pixels stay in
    shared memory and the spec carries only handles — every cell of the
    same clip shares one placed render.  Both paths feed the encoder
    the same frames, so the resulting :class:`SweepCell` is identical.
    """

    sequence: str
    fps: int
    estimator: str
    qp: int
    config: ExperimentConfig
    #: Shared-memory twin of the rendered source (``None`` ⇒ render in
    #: the worker).
    source: "SharedSequence | None" = None

    def describe(self) -> str:
        return f"{self.sequence}@{self.fps}fps {self.estimator} qp={self.qp}"

    def pack_shm(self, store: "FrameStore") -> "EncodeJob":
        if self.source is not None:
            return self
        return replace(self, source=store.source_frames(self.sequence, self.config))

    def run(self, rng: np.random.Generator | None = None) -> "SweepCell":
        from repro.codec.encoder import Encoder
        from repro.experiments.rd_curves import SweepCell, build_estimator

        if self.source is not None:
            from repro.transport import materialize

            source = materialize(self.source, unlink=False)
        else:
            source = rendered_source(self.sequence, self.config)
        clip = source.subsample(self.config.subsample_factor(self.fps))
        encoder = Encoder(
            estimator=build_estimator(self.estimator, self.config),
            qp=self.qp,
            keep_reconstruction=False,
        )
        encode = encoder.encode(clip)
        stats = encode.search_stats
        return SweepCell(
            sequence=self.sequence,
            fps=self.fps,
            estimator=self.estimator,
            qp=self.qp,
            rate_kbps=encode.rate_kbps,
            psnr_y=encode.mean_psnr_y,
            avg_positions=stats.avg_positions_per_block,
            full_search_fraction=stats.full_search_fraction,
            skipped_mbs=sum(f.skipped_mbs for f in encode.frames),
            mv_bits=sum(f.mv_bits for f in encode.frames),
            coefficient_bits=sum(f.coefficient_bits for f in encode.frames),
        )


@dataclass(frozen=True)
class SweepJob(JobSpec):
    """A whole RD sweep as one spec; :meth:`expand` yields the per-cell
    :class:`EncodeJob` list in the canonical (sequence, fps, estimator,
    Qp) order every consumer merges by.  Running the spec itself
    executes its cells serially — the coarse-grained unit for remote or
    chunked dispatch.

    :meth:`pack_shm` packs the *expanded* cells, so the sweep's sources
    ride as handles: the store memoizes per distinct render, meaning a
    four-clip sweep places four source copies no matter how many cells
    reference them."""

    config: ExperimentConfig
    estimators: tuple[str, ...]
    #: Shared-memory twin of :meth:`expand`'s cell list (``None`` ⇒
    #: expand and render in the worker).
    cells: tuple[EncodeJob, ...] | None = None

    def expand(self) -> tuple[EncodeJob, ...]:
        if self.cells is not None:
            return self.cells
        return tuple(
            EncodeJob(sequence=name, fps=fps, estimator=estimator, qp=qp, config=self.config)
            for name in self.config.sequences
            for fps in self.config.fps_list
            for estimator in self.estimators
            for qp in self.config.qps
        )

    def describe(self) -> str:
        return (
            f"sweep {'/'.join(self.config.sequences)} x {'/'.join(self.estimators)} "
            f"x {len(self.config.qps)} qps"
        )

    def pack_shm(self, store: "FrameStore") -> "SweepJob":
        if self.cells is not None:
            return self
        return replace(self, cells=tuple(cell.pack_shm(store) for cell in self.expand()))

    def run(self, rng: np.random.Generator | None = None) -> "tuple[SweepCell, ...]":
        return tuple(job.run(rng=rng) for job in self.expand())


@dataclass(frozen=True)
class DecodeJob(JobSpec):
    """Decode one emitted bitstream through a chosen reconstruction
    path; returns the decoded frame list.

    The bitstream travels either by value (``bitstream``, the pickling
    path) or by reference (``bitstream_handle``, a shared-memory handle
    a worker attaches on first use — see :meth:`pack_shm`); exactly one
    of the two is set.  Both decode bit-identically.
    """

    bitstream: bytes | None
    use_engine: bool = True
    bitstream_handle: "FrameHandle | None" = None

    def describe(self) -> str:
        size = len(self.bitstream) if self.bitstream is not None else self.bitstream_handle.nbytes
        path = "batched" if self.use_engine else "per-block"
        return f"decode {size}B ({path})"

    def pack_shm(self, store: "FrameStore") -> "DecodeJob":
        if self.bitstream is None:
            return self
        return replace(self, bitstream=None, bitstream_handle=store.place(self.bitstream))

    def run(self, rng: np.random.Generator | None = None):
        from repro.codec.decoder import decode_bitstream

        data = self.bitstream
        if data is None:
            from repro.transport import read_array

            data = read_array(self.bitstream_handle).tobytes()
        return decode_bitstream(data, use_engine=self.use_engine)


@dataclass(frozen=True)
class ParseFrameJob(JobSpec):
    """Parse one indexed frame's symbols into a
    :class:`~repro.codec.decoder.ParsedPicture`.

    ``payload`` is one :class:`~repro.codec.decoder.FrameIndex` byte
    range of a version-2 stream (picture header through padding) —
    symbol parsing carries no cross-frame state, so a stream's parse
    jobs run concurrently while the (already batched) reconstruction
    pass stays sequential.  See ``decode_bitstream(..., jobs=N)``.

    The parse must consume the payload exactly (padding aside): the
    byte range came from a length field the index *trusted*, so the
    same ``check_frame_length`` validation the sequential decoder
    applies runs here too — a corrupt length field fails in every
    mode.

    Like :class:`DecodeJob`, the payload travels by value or as a
    shared-memory handle (:meth:`pack_shm`); the parsed symbols are
    identical either way.
    """

    payload: bytes | None
    payload_handle: "FrameHandle | None" = None

    def describe(self) -> str:
        size = len(self.payload) if self.payload is not None else self.payload_handle.nbytes
        return f"parse {size}B frame"

    def pack_shm(self, store: "FrameStore") -> "ParseFrameJob":
        if self.payload is None:
            return self
        return replace(self, payload=None, payload_handle=store.place(self.payload))

    def run(self, rng: np.random.Generator | None = None):
        from repro.codec.bitstream import BitReader
        from repro.codec.decoder import check_frame_length, parse_picture

        payload = self.payload
        if payload is None:
            from repro.transport import read_array

            payload = read_array(self.payload_handle).tobytes()
        reader = BitReader(payload)
        parsed = parse_picture(reader)
        check_frame_length(reader, len(payload))
        return parsed


@dataclass(frozen=True)
class GopEncodeJob(JobSpec):
    """Encode one GOP (an I-frame and its dependent P-frames) into a
    self-contained version-2 byte run.

    An I-frame resets the reference list *and* the predictor-seeding
    motion field, so a GOP shares no state with its predecessors —
    which is what lets :func:`repro.parallel.gop.encode_sequence_parallel`
    encode GOPs in worker processes and splice the returned byte runs
    into a stream byte-identical to the serial encoder's.  ``start`` is
    the GOP's position in the full sequence; the in-job positions
    ``start..start+len-1`` reproduce the serial encoder's frame-type
    decisions because a GOP never outlives ``i_period`` frames.

    Frames travel as raw plane bytes (hashable, pickle-cheap), or — when
    the pool runs under shared-memory transport — as
    :class:`~repro.transport.FrameHandle` references (:meth:`pack_shm`),
    so a GOP's source planes cross the spawn boundary as ~200-byte
    handles instead of megabytes of pickled bytes.  Workers rebuild the
    frames with the spec's geometry; the encoded bytes are identical
    under either transport.  Exactly one of ``planes``/``plane_handles``
    is set.
    """

    width: int
    height: int
    start: int
    #: One ``(y, cb, cr, frame_index)`` tuple of plane bytes per frame.
    planes: tuple[tuple[bytes, bytes, bytes, int], ...] | None
    estimator: str
    qp: int
    i_period: int
    n_ref_frames: int = 1
    bitstream_version: int = 2
    use_engine: bool = True
    estimator_kwargs: tuple = ()
    #: Shared-memory twin of ``planes``: ``(y, cb, cr, frame_index)``
    #: tuples of handles, produced by :meth:`pack_shm`.
    plane_handles: "tuple[tuple[FrameHandle, FrameHandle, FrameHandle, int], ...] | None" = None

    def describe(self) -> str:
        frames = self.planes if self.planes is not None else self.plane_handles
        return f"gop @{self.start} ({len(frames)} frames)"

    def pack_shm(self, store: "FrameStore") -> "GopEncodeJob":
        if self.planes is None:
            return self
        place = store.place
        return replace(
            self,
            planes=None,
            plane_handles=tuple(
                (place(y), place(cb), place(cr), index) for y, cb, cr, index in self.planes
            ),
        )

    def _frames(self):
        from repro.video.frame import Frame

        w, h = self.width, self.height
        cw, ch = w // 2, h // 2
        if self.planes is not None:
            loaded = (
                (np.frombuffer(y, dtype=np.uint8), np.frombuffer(cb, dtype=np.uint8),
                 np.frombuffer(cr, dtype=np.uint8), index)
                for y, cb, cr, index in self.planes
            )
        else:
            from repro.transport import read_array

            loaded = (
                (read_array(y), read_array(cb), read_array(cr), index)
                for y, cb, cr, index in self.plane_handles
            )
        for y, cb, cr, index in loaded:
            yield Frame(
                y.reshape(h, w),
                cb.reshape(ch, cw),
                cr.reshape(ch, cw),
                index=index,
            )

    def run(self, rng: np.random.Generator | None = None):
        from repro.codec.bitstream import BitWriter
        from repro.codec.encoder import Encoder

        encoder = Encoder(
            estimator=self.estimator,
            qp=self.qp,
            estimator_kwargs=dict(self.estimator_kwargs),
            keep_reconstruction=False,
            use_engine=self.use_engine,
            bitstream_version=self.bitstream_version,
            i_period=self.i_period,
            n_ref_frames=self.n_ref_frames,
        )
        writer = BitWriter()
        records = []
        references: list = []
        prev_field = None
        for offset, frame in enumerate(self._frames()):
            record, recon, prev_field = encoder.encode_frame_into(
                writer, frame, self.start + offset, references, prev_field
            )
            references = encoder.advance_references(references, record, recon)
            records.append(record)
        return writer.getvalue(), tuple(records)


@dataclass(frozen=True)
class Fig4PairJob(JobSpec):
    """One frame pair of the Fig. 3 rig: run batched FSBM over the
    pair, classify every block.

    Pickling path: the worker renders the whole rig (memoized per
    process via ``rig_frames_cached``) and slices out its pair.
    Shared-memory path (:meth:`pack_shm`): the parent's
    :class:`~repro.transport.FrameStore` places the rig stack once and
    the spec carries just the two :class:`~repro.transport.FrameHandle`
    leaves it observes — the worker never renders the rig.  Both paths
    classify identical pixels, so observations match bit-for-bit.
    """

    pair_index: int
    motions: tuple[tuple[int, int], ...]
    geometry: "FrameGeometry"
    p: int = 15
    block_size: int = 16
    seed: int = 0
    #: Shared-memory twin of ``(frames[i], frames[i+1])`` (``None`` ⇒
    #: render the rig in the worker).
    pair: "tuple[FrameHandle, FrameHandle] | None" = None

    def describe(self) -> str:
        dx, dy = self.motions[self.pair_index]
        return f"fig4 pair {self.pair_index} (commanded {dx:+d},{dy:+d})"

    def pack_shm(self, store: "FrameStore") -> "Fig4PairJob":
        if self.pair is not None:
            return self
        handles = store.rig_frames(self.motions, self.geometry, self.p, self.seed)
        return replace(self, pair=(handles[self.pair_index], handles[self.pair_index + 1]))

    def run(self, rng: np.random.Generator | None = None):
        from repro.experiments.fig4_characterization import observe_frames, rig_frames_cached

        if self.pair is not None:
            from repro.transport import read_array

            reference, current = (read_array(h) for h in self.pair)
        else:
            frames = rig_frames_cached(self.motions, self.geometry, self.p, self.seed)
            reference, current = frames[self.pair_index], frames[self.pair_index + 1]
        return observe_frames(
            reference,
            current,
            self.pair_index,
            self.motions[self.pair_index],
            block_size=self.block_size,
            p=self.p,
        )


__all__ = [
    "DecodeJob",
    "EncodeJob",
    "Fig4PairJob",
    "GopEncodeJob",
    "JobSpec",
    "ParseFrameJob",
    "SweepJob",
    "borrowed_renders",
    "clear_render_cache",
    "rendered_source",
]
