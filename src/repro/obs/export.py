"""Exporters: Chrome trace-event JSON and metrics JSON dumps.

``chrome://tracing`` / Perfetto load the trace file directly (``Open
trace file`` → pick the ``--trace`` output); each process the run
touched renders as its own lane group, workers included, with spans
nested by containment.  The metrics dump is the registry's
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` — a flat
``{name: value}`` JSON object.

:func:`validate_trace` is the well-formedness check CI's smoke runs on
a fresh ``--trace`` file: top-level object with a ``traceEvents`` list
whose entries carry the minimum trace-event fields.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "chrome_trace",
    "load_trace",
    "validate_trace",
    "write_metrics",
    "write_trace",
]

#: Fields every duration/instant event must carry to load cleanly.
_REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")


def chrome_trace(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Wrap raw events as a Chrome trace-event JSON object.

    Adds one ``process_name`` metadata event per distinct pid so the
    viewer labels the exporting process ``repro`` and every other pid
    (the spawned workers) ``repro worker`` — the lane names the
    cross-process tests key on are the pids themselves, which the
    events carry untouched.
    """
    event_list = list(events)
    main_pid = os.getpid()
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro" if pid == main_pid else f"repro worker {pid}"},
        }
        for pid in sorted({e["pid"] for e in event_list if "pid" in e})
    ]
    return {"traceEvents": metadata + event_list, "displayTimeUnit": "ms"}


def write_trace(path: str | Path, events: Iterable[dict[str, Any]]) -> Path:
    """Serialize ``events`` as a Chrome-trace JSON file."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events), indent=1) + "\n")
    return path


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read a trace file back, validating it on the way in."""
    try:
        data = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from None
    validate_trace(data)
    return data


def validate_trace(data: Any) -> None:
    """Raise :class:`ValueError` unless ``data`` is a well-formed
    trace-event JSON object (the CI smoke's gate)."""
    if not isinstance(data, dict):
        raise ValueError("trace must be a JSON object with a traceEvents list")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace is missing the traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"traceEvents[{i}] has no phase ('ph') field")
        if ph == "M":  # metadata events carry no timestamp
            continue
        missing = [f for f in _REQUIRED_EVENT_FIELDS if f not in event]
        if missing:
            raise ValueError(
                f"traceEvents[{i}] ({event.get('name', '?')!r}) is missing "
                f"required fields: {', '.join(missing)}"
            )
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError(
                f"traceEvents[{i}] ({event.get('name', '?')!r}) is a complete "
                "event without a numeric 'dur'"
            )


def write_metrics(path: str | Path, registry: MetricsRegistry) -> Path:
    """Dump a registry snapshot as JSON."""
    path = Path(path)
    path.write_text(registry.to_json() + "\n")
    return path
