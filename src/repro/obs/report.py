"""Per-frame breakdown reports built from trace events.

``runner report TRACE.json`` renders the table: one row per
``encode.frame`` / ``decode.frame`` span with its sub-phases (motion
estimation, transform+quant, entropy; parse, reconstruct) resolved by
pid/tid + timestamp containment — the same nesting a trace viewer
shows, flattened to text.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["frame_rows", "render_report"]

#: Parent span name → (column label, child span names in column order).
_FRAME_KINDS = {
    "encode.frame": ("encode", ("encode.me", "encode.transform_quant", "encode.entropy")),
    "decode.frame": ("decode", ("decode.parse", "decode.reconstruct")),
}


def _contains(parent: dict[str, Any], child: dict[str, Any]) -> bool:
    if parent["pid"] != child["pid"] or parent["tid"] != child["tid"]:
        return False
    p_start, c_start = parent["ts"], child["ts"]
    return p_start <= c_start and c_start + child.get("dur", 0.0) <= p_start + parent.get(
        "dur", 0.0
    ) + 1e-6


def frame_rows(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Resolve per-frame rows from a flat event list.

    Each row: ``kind`` ("encode"/"decode"), ``pid``, ``frame`` (the
    span's frame attr, if set), ``total_ms``, ``bits`` (if recorded)
    and one ``<child>_ms`` column per known sub-phase nested inside the
    frame span.  Rows sort by start time so the table reads as a
    timeline.
    """
    events = [e for e in events if e.get("ph") == "X"]
    frames = [e for e in events if e["name"] in _FRAME_KINDS]
    rows = []
    for frame in sorted(frames, key=lambda e: e["ts"]):
        kind, child_names = _FRAME_KINDS[frame["name"]]
        args = frame.get("args", {})
        row: dict[str, Any] = {
            "kind": kind,
            "pid": frame["pid"],
            "frame": args.get("frame"),
            "type": args.get("type"),
            "bits": args.get("bits"),
            "total_ms": frame.get("dur", 0.0) / 1000.0,
        }
        for name in child_names:
            total = sum(
                e.get("dur", 0.0)
                for e in events
                if e["name"] == name and _contains(frame, e)
            )
            row[name.split(".", 1)[1] + "_ms"] = total / 1000.0
        rows.append(row)
    return rows


def _fmt(value: Any, width: int) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, float):
        text = f"{value:.2f}"
    else:
        text = str(value)
    return text.rjust(width)


def render_report(events: Iterable[dict[str, Any]]) -> str:
    """Render the per-frame breakdown as an aligned text table."""
    rows = frame_rows(events)
    if not rows:
        return "no frame spans in trace (run with --trace on an encode/decode command)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        key: max(len(key), max(len(_fmt(row.get(key), 0).strip()) for row in rows))
        for key in columns
    }
    header = "  ".join(key.rjust(widths[key]) for key in columns)
    lines = [header, "  ".join("-" * widths[key] for key in columns)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(key), widths[key]) for key in columns))
    totals: dict[str, float] = {}
    for row in rows:
        for key, value in row.items():
            if key.endswith("_ms") and isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0.0) + value
    summary = ", ".join(f"{key[:-3]} {value:.2f}ms" for key, value in totals.items())
    lines.append(f"{len(rows)} frame spans · totals: {summary}")
    return "\n".join(lines)
