"""Structured tracing: spans, phase accumulators, Chrome-trace events.

The tracer answers "where did this frame's milliseconds go?" across
every layer of the stack — encoder sub-phases, decode parse vs
reconstruct, worker processes, the streaming pipeline's backpressure
stalls — by recording **Chrome trace events**: plain dicts in the
`trace-event format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that ``chrome://tracing`` and Perfetto load directly (see
:mod:`repro.obs.export`).

Design constraints, in order:

1. **Zero interference** — tracing never touches codec data, so traced
   and untraced runs emit byte-identical bitstreams (golden-pinned by
   ``tests/test_obs.py``).
2. **Near-zero disabled cost** — the hot seams call the *module-level*
   :func:`span` / :func:`phases` / :func:`instant` functions, which
   check one attribute (``TRACER.enabled``) and return a shared
   singleton no-op when tracing is off.  No allocation, no timestamp,
   no branch inside the codec loops; the obs bench
   (``BENCH_obs.json``) pins the disabled-mode overhead under 2%.
3. **Mergeable across processes** — events are picklable dicts stamped
   with the recording process's pid and thread id, so worker-side
   events ship back through :func:`repro.parallel.run_jobs` (and the
   process-mode :class:`~repro.streaming.pipeline.ParseStage`) and
   :meth:`Tracer.adopt` splices them into the parent's timeline.
   ``time.perf_counter_ns`` reads ``CLOCK_MONOTONIC`` on Linux, which
   is system-wide — parent and worker timestamps share one clock.

Three recording shapes:

* ``with span("encode.frame", frame=3):`` — lexical phases.  The span
  object accepts late attributes (:meth:`Span.set`) and exposes
  :attr:`Span.duration_s` after exit, which is what lets ``runner all``
  print its wall-clock summary straight off the spans.
* ``token = begin("name"); ...; end(token)`` — non-lexical phases whose
  start and finish live in different scopes (e.g. a frame entering and
  leaving a queue).
* ``ph = phases(); with ph("transform"): ...; ph.emit()`` — *aggregated*
  sub-phases for per-macroblock loops: each ``with`` adds to a per-name
  duration bucket, and ``emit`` lays the buckets out as consecutive
  events starting at the first measurement.  The per-name **sums** are
  exact; the layout is synthetic (the real intervals interleave per
  macroblock, which no trace viewer renders legibly).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "begin",
    "enabled",
    "end",
    "instant",
    "phases",
    "span",
]


class _NoopSpan:
    """Shared do-nothing span: what the module-level helpers return
    while tracing is disabled.  One singleton, never allocated per
    call."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    @property
    def duration_s(self) -> float:
        return 0.0


_NOOP_SPAN = _NoopSpan()


class _NoopPhases:
    """Shared do-nothing phase accumulator (disabled-mode twin of
    :class:`PhaseSet`)."""

    __slots__ = ()

    def __call__(self, name: str) -> _NoopSpan:
        return _NOOP_SPAN

    def emit(self, **attrs) -> None:
        pass


_NOOP_PHASES = _NoopPhases()


class Span:
    """One live interval; records a complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "args", "_start", "_duration_ns")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0
        self._duration_ns = 0

    def set(self, **attrs) -> None:
        """Attach attributes decided after the span opened (frame type,
        emitted bits, ...)."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        stop = time.perf_counter_ns()
        self._duration_ns = stop - self._start
        self._tracer._complete(self.name, self._start, stop, self.args)
        return False

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (valid after exit) — the single timing
        source ``runner all``'s summary reads."""
        return self._duration_ns / 1e9


class PhaseSet:
    """Aggregating sub-phase timer for per-macroblock loops.

    ``with ph("transform"):`` adds the block's elapsed time to the
    ``"transform"`` bucket; :meth:`emit` turns the buckets into
    consecutive complete events anchored at the first measurement, so
    the per-phase totals appear nested under the enclosing frame span.
    """

    __slots__ = ("_tracer", "_totals", "_anchor")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._totals: dict[str, int] = {}
        self._anchor: int | None = None

    def __call__(self, name: str) -> "_Phase":
        return _Phase(self, name)

    def emit(self, **attrs) -> None:
        """Emit one event per bucket, laid out back to back from the
        first measurement's timestamp.  No-op when nothing was timed."""
        if self._anchor is None:
            return
        cursor = self._anchor
        for name, total in self._totals.items():
            self._tracer._complete(name, cursor, cursor + total, dict(attrs))
            cursor += total
        self._totals.clear()
        self._anchor = None


class _Phase:
    __slots__ = ("_set", "_name", "_start")

    def __init__(self, phase_set: PhaseSet, name: str) -> None:
        self._set = phase_set
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter_ns()
        if self._set._anchor is None:
            self._set._anchor = self._start
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter_ns() - self._start
        totals = self._set._totals
        totals[self._name] = totals.get(self._name, 0) + elapsed
        return False


class Tracer:
    """Event collector: a flat list of Chrome trace-event dicts.

    ``enabled`` is the one attribute every instrumented seam checks;
    everything else only runs while tracing is on.  Event appends are
    GIL-atomic, so thread-mode pipeline workers record into the same
    tracer without locking; cross-*process* events arrive via
    :meth:`adopt`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._events: list[dict[str, Any]] = []

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attrs) -> "Span | _NoopSpan":
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def begin(self, name: str, **attrs):
        """Open a non-lexical phase; returns an opaque token for
        :meth:`end` (``None`` while disabled — :meth:`end` accepts it)."""
        if not self.enabled:
            return None
        return (name, time.perf_counter_ns(), attrs)

    def end(self, token) -> None:
        """Close a phase opened by :meth:`begin`."""
        if token is None:
            return
        name, start, attrs = token
        self._complete(name, start, time.perf_counter_ns(), attrs)

    def instant(self, name: str, **attrs) -> None:
        """A zero-duration marker (backend selection, arena placement)."""
        if not self.enabled:
            return
        self._events.append(
            {
                "name": name,
                "ph": "i",
                "ts": time.perf_counter_ns() / 1000.0,
                "pid": os.getpid(),
                "tid": threading.get_native_id(),
                "s": "t",
                "args": attrs,
            }
        )

    def phases(self) -> "PhaseSet | _NoopPhases":
        if not self.enabled:
            return _NOOP_PHASES
        return PhaseSet(self)

    def _complete(self, name: str, start_ns: int, stop_ns: int, args: dict) -> None:
        self._events.append(
            {
                "name": name,
                "ph": "X",
                "ts": start_ns / 1000.0,
                "dur": (stop_ns - start_ns) / 1000.0,
                "pid": os.getpid(),
                "tid": threading.get_native_id(),
                "args": args,
            }
        )

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; already-collected events stay drainable."""
        self.enabled = False

    def adopt(self, events) -> None:
        """Splice foreign events (a worker's drained list) into this
        timeline.  They keep their own pid/tid stamps — that is what
        makes the merged trace show per-process lanes."""
        self._events.extend(events)

    def drain(self) -> list[dict[str, Any]]:
        """Return all collected events and clear the buffer."""
        events, self._events = self._events, []
        return events

    @property
    def events(self) -> list[dict[str, Any]]:
        """The live event list (not a copy) — prefer :meth:`drain`."""
        return self._events


#: The process-global tracer every seam records into.  Workers get
#: their own (fresh process ⇒ fresh module state); the pool merges.
TRACER = Tracer()


def enabled() -> bool:
    """Whether the global tracer is recording."""
    return TRACER.enabled


def span(name: str, **attrs):
    """Module-level span against :data:`TRACER` — the one-attribute-load
    fast path hot seams call."""
    tracer = TRACER
    if not tracer.enabled:
        return _NOOP_SPAN
    return Span(tracer, name, attrs)


def begin(name: str, **attrs):
    return TRACER.begin(name, **attrs)


def end(token) -> None:
    TRACER.end(token)


def instant(name: str, **attrs) -> None:
    TRACER.instant(name, **attrs)


def phases():
    tracer = TRACER
    if not tracer.enabled:
        return _NOOP_PHASES
    return PhaseSet(tracer)
