"""Whole-stack observability: tracing, metrics, exporters, reports.

* :mod:`repro.obs.trace` — spans / phase accumulators recording Chrome
  trace events; module-level no-ops while disabled.
* :mod:`repro.obs.metrics` — named counters, gauges, histograms.
* :mod:`repro.obs.export` — ``--trace`` / ``--metrics`` file writers
  plus the trace validator CI smokes against.
* :mod:`repro.obs.report` — the ``runner report`` per-frame table.
"""

from repro.obs import export, metrics, report, trace
from repro.obs.export import (
    chrome_trace,
    load_trace,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.report import render_report
from repro.obs.trace import TRACER, Tracer

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "Tracer",
    "chrome_trace",
    "export",
    "load_trace",
    "metrics",
    "render_report",
    "report",
    "trace",
    "validate_trace",
    "write_metrics",
    "write_trace",
]
