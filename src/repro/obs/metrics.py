"""Metrics registry: named counters, gauges and histograms.

The always-on half of the observability layer (:mod:`repro.obs`):
where the tracer answers *when*, the registry answers *how much* —
frames and bytes in and out, bits per frame split by syntax element,
SAD evaluations, cache hits, arena bytes in flight, parse-queue depth
and backpressure stalls.  Instruments are plain Python attribute adds
at call sites that fire at most a few times per frame, so the registry
stays on unconditionally; truly per-symbol work is never instrumented
(that is the tracer's <2% disabled-overhead budget, and the registry
holds itself to the same bar by construction).

Instruments are **get-or-create by name** and identity-stable:
:meth:`MetricsRegistry.reset` zeroes values in place rather than
replacing objects, so call sites may cache an instrument across
resets.  Each process has its own :data:`REGISTRY` (a spawned worker
counts into its own); per-run deltas for reports should bracket the
run with :meth:`~MetricsRegistry.snapshot` calls or a fresh private
registry.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]


class Counter:
    """Monotonic count (frames encoded, bits emitted, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def advance_to(self, value: int | float) -> None:
        """Raise the count to ``value`` if it is ahead — how a session
        mirrors a lower layer's own monotonic counter into the
        registry without double counting."""
        if value > self.value:
            self.value = value

    def reset(self) -> None:
        self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """Instant level (arena bytes in flight, queue depth)."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value: int | float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: int | float) -> None:
        self.set(self.value + delta)

    def reset(self) -> None:
        self.value = 0
        self.peak = 0

    def snapshot(self):
        return {"value": self.value, "peak": self.peak}


class Histogram:
    """Per-event value series (bits per frame, span durations).

    Keeps the raw observations — the scales here are frames, not
    packets, and the per-frame history *is* the product (it feeds
    ``SessionStats.bits_out`` and the rate-control ledgers to come).
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: int | float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return self.total / len(self.values)

    def reset(self) -> None:
        self.values.clear()

    def snapshot(self):
        if not self.values:
            return {"count": 0, "total": 0.0, "values": []}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "values": list(self.values),
        }


class MetricsRegistry:
    """Named instruments, one namespace per registry."""

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = kind(name)
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"requested as {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument in place (identities survive, so
        cached references keep counting)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready ``{name: value}`` mapping, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


#: The process-global registry the instrumented seams count into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)
