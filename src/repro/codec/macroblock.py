"""Macroblock-level coding helpers shared by encoder and decoder.

A macroblock is 16x16 luma + two 8x8 chroma blocks (4:2:0).  This
module owns the pieces both sides must agree on bit-for-bit:

* luma block splitting order (TL, TR, BL, BR — H.263's block order),
* chroma motion-vector derivation from the luma vector,
* TCOEF event serialization (table codes + sign, or escape payload),
* quantize → events → dequantize round trips for inter and intra
  blocks.
"""

from __future__ import annotations

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.kernels import get_backend
from repro.codec.quantizer import (
    dequantize,
    dequantize_intra_dc,
    quantize_inter,
    quantize_intra_ac,
    quantize_intra_dc,
)
from repro.codec.vlc_tables import (
    ESCAPE,
    ESCAPE_PAYLOAD_BITS,
    TCOEF_TABLE,
    tcoef_symbol,
)
from repro.codec.zigzag import (
    ZIGZAG_INDEX,
    CoefficientEvent,
    block_to_events,
    events_to_block,
)
from repro.me.engine.reference_plane import ReferencePlane
from repro.me.search_window import clamped_window, half_pel_window
from repro.me.subpel import half_pel_block
from repro.me.types import MotionVector

#: Luma 8x8 sub-block offsets within a macroblock, H.263 order.
LUMA_BLOCK_OFFSETS: tuple[tuple[int, int], ...] = ((0, 0), (0, 8), (8, 0), (8, 8))


def split_luma_blocks(mb: np.ndarray) -> np.ndarray:
    """(16,16) macroblock → (4, 8, 8) stack in H.263 block order."""
    if mb.shape != (16, 16):
        raise ValueError(f"macroblock must be 16x16, got {mb.shape}")
    return np.stack([mb[r : r + 8, c : c + 8] for r, c in LUMA_BLOCK_OFFSETS])


def join_luma_blocks(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_luma_blocks`."""
    if blocks.shape != (4, 8, 8):
        raise ValueError(f"need (4, 8, 8) stack, got {blocks.shape}")
    mb = np.empty((16, 16), dtype=blocks.dtype)
    for block, (r, c) in zip(blocks, LUMA_BLOCK_OFFSETS):
        mb[r : r + 8, c : c + 8] = block
    return mb


def chroma_mv(mv: MotionVector) -> MotionVector:
    """Chroma vector in chroma half-pel units: half the luma vector,
    odd components rounded away from zero (so ±1 luma half-pel maps to
    ±1 chroma half-pel, as in H.263's division table)."""

    def halve(h: int) -> int:
        if h % 2 == 0:
            return h // 2
        return (h + 1) // 2 if h > 0 else (h - 1) // 2

    return MotionVector(halve(mv.hx), halve(mv.hy))


def predict_chroma_block(
    ref_plane: np.ndarray | ReferencePlane,
    block_y: int,
    block_x: int,
    luma_mv: MotionVector,
    p: int,
) -> np.ndarray:
    """Motion-compensated 8x8 chroma prediction.

    The derived chroma vector is clamped into the block's legal chroma
    window (the derivation's away-from-zero rounding can exceed the
    luma-implied support by one half-pel at the frame border).  Both
    encoder and decoder call this, so clamping stays in sync.

    ``ref_plane`` may be a raw chroma array (per-candidate
    interpolation, the seed path) or a wrapped
    :class:`~repro.me.engine.reference_plane.ReferencePlane` — e.g. one
    side of a :class:`~repro.me.engine.chroma_plane.ChromaReferencePlane`
    — which reads the same samples from its per-frame half-pel cache.
    """
    c_mv = chroma_mv(luma_mv)
    window = clamped_window(
        block_y, block_x, 8, 8, ref_plane.shape[0], ref_plane.shape[1], p
    )
    hwin = half_pel_window(window)
    hx = min(max(c_mv.hx, hwin.dx_min), hwin.dx_max)
    hy = min(max(c_mv.hy, hwin.dy_min), hwin.dy_max)
    if isinstance(ref_plane, ReferencePlane):
        return ref_plane.block(2 * block_y + hy, 2 * block_x + hx, 8, 8)
    return half_pel_block(ref_plane, 2 * block_y + hy, 2 * block_x + hx, 8, 8)


# -- TCOEF serialization -------------------------------------------------


def write_events(writer: BitWriter, events: list[CoefficientEvent]) -> int:
    """Emit a coded block's event list; returns bits written."""
    if not events:
        raise ValueError("a coded block must contain at least one event")
    before = writer.bit_count
    for event in events:
        symbol = tcoef_symbol(event)
        if symbol is ESCAPE:
            writer.write_code(TCOEF_TABLE.encode(ESCAPE))
            writer.write_bit(1 if event.last else 0)
            writer.write_bits(event.run, 6)
            writer.write_bits(event.level & 0xFF, 8)  # two's complement
        else:
            writer.write_code(TCOEF_TABLE.encode(symbol))
            writer.write_bit(1 if event.level < 0 else 0)
    return writer.bit_count - before


def read_events(reader: BitReader) -> list[CoefficientEvent]:
    """Parse events until (and including) the LAST-flagged one."""
    events: list[CoefficientEvent] = []
    while True:
        symbol = TCOEF_TABLE.decode(reader)
        if symbol is ESCAPE:
            last = bool(reader.read_bit())
            run = reader.read_bits(6)
            raw = reader.read_bits(8)
            level = raw - 256 if raw >= 128 else raw
            if level == 0:
                raise ValueError("escape-coded level of 0 is illegal")
        else:
            last_flag, run, magnitude = symbol
            sign = reader.read_bit()
            level = -magnitude if sign else magnitude
            last = bool(last_flag)
        events.append(CoefficientEvent(last=last, run=run, level=level))
        if last:
            return events


#: TCOEF LUT bound once for the hot block reader below.
_TCOEF_LUT = TCOEF_TABLE.lut
_TCOEF_LUT_BITS = TCOEF_TABLE.lut_first_bits

#: Zig-zag scan positions as a plain list (numpy scalar indexing is
#: several times slower in a per-event loop).
_ZIGZAG_FLAT: list[int] = ZIGZAG_INDEX.tolist()


def read_block_levels(reader, out_flat, skip_first: int = 0) -> None:
    """Decode one coded block's events straight into ``out_flat``.

    The fast-path equivalent of
    ``events_to_block(read_events(reader), skip_first)`` for word-level
    readers: TCOEF symbols come off the LUT via ``reader.read_vlc`` and
    the levels land at their inverse-zig-zag positions in ``out_flat``
    (a zeroed length-64 raster-order view of the block), with no
    intermediate :class:`CoefficientEvent` objects.  Structure errors
    raise exactly like the event-list path.

    When the active kernel backend offers a compiled block scan it runs
    first, from a cursor snapshot; a negative return means "replay in
    Python" (which re-zeroes ``out_flat`` — the compiled scan may have
    partially written it — and raises this path's exact errors).
    """
    scan = get_backend().scan_block_levels
    if scan is not None and type(reader) is BitReader and isinstance(out_flat, np.ndarray):
        data, bit_pos = reader.cursor()
        new_pos = scan(
            np.frombuffer(data, dtype=np.uint8), bit_pos, 8 * len(data), out_flat, skip_first
        )
        if new_pos >= 0:
            reader.advance_to(new_pos)
            return
        out_flat[:] = 0
    read_vlc = reader.read_vlc
    read_bit = reader.read_bit
    zigzag = _ZIGZAG_FLAT
    pos = skip_first
    overflow = -1
    while True:
        symbol = read_vlc(_TCOEF_LUT, _TCOEF_LUT_BITS)
        if symbol.__class__ is tuple:
            last, run, level = symbol
            if read_bit():
                level = -level
        else:  # ESCAPE
            last = read_bit()
            run = reader.read_bits(6)
            raw = reader.read_bits(8)
            level = raw - 256 if raw >= 128 else raw
            if level == 0:
                raise ValueError("escape-coded level of 0 is illegal")
        pos += run
        if overflow < 0:
            if pos < 64:
                out_flat[zigzag[pos]] = level
            else:
                # Overflowing events are a ValueError, but only once the
                # whole event list has been consumed — the reference
                # path reads every event first (read_events) and
                # validates second (events_to_block), so a stream that
                # truncates mid-list must stay an EOFError on both.
                overflow = pos
        pos += 1
        if last:
            if overflow >= 0:
                raise ValueError(
                    f"events overflow the block at scan position {overflow}"
                )
            return


def events_bits(events: list[CoefficientEvent]) -> int:
    """Exact coded length without writing (used by rate probes)."""
    total = 0
    for event in events:
        symbol = tcoef_symbol(event)
        if symbol is ESCAPE:
            total += TCOEF_TABLE.code_length(ESCAPE) + ESCAPE_PAYLOAD_BITS
        else:
            total += TCOEF_TABLE.code_length(symbol) + 1
    return total


# -- inter / intra block round trips -------------------------------------


def code_inter_block(dct_coefficients: np.ndarray, qp: int) -> tuple[list[CoefficientEvent], np.ndarray]:
    """Quantize residual DCT coefficients; return (events, reconstructed
    coefficients).  Empty events == uncoded block (CBP bit 0)."""
    levels = quantize_inter(dct_coefficients, qp)
    events = block_to_events(levels)
    return events, dequantize(levels, qp)


def decode_inter_block(events: list[CoefficientEvent], qp: int) -> np.ndarray:
    """Events → reconstructed residual DCT coefficients."""
    levels = events_to_block(events) if events else np.zeros((8, 8), dtype=np.int64)
    return dequantize(levels, qp)


def code_intra_block(
    dct_coefficients: np.ndarray, qp: int
) -> tuple[int, list[CoefficientEvent], np.ndarray]:
    """Quantize an intra block.

    Returns ``(dc_level, ac_events, reconstructed_coefficients)``; the
    DC level is coded separately on 8 bits.
    """
    dc_level = int(quantize_intra_dc(dct_coefficients[0, 0]))
    ac_levels = quantize_intra_ac(dct_coefficients, qp)
    ac_levels[0, 0] = 0
    events = block_to_events(ac_levels, skip_first=1)
    recon = dequantize(ac_levels, qp)
    recon[0, 0] = float(dequantize_intra_dc(dc_level))
    return dc_level, events, recon


def decode_intra_block(dc_level: int, events: list[CoefficientEvent], qp: int) -> np.ndarray:
    levels = (
        events_to_block(events, skip_first=1)
        if events
        else np.zeros((8, 8), dtype=np.int64)
    )
    recon = dequantize(levels, qp)
    recon[0, 0] = float(dequantize_intra_dc(dc_level))
    return recon
