"""Zig-zag scanning and (LAST, RUN, LEVEL) event conversion.

H.263 codes each 8x8 block's quantized coefficients as a sequence of
events ``(LAST, RUN, LEVEL)``: RUN zeros followed by a non-zero LEVEL,
with LAST = 1 on the final event of the block.  A coded block always
contains at least one event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

BLOCK = 8


def _build_zigzag(n: int) -> np.ndarray:
    """Classic zig-zag order as an array of flat indices."""
    order = sorted(
        ((r, c) for r in range(n) for c in range(n)),
        # Odd anti-diagonals run top-right → bottom-left (ascending row),
        # even ones the opposite (ascending column) — the JPEG/H.263 scan.
        key=lambda rc: (rc[0] + rc[1], rc[0] if (rc[0] + rc[1]) % 2 else rc[1]),
    )
    return np.array([r * n + c for r, c in order], dtype=np.int64)


#: Flat indices of the 8x8 zig-zag scan.
ZIGZAG_INDEX = _build_zigzag(BLOCK)

#: Inverse permutation: position in the scan for each flat index.
INVERSE_ZIGZAG_INDEX = np.argsort(ZIGZAG_INDEX)


@dataclass(frozen=True)
class CoefficientEvent:
    """One (LAST, RUN, LEVEL) event."""

    last: bool
    run: int
    level: int

    def __post_init__(self) -> None:
        if not 0 <= self.run <= 63:
            raise ValueError(f"run must be in 0..63, got {self.run}")
        if self.level == 0:
            raise ValueError("event level must be non-zero")


def scan(block: np.ndarray) -> np.ndarray:
    """Zig-zag a (8, 8) array into a length-64 vector."""
    b = np.asarray(block)
    if b.shape != (BLOCK, BLOCK):
        raise ValueError(f"block must be 8x8, got {b.shape}")
    return b.reshape(-1)[ZIGZAG_INDEX]


def unscan(vector: np.ndarray) -> np.ndarray:
    """Inverse of :func:`scan`."""
    v = np.asarray(vector)
    if v.shape != (BLOCK * BLOCK,):
        raise ValueError(f"vector must have 64 entries, got {v.shape}")
    return v[INVERSE_ZIGZAG_INDEX].reshape(BLOCK, BLOCK)


def block_to_events(levels: np.ndarray, skip_first: int = 0) -> list[CoefficientEvent]:
    """Convert a quantized 8x8 block to its event list.

    ``skip_first = 1`` omits the DC position (intra blocks code DC
    separately).  Returns an empty list for an all-zero (AC) block.
    """
    if skip_first not in (0, 1):
        raise ValueError(f"skip_first must be 0 or 1, got {skip_first}")
    scanned = scan(np.asarray(levels, dtype=np.int64))[skip_first:]
    nz = np.nonzero(scanned)[0]
    events: list[CoefficientEvent] = []
    prev = -1
    for idx in nz.tolist():
        events.append(CoefficientEvent(last=False, run=idx - prev - 1, level=int(scanned[idx])))
        prev = idx
    if events:
        last = events[-1]
        events[-1] = CoefficientEvent(last=True, run=last.run, level=last.level)
    return events


def events_to_block(events: list[CoefficientEvent], skip_first: int = 0) -> np.ndarray:
    """Rebuild the quantized 8x8 block from its event list.

    Validates the H.263 structure: LAST set exactly on the final event,
    and the coefficients must fit in the block.
    """
    if skip_first not in (0, 1):
        raise ValueError(f"skip_first must be 0 or 1, got {skip_first}")
    vector = np.zeros(BLOCK * BLOCK, dtype=np.int64)
    pos = skip_first
    for i, event in enumerate(events):
        is_final = i == len(events) - 1
        if event.last != is_final:
            raise ValueError(f"event {i}: LAST={event.last} but is_final={is_final}")
        pos += event.run
        if pos >= BLOCK * BLOCK:
            raise ValueError(f"events overflow the block at scan position {pos}")
        vector[pos] = event.level
        pos += 1
    return unscan(vector)
