"""Decoder for the encoder's bitstream.

Exists for verification *and* as the serving-side half of the codec:
the integration tests assert that decoding the emitted bitstream
reproduces the encoder's reconstruction *exactly* (bit-exact closed
loop), which pins down every VLC table, quantizer rounding rule and
motion-compensation path on both sides.

Two reconstruction paths produce identical frames:

* the **batched engine path** (default) parses each picture's symbols
  in one sequential pass, then reconstructs the whole frame in batched
  NumPy — one IDCT over every block, whole-frame luma/chroma motion
  compensation through :class:`~repro.me.engine.ReferencePlane` /
  :class:`~repro.me.engine.ChromaReferencePlane` caches, one batched
  residual add + clamp per plane;
* the **per-block path** (``use_engine=False``) is the seed decoder
  loop, kept as the bit-exactness reference.

``tests/test_reconstruction.py`` proves the two paths bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.bitstream import BitReader
from repro.codec.dct import inverse_dct
from repro.codec.encoder import START_CODE, START_CODE_BITS
from repro.codec.macroblock import (
    decode_inter_block,
    decode_intra_block,
    join_luma_blocks,
    predict_chroma_block,
    read_events,
)
from repro.codec.mv_coding import predict_mv, read_mvd
from repro.codec.quantizer import dequantize, dequantize_intra_dc
from repro.codec.vlc_tables import CBPY_TABLE, MCBPC_TABLE
from repro.codec.zigzag import events_to_block
from repro.me.engine import (
    ChromaReferencePlane,
    ReferencePlane,
    add_residual_clip,
    frame_mc_luma,
    tile_blocks,
    tile_luma_blocks,
)
from repro.me.subpel import predict_block
from repro.me.types import MotionField, MotionVector
from repro.video.frame import Frame, FrameGeometry


@dataclass(frozen=True)
class PictureHeader:
    frame_type: str  # "I" or "P"
    qp: int
    p: int
    mb_rows: int
    mb_cols: int

    @property
    def geometry(self) -> FrameGeometry:
        return FrameGeometry(16 * self.mb_cols, 16 * self.mb_rows)


class Decoder:
    """Stateful decoder: feed it one bitstream, pull frames until
    exhaustion.

    Parameters
    ----------
    bitstream:
        The encoder's emitted bytes.
    use_engine:
        ``True`` (default) reconstructs each frame through the batched
        engine kernels; ``False`` forces the seed per-block loop.  Both
        paths are bit-identical.
    """

    def __init__(self, bitstream: bytes, use_engine: bool = True) -> None:
        self._reader = BitReader(bitstream)
        self._reference: Frame | None = None
        self._frame_index = 0
        self._use_engine = bool(use_engine)

    @property
    def has_more(self) -> bool:
        """Whether another picture header plausibly follows (at least a
        header's worth of bits remains)."""
        return self._reader.bits_remaining >= START_CODE_BITS + 1 + 5 + 5 + 16

    def _read_header(self) -> PictureHeader:
        marker = self._reader.read_bits(START_CODE_BITS)
        if marker != START_CODE:
            raise ValueError(f"bad start code {marker:#x}")
        frame_type = "P" if self._reader.read_bit() else "I"
        qp = self._reader.read_bits(5)
        p = self._reader.read_bits(5)
        mb_rows = self._reader.read_bits(8)
        mb_cols = self._reader.read_bits(8)
        if not 1 <= qp <= 31:
            raise ValueError(f"decoded Qp {qp} out of range")
        return PictureHeader(frame_type, qp, p, mb_rows, mb_cols)

    def decode_frame(self) -> Frame:
        header = self._read_header()
        if header.frame_type == "I":
            if self._use_engine:
                frame = self._decode_intra_batched(header)
            else:
                frame = self._decode_intra_per_block(header)
        else:
            if self._reference is None:
                raise ValueError("P-frame without a decoded reference")
            if self._use_engine:
                frame = self._decode_inter_batched(header)
            else:
                frame = self._decode_inter_per_block(header)
        self._reference = frame
        self._frame_index += 1
        return frame

    # -- shared symbol parsing -------------------------------------------

    def _read_coded_flags(self) -> list[bool]:
        """MCBPC + CBPY → the six per-block coded flags (Y0..Y3, Cb, Cr)."""
        mcbpc = MCBPC_TABLE.decode(self._reader)
        cbpy = CBPY_TABLE.decode(self._reader)
        coded_flags = [bool(cbpy & (1 << k)) for k in range(4)]
        coded_flags += [bool(mcbpc & 2), bool(mcbpc & 1)]
        return coded_flags

    # -- intra frames ----------------------------------------------------

    def _decode_intra_batched(self, header: PictureHeader) -> Frame:
        """Parse every intra block's symbols, then dequantize, IDCT and
        round/clamp the whole frame in one batched pass each."""
        rows, cols = header.mb_rows, header.mb_cols
        levels = np.zeros((rows * cols * 6, 8, 8), dtype=np.int64)
        dc_levels = np.empty(rows * cols * 6, dtype=np.int64)
        k = 0
        for _ in range(rows * cols):
            coded_flags = self._read_coded_flags()
            for coded in coded_flags:
                dc_levels[k] = self._reader.read_bits(8)
                if coded:
                    levels[k] = events_to_block(read_events(self._reader), skip_first=1)
                k += 1
        coefficients = dequantize(levels, header.qp)
        coefficients[:, 0, 0] = dequantize_intra_dc(dc_levels)
        coefficients = coefficients.reshape(rows, cols, 6, 8, 8)
        pixels = np.clip(np.rint(inverse_dct(coefficients)), 0, 255).astype(np.uint8)
        y = tile_luma_blocks(pixels[:, :, :4])
        cb = tile_blocks(pixels[:, :, 4])
        cr = tile_blocks(pixels[:, :, 5])
        return Frame(y, cb, cr, index=self._frame_index)

    def _decode_intra_per_block(self, header: PictureHeader) -> Frame:
        g = header.geometry
        y = np.empty((g.height, g.width), dtype=np.uint8)
        cb = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        cr = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        for r in range(header.mb_rows):
            for c in range(header.mb_cols):
                coded_flags = self._read_coded_flags()
                blocks = []
                for coded in coded_flags:
                    dc_level = self._reader.read_bits(8)
                    events = read_events(self._reader) if coded else []
                    blocks.append(decode_intra_block(dc_level, events, header.qp))
                pixels = np.clip(np.rint(inverse_dct(np.stack(blocks))), 0, 255).astype(np.uint8)
                y0, x0 = 16 * r, 16 * c
                y[y0 : y0 + 16, x0 : x0 + 16] = join_luma_blocks(pixels[:4])
                cb[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = pixels[4]
                cr[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = pixels[5]
        return Frame(y, cb, cr, index=self._frame_index)

    # -- inter frames ----------------------------------------------------

    def _decode_inter_batched(self, header: PictureHeader) -> Frame:
        """Sequential symbol parse, then whole-frame reconstruction.

        Skipped macroblocks fold into the batched path naturally: their
        vector is zero (the motion compensation degenerates to the
        reference slice) and their residual coefficients stay zero, so
        ``rint(0 + pred)`` reproduces the reference copy bit-for-bit.
        """
        g = header.geometry
        ref = self._reference
        if ref.geometry != g:
            raise ValueError(f"geometry change mid-stream: {ref.geometry} → {g}")
        rows, cols = header.mb_rows, header.mb_cols
        coded_field = MotionField(rows, cols)
        levels = np.zeros((rows, cols, 6, 8, 8), dtype=np.int64)
        for r in range(rows):
            for c in range(cols):
                if self._reader.read_bit():  # COD = 1: skipped
                    coded_field.set(r, c, MotionVector.zero())
                    continue
                coded_flags = self._read_coded_flags()
                predictor = predict_mv(coded_field, r, c)
                mv = read_mvd(self._reader, predictor)
                coded_field.set(r, c, mv)
                for k, coded in enumerate(coded_flags):
                    if coded:
                        levels[r, c, k] = events_to_block(read_events(self._reader))
        coefficients = dequantize(levels, header.qp)
        hx, hy = coded_field.to_arrays()
        plane = ReferencePlane(ref.y)
        chroma = ChromaReferencePlane(ref.cb, ref.cr)
        pred_y = frame_mc_luma(plane, hx, hy)
        pred_cb, pred_cr = chroma.mc_frame(hx, hy, header.p)
        residual = inverse_dct(coefficients)
        y = add_residual_clip(pred_y, tile_luma_blocks(residual[:, :, :4]))
        cb = add_residual_clip(pred_cb, tile_blocks(residual[:, :, 4]))
        cr = add_residual_clip(pred_cr, tile_blocks(residual[:, :, 5]))
        return Frame(y, cb, cr, index=self._frame_index)

    def _decode_inter_per_block(self, header: PictureHeader) -> Frame:
        g = header.geometry
        ref = self._reference
        if ref.geometry != g:
            raise ValueError(f"geometry change mid-stream: {ref.geometry} → {g}")
        y = np.empty((g.height, g.width), dtype=np.uint8)
        cb = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        cr = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        coded_field = MotionField(header.mb_rows, header.mb_cols)
        for r in range(header.mb_rows):
            for c in range(header.mb_cols):
                y0, x0 = 16 * r, 16 * c
                cy0, cx0 = 8 * r, 8 * c
                if self._reader.read_bit():  # COD = 1: skipped
                    mv = MotionVector.zero()
                    coded_field.set(r, c, mv)
                    y[y0 : y0 + 16, x0 : x0 + 16] = ref.y[y0 : y0 + 16, x0 : x0 + 16]
                    cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = ref.cb[cy0 : cy0 + 8, cx0 : cx0 + 8]
                    cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = ref.cr[cy0 : cy0 + 8, cx0 : cx0 + 8]
                    continue
                coded_flags = self._read_coded_flags()
                predictor = predict_mv(coded_field, r, c)
                mv = read_mvd(self._reader, predictor)
                coded_field.set(r, c, mv)
                blocks = []
                for coded in coded_flags:
                    events = read_events(self._reader) if coded else []
                    blocks.append(decode_inter_block(events, header.qp))
                residual = inverse_dct(np.stack(blocks))
                pred_y = predict_block(ref.y, y0, x0, mv, 16, 16).astype(np.float64)
                pred_cb = predict_chroma_block(ref.cb, cy0, cx0, mv, header.p).astype(np.float64)
                pred_cr = predict_chroma_block(ref.cr, cy0, cx0, mv, header.p).astype(np.float64)
                y[y0 : y0 + 16, x0 : x0 + 16] = np.clip(
                    np.rint(join_luma_blocks(residual[:4]) + pred_y), 0, 255
                ).astype(np.uint8)
                cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = np.clip(
                    np.rint(residual[4] + pred_cb), 0, 255
                ).astype(np.uint8)
                cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = np.clip(
                    np.rint(residual[5] + pred_cr), 0, 255
                ).astype(np.uint8)
        return Frame(y, cb, cr, index=self._frame_index)


def decode_bitstream(
    bitstream: bytes, frames: int | None = None, use_engine: bool = True
) -> list[Frame]:
    """Decode ``frames`` pictures (or all that fit) from a bitstream.

    >>> from repro.video.synthesis.sequences import make_sequence
    >>> from repro.codec.encoder import encode_sequence
    >>> seq = make_sequence("miss_america", frames=2)
    >>> result = encode_sequence(seq, qp=20, keep_reconstruction=True)
    >>> decoded = decode_bitstream(result.bitstream)
    >>> all(d == r for d, r in zip(decoded, result.reconstruction))
    True
    """
    decoder = Decoder(bitstream, use_engine=use_engine)
    out: list[Frame] = []
    while decoder.has_more and (frames is None or len(out) < frames):
        out.append(decoder.decode_frame())
    return out
