"""Decoder for the encoder's bitstream.

Exists for verification *and* as the serving-side half of the codec:
the integration tests assert that decoding the emitted bitstream
reproduces the encoder's reconstruction *exactly* (bit-exact closed
loop), which pins down every VLC table, quantizer rounding rule and
motion-compensation path on both sides.

The decoder is split along the codec's two cost axes:

* **symbol parse** — :func:`parse_picture` walks one picture's bits
  into a :class:`ParsedPicture` (quantized levels, DC levels, motion
  arrays).  On a word-level :class:`BitReader` every VLC symbol is one
  LUT hit (:meth:`~repro.codec.vlc.VLCTable.decode`) and every
  exp-Golomb code one peek; handed a
  :class:`~repro.codec.bitstream.ScalarBitReader` the identical walk
  runs through the seed per-bit reader, which is the equivalence
  baseline;
* **reconstruction** — :func:`reconstruct_picture` turns a parsed
  picture into pixels with the batched engine kernels (one IDCT over
  every block, whole-frame luma/chroma motion compensation through the
  :class:`~repro.me.engine.ReferencePlane` caches).  The seed per-block
  loop survives on ``use_engine=False`` as the bit-exactness reference.

Version-2 bitstreams (``Encoder(bitstream_version=2)``) delimit
pictures with byte-aligned start codes and length fields, so
:class:`FrameIndex` splits a stream into per-frame byte ranges without
parsing — which is what lets :func:`decode_bitstream` parse frames'
symbols **concurrently** (``jobs=N`` dispatches
:class:`~repro.parallel.jobs.ParseFrameJob` specs through
:func:`repro.parallel.run_jobs`) before the sequential batched
reconstruction pass.  Both versions, both reconstruction paths and any
job count produce bit-identical frames; ``tests/test_reconstruction.py``
and ``tests/test_bitstream_v2.py`` pin that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.bitstream import BitReader
from repro.codec.dct import inverse_dct
from repro.kernels import get_backend
from repro.codec.encoder import (
    FRAME_LENGTH_BITS,
    FRAME_START_CODE,
    FRAME_START_CODE_BITS,
    MAX_REF_FRAMES,
    PICTURE_HEADER_BITS,
    START_CODE,
    START_CODE_BITS,
    START_CODE_EXT,
)
from repro.codec.intra import INTRA_MODE_BITS, intra_predict
from repro.codec.macroblock import (
    decode_inter_block,
    decode_intra_block,
    join_luma_blocks,
    predict_chroma_block,
    read_block_levels,
    read_events,
)
from repro.codec.mv_coding import predict_mv, read_mvd
from repro.codec.quantizer import dequantize, dequantize_intra_dc
from repro.codec.vlc import read_ue_golomb, read_ue_golomb_bitwise
from repro.codec.vlc_tables import CBPY_TABLE, MCBPC_TABLE
from repro.codec.zigzag import events_to_block
from repro.me.engine import (
    ChromaReferencePlane,
    ReferencePlane,
    add_residual_clip,
    frame_mc_luma,
    tile_blocks,
    tile_luma_blocks,
)
from repro.me.subpel import predict_block
from repro.me.types import MotionField, MotionVector
from repro.obs import metrics, trace
from repro.video.frame import Frame, FrameGeometry

#: Bits in a picture header (after any version-2 framing).
_HEADER_BITS = PICTURE_HEADER_BITS

#: Byte prefix shared by all version-2 frame start codes.
_V2_PREFIX = FRAME_START_CODE.to_bytes(4, "big")[:3]

_MET_FRAMES_IN = metrics.counter("decode.frames")
_MET_PARSES = metrics.counter("decode.pictures_parsed")


@dataclass(frozen=True)
class PictureHeader:
    frame_type: str  # "I" or "P"
    qp: int
    p: int
    mb_rows: int
    mb_cols: int
    #: Opened by the extended start code: predictive-intra I-frames,
    #: reference-list P-frames (the GOP syntax).
    extended: bool = False
    #: Active reference count this P-frame's per-MB indices address
    #: (always 1 for seed-syntax pictures and for I-frames).
    num_refs: int = 1

    @property
    def geometry(self) -> FrameGeometry:
        return FrameGeometry(16 * self.mb_cols, 16 * self.mb_rows)

    @property
    def intra_pred(self) -> bool:
        """Whether this is a spatially predicted (GOP-syntax) I-frame."""
        return self.extended and self.frame_type == "I"


def detect_version(bitstream: bytes) -> int:
    """1 or 2 from the stream's opening bytes.

    A version-1 stream opens with the 16-bit picture start code
    (0x7E7E); a version-2 stream opens with the byte-aligned 32-bit
    frame start code, whose ``00 00 01`` prefix a version-1 stream can
    never begin with.
    """
    return 2 if bitstream[:3] == _V2_PREFIX else 1


def read_picture_header(reader) -> PictureHeader:
    """Read and validate one picture header at the reader's cursor."""
    marker = reader.read_bits(START_CODE_BITS)
    if marker not in (START_CODE, START_CODE_EXT):
        raise ValueError(f"bad start code {marker:#x}")
    extended = marker == START_CODE_EXT
    frame_type = "P" if reader.read_bit() else "I"
    qp = reader.read_bits(5)
    p = reader.read_bits(5)
    mb_rows = reader.read_bits(8)
    mb_cols = reader.read_bits(8)
    if not 1 <= qp <= 31:
        raise ValueError(f"decoded Qp {qp} out of range")
    num_refs = reader.read_bits(3) + 1 if extended and frame_type == "P" else 1
    return PictureHeader(frame_type, qp, p, mb_rows, mb_cols, extended, num_refs)


# -- symbol parse ---------------------------------------------------------


@dataclass
class ParsedPicture:
    """One picture's fully parsed symbols, reconstruction-ready.

    Seed-syntax intra pictures carry ``dc_levels`` (``(rows*cols*6,)``)
    and flat ``levels`` (``(rows*cols*6, 8, 8)``); GOP-syntax intra
    pictures carry inter-shaped ``levels`` plus the per-MB prediction
    ``modes``.  Inter pictures carry ``levels`` shaped
    ``(rows, cols, 6, 8, 8)`` plus the decoded motion field as half-pel
    component arrays ``hx``/``hy`` (and, for extended pictures, the
    per-MB ``ref_idx`` into the reference list).  Plain header + NumPy
    arrays, so a picture parsed in a worker process crosses the pickle
    boundary cheaply.
    """

    header: PictureHeader
    levels: np.ndarray
    dc_levels: np.ndarray | None = None
    hx: np.ndarray | None = None
    hy: np.ndarray | None = None
    modes: np.ndarray | None = None
    ref_idx: np.ndarray | None = None

    def __eq__(self, other) -> bool:
        if not isinstance(other, ParsedPicture):
            return NotImplemented

        def same(a, b):
            if a is None or b is None:
                return (a is None) == (b is None)
            return np.array_equal(a, b)

        return (
            self.header == other.header
            and same(self.levels, other.levels)
            and same(self.dc_levels, other.dc_levels)
            and same(self.hx, other.hx)
            and same(self.hy, other.hy)
            and same(self.modes, other.modes)
            and same(self.ref_idx, other.ref_idx)
        )


def _read_coded_flags(reader) -> list[bool]:
    """MCBPC + CBPY → the six per-block coded flags (Y0..Y3, Cb, Cr)."""
    mcbpc = MCBPC_TABLE.decode(reader)
    cbpy = CBPY_TABLE.decode(reader)
    coded_flags = [bool(cbpy & (1 << k)) for k in range(4)]
    coded_flags += [bool(mcbpc & 2), bool(mcbpc & 1)]
    return coded_flags


def _parse_intra_body(reader, header: PictureHeader) -> ParsedPicture:
    """Reference intra parse: seed event-list walk, any reader."""
    rows, cols = header.mb_rows, header.mb_cols
    levels = np.zeros((rows * cols * 6, 8, 8), dtype=np.int64)
    dc_levels = np.empty(rows * cols * 6, dtype=np.int64)
    k = 0
    for _ in range(rows * cols):
        coded_flags = _read_coded_flags(reader)
        for coded in coded_flags:
            dc_levels[k] = reader.read_bits(8)
            if coded:
                levels[k] = events_to_block(read_events(reader), skip_first=1)
            k += 1
    return ParsedPicture(header=header, levels=levels, dc_levels=dc_levels)


def _read_ref_index(reader, header: PictureHeader) -> int:
    """One coded macroblock's exp-Golomb reference index, validated
    against the header's active-reference count."""
    ref = read_ue_golomb(reader)
    if ref >= header.num_refs:
        raise ValueError(
            f"reference index {ref} out of range "
            f"(picture codes {header.num_refs} active references)"
        )
    return ref


def _parse_intra_pred_body(reader, header: PictureHeader) -> ParsedPicture:
    """Reference parse of a GOP-syntax I-frame: per-MB mode bits, then
    inter-style residual events (seed event-list walk, any reader)."""
    rows, cols = header.mb_rows, header.mb_cols
    levels = np.zeros((rows, cols, 6, 8, 8), dtype=np.int64)
    modes = np.empty((rows, cols), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            mode = reader.read_bits(INTRA_MODE_BITS)
            if mode > 2:
                raise ValueError(f"illegal intra prediction mode {mode}")
            modes[r, c] = mode
            coded_flags = _read_coded_flags(reader)
            for k, coded in enumerate(coded_flags):
                if coded:
                    levels[r, c, k] = events_to_block(read_events(reader))
    return ParsedPicture(header=header, levels=levels, modes=modes)


def _parse_inter_body(reader, header: PictureHeader) -> ParsedPicture:
    """Reference inter parse: seed event-list walk, any reader.
    Extended pictures additionally carry a per-MB reference index
    between the CBPY and the MVD."""
    rows, cols = header.mb_rows, header.mb_cols
    multi = header.extended
    coded_field = MotionField(rows, cols)
    levels = np.zeros((rows, cols, 6, 8, 8), dtype=np.int64)
    ref_idx = np.zeros((rows, cols), dtype=np.int64) if multi else None
    for r in range(rows):
        for c in range(cols):
            if reader.read_bit():  # COD = 1: skipped
                coded_field.set(r, c, MotionVector.zero())
                continue
            coded_flags = _read_coded_flags(reader)
            if multi:
                ref_idx[r, c] = _read_ref_index(reader, header)
            predictor = predict_mv(coded_field, r, c)
            mv = read_mvd(reader, predictor)
            coded_field.set(r, c, mv)
            for k, coded in enumerate(coded_flags):
                if coded:
                    levels[r, c, k] = events_to_block(read_events(reader))
    hx, hy = coded_field.to_arrays()
    return ParsedPicture(header=header, levels=levels, hx=hx, hy=hy, ref_idx=ref_idx)


# LUTs bound once for the fast bodies below.
_CBPY_LUT, _CBPY_BITS = CBPY_TABLE.lut, CBPY_TABLE.lut_first_bits
_MCBPC_LUT, _MCBPC_BITS = MCBPC_TABLE.lut, MCBPC_TABLE.lut_first_bits


def _parse_intra_body_fast(reader: BitReader, header: PictureHeader) -> ParsedPicture:
    """Word-level intra parse: LUT symbol hits, levels written straight
    into the batched arrays.  Bit-identical to :func:`_parse_intra_body`."""
    rows, cols = header.mb_rows, header.mb_cols
    levels = np.zeros((rows * cols * 6, 8, 8), dtype=np.int64)
    flat = levels.reshape(rows * cols * 6, 64)
    dc_levels = np.empty(rows * cols * 6, dtype=np.int64)
    read_vlc = reader.read_vlc
    read_bits = reader.read_bits
    k = 0
    for _ in range(rows * cols):
        mcbpc = read_vlc(_MCBPC_LUT, _MCBPC_BITS)
        cbpy = read_vlc(_CBPY_LUT, _CBPY_BITS)
        for coded in (cbpy & 1, cbpy & 2, cbpy & 4, cbpy & 8, mcbpc & 2, mcbpc & 1):
            dc_levels[k] = read_bits(8)
            if coded:
                read_block_levels(reader, flat[k], skip_first=1)
            k += 1
    return ParsedPicture(header=header, levels=levels, dc_levels=dc_levels)


def _parse_intra_pred_body_fast(reader: BitReader, header: PictureHeader) -> ParsedPicture:
    """Word-level GOP-syntax intra parse: LUT symbol hits, levels
    written straight into the batched arrays.  Bit-identical to
    :func:`_parse_intra_pred_body`."""
    rows, cols = header.mb_rows, header.mb_cols
    levels = np.zeros((rows, cols, 6, 8, 8), dtype=np.int64)
    flat = levels.reshape(rows, cols, 6, 64)
    modes = np.empty((rows, cols), dtype=np.int64)
    read_vlc = reader.read_vlc
    read_bits = reader.read_bits
    for r in range(rows):
        for c in range(cols):
            mode = read_bits(INTRA_MODE_BITS)
            if mode > 2:
                raise ValueError(f"illegal intra prediction mode {mode}")
            modes[r, c] = mode
            mcbpc = read_vlc(_MCBPC_LUT, _MCBPC_BITS)
            cbpy = read_vlc(_CBPY_LUT, _CBPY_BITS)
            mb_flat = flat[r, c]
            if cbpy & 1:
                read_block_levels(reader, mb_flat[0])
            if cbpy & 2:
                read_block_levels(reader, mb_flat[1])
            if cbpy & 4:
                read_block_levels(reader, mb_flat[2])
            if cbpy & 8:
                read_block_levels(reader, mb_flat[3])
            if mcbpc & 2:
                read_block_levels(reader, mb_flat[4])
            if mcbpc & 1:
                read_block_levels(reader, mb_flat[5])
    return ParsedPicture(header=header, levels=levels, modes=modes)


def _parse_inter_body_fast(reader: BitReader, header: PictureHeader) -> ParsedPicture:
    """Word-level inter parse.  Bit-identical to :func:`_parse_inter_body`,
    with the motion field held as plain int rows (the H.263 median
    prediction inlined) instead of per-vector objects."""
    rows, cols = header.mb_rows, header.mb_cols
    multi = header.extended
    levels = np.zeros((rows, cols, 6, 8, 8), dtype=np.int64)
    flat = levels.reshape(rows, cols, 6, 64)
    hx = [[0] * cols for _ in range(rows)]
    hy = [[0] * cols for _ in range(rows)]
    ref_idx = np.zeros((rows, cols), dtype=np.int64) if multi else None
    read_vlc = reader.read_vlc
    read_bit = reader.read_bit
    read_ue = reader.read_ue
    for r in range(rows):
        row_hx, row_hy = hx[r], hy[r]
        for c in range(cols):
            if read_bit():  # COD = 1: skipped, zero vector, no residual
                continue
            mcbpc = read_vlc(_MCBPC_LUT, _MCBPC_BITS)
            cbpy = read_vlc(_CBPY_LUT, _CBPY_BITS)
            if multi:
                ref = read_ue()
                if ref < 0:
                    ref = read_ue_golomb_bitwise(reader)
                if ref >= header.num_refs:
                    raise ValueError(
                        f"reference index {ref} out of range "
                        f"(picture codes {header.num_refs} active references)"
                    )
                ref_idx[r, c] = ref
            # Median MVD predictor (see repro.codec.mv_coding): on the
            # top row the predictor is the left vector (zero at the
            # corner); elsewhere left/above/above-right with zero for
            # out-of-picture candidates.
            if r == 0:
                if c:
                    px, py = row_hx[c - 1], row_hy[c - 1]
                else:
                    px = py = 0
            else:
                lx, ly = (row_hx[c - 1], row_hy[c - 1]) if c else (0, 0)
                up_hx, up_hy = hx[r - 1], hy[r - 1]
                ax, ay = up_hx[c], up_hy[c]
                arx, ary = (up_hx[c + 1], up_hy[c + 1]) if c + 1 < cols else (0, 0)
                px = sorted((lx, ax, arx))[1]
                py = sorted((ly, ay, ary))[1]
            mapped = read_ue()
            if mapped < 0:
                mapped = read_ue_golomb_bitwise(reader)
            row_hx[c] = px + ((mapped + 1) >> 1 if mapped & 1 else -(mapped >> 1))
            mapped = read_ue()
            if mapped < 0:
                mapped = read_ue_golomb_bitwise(reader)
            row_hy[c] = py + ((mapped + 1) >> 1 if mapped & 1 else -(mapped >> 1))
            mb_flat = flat[r, c]
            if cbpy & 1:
                read_block_levels(reader, mb_flat[0])
            if cbpy & 2:
                read_block_levels(reader, mb_flat[1])
            if cbpy & 4:
                read_block_levels(reader, mb_flat[2])
            if cbpy & 8:
                read_block_levels(reader, mb_flat[3])
            if mcbpc & 2:
                read_block_levels(reader, mb_flat[4])
            if mcbpc & 1:
                read_block_levels(reader, mb_flat[5])
    return ParsedPicture(
        header=header,
        levels=levels,
        hx=np.array(hx, dtype=np.int64),
        hy=np.array(hy, dtype=np.int64),
        ref_idx=ref_idx,
    )


def _parse_body_compiled(reader: BitReader, header: PictureHeader) -> "ParsedPicture | None":
    """Try the active backend's compiled picture-body parser.

    Runs from a cursor snapshot, so ``None`` (no compiled parser, or the
    kernel hit anything off the happy path — bad prefix, truncation,
    illegal value) leaves the reader untouched and the caller replays
    the identical bits through the Python body, which raises the exact
    errors.  On success the reader advances to the kernel's end
    position; the decoded symbols are bit-identical to the Python walk.
    """
    backend = get_backend()
    data, bit_pos = reader.cursor()
    buf = np.frombuffer(data, dtype=np.uint8)
    nbits = 8 * len(data)
    rows, cols = header.mb_rows, header.mb_cols
    if header.frame_type == "I":
        if header.extended:
            entry = backend.parse_intra_pred_body
            if entry is None:
                return None
            result = entry(buf, bit_pos, nbits, rows, cols)
            if result is None:
                return None
            new_pos, levels, modes = result
            reader.advance_to(new_pos)
            return ParsedPicture(
                header=header, levels=levels.reshape(rows, cols, 6, 8, 8), modes=modes
            )
        entry = backend.parse_intra_body
        if entry is None:
            return None
        result = entry(buf, bit_pos, nbits, rows, cols)
        if result is None:
            return None
        new_pos, levels, dc_levels = result
        reader.advance_to(new_pos)
        return ParsedPicture(
            header=header, levels=levels.reshape(rows * cols * 6, 8, 8), dc_levels=dc_levels
        )
    entry = backend.parse_inter_body
    if entry is None:
        return None
    result = entry(buf, bit_pos, nbits, header.extended, header.num_refs, rows, cols)
    if result is None:
        return None
    new_pos, levels, hx, hy, ref_idx = result
    reader.advance_to(new_pos)
    return ParsedPicture(
        header=header,
        levels=levels.reshape(rows, cols, 6, 8, 8),
        hx=hx,
        hy=hy,
        ref_idx=ref_idx if header.extended else None,
    )


def parse_picture_body(reader, header: PictureHeader) -> ParsedPicture:
    """Parse the macroblock layer of a picture whose header is already
    consumed.  Word-level readers take the LUT fast bodies; readers
    exposing only ``read_bit`` (``ScalarBitReader``) take the seed
    event-list walk — the two are bit-identical on every stream.  When
    the active kernel backend ships compiled body parsers
    (:mod:`repro.kernels`), plain :class:`BitReader` parses go through
    them first, falling back here on any deviation.
    """
    fast = hasattr(reader, "read_vlc")
    if fast and type(reader) is BitReader:
        parsed = _parse_body_compiled(reader, header)
        if parsed is not None:
            return parsed
    if header.frame_type == "I":
        if header.extended:
            return (
                _parse_intra_pred_body_fast(reader, header)
                if fast
                else _parse_intra_pred_body(reader, header)
            )
        return _parse_intra_body_fast(reader, header) if fast else _parse_intra_body(reader, header)
    return _parse_inter_body_fast(reader, header) if fast else _parse_inter_body(reader, header)


def parse_picture(reader) -> ParsedPicture:
    """Parse one picture (header + macroblock layer) at the cursor.

    Pure symbol work — no pixels are touched, which is what makes this
    half of the decoder safe to run per-frame in parallel workers.
    """
    _MET_PARSES.inc()
    with trace.span("decode.parse"):
        return parse_picture_body(reader, read_picture_header(reader))


def parse_bitstream_symbols(bitstream: bytes, reader_factory=BitReader) -> list[ParsedPicture]:
    """Parse every picture in a (version-1 or -2) stream sequentially.

    ``reader_factory`` selects the bit-reader implementation — the
    default word-level :class:`BitReader` drives the LUT decode path;
    passing :class:`~repro.codec.bitstream.ScalarBitReader` replays the
    seed per-bit walk over the same bytes, which is how the equivalence
    tests and ``BENCH_vlc.json`` compare the two.
    """
    version = detect_version(bitstream)
    reader = reader_factory(bitstream)
    framing_bits = FRAME_START_CODE_BITS + FRAME_LENGTH_BITS if version == 2 else 0
    parsed: list[ParsedPicture] = []
    while True:
        if version == 2:
            reader.align()
        if reader.bits_remaining < framing_bits + _HEADER_BITS:
            return parsed
        if version == 2:
            marker = reader.read_bits(FRAME_START_CODE_BITS)
            if marker != FRAME_START_CODE:
                raise ValueError(f"bad frame start code {marker:#x}")
            length = reader.read_bits(FRAME_LENGTH_BITS)
            expected_end = reader.bits_consumed // 8 + length
            parsed.append(parse_picture(reader))
            check_frame_length(reader, expected_end)
        else:
            parsed.append(parse_picture(reader))


def check_frame_length(reader, expected_end: int) -> None:
    """Validate a version-2 length field against the parse that just
    finished: after consuming the frame's padding, the cursor must sit
    exactly where the field said the payload ends.  This keeps the
    sequential decoder exactly as strict as the :class:`FrameIndex`
    path, which *trusts* length fields to slice the stream — a corrupt
    field must fail in every mode, never decode in one and raise in
    another."""
    reader.align()
    actual_end = reader.bits_consumed // 8
    if actual_end != expected_end:
        raise ValueError(
            f"frame length field says the payload ends at byte {expected_end}, "
            f"but the parse ended at byte {actual_end}"
        )


# -- start-code frame index ----------------------------------------------


@dataclass(frozen=True)
class FrameIndex:
    """Byte ranges of every picture in a version-2 stream.

    ``ranges[i]`` is the half-open byte span of picture ``i``'s payload
    (picture header through padding, excluding the start code and
    length field) — exactly what :func:`parse_picture` consumes from
    offset zero of the slice.  Built by :meth:`scan`, which hops
    length fields without parsing any symbols, so indexing a stream is
    O(frames), not O(bits).  A trailing fragment too short to hold a
    minimal frame is ignored, mirroring :attr:`Decoder.has_more` — the
    indexed and sequential decoders accept exactly the same streams.
    """

    ranges: tuple[tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.ranges)

    def payload(self, bitstream: bytes, index: int) -> bytes:
        start, end = self.ranges[index]
        return bitstream[start:end]

    def frame_types(self, bitstream: bytes) -> tuple[str, ...]:
        """``"I"``/``"P"`` per indexed picture, read from the header
        bytes alone: the 16-bit picture start code is followed by the
        frame-type bit, so byte 2's MSB of each payload decides without
        parsing any symbols."""
        types = []
        for start, _end in self.ranges:
            marker = (bitstream[start] << 8) | bitstream[start + 1]
            if marker not in (START_CODE, START_CODE_EXT):
                raise ValueError(f"bad start code {marker:#x}")
            types.append("P" if bitstream[start + 2] & 0x80 else "I")
        return tuple(types)

    def keyframes(self, bitstream: bytes) -> tuple[int, ...]:
        """Indices of the I-frames — the stream's random-access points."""
        return tuple(i for i, t in enumerate(self.frame_types(bitstream)) if t == "I")

    @classmethod
    def scan(cls, bitstream: bytes) -> "FrameIndex":
        """Scan a whole in-memory stream.

        Delegates to the incremental :class:`repro.streaming.scanner.ScanState`
        fed the buffer in one chunk, so the whole-buffer and streaming
        scanners accept and reject exactly the same streams with the
        same errors (byte offsets named for bad start codes, trailing
        garbage, and length fields pointing past end of stream).
        """
        if detect_version(bitstream) != 2:
            raise ValueError(
                "FrameIndex requires a version-2 stream (byte-aligned start "
                "codes); version-1 streams are not splittable without parsing"
            )
        # Imported here: repro.streaming sits above the codec layer and
        # imports this module, so a top-level import would cycle.
        from repro.streaming.scanner import ScanState

        state = ScanState(keep_payloads=False)
        state.feed(bitstream)
        state.finish()
        return cls(ranges=tuple(state.ranges))


def slice_from_keyframe(bitstream: bytes, frame: int) -> bytes:
    """The suffix of a version-2 stream starting at picture ``frame``'s
    framing, for random access: because an I-frame resets the reference
    list, decoding the returned bytes reproduces frames ``frame..end``
    bit-identically to a full decode.

    ``frame`` must index an I-frame — seeking to a P-frame cannot
    reconstruct (its references were discarded), so that raises with
    the stream's actual random-access points listed.
    """
    index = FrameIndex.scan(bitstream)
    if not 0 <= frame < len(index):
        raise ValueError(f"frame {frame} out of range (stream holds {len(index)} frames)")
    if index.frame_types(bitstream)[frame] != "I":
        keyframes = index.keyframes(bitstream)
        raise ValueError(
            f"frame {frame} is a P-frame; random access needs an I-frame "
            f"(keyframes in this stream: {list(keyframes)})"
        )
    start, _end = index.ranges[frame]
    # The payload range excludes the 4-byte start code + 4-byte length
    # field; back up over them so the slice is itself a valid stream.
    return bitstream[start - (FRAME_START_CODE_BITS + FRAME_LENGTH_BITS) // 8 :]


# -- reconstruction -------------------------------------------------------


def _reconstruct_intra_pred(parsed: ParsedPicture, frame_index: int) -> Frame:
    """GOP-syntax I-frame: batched residual IDCT, then the serial
    spatial-prediction sweep (each macroblock predicts from already
    reconstructed neighbours, so the per-MB loop is inherent)."""
    header = parsed.header
    rows, cols = header.mb_rows, header.mb_cols
    g = header.geometry
    residual = get_backend().idct(dequantize(parsed.levels, header.qp))
    y = np.empty((g.height, g.width), dtype=np.uint8)
    cb = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
    cr = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            mode = int(parsed.modes[r, c])
            pred_y = intra_predict(y, r, c, 16, mode)
            pred_cb = intra_predict(cb, r, c, 8, mode)
            pred_cr = intra_predict(cr, r, c, 8, mode)
            mb = residual[r, c]
            y[16 * r : 16 * r + 16, 16 * c : 16 * c + 16] = np.clip(
                np.rint(join_luma_blocks(mb[:4]) + pred_y), 0, 255
            ).astype(np.uint8)
            cb[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = np.clip(
                np.rint(mb[4] + pred_cb), 0, 255
            ).astype(np.uint8)
            cr[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = np.clip(
                np.rint(mb[5] + pred_cr), 0, 255
            ).astype(np.uint8)
    return Frame(y, cb, cr, index=frame_index)


def reconstruct_picture(
    parsed: ParsedPicture,
    reference: "Frame | list[Frame] | None",
    frame_index: int = 0,
) -> Frame:
    """Pixels from parsed symbols via the batched engine kernels.

    ``reference`` is the decoded reference list, most recent first (a
    bare :class:`Frame` is accepted as a one-element list for the seed
    single-reference syntax).  Skipped macroblocks fold into the
    batched path naturally: their vector is zero (the motion
    compensation degenerates to the reference slice) and their residual
    coefficients stay zero, so ``rint(0 + pred)`` reproduces the
    reference copy bit-for-bit.
    """
    with trace.span("decode.reconstruct"):
        return _reconstruct_picture(parsed, reference, frame_index)


def _reconstruct_picture(
    parsed: ParsedPicture,
    reference: "Frame | list[Frame] | None",
    frame_index: int = 0,
) -> Frame:
    header = parsed.header
    if reference is None:
        references: list[Frame] = []
    elif isinstance(reference, Frame):
        references = [reference]
    else:
        references = list(reference)
    if header.frame_type == "I":
        if header.extended:
            return _reconstruct_intra_pred(parsed, frame_index)
        rows, cols = header.mb_rows, header.mb_cols
        coefficients = dequantize(parsed.levels, header.qp)
        coefficients[:, 0, 0] = dequantize_intra_dc(parsed.dc_levels)
        coefficients = coefficients.reshape(rows, cols, 6, 8, 8)
        pixels = np.clip(np.rint(get_backend().idct(coefficients)), 0, 255).astype(np.uint8)
        y = tile_luma_blocks(pixels[:, :, :4])
        cb = tile_blocks(pixels[:, :, 4])
        cr = tile_blocks(pixels[:, :, 5])
        return Frame(y, cb, cr, index=frame_index)
    if not references:
        raise ValueError("P-frame without a decoded reference")
    if references[0].geometry != header.geometry:
        raise ValueError(
            f"geometry change mid-stream: {references[0].geometry} → {header.geometry}"
        )
    coefficients = dequantize(parsed.levels, header.qp)
    ref_idx = parsed.ref_idx
    if ref_idx is None or not ref_idx.any():
        plane = ReferencePlane(references[0].y)
        chroma = ChromaReferencePlane(references[0].cb, references[0].cr)
        pred_y = frame_mc_luma(plane, parsed.hx, parsed.hy)
        pred_cb, pred_cr = chroma.mc_frame(parsed.hx, parsed.hy, header.p)
    else:
        needed = int(ref_idx.max())
        if needed >= len(references):
            raise ValueError(
                f"picture selects reference {needed} but only {len(references)} "
                f"frame(s) are decoded since the last I-frame"
            )
        pred_y = pred_cb = pred_cr = None
        for k in np.unique(ref_idx):
            ref = references[int(k)]
            py = frame_mc_luma(ReferencePlane(ref.y), parsed.hx, parsed.hy)
            pcb, pcr = ChromaReferencePlane(ref.cb, ref.cr).mc_frame(
                parsed.hx, parsed.hy, header.p
            )
            if pred_y is None:
                pred_y = np.empty_like(py)
                pred_cb = np.empty_like(pcb)
                pred_cr = np.empty_like(pcr)
            mask = ref_idx == k
            luma_mask = np.repeat(np.repeat(mask, 16, axis=0), 16, axis=1)
            chroma_mask = np.repeat(np.repeat(mask, 8, axis=0), 8, axis=1)
            pred_y[luma_mask] = py[luma_mask]
            pred_cb[chroma_mask] = pcb[chroma_mask]
            pred_cr[chroma_mask] = pcr[chroma_mask]
    residual = get_backend().idct(coefficients)
    y = add_residual_clip(pred_y, tile_luma_blocks(residual[:, :, :4]))
    cb = add_residual_clip(pred_cb, tile_blocks(residual[:, :, 4]))
    cr = add_residual_clip(pred_cr, tile_blocks(residual[:, :, 5]))
    return Frame(y, cb, cr, index=frame_index)


class Decoder:
    """Stateful decoder: feed it one bitstream, pull frames until
    exhaustion.  Handles both bitstream versions transparently (the
    opening bytes disambiguate — see :func:`detect_version`).

    Parameters
    ----------
    bitstream:
        The encoder's emitted bytes.
    use_engine:
        ``True`` (default) reconstructs each frame through the batched
        engine kernels; ``False`` forces the seed per-block loop.  Both
        paths are bit-identical.
    first_frame_index:
        Index stamped on the first decoded frame — pass the keyframe's
        position when decoding a :func:`slice_from_keyframe` suffix so
        frame indices line up with the full stream.
    """

    def __init__(
        self, bitstream: bytes, use_engine: bool = True, first_frame_index: int = 0
    ) -> None:
        self._reader = BitReader(bitstream)
        #: Decoded reference list, most recent first; reset by I-frames.
        self._references: list[Frame] = []
        self._frame_index = first_frame_index
        self._use_engine = bool(use_engine)
        self.version = detect_version(bitstream)

    @property
    def has_more(self) -> bool:
        """Whether another picture plausibly follows (at least a
        framing + header's worth of bits remains past alignment)."""
        remaining = self._reader.bits_remaining
        if self.version == 2:
            remaining -= (-self._reader.bits_consumed) & 7  # alignment padding
            return remaining >= FRAME_START_CODE_BITS + FRAME_LENGTH_BITS + _HEADER_BITS
        return remaining >= _HEADER_BITS

    def _read_framing(self) -> int:
        """Consume the version-2 alignment + start code + length field;
        returns the byte offset the length field says the payload ends
        at (validated after the frame parses — see
        :func:`check_frame_length`)."""
        self._reader.align()
        marker = self._reader.read_bits(FRAME_START_CODE_BITS)
        if marker != FRAME_START_CODE:
            raise ValueError(f"bad frame start code {marker:#x}")
        length = self._reader.read_bits(FRAME_LENGTH_BITS)
        return self._reader.bits_consumed // 8 + length

    def decode_frame(self) -> Frame:
        with trace.span("decode.frame", frame=self._frame_index) as frame_span:
            expected_end = self._read_framing() if self.version == 2 else None
            with trace.span("decode.parse") as parse_span:
                header = read_picture_header(self._reader)
                if header.frame_type == "P" and not self._references:
                    raise ValueError("P-frame without a decoded reference")
                parse_span.set(type=header.frame_type)
                if self._use_engine:
                    parsed = parse_picture_body(self._reader, header)
            if self._use_engine:
                frame = reconstruct_picture(parsed, self._references, self._frame_index)
            elif header.intra_pred:
                frame = self._decode_intra_pred_per_block(header)
            elif header.frame_type == "I":
                frame = self._decode_intra_per_block(header)
            else:
                frame = self._decode_inter_per_block(header)
            if expected_end is not None:
                check_frame_length(self._reader, expected_end)
            if header.frame_type == "I":
                self._references = [frame]
            else:
                self._references = [frame, *self._references][:MAX_REF_FRAMES]
            frame_span.set(type=header.frame_type)
            self._frame_index += 1
        _MET_FRAMES_IN.inc()
        return frame

    # -- seed per-block reconstruction (bit-exactness reference) ---------

    def _decode_intra_per_block(self, header: PictureHeader) -> Frame:
        g = header.geometry
        y = np.empty((g.height, g.width), dtype=np.uint8)
        cb = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        cr = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        for r in range(header.mb_rows):
            for c in range(header.mb_cols):
                coded_flags = _read_coded_flags(self._reader)
                blocks = []
                for coded in coded_flags:
                    dc_level = self._reader.read_bits(8)
                    events = read_events(self._reader) if coded else []
                    blocks.append(decode_intra_block(dc_level, events, header.qp))
                pixels = np.clip(np.rint(inverse_dct(np.stack(blocks))), 0, 255).astype(np.uint8)
                y0, x0 = 16 * r, 16 * c
                y[y0 : y0 + 16, x0 : x0 + 16] = join_luma_blocks(pixels[:4])
                cb[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = pixels[4]
                cr[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = pixels[5]
        return Frame(y, cb, cr, index=self._frame_index)

    def _decode_intra_pred_per_block(self, header: PictureHeader) -> Frame:
        """Seed-style per-MB loop for a GOP-syntax I-frame: mode bits,
        inter-style residual events, spatial prediction from already
        reconstructed neighbours."""
        g = header.geometry
        y = np.empty((g.height, g.width), dtype=np.uint8)
        cb = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        cr = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        for r in range(header.mb_rows):
            for c in range(header.mb_cols):
                mode = self._reader.read_bits(INTRA_MODE_BITS)
                if mode > 2:
                    raise ValueError(f"illegal intra prediction mode {mode}")
                coded_flags = _read_coded_flags(self._reader)
                blocks = []
                for coded in coded_flags:
                    events = read_events(self._reader) if coded else []
                    blocks.append(decode_inter_block(events, header.qp))
                residual = inverse_dct(np.stack(blocks))
                pred_y = intra_predict(y, r, c, 16, mode)
                pred_cb = intra_predict(cb, r, c, 8, mode)
                pred_cr = intra_predict(cr, r, c, 8, mode)
                y[16 * r : 16 * r + 16, 16 * c : 16 * c + 16] = np.clip(
                    np.rint(join_luma_blocks(residual[:4]) + pred_y), 0, 255
                ).astype(np.uint8)
                cb[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = np.clip(
                    np.rint(residual[4] + pred_cb), 0, 255
                ).astype(np.uint8)
                cr[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = np.clip(
                    np.rint(residual[5] + pred_cr), 0, 255
                ).astype(np.uint8)
        return Frame(y, cb, cr, index=self._frame_index)

    def _decode_inter_per_block(self, header: PictureHeader) -> Frame:
        g = header.geometry
        refs = self._references
        ref = refs[0]
        if ref.geometry != g:
            raise ValueError(f"geometry change mid-stream: {ref.geometry} → {g}")
        y = np.empty((g.height, g.width), dtype=np.uint8)
        cb = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        cr = np.empty((g.chroma_height, g.chroma_width), dtype=np.uint8)
        coded_field = MotionField(header.mb_rows, header.mb_cols)
        for r in range(header.mb_rows):
            for c in range(header.mb_cols):
                y0, x0 = 16 * r, 16 * c
                cy0, cx0 = 8 * r, 8 * c
                if self._reader.read_bit():  # COD = 1: skipped, reference 0
                    mv = MotionVector.zero()
                    coded_field.set(r, c, mv)
                    y[y0 : y0 + 16, x0 : x0 + 16] = ref.y[y0 : y0 + 16, x0 : x0 + 16]
                    cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = ref.cb[cy0 : cy0 + 8, cx0 : cx0 + 8]
                    cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = ref.cr[cy0 : cy0 + 8, cx0 : cx0 + 8]
                    continue
                coded_flags = _read_coded_flags(self._reader)
                source = ref
                if header.extended:
                    k = _read_ref_index(self._reader, header)
                    if k >= len(refs):
                        raise ValueError(
                            f"picture selects reference {k} but only {len(refs)} "
                            f"frame(s) are decoded since the last I-frame"
                        )
                    source = refs[k]
                predictor = predict_mv(coded_field, r, c)
                mv = read_mvd(self._reader, predictor)
                coded_field.set(r, c, mv)
                blocks = []
                for coded in coded_flags:
                    events = read_events(self._reader) if coded else []
                    blocks.append(decode_inter_block(events, header.qp))
                residual = inverse_dct(np.stack(blocks))
                pred_y = predict_block(source.y, y0, x0, mv, 16, 16).astype(np.float64)
                pred_cb = predict_chroma_block(source.cb, cy0, cx0, mv, header.p).astype(np.float64)
                pred_cr = predict_chroma_block(source.cr, cy0, cx0, mv, header.p).astype(np.float64)
                y[y0 : y0 + 16, x0 : x0 + 16] = np.clip(
                    np.rint(join_luma_blocks(residual[:4]) + pred_y), 0, 255
                ).astype(np.uint8)
                cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = np.clip(
                    np.rint(residual[4] + pred_cb), 0, 255
                ).astype(np.uint8)
                cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = np.clip(
                    np.rint(residual[5] + pred_cr), 0, 255
                ).astype(np.uint8)
        return Frame(y, cb, cr, index=self._frame_index)


def decode_bitstream(
    bitstream: bytes,
    frames: int | None = None,
    use_engine: bool = True,
    jobs: int = 1,
    base_seed: int = 0,
    use_shm: bool = False,
    start_frame: int = 0,
) -> list[Frame]:
    """Decode ``frames`` pictures (or all that fit) from a bitstream.

    ``jobs > 1`` on a version-2 stream splits it with
    :class:`FrameIndex` and parses the frames' symbols concurrently
    (:class:`~repro.parallel.jobs.ParseFrameJob` through
    :func:`repro.parallel.run_jobs`), then reconstructs sequentially
    through the batched engine — the closed prediction loop makes
    reconstruction inherently serial, but by then the per-frame cost is
    a handful of vectorized kernels.  Version-1 streams (not splittable
    without parsing) and the per-block reference path
    (``use_engine=False``) ignore ``jobs`` and decode serially; results
    are bit-identical in every mode.

    ``use_shm=True`` moves the parse jobs' frame payloads and parsed
    symbols through shared memory instead of the worker pipe
    (``run_jobs(..., use_shm=True)``); it changes transport only, never
    bits, and is ignored when ``jobs`` stay serial.

    ``start_frame`` seeks: the stream is sliced at that picture with
    :func:`slice_from_keyframe` (version 2 only; must be an I-frame)
    and decoding starts there, with frame indices matching the full
    stream's.

    >>> from repro.video.synthesis.sequences import make_sequence
    >>> from repro.codec.encoder import encode_sequence
    >>> seq = make_sequence("miss_america", frames=2)
    >>> result = encode_sequence(seq, qp=20, keep_reconstruction=True)
    >>> decoded = decode_bitstream(result.bitstream)
    >>> all(d == r for d, r in zip(decoded, result.reconstruction))
    True
    """
    if start_frame:
        bitstream = slice_from_keyframe(bitstream, start_frame)
    if jobs > 1 and use_engine and detect_version(bitstream) == 2:
        from repro.parallel import ParseFrameJob, run_jobs

        index = FrameIndex.scan(bitstream)
        ranges = index.ranges if frames is None else index.ranges[:frames]
        parsed = run_jobs(
            [ParseFrameJob(payload=bitstream[s:e]) for s, e in ranges],
            workers=jobs,
            base_seed=base_seed,
            use_shm=use_shm,
        )
        out: list[Frame] = []
        references: list[Frame] = []
        for i, picture in enumerate(parsed):
            with trace.span(
                "decode.frame", frame=start_frame + i, type=picture.header.frame_type
            ):
                frame = reconstruct_picture(picture, references, start_frame + i)
            _MET_FRAMES_IN.inc()
            if picture.header.frame_type == "I":
                references = [frame]
            else:
                references = [frame, *references][:MAX_REF_FRAMES]
            out.append(frame)
        return out
    decoder = Decoder(bitstream, use_engine=use_engine, first_frame_index=start_frame)
    out = []
    while decoder.has_more and (frames is None or len(out) < frames):
        out.append(decoder.decode_frame())
    return out
