"""H.263 motion-vector prediction and differential coding.

Each macroblock's vector is coded as a difference (MVD) from the
median of three neighbouring vectors — left, above, above-right — with
the standard border rules:

* a candidate outside the picture is replaced by the zero vector,
  except that when *only* the left candidate exists (first MB row)
  the left vector itself is used as predictor;
* for the first macroblock of a row the left candidate is zero;
* above / above-right fall back to zero on the top row and the last
  column respectively.

This median prediction is precisely why PBM-style smooth fields are
cheap to transmit (small MVDs) and FSBM's incoherent fields are not —
the effect behind the paper's R(mv) term.

MVD components are coded with the signed exp-Golomb code in half-pel
units (0 → 1 bit, ±0.5 → 3 bits, …), mirroring the length profile of
H.263's MVD table.
"""

from __future__ import annotations

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.vlc import read_se_golomb, se_golomb_bits, se_golomb_code
from repro.me.types import MotionField, MotionVector


def _median3(a: int, b: int, c: int) -> int:
    return sorted((a, b, c))[1]


def predict_mv(field: MotionField, mb_row: int, mb_col: int) -> MotionVector:
    """Median predictor for block (mb_row, mb_col) from the partially
    coded field (raster order: entries left/above are already set)."""
    left = field.get(mb_row, mb_col - 1)
    above = field.get(mb_row - 1, mb_col)
    above_right = field.get(mb_row - 1, mb_col + 1)
    if above is None and above_right is None:
        # Top row: predictor is the left vector (or zero at the corner).
        return left if left is not None else MotionVector.zero()
    zero = MotionVector.zero()
    l = left if left is not None else zero
    a = above if above is not None else zero
    ar = above_right if above_right is not None else zero
    return MotionVector(
        _median3(l.hx, a.hx, ar.hx),
        _median3(l.hy, a.hy, ar.hy),
    )


def mvd_bits(mv: MotionVector, predictor: MotionVector) -> int:
    """Exact bit cost of coding ``mv`` against ``predictor``."""
    d = mv - predictor
    return se_golomb_bits(d.hx) + se_golomb_bits(d.hy)


def write_mvd(writer: BitWriter, mv: MotionVector, predictor: MotionVector) -> int:
    """Emit the MVD; returns bits written."""
    d = mv - predictor
    before = writer.bit_count
    writer.write_code(se_golomb_code(d.hx))
    writer.write_code(se_golomb_code(d.hy))
    return writer.bit_count - before


def read_mvd(reader: BitReader, predictor: MotionVector) -> MotionVector:
    """Decode one vector given its predictor."""
    dhx = read_se_golomb(reader)
    dhy = read_se_golomb(reader)
    return MotionVector(predictor.hx + dhx, predictor.hy + dhy)


def field_bits(field: MotionField) -> int:
    """Total MVD bits for a complete motion field — the R(mv) term the
    paper's cost function charges, summed over a frame."""
    if not field.is_complete:
        raise ValueError("motion field has unset entries")
    total = 0
    coded = MotionField(field.mb_rows, field.mb_cols)
    for r, c, mv in field:
        predictor = predict_mv(coded, r, c)
        total += mvd_bits(mv, predictor)
        coded.set(r, c, mv)
    return total
