"""Spatial intra prediction for GOP-mode I-frames.

Seed-format I-frames code every block against a flat mid-grey (the
intra DC byte); GOP-mode I-frames (``Encoder(i_period=...)``) predict
each macroblock spatially from its already-reconstructed neighbours —
the ``IntraFrameEncoder`` shape: three modes, chosen per macroblock,
coded in two fixed bits ahead of the MCBPC/CBPY pair.

* ``INTRA_DC`` — flat 128 (always available; the fallback at edges),
* ``INTRA_VERTICAL`` — the pixel row directly above the block,
  replicated downward,
* ``INTRA_HORIZONTAL`` — the pixel column directly left of the block,
  replicated rightward.

Two decision/prediction planes keep the closed loop exact:

* the **mode decision** is open-loop — costs are SADs against the
  *source* luma (:func:`intra_mode_costs_reference` here, or the
  batched :func:`repro.me.engine.intra_mode_cost_surfaces`, pinned
  integer-identical), so the engine and seed paths pick the same mode;
* the **prediction** is closed-loop — :func:`intra_predict` reads the
  *reconstructed* neighbours the decoder will have, so encoder and
  decoder reconstructions match bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.me.engine.kernels import INTRA_UNAVAILABLE_COST

#: Mode indices as they appear on the wire (2 fixed bits per MB).
INTRA_DC = 0
INTRA_VERTICAL = 1
INTRA_HORIZONTAL = 2

INTRA_MODE_NAMES = ("DC", "vertical", "horizontal")

#: Wire width of the per-macroblock mode field.
INTRA_MODE_BITS = 2

__all__ = [
    "INTRA_DC",
    "INTRA_HORIZONTAL",
    "INTRA_MODE_BITS",
    "INTRA_MODE_NAMES",
    "INTRA_UNAVAILABLE_COST",
    "INTRA_VERTICAL",
    "choose_intra_modes",
    "intra_mode_costs_reference",
    "intra_predict",
]


def intra_predict(
    plane: np.ndarray, block_row: int, block_col: int, size: int, mode: int
) -> np.ndarray:
    """Predict one ``size`` x ``size`` block from its causal neighbours.

    ``plane`` is the partially reconstructed plane being filled in
    raster order, so the row above and the column left of the block are
    final pixels.  Neighbours outside the picture fall back to the flat
    DC value, matching the decoder exactly.  Returns ``float64`` ready
    for residual arithmetic.
    """
    y0, x0 = size * block_row, size * block_col
    if mode == INTRA_VERTICAL and block_row > 0:
        above = plane[y0 - 1, x0 : x0 + size].astype(np.float64)
        return np.broadcast_to(above, (size, size)).copy()
    if mode == INTRA_HORIZONTAL and block_col > 0:
        left = plane[y0 : y0 + size, x0 - 1].astype(np.float64)
        return np.broadcast_to(left[:, None], (size, size)).copy()
    if mode not in (INTRA_DC, INTRA_VERTICAL, INTRA_HORIZONTAL):
        raise ValueError(f"illegal intra prediction mode {mode}")
    return np.full((size, size), 128.0)


def intra_mode_costs_reference(y: np.ndarray) -> np.ndarray:
    """Per-macroblock SAD of each intra mode against the source luma.

    The seed (per-block scalar) twin of the batched
    :func:`repro.me.engine.intra_mode_cost_surfaces`; both return the
    same ``(3, mb_rows, mb_cols)`` ``int64`` surface, which is what
    keeps ``use_engine=True`` and ``False`` encodes byte-identical.
    Unavailable modes cost :data:`INTRA_UNAVAILABLE_COST`.
    """
    rows, cols = y.shape[0] // 16, y.shape[1] // 16
    cur = y.astype(np.int64)
    costs = np.full((3, rows, cols), INTRA_UNAVAILABLE_COST, dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            y0, x0 = 16 * r, 16 * c
            block = cur[y0 : y0 + 16, x0 : x0 + 16]
            costs[INTRA_DC, r, c] = int(np.abs(block - 128).sum())
            if r > 0:
                above = cur[y0 - 1, x0 : x0 + 16]
                costs[INTRA_VERTICAL, r, c] = int(np.abs(block - above[None, :]).sum())
            if c > 0:
                left = cur[y0 : y0 + 16, x0 - 1]
                costs[INTRA_HORIZONTAL, r, c] = int(np.abs(block - left[:, None]).sum())
    return costs


def choose_intra_modes(costs: np.ndarray) -> np.ndarray:
    """Mode index per macroblock from a cost surface: minimal SAD, ties
    broken toward the lowest mode index (DC first) — the rule both the
    batched and scalar surfaces share."""
    return np.argmin(costs, axis=0)
