"""Generic variable-length-code machinery: deterministic Huffman
construction, canonical code assignment and prefix decoding.

The H.263 standard ships fixed VLC tables; rather than transcribing
102 rows (and risking transcription errors that would silently skew
every rate number), the tables here are *generated* as canonical
Huffman codes over an explicit frequency model with the same shape as
the standard's (short codes for low run / low level / non-LAST events,
long escape for the rest).  The construction is deterministic, the
Kraft sum is exactly 1, and encode/decode are exact inverses — all of
which the test suite checks.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterable, Sequence, TypeVar

from repro.codec.bitstream import BitReader

Symbol = TypeVar("Symbol", bound=Hashable)


def huffman_code_lengths(
    symbols: Sequence[Symbol], weights: Sequence[float]
) -> dict[Symbol, int]:
    """Optimal prefix code lengths for ``symbols`` with ``weights``.

    Ties are broken by symbol position, so the result depends only on
    the input order — never on hash randomization.
    """
    if len(symbols) != len(weights):
        raise ValueError("symbols and weights must have equal length")
    if len(symbols) == 0:
        raise ValueError("need at least one symbol")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    if len(symbols) == 1:
        return {symbols[0]: 1}
    # Each heap entry: (weight, tiebreak, [symbol indices in subtree]).
    heap: list[tuple[float, int, list[int]]] = [
        (w, i, [i]) for i, w in enumerate(weights)
    ]
    heapq.heapify(heap)
    depths = [0] * len(symbols)
    counter = len(symbols)
    while len(heap) > 1:
        w1, _, members1 = heapq.heappop(heap)
        w2, _, members2 = heapq.heappop(heap)
        for index in members1 + members2:
            depths[index] += 1
        heapq.heappush(heap, (w1 + w2, counter, members1 + members2))
        counter += 1
    return {symbols[i]: depths[i] for i in range(len(symbols))}


def canonical_codes(lengths: dict[Symbol, int], order: Sequence[Symbol]) -> dict[Symbol, tuple[int, int]]:
    """Assign canonical codes ``(value, length)`` from code lengths.

    ``order`` fixes the tie-break between symbols of equal length.
    The resulting code set is prefix-free iff the lengths satisfy the
    Kraft equality/inequality (Huffman lengths always do).
    """
    position = {sym: i for i, sym in enumerate(order)}
    ranked = sorted(lengths.items(), key=lambda kv: (kv[1], position[kv[0]]))
    codes: dict[Symbol, tuple[int, int]] = {}
    code = 0
    prev_len = ranked[0][1] if ranked else 0
    for sym, length in ranked:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


class VLCTable(Generic[Symbol]):
    """A prefix code over a finite symbol set.

    Built from a frequency model; provides ``encode`` (symbol →
    ``(value, length)``) and ``decode`` (pull one symbol off a
    :class:`BitReader`).
    """

    def __init__(self, symbols: Sequence[Symbol], weights: Sequence[float]) -> None:
        lengths = huffman_code_lengths(list(symbols), list(weights))
        self._codes = canonical_codes(lengths, list(symbols))
        self._decode: dict[tuple[int, int], Symbol] = {
            (value, length): sym for sym, (value, length) in self._codes.items()
        }
        self.max_length = max(length for _, length in self._codes.values())

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._codes

    def encode(self, symbol: Symbol) -> tuple[int, int]:
        try:
            return self._codes[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol!r} not in VLC table") from None

    def code_length(self, symbol: Symbol) -> int:
        return self.encode(symbol)[1]

    def decode(self, reader: BitReader) -> Symbol:
        value = 0
        for length in range(1, self.max_length + 1):
            value = (value << 1) | reader.read_bit()
            sym = self._decode.get((value, length))
            if sym is not None:
                return sym
        raise ValueError("invalid prefix: no VLC symbol matches")

    def kraft_sum(self) -> float:
        """Σ 2^-len over all codes; exactly 1.0 for a complete code."""
        return sum(2.0 ** -length for _, length in self._codes.values())

    def items(self) -> Iterable[tuple[Symbol, tuple[int, int]]]:
        return self._codes.items()


# -- exp-Golomb (used for motion vector differences) --------------------


def ue_golomb_code(value: int) -> tuple[int, int]:
    """Unsigned exp-Golomb ``(code_value, length)`` of ``value >= 0``."""
    if value < 0:
        raise ValueError(f"ue(v) needs v >= 0, got {value}")
    v = value + 1
    bits = v.bit_length()
    return v, 2 * bits - 1


def se_golomb_code(value: int) -> tuple[int, int]:
    """Signed exp-Golomb mapping 0,+1,−1,+2,−2,… → 0,1,2,3,4,…"""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return ue_golomb_code(mapped)


def se_golomb_bits(value: int) -> int:
    """Length in bits of the signed exp-Golomb code for ``value``."""
    return se_golomb_code(value)[1]


def read_ue_golomb(reader: BitReader) -> int:
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed exp-Golomb prefix")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def read_se_golomb(reader: BitReader) -> int:
    mapped = read_ue_golomb(reader)
    if mapped % 2:
        return (mapped + 1) // 2
    return -(mapped // 2)
