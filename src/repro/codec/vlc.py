"""Generic variable-length-code machinery: deterministic Huffman
construction, canonical code assignment and prefix decoding.

The H.263 standard ships fixed VLC tables; rather than transcribing
102 rows (and risking transcription errors that would silently skew
every rate number), the tables here are *generated* as canonical
Huffman codes over an explicit frequency model with the same shape as
the standard's (short codes for low run / low level / non-LAST events,
long escape for the rest).  The construction is deterministic, the
Kraft sum is exactly 1, and encode/decode are exact inverses — all of
which the test suite checks.

Decoding is **table-driven**: every :class:`VLCTable` compiles its
canonical codes into a peek-indexed lookup table at construction —
``LUT_FIRST_BITS`` bits of first level, nested sub-tables for longer
codes — so :meth:`VLCTable.decode` is one
:meth:`~repro.codec.bitstream.BitReader.read_vlc` call (peek + table
hit + skip) instead of a per-bit tree walk.  The seed walk survives as
:meth:`VLCTable.decode_bitwise`, both as the golden reference the
equivalence tests compare against and as the automatic fallback for
readers without ``read_vlc`` (``ScalarBitReader``).  The exp-Golomb
readers dispatch the same way: a single 64-bit peek on word-level
readers, the seed bit loop otherwise.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterable, Sequence, TypeVar

from repro.obs import metrics

Symbol = TypeVar("Symbol", bound=Hashable)

#: First-level LUT width in bits: every code no longer than this
#: decodes with a single table hit; longer codes indirect through one
#: nested sub-table keyed by their remaining bits.
LUT_FIRST_BITS = 9

#: LUT compilations (once per :class:`VLCTable` construction) versus
#: re-uses of an already-compiled table through the :attr:`VLCTable.lut`
#: property — the caching the hot parse loops rely on.  Deliberately
#: *not* per decoded symbol: the property is read once per loop setup.
_MET_LUT_BUILDS = metrics.counter("vlc.lut_builds")
_MET_LUT_HITS = metrics.counter("vlc.lut_hits")


def huffman_code_lengths(
    symbols: Sequence[Symbol], weights: Sequence[float]
) -> dict[Symbol, int]:
    """Optimal prefix code lengths for ``symbols`` with ``weights``.

    Ties are broken by symbol position, so the result depends only on
    the input order — never on hash randomization.
    """
    if len(symbols) != len(weights):
        raise ValueError("symbols and weights must have equal length")
    if len(symbols) == 0:
        raise ValueError("need at least one symbol")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    if len(symbols) == 1:
        return {symbols[0]: 1}
    # Each heap entry: (weight, tiebreak, [symbol indices in subtree]).
    heap: list[tuple[float, int, list[int]]] = [
        (w, i, [i]) for i, w in enumerate(weights)
    ]
    heapq.heapify(heap)
    depths = [0] * len(symbols)
    counter = len(symbols)
    while len(heap) > 1:
        w1, _, members1 = heapq.heappop(heap)
        w2, _, members2 = heapq.heappop(heap)
        for index in members1 + members2:
            depths[index] += 1
        heapq.heappush(heap, (w1 + w2, counter, members1 + members2))
        counter += 1
    return {symbols[i]: depths[i] for i in range(len(symbols))}


def canonical_codes(lengths: dict[Symbol, int], order: Sequence[Symbol]) -> dict[Symbol, tuple[int, int]]:
    """Assign canonical codes ``(value, length)`` from code lengths.

    ``order`` fixes the tie-break between symbols of equal length.
    The resulting code set is prefix-free iff the lengths satisfy the
    Kraft equality/inequality (Huffman lengths always do).
    """
    position = {sym: i for i, sym in enumerate(order)}
    ranked = sorted(lengths.items(), key=lambda kv: (kv[1], position[kv[0]]))
    codes: dict[Symbol, tuple[int, int]] = {}
    code = 0
    prev_len = ranked[0][1] if ranked else 0
    for sym, length in ranked:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


def _compile_lut_level(
    codes: "list[tuple]", offset: int, width: int
) -> list:
    """One LUT level over bits ``[offset, offset + width)`` of the codes
    (all sharing their first ``offset`` bits).  See
    :meth:`VLCTable._build_lut` for the entry convention."""
    table: list = [None] * (1 << width)
    overflow: dict[int, list[tuple]] = {}
    for sym, value, length in codes:
        rest = length - offset
        if rest <= width:
            base = (value & ((1 << rest) - 1)) << (width - rest)
            span = 1 << (width - rest)
            table[base : base + span] = [(sym, length, None)] * span
        else:
            key = (value >> (rest - width)) & ((1 << width) - 1)
            overflow.setdefault(key, []).append((sym, value, length))
    for key, group in overflow.items():
        sub_bits = min(
            max(length for _, _, length in group) - offset - width, LUT_FIRST_BITS
        )
        table[key] = (None, sub_bits, _compile_lut_level(group, offset + width, sub_bits))
    return table


class VLCTable(Generic[Symbol]):
    """A prefix code over a finite symbol set.

    Built from a frequency model; provides ``encode`` (symbol →
    ``(value, length)``) and ``decode`` (pull one symbol off a
    :class:`BitReader`).
    """

    def __init__(self, symbols: Sequence[Symbol], weights: Sequence[float]) -> None:
        lengths = huffman_code_lengths(list(symbols), list(weights))
        self._codes = canonical_codes(lengths, list(symbols))
        self._decode: dict[tuple[int, int], Symbol] = {
            (value, length): sym for sym, (value, length) in self._codes.items()
        }
        self.max_length = max(length for _, length in self._codes.values())
        self._lut_bits, self._lut = self._build_lut()

    def _build_lut(self) -> tuple[int, list]:
        """Compile the canonical codes into the peek-indexed LUT
        :meth:`repro.codec.bitstream.BitReader.read_vlc` consumes.

        Entries are ``(symbol, total_length, None)`` for codes resolved
        at this level; a slot shared by longer codes holds
        ``(None, sub_bits, sub_table)`` where ``sub_table`` maps their
        next ``sub_bits`` bits the same way, recursively — each level is
        at most ``LUT_FIRST_BITS`` wide, so a pathological 30-bit code
        costs a couple of indirections instead of a multi-megabyte flat
        table.  Every index covered by a code's prefix maps to it, so a
        zero-padded peek near the end of the stream still resolves
        correctly (the reader rejects matches longer than the bits
        actually remaining).
        """
        codes = [(sym, value, length) for sym, (value, length) in self._codes.items()]
        first_bits = min(self.max_length, LUT_FIRST_BITS)
        _MET_LUT_BUILDS.inc()
        return first_bits, _compile_lut_level(codes, 0, first_bits)

    @property
    def lut(self) -> list:
        """The compiled decode LUT (see :meth:`_build_lut`) — exposed so
        hot parse loops can call ``reader.read_vlc(table.lut,
        table.lut_first_bits)`` directly, skipping the dispatch in
        :meth:`decode`."""
        _MET_LUT_HITS.inc()
        return self._lut

    @property
    def lut_first_bits(self) -> int:
        """Index width of the LUT's first level, in bits."""
        return self._lut_bits

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._codes

    def encode(self, symbol: Symbol) -> tuple[int, int]:
        try:
            return self._codes[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol!r} not in VLC table") from None

    def code_length(self, symbol: Symbol) -> int:
        return self.encode(symbol)[1]

    def decode(self, reader) -> Symbol:
        """Pull one symbol off ``reader`` through the LUT (one peek +
        one table hit).  Readers without the fused ``read_vlc``
        primitive (``ScalarBitReader``) fall back to the seed bit walk."""
        read_vlc = getattr(reader, "read_vlc", None)
        if read_vlc is None:
            return self.decode_bitwise(reader)
        return read_vlc(self._lut, self._lut_bits)

    def decode_bitwise(self, reader) -> Symbol:
        """The seed per-bit tree walk, kept as the golden reference the
        LUT path is tested (and benchmarked) against."""
        value = 0
        for length in range(1, self.max_length + 1):
            value = (value << 1) | reader.read_bit()
            sym = self._decode.get((value, length))
            if sym is not None:
                return sym
        raise ValueError("invalid prefix: no VLC symbol matches")

    def kraft_sum(self) -> float:
        """Σ 2^-len over all codes; exactly 1.0 for a complete code."""
        return sum(2.0 ** -length for _, length in self._codes.values())

    def items(self) -> Iterable[tuple[Symbol, tuple[int, int]]]:
        return self._codes.items()


# -- exp-Golomb (used for motion vector differences) --------------------


def ue_golomb_code(value: int) -> tuple[int, int]:
    """Unsigned exp-Golomb ``(code_value, length)`` of ``value >= 0``."""
    if value < 0:
        raise ValueError(f"ue(v) needs v >= 0, got {value}")
    v = value + 1
    bits = v.bit_length()
    return v, 2 * bits - 1


def se_golomb_code(value: int) -> tuple[int, int]:
    """Signed exp-Golomb mapping 0,+1,−1,+2,−2,… → 0,1,2,3,4,…"""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return ue_golomb_code(mapped)


def se_golomb_bits(value: int) -> int:
    """Length in bits of the signed exp-Golomb code for ``value``."""
    return se_golomb_code(value)[1]


def read_ue_golomb_bitwise(reader) -> int:
    """The seed bit-at-a-time ue(v) reader — golden reference, error
    path (its EOF/malformed behaviour is the contract), and fallback
    for readers without the fused ``read_ue`` primitive."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed exp-Golomb prefix")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def read_ue_golomb(reader) -> int:
    """Unsigned exp-Golomb: one 64-bit peek on word-level readers
    (:meth:`repro.codec.bitstream.BitReader.read_ue`), seed bit loop
    otherwise.  The fast path defers degenerate cases — over-long
    prefixes, truncated streams — to the bitwise loop so error
    behaviour is identical everywhere."""
    read_ue = getattr(reader, "read_ue", None)
    if read_ue is None:
        return read_ue_golomb_bitwise(reader)
    value = read_ue()
    if value < 0:
        return read_ue_golomb_bitwise(reader)
    return value


def read_se_golomb(reader) -> int:
    mapped = read_ue_golomb(reader)
    if mapped % 2:
        return (mapped + 1) // 2
    return -(mapped // 2)
