"""H.263-style hybrid video codec substrate.

The paper evaluates motion estimators inside the Telenor TMN5 H.263
encoder (reference [12]); that code is long gone from the public FTP
archive, so this package provides an equivalent: a closed-loop hybrid
DPCM/DCT encoder with

* 8x8 floating DCT + H.263 quantizer (Qp 1..31, dead-zone, mismatch-
  safe dequantization),
* zig-zag scanning and (LAST, RUN, LEVEL) event coding with canonical
  Huffman tables shaped like H.263's TCOEF table,
* H.263 median MV prediction and a signed exp-Golomb MVD code,
* half-pel motion compensation identical to the estimators' (shared
  code path), and
* an actual bitstream (BitWriter) with a matching decoder, so every
  reported bit is a real emitted-and-decodable bit.

Rate-distortion *rankings* between estimators — all the paper's figures
need — are preserved because the rate model has the same two Qp-coupled
components as TMN5: residual DCT bits and differential MV bits.
"""

from repro.codec.encoder import EncodeResult, Encoder, encode_sequence
from repro.codec.decoder import Decoder, decode_bitstream

__all__ = ["Decoder", "EncodeResult", "Encoder", "decode_bitstream", "encode_sequence"]
