"""Concrete VLC tables for the H.263-style coder.

Three tables are built at import time as deterministic canonical
Huffman codes over explicit frequency models (see
:mod:`repro.codec.vlc` for why generated tables are used instead of
transcribed standard ones):

* ``TCOEF_TABLE``  — (LAST, RUN, LEVEL-magnitude) events plus ESCAPE.
  The model gives geometrically decaying weight in RUN and LEVEL and a
  penalty for LAST=1, matching the structure of H.263 Table 16: the
  most common event (0, 0, 1) gets the shortest code, rare events fall
  through to a fixed 15-bit escape payload (1+6+8 bits after the
  escape prefix).  A sign bit follows every non-escape TCOEF code.
* ``CBPY_TABLE``   — coded-block-pattern for the four luma blocks
  (16 patterns; all-zero and all-coded are the most likely).
* ``MCBPC_TABLE``  — chroma CBP (4 patterns) for inter macroblocks.

Motion vector differences use signed exp-Golomb (``repro.codec.vlc``),
which has the same 1-bit-for-zero, symmetric-growth profile as H.263's
MVD table.

Because every table is a :class:`~repro.codec.vlc.VLCTable`, each one
compiles its peek-indexed decode LUT at import time — symbol decode on
a word-level :class:`~repro.codec.bitstream.BitReader` is one
``read_vlc`` call per symbol.  :data:`ALL_TABLES` names them for the
LUT-vs-bitwise equivalence tests and ``benchmarks/test_bench_vlc.py``.
"""

from __future__ import annotations

from repro.codec.vlc import VLCTable
from repro.codec.zigzag import CoefficientEvent

# -- TCOEF --------------------------------------------------------------

#: Sentinel symbol for events outside the table.
ESCAPE = "escape"

#: Escape payload: LAST (1) + RUN (6) + signed LEVEL (8 bits, two's
#: complement, −127..127 excluding 0 and −128).
ESCAPE_PAYLOAD_BITS = 1 + 6 + 8

_TCOEF_MAX_RUN = 20
_TCOEF_MAX_LEVEL = 8


def _tcoef_model() -> tuple[list, list]:
    symbols: list = []
    weights: list[float] = []
    for last in (0, 1):
        for run in range(_TCOEF_MAX_RUN + 1):
            for level in range(1, _TCOEF_MAX_LEVEL + 1):
                symbols.append((last, run, level))
                weight = (0.22 if last else 1.0) * (0.58 ** run) * (0.38 ** (level - 1))
                weights.append(weight)
    symbols.append(ESCAPE)
    weights.append(2e-4)
    return symbols, weights


_sym, _w = _tcoef_model()
TCOEF_TABLE: VLCTable = VLCTable(_sym, _w)


def tcoef_symbol(event: CoefficientEvent):
    """Table symbol for an event, or ESCAPE when out of range."""
    magnitude = abs(event.level)
    if event.run <= _TCOEF_MAX_RUN and magnitude <= _TCOEF_MAX_LEVEL:
        return (1 if event.last else 0, event.run, magnitude)
    return ESCAPE


def tcoef_event_bits(event: CoefficientEvent) -> int:
    """Exact coded length of one event, including sign / escape payload."""
    symbol = tcoef_symbol(event)
    if symbol is ESCAPE:
        return TCOEF_TABLE.code_length(ESCAPE) + ESCAPE_PAYLOAD_BITS
    return TCOEF_TABLE.code_length(symbol) + 1  # + sign bit


# -- CBPY / MCBPC --------------------------------------------------------


def _cbpy_model() -> tuple[list[int], list[float]]:
    """Luma CBP patterns: weight by popcount — sparse patterns dominate
    at the Qp range the paper uses, all-coded dominates at low Qp; give
    both ends mass like the standard's table does."""
    symbols = list(range(16))
    weights = []
    for pattern in symbols:
        ones = bin(pattern).count("1")
        weights.append({0: 8.0, 1: 2.0, 2: 1.0, 3: 1.2, 4: 4.0}[ones])
    return symbols, weights


CBPY_TABLE: VLCTable = VLCTable(*_cbpy_model())


def _mcbpc_model() -> tuple[list[int], list[float]]:
    symbols = [0, 1, 2, 3]  # (cb coded?) * 2 + (cr coded?)
    weights = [8.0, 1.0, 1.0, 0.5]
    return symbols, weights


MCBPC_TABLE: VLCTable = VLCTable(*_mcbpc_model())

#: Every canonical table the coder uses, by name — the equivalence
#: tests and the VLC benchmark iterate this.
ALL_TABLES: dict[str, VLCTable] = {
    "tcoef": TCOEF_TABLE,
    "cbpy": CBPY_TABLE,
    "mcbpc": MCBPC_TABLE,
}
