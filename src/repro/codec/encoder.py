"""Closed-loop H.263-style encoder.

The first frame is intra coded; every following frame is a P-frame:
motion estimation runs against the *reconstructed* previous frame (the
decoder's reference), prediction residuals go through DCT → H.263
quantizer → TCOEF VLC, and macroblocks with a zero vector and an empty
coded-block pattern collapse to a 1-bit COD skip flag.  A real
bitstream is emitted; :mod:`repro.codec.decoder` can reconstruct the
identical frames from it.

This is the rig behind Figures 5-6 and Table 1: the estimator is
pluggable, the per-frame :class:`repro.me.stats.SearchStats` feed the
complexity table, and PSNR/bits feed the RD curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field, replace as dataclass_replace

import numpy as np

from repro.analysis.psnr import psnr
from repro.codec.bitstream import BitWriter
from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.macroblock import (
    code_inter_block,
    code_intra_block,
    join_luma_blocks,
    predict_chroma_block,
    split_luma_blocks,
    write_events,
)
from repro.codec.quantizer import check_qp
from repro.codec.mv_coding import predict_mv, write_mvd
from repro.codec.vlc_tables import CBPY_TABLE, MCBPC_TABLE
from repro.me.engine import ChromaReferencePlane, ReferencePlane, frame_mc_luma
from repro.me.estimator import MotionEstimator, create_estimator
from repro.me.stats import SearchStats
from repro.me.subpel import predict_block
from repro.me.types import MotionField, MotionVector
from repro.video.frame import Frame
from repro.video.sequence import Sequence

#: Picture start code value and width (stand-in for H.263's PSC).
START_CODE = 0x7E7E
START_CODE_BITS = 16

#: Version-2 framing: each picture is preceded by a byte-aligned
#: 32-bit frame start code and a 32-bit payload length in bytes, so a
#: scanner (:class:`repro.codec.decoder.FrameIndex`) can split the
#: stream into per-frame byte ranges without parsing a single symbol.
#: The ``00 00 01`` prefix can never open a version-1 stream (those
#: begin with the 0x7E7E PSC), which is what makes version detection a
#: three-byte check.
FRAME_START_CODE = 0x000001B6
FRAME_START_CODE_BITS = 32
FRAME_LENGTH_BITS = 32

#: Bits in a picture header: start code, P-flag, Qp, p, mb_rows,
#: mb_cols.  The single definition every layer that sizes a minimal
#: picture shares (the decoder's ``has_more``, the whole-buffer and
#: incremental scanners) — they must agree on which trailing fragments
#: are too short to open a frame.
PICTURE_HEADER_BITS = START_CODE_BITS + 1 + 5 + 5 + 16


@dataclass(frozen=True)
class FrameRecord:
    """Per-frame encoding outcome."""

    index: int
    frame_type: str  # "I" or "P"
    bits: int
    psnr_y: float
    psnr_cb: float
    psnr_cr: float
    #: Search statistics (None for intra frames).
    stats: SearchStats | None
    skipped_mbs: int = 0
    mv_bits: int = 0
    coefficient_bits: int = 0


@dataclass
class EncodeResult:
    """Everything one sequence encode produced."""

    name: str
    qp: int
    estimator_name: str
    fps: float
    frames: list[FrameRecord]
    bitstream: bytes
    reconstruction: list[Frame] = dataclass_field(default_factory=list)
    bitstream_version: int = 1

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.frames)

    @property
    def mean_psnr_y(self) -> float:
        return float(np.mean([f.psnr_y for f in self.frames]))

    @property
    def mean_psnr_p_frames(self) -> float:
        """Luma PSNR averaged over P-frames only (the part motion
        estimation influences)."""
        p_frames = [f.psnr_y for f in self.frames if f.frame_type == "P"]
        if not p_frames:
            raise ValueError("no P-frames in this encode")
        return float(np.mean(p_frames))

    @property
    def rate_kbps(self) -> float:
        """Average rate in kbit/s at the sequence's frame rate — the
        horizontal axis of the paper's Figs. 5-6."""
        return self.total_bits / len(self.frames) * self.fps / 1000.0

    @property
    def search_stats(self) -> SearchStats:
        """Merged motion-search statistics across all P-frames."""
        merged = SearchStats()
        for record in self.frames:
            if record.stats is not None:
                merged.merge(record.stats)
        return merged

    @property
    def avg_positions_per_mb(self) -> float:
        """Table 1's metric for this encode."""
        return self.search_stats.avg_positions_per_block

    def __repr__(self) -> str:
        return (
            f"EncodeResult({self.name!r}, {self.estimator_name}, qp={self.qp}, "
            f"{len(self.frames)} frames, {self.rate_kbps:.1f} kbit/s, "
            f"{self.mean_psnr_y:.2f} dB)"
        )


class Encoder:
    """Hybrid encoder with a pluggable motion estimator.

    Parameters
    ----------
    estimator:
        A :class:`MotionEstimator` instance or a registry name
        (``"acbm"``, ``"fsbm"``, ``"pbm"``, ``"tss"``, ...).
    qp:
        H.263 quantizer step (1..31), constant for the whole sequence.
    estimator_kwargs:
        Forwarded to :func:`repro.me.estimator.create_estimator` when
        ``estimator`` is a name.
    keep_reconstruction:
        Store reconstructed frames on the result (handy for analysis,
        off for large sweeps to save memory).
    use_engine:
        ``True`` (default) runs the local reconstruction loop's motion
        compensation whole-frame through the shared
        :class:`ReferencePlane` / :class:`ChromaReferencePlane` caches;
        ``False`` forces the seed per-block prediction calls.  Both
        paths emit byte-identical bitstreams (this flag is independent
        of the estimator's own ``use_engine``, which governs the
        *search*).
    bitstream_version:
        ``1`` (default) emits the seed format, byte-identical to the
        original encoder: pictures packed back to back with no
        alignment.  ``2`` prefixes every picture with a byte-aligned
        frame start code and a byte-length field (and zero-pads each
        picture to a byte boundary), so the stream is splittable into
        per-frame ranges without parsing — the symbols inside each
        picture are bit-identical to version 1.
    """

    def __init__(
        self,
        estimator: MotionEstimator | str = "acbm",
        qp: int = 16,
        estimator_kwargs: dict | None = None,
        keep_reconstruction: bool = True,
        use_engine: bool = True,
        bitstream_version: int = 1,
    ) -> None:
        self.qp = check_qp(qp)
        if isinstance(estimator, str):
            estimator = create_estimator(estimator, **(estimator_kwargs or {}))
        elif estimator_kwargs:
            raise ValueError("estimator_kwargs only applies when estimator is a name")
        self.estimator = estimator
        self.keep_reconstruction = keep_reconstruction
        self.use_engine = use_engine
        if bitstream_version not in (1, 2):
            raise ValueError(f"bitstream_version must be 1 or 2, got {bitstream_version}")
        self.bitstream_version = bitstream_version

    # -- public API ----------------------------------------------------

    def encode_frame_into(
        self,
        writer: BitWriter,
        frame: Frame,
        position: int,
        prev_recon: Frame | None,
        prev_field: MotionField | None,
    ) -> tuple[FrameRecord, Frame, MotionField | None]:
        """Encode one frame (intra at ``position`` 0, inter after) into
        ``writer``, including any version-2 framing.

        Returns ``(record, reconstruction, motion_field)`` — the state
        the caller threads into the next call.  This is the single
        per-frame step both :meth:`encode` and the streaming encoder
        (:class:`repro.streaming.StreamEncoder`) drive, which is what
        makes their emitted bytes identical by construction.
        """
        framed = self.bitstream_version == 2
        if framed:
            frame_start_bits = writer.bit_count
            writer.align()
            writer.write_bits(FRAME_START_CODE, FRAME_START_CODE_BITS)
            length_pos = writer.byte_length
            writer.write_bits(0, FRAME_LENGTH_BITS)  # backpatched below
            payload_start = writer.byte_length
        if position == 0:
            bits, recon, coef_bits = self._encode_intra_frame(writer, frame)
            record = FrameRecord(
                index=frame.index,
                frame_type="I",
                bits=bits,
                psnr_y=psnr(frame.y, recon.y),
                psnr_cb=psnr(frame.cb, recon.cb),
                psnr_cr=psnr(frame.cr, recon.cr),
                stats=None,
                coefficient_bits=coef_bits,
            )
            field = None
        else:
            # One reference cache per P-frame, shared by the motion
            # search and the luma motion compensation below — both
            # read the same interpolated half-pel samples.
            plane = ReferencePlane.wrap(prev_recon.y)
            field, stats = self.estimator.estimate(
                frame.y, prev_recon.y, prev_field=prev_field, qp=self.qp, ref_plane=plane
            )
            bits, recon, skipped, mv_bits, coef_bits = self._encode_inter_frame(
                writer, frame, prev_recon, field, plane
            )
            record = FrameRecord(
                index=frame.index,
                frame_type="P",
                bits=bits,
                psnr_y=psnr(frame.y, recon.y),
                psnr_cb=psnr(frame.cb, recon.cb),
                psnr_cr=psnr(frame.cr, recon.cr),
                stats=stats,
                skipped_mbs=skipped,
                mv_bits=mv_bits,
                coefficient_bits=coef_bits,
            )
        if framed:
            # Close the frame: pad to a byte boundary, backpatch the
            # length field, and charge the framing + padding bits to
            # the frame so v2 rate numbers reflect emitted bytes.
            writer.align()
            writer.patch_u32(length_pos, writer.byte_length - payload_start)
            record = dataclass_replace(record, bits=writer.bit_count - frame_start_bits)
        return record, recon, field

    def encode(self, sequence: Sequence) -> EncodeResult:
        """Encode a whole sequence (frame 0 intra, rest inter)."""
        writer = BitWriter()
        records: list[FrameRecord] = []
        reconstruction: list[Frame] = []
        prev_recon: Frame | None = None
        prev_field: MotionField | None = None
        for i, frame in enumerate(sequence):
            record, recon, prev_field = self.encode_frame_into(
                writer, frame, i, prev_recon, prev_field
            )
            records.append(record)
            prev_recon = recon
            if self.keep_reconstruction:
                reconstruction.append(recon)
        return EncodeResult(
            name=sequence.name,
            qp=self.qp,
            estimator_name=self.estimator.name or type(self.estimator).__name__,
            fps=sequence.fps,
            frames=records,
            bitstream=writer.getvalue(),
            reconstruction=reconstruction,
            bitstream_version=self.bitstream_version,
        )

    # -- frame coding ----------------------------------------------------

    def _write_picture_header(self, writer: BitWriter, frame: Frame, frame_type: str) -> int:
        before = writer.bit_count
        geometry = frame.geometry
        writer.write_bits(START_CODE, START_CODE_BITS)
        writer.write_bit(0 if frame_type == "I" else 1)
        writer.write_bits(self.qp, 5)
        writer.write_bits(self.estimator.p, 5)
        writer.write_bits(geometry.mb_rows, 8)
        writer.write_bits(geometry.mb_cols, 8)
        return writer.bit_count - before

    def _encode_intra_frame(self, writer: BitWriter, frame: Frame) -> tuple[int, Frame, int]:
        start_bits = writer.bit_count
        self._write_picture_header(writer, frame, "I")
        geometry = frame.geometry
        recon_y = np.empty_like(frame.y)
        recon_cb = np.empty_like(frame.cb)
        recon_cr = np.empty_like(frame.cr)
        coef_bits = 0
        for r in range(geometry.mb_rows):
            for c in range(geometry.mb_cols):
                luma = frame.luma_block(r, c).astype(np.float64)
                cb, cr = frame.chroma_blocks(r, c)
                blocks = np.concatenate(
                    [split_luma_blocks(luma), cb[None].astype(np.float64), cr[None].astype(np.float64)]
                )
                coefficients = forward_dct(blocks)
                coded = [code_intra_block(coefficients[k], self.qp) for k in range(6)]
                cbpy = sum((1 << k) for k in range(4) if coded[k][1])
                mcbpc = (2 if coded[4][1] else 0) | (1 if coded[5][1] else 0)
                writer.write_code(MCBPC_TABLE.encode(mcbpc))
                writer.write_code(CBPY_TABLE.encode(cbpy))
                for dc_level, events, _ in coded:
                    writer.write_bits(dc_level, 8)
                    if events:
                        coef_bits += write_events(writer, events)
                recon_blocks = np.clip(
                    np.rint(inverse_dct(np.stack([rc for _, _, rc in coded]))), 0, 255
                ).astype(np.uint8)
                y0, x0 = 16 * r, 16 * c
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = join_luma_blocks(recon_blocks[:4])
                recon_cb[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = recon_blocks[4]
                recon_cr[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = recon_blocks[5]
        total = writer.bit_count - start_bits
        return total, Frame(recon_y, recon_cb, recon_cr, index=frame.index), coef_bits

    def _encode_inter_frame(
        self,
        writer: BitWriter,
        frame: Frame,
        reference: Frame,
        field: MotionField,
        plane: ReferencePlane | None = None,
    ) -> tuple[int, Frame, int, int, int]:
        start_bits = writer.bit_count
        self._write_picture_header(writer, frame, "P")
        geometry = frame.geometry
        recon_y = np.empty_like(frame.y)
        recon_cb = np.empty_like(frame.cb)
        recon_cr = np.empty_like(frame.cr)
        # Vectors as the decoder will see them (skip forces zero); used
        # for median prediction of subsequent MVDs.
        coded_field = MotionField(geometry.mb_rows, geometry.mb_cols)
        skipped = 0
        mv_bits_total = 0
        coef_bits_total = 0
        luma_ref = plane if plane is not None else reference.y
        # Whole-frame motion compensation up front: the field is fully
        # decided before reconstruction, so the engine path predicts
        # all three planes in three batched gathers (the chroma
        # half-pel interpolation runs once per frame instead of twice
        # per macroblock) and the loop below just slices them.
        engine = self.use_engine and plane is not None and field.is_complete
        if engine:
            chroma = ChromaReferencePlane.wrap(reference.cb, reference.cr)
            engine = chroma is not None
        if engine:
            field_hx, field_hy = field.to_arrays()
            pred_y_plane = frame_mc_luma(plane, field_hx, field_hy)
            pred_cb_plane, pred_cr_plane = chroma.mc_frame(field_hx, field_hy, self.estimator.p)
        for r in range(geometry.mb_rows):
            for c in range(geometry.mb_cols):
                mv = field.get(r, c)
                if mv is None:
                    raise ValueError(f"motion field missing entry ({r}, {c})")
                y0, x0 = 16 * r, 16 * c
                cy0, cx0 = 8 * r, 8 * c
                if engine:
                    pred_y = pred_y_plane[y0 : y0 + 16, x0 : x0 + 16].astype(np.float64)
                    pred_cb = pred_cb_plane[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.float64)
                    pred_cr = pred_cr_plane[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.float64)
                else:
                    pred_y = predict_block(luma_ref, y0, x0, mv, 16, 16).astype(np.float64)
                    pred_cb = predict_chroma_block(
                        reference.cb, cy0, cx0, mv, self.estimator.p
                    ).astype(np.float64)
                    pred_cr = predict_chroma_block(
                        reference.cr, cy0, cx0, mv, self.estimator.p
                    ).astype(np.float64)
                cur_y = frame.luma_block(r, c).astype(np.float64)
                cur_cb, cur_cr = frame.chroma_blocks(r, c)
                residual = np.concatenate(
                    [
                        split_luma_blocks(cur_y - pred_y),
                        (cur_cb.astype(np.float64) - pred_cb)[None],
                        (cur_cr.astype(np.float64) - pred_cr)[None],
                    ]
                )
                coefficients = forward_dct(residual)
                coded = [code_inter_block(coefficients[k], self.qp) for k in range(6)]
                cbpy = sum((1 << k) for k in range(4) if coded[k][0])
                mcbpc = (2 if coded[4][0] else 0) | (1 if coded[5][0] else 0)
                if mv.is_zero and cbpy == 0 and mcbpc == 0:
                    writer.write_bit(1)  # COD: skipped
                    skipped += 1
                    coded_field.set(r, c, MotionVector.zero())
                    recon_y[y0 : y0 + 16, x0 : x0 + 16] = pred_y.astype(np.uint8)
                    recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = pred_cb.astype(np.uint8)
                    recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = pred_cr.astype(np.uint8)
                    continue
                writer.write_bit(0)  # COD: coded
                writer.write_code(MCBPC_TABLE.encode(mcbpc))
                writer.write_code(CBPY_TABLE.encode(cbpy))
                predictor = predict_mv(coded_field, r, c)
                mv_bits_total += write_mvd(writer, mv, predictor)
                coded_field.set(r, c, mv)
                for events, _ in coded:
                    if events:
                        coef_bits_total += write_events(writer, events)
                recon_residual = inverse_dct(np.stack([rc for _, rc in coded]))
                rec_y = np.clip(np.rint(join_luma_blocks(recon_residual[:4]) + pred_y), 0, 255)
                rec_cb = np.clip(np.rint(recon_residual[4] + pred_cb), 0, 255)
                rec_cr = np.clip(np.rint(recon_residual[5] + pred_cr), 0, 255)
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = rec_y.astype(np.uint8)
                recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cb.astype(np.uint8)
                recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cr.astype(np.uint8)
        total = writer.bit_count - start_bits
        recon = Frame(recon_y, recon_cb, recon_cr, index=frame.index)
        return total, recon, skipped, mv_bits_total, coef_bits_total


def encode_sequence(
    sequence: Sequence,
    qp: int = 16,
    estimator: MotionEstimator | str = "acbm",
    estimator_kwargs: dict | None = None,
    keep_reconstruction: bool = False,
    use_engine: bool = True,
    bitstream_version: int = 1,
) -> EncodeResult:
    """One-call convenience wrapper around :class:`Encoder`.

    >>> from repro.video.synthesis.sequences import make_sequence
    >>> seq = make_sequence("miss_america", frames=3)
    >>> result = encode_sequence(seq, qp=16, estimator="pbm")
    >>> result.total_bits > 0
    True
    """
    encoder = Encoder(
        estimator=estimator,
        qp=qp,
        estimator_kwargs=estimator_kwargs,
        keep_reconstruction=keep_reconstruction,
        use_engine=use_engine,
        bitstream_version=bitstream_version,
    )
    return encoder.encode(sequence)
