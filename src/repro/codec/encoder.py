"""Closed-loop H.263-style encoder.

The first frame is intra coded; every following frame is a P-frame:
motion estimation runs against the *reconstructed* previous frame (the
decoder's reference), prediction residuals go through DCT → H.263
quantizer → TCOEF VLC, and macroblocks with a zero vector and an empty
coded-block pattern collapse to a 1-bit COD skip flag.  A real
bitstream is emitted; :mod:`repro.codec.decoder` can reconstruct the
identical frames from it.

This is the rig behind Figures 5-6 and Table 1: the estimator is
pluggable, the per-frame :class:`repro.me.stats.SearchStats` feed the
complexity table, and PSNR/bits feed the RD curves.

**GOP structure** (``i_period`` / ``n_ref_frames``): passing
``i_period=N`` opens a new GOP every N frames with a spatially
predicted I-frame (:mod:`repro.codec.intra` modes, chosen per
macroblock), and ``n_ref_frames=K`` keeps the K most recent
reconstructions as a reference list — each coded P-macroblock selects
its reference with an exp-Golomb index.  The reference list resets at
every I-frame, so GOPs are fully independent: that is what lets
:func:`repro.parallel.gop.encode_sequence_parallel` encode GOPs in
separate processes and splice byte-identical version-2 streams.  GOP
frames carry the extended picture start code; the defaults
(``i_period=None, n_ref_frames=1``) emit the seed syntax, byte for
byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field, replace as dataclass_replace

import numpy as np

from repro.analysis.psnr import psnr
from repro.codec.bitstream import BitWriter
from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.intra import (
    INTRA_MODE_BITS,
    choose_intra_modes,
    intra_mode_costs_reference,
    intra_predict,
)
from repro.codec.macroblock import (
    code_inter_block,
    code_intra_block,
    join_luma_blocks,
    predict_chroma_block,
    split_luma_blocks,
    write_events,
)
from repro.codec.quantizer import check_qp
from repro.codec.mv_coding import predict_mv, write_mvd
from repro.codec.vlc_tables import CBPY_TABLE, MCBPC_TABLE
from repro.me.engine import (
    ChromaReferencePlane,
    ReferencePlane,
    frame_mc_luma,
    intra_mode_cost_surfaces,
)
from repro.me.estimator import MotionEstimator, create_estimator
from repro.me.stats import SearchStats
from repro.obs import metrics, trace
from repro.me.subpel import predict_block
from repro.me.types import MotionField, MotionVector
from repro.video.frame import Frame
from repro.video.sequence import Sequence

#: Picture start code value and width (stand-in for H.263's PSC).
START_CODE = 0x7E7E
START_CODE_BITS = 16

#: Extended picture start code: same width, selects the GOP syntax for
#: the picture it opens — predictive intra modes in I-frames, an
#: active-reference count (and per-MB reference indices) in P-frames.
#: Stateless per frame, so seed-syntax and GOP-syntax pictures mix
#: freely in one stream and the default encoder configuration never
#: emits it (byte-identity with the seed format is golden-pinned).
START_CODE_EXT = 0x7E7D

#: Format cap on the reference list length: the extended P-frame header
#: carries ``active_refs - 1`` in 3 bits.
MAX_REF_FRAMES = 8

#: Version-2 framing: each picture is preceded by a byte-aligned
#: 32-bit frame start code and a 32-bit payload length in bytes, so a
#: scanner (:class:`repro.codec.decoder.FrameIndex`) can split the
#: stream into per-frame byte ranges without parsing a single symbol.
#: The ``00 00 01`` prefix can never open a version-1 stream (those
#: begin with the 0x7E7E PSC), which is what makes version detection a
#: three-byte check.
FRAME_START_CODE = 0x000001B6
FRAME_START_CODE_BITS = 32
FRAME_LENGTH_BITS = 32

#: Bits in a picture header: start code, P-flag, Qp, p, mb_rows,
#: mb_cols.  The single definition every layer that sizes a minimal
#: picture shares (the decoder's ``has_more``, the whole-buffer and
#: incremental scanners) — they must agree on which trailing fragments
#: are too short to open a frame.
PICTURE_HEADER_BITS = START_CODE_BITS + 1 + 5 + 5 + 16

# Registry instruments (identity-stable across resets, so module-level
# caching is safe).  The bits-by-syntax-element split is the ledger the
# ROADMAP's rate-control item needs: header + mode + MV + coefficients
# sums to every non-framing bit the encoder emits.
_MET_FRAMES_OUT = metrics.counter("encode.frames")
_MET_BITS_OUT = metrics.counter("encode.bits")
_MET_BITS_PER_FRAME = metrics.histogram("encode.bits_per_frame")
_MET_BITS_HEADER = metrics.counter("encode.bits.headers")
_MET_BITS_MODE = metrics.counter("encode.bits.mode")
_MET_BITS_MV = metrics.counter("encode.bits.mv")
_MET_BITS_COEF = metrics.counter("encode.bits.coefficients")
_MET_SAD_EVALS = metrics.counter("me.sad_evaluations")


@dataclass(frozen=True)
class FrameRecord:
    """Per-frame encoding outcome."""

    index: int
    frame_type: str  # "I" or "P"
    bits: int
    psnr_y: float
    psnr_cb: float
    psnr_cr: float
    #: Search statistics (None for intra frames).
    stats: SearchStats | None
    skipped_mbs: int = 0
    mv_bits: int = 0
    coefficient_bits: int = 0


@dataclass
class EncodeResult:
    """Everything one sequence encode produced."""

    name: str
    qp: int
    estimator_name: str
    fps: float
    frames: list[FrameRecord]
    bitstream: bytes
    reconstruction: list[Frame] = dataclass_field(default_factory=list)
    bitstream_version: int = 1

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.frames)

    @property
    def mean_psnr_y(self) -> float:
        return float(np.mean([f.psnr_y for f in self.frames]))

    @property
    def mean_psnr_p_frames(self) -> float:
        """Luma PSNR averaged over P-frames only (the part motion
        estimation influences)."""
        p_frames = [f.psnr_y for f in self.frames if f.frame_type == "P"]
        if not p_frames:
            raise ValueError("no P-frames in this encode")
        return float(np.mean(p_frames))

    @property
    def rate_kbps(self) -> float:
        """Average rate in kbit/s at the sequence's frame rate — the
        horizontal axis of the paper's Figs. 5-6."""
        return self.total_bits / len(self.frames) * self.fps / 1000.0

    @property
    def keyframes(self) -> tuple[int, ...]:
        """Positions of the I-frames — the GOP openings a decoder can
        start from (see ``decode_bitstream(..., start_frame=...)``)."""
        return tuple(i for i, f in enumerate(self.frames) if f.frame_type == "I")

    @property
    def search_stats(self) -> SearchStats:
        """Merged motion-search statistics across all P-frames."""
        merged = SearchStats()
        for record in self.frames:
            if record.stats is not None:
                merged.merge(record.stats)
        return merged

    @property
    def avg_positions_per_mb(self) -> float:
        """Table 1's metric for this encode."""
        return self.search_stats.avg_positions_per_block

    def __repr__(self) -> str:
        return (
            f"EncodeResult({self.name!r}, {self.estimator_name}, qp={self.qp}, "
            f"{len(self.frames)} frames, {self.rate_kbps:.1f} kbit/s, "
            f"{self.mean_psnr_y:.2f} dB)"
        )


class Encoder:
    """Hybrid encoder with a pluggable motion estimator.

    Parameters
    ----------
    estimator:
        A :class:`MotionEstimator` instance or a registry name
        (``"acbm"``, ``"fsbm"``, ``"pbm"``, ``"tss"``, ...).
    qp:
        H.263 quantizer step (1..31), constant for the whole sequence.
    estimator_kwargs:
        Forwarded to :func:`repro.me.estimator.create_estimator` when
        ``estimator`` is a name.
    keep_reconstruction:
        Store reconstructed frames on the result (handy for analysis,
        off for large sweeps to save memory).
    use_engine:
        ``True`` (default) runs the local reconstruction loop's motion
        compensation whole-frame through the shared
        :class:`ReferencePlane` / :class:`ChromaReferencePlane` caches;
        ``False`` forces the seed per-block prediction calls.  Both
        paths emit byte-identical bitstreams (this flag is independent
        of the estimator's own ``use_engine``, which governs the
        *search*).
    bitstream_version:
        ``1`` (default) emits the seed format, byte-identical to the
        original encoder: pictures packed back to back with no
        alignment.  ``2`` prefixes every picture with a byte-aligned
        frame start code and a byte-length field (and zero-pads each
        picture to a byte boundary), so the stream is splittable into
        per-frame ranges without parsing — the symbols inside each
        picture are bit-identical to version 1.
    i_period:
        ``None`` (default) keeps the seed behaviour: one I-frame, then
        an open-ended P-chain.  ``N >= 1`` opens a new GOP every N
        frames with a spatially predicted I-frame; the reference list
        resets there, making each GOP independently decodable (random
        access via :class:`repro.codec.decoder.FrameIndex`) and
        independently *encodable*
        (:func:`repro.parallel.gop.encode_sequence_parallel`).
    n_ref_frames:
        Reference list depth (1..8).  ``1`` (default) is the seed
        single-reference closed loop; ``K > 1`` searches each P-frame
        against the K most recent reconstructions and codes a per-MB
        reference index, switching those P-frames to the extended
        picture syntax.
    """

    def __init__(
        self,
        estimator: MotionEstimator | str = "acbm",
        qp: int = 16,
        estimator_kwargs: dict | None = None,
        keep_reconstruction: bool = True,
        use_engine: bool = True,
        bitstream_version: int = 1,
        i_period: int | None = None,
        n_ref_frames: int = 1,
    ) -> None:
        self.qp = check_qp(qp)
        if isinstance(estimator, str):
            estimator = create_estimator(estimator, **(estimator_kwargs or {}))
        elif estimator_kwargs:
            raise ValueError("estimator_kwargs only applies when estimator is a name")
        self.estimator = estimator
        self.keep_reconstruction = keep_reconstruction
        self.use_engine = use_engine
        if bitstream_version not in (1, 2):
            raise ValueError(f"bitstream_version must be 1 or 2, got {bitstream_version}")
        self.bitstream_version = bitstream_version
        if i_period is not None and i_period < 1:
            raise ValueError(
                f"i_Period must be a positive GOP length in frames "
                f"(or None for one open-ended GOP), got {i_period}"
            )
        if not 1 <= n_ref_frames <= MAX_REF_FRAMES:
            raise ValueError(
                f"nRefFrames must be between 1 and {MAX_REF_FRAMES} "
                f"(the 3-bit active-reference field's reach), got {n_ref_frames}"
            )
        self.i_period = i_period
        self.n_ref_frames = n_ref_frames

    @property
    def gop_syntax(self) -> bool:
        """Whether this configuration uses the extended (GOP) picture
        syntax anywhere.  ``False`` means every emitted byte matches
        the seed encoder."""
        return self.i_period is not None or self.n_ref_frames > 1

    def is_intra_position(self, position: int) -> bool:
        """Frame-type decision: position 0 always, then every
        ``i_period``-th frame when a GOP period is set."""
        return position == 0 or (self.i_period is not None and position % self.i_period == 0)

    # -- public API ----------------------------------------------------

    def encode_frame_into(
        self,
        writer: BitWriter,
        frame: Frame,
        position: int,
        references: "Frame | list[Frame] | None",
        prev_field: MotionField | None,
    ) -> tuple[FrameRecord, Frame, MotionField | None]:
        """Encode one frame (intra at GOP openings, inter otherwise)
        into ``writer``, including any version-2 framing.

        ``references`` is the reference list, most recent first (a bare
        :class:`Frame` or ``None`` is accepted for single-reference
        callers).  Returns ``(record, reconstruction, motion_field)`` —
        thread the reconstruction back through
        :meth:`advance_references` and pass the field to the next call.
        This is the single per-frame step :meth:`encode`, the streaming
        encoder (:class:`repro.streaming.StreamEncoder`) and the
        per-GOP job (:class:`repro.parallel.jobs.GopEncodeJob`) all
        drive, which is what makes their emitted bytes identical by
        construction.
        """
        with trace.span("encode.frame", position=position) as frame_span:
            refs = self._as_reference_list(references)
            framed = self.bitstream_version == 2
            if framed:
                frame_start_bits = writer.bit_count
                writer.align()
                writer.write_bits(FRAME_START_CODE, FRAME_START_CODE_BITS)
                length_pos = writer.byte_length
                writer.write_bits(0, FRAME_LENGTH_BITS)  # backpatched below
                payload_start = writer.byte_length
            if self.is_intra_position(position):
                if self.gop_syntax:
                    bits, recon, coef_bits = self._encode_intra_pred_frame(writer, frame)
                else:
                    bits, recon, coef_bits = self._encode_intra_frame(writer, frame)
                record = FrameRecord(
                    index=frame.index,
                    frame_type="I",
                    bits=bits,
                    psnr_y=psnr(frame.y, recon.y),
                    psnr_cb=psnr(frame.cb, recon.cb),
                    psnr_cr=psnr(frame.cr, recon.cr),
                    stats=None,
                    coefficient_bits=coef_bits,
                )
                field = None
                header_bits = PICTURE_HEADER_BITS
            else:
                if not refs:
                    raise ValueError(f"P-frame at position {position} without a reference")
                if self.n_ref_frames > 1:
                    bits, recon, skipped, mv_bits, coef_bits, field, stats = (
                        self._encode_inter_frame_multi(writer, frame, refs, prev_field)
                    )
                    header_bits = PICTURE_HEADER_BITS + 3
                else:
                    prev_recon = refs[0]
                    # One reference cache per P-frame, shared by the motion
                    # search and the luma motion compensation below — both
                    # read the same interpolated half-pel samples.
                    plane = ReferencePlane.wrap(prev_recon.y)
                    with trace.span("encode.me"):
                        field, stats = self.estimator.estimate(
                            frame.y,
                            prev_recon.y,
                            prev_field=prev_field,
                            qp=self.qp,
                            ref_plane=plane,
                        )
                    bits, recon, skipped, mv_bits, coef_bits = self._encode_inter_frame(
                        writer, frame, prev_recon, field, plane
                    )
                    header_bits = PICTURE_HEADER_BITS
                record = FrameRecord(
                    index=frame.index,
                    frame_type="P",
                    bits=bits,
                    psnr_y=psnr(frame.y, recon.y),
                    psnr_cb=psnr(frame.cb, recon.cb),
                    psnr_cr=psnr(frame.cr, recon.cr),
                    stats=stats,
                    skipped_mbs=skipped,
                    mv_bits=mv_bits,
                    coefficient_bits=coef_bits,
                )
            if framed:
                # Close the frame: pad to a byte boundary, backpatch the
                # length field, and charge the framing + padding bits to
                # the frame so v2 rate numbers reflect emitted bytes.
                writer.align()
                writer.patch_u32(length_pos, writer.byte_length - payload_start)
                record = dataclass_replace(record, bits=writer.bit_count - frame_start_bits)
            frame_span.set(frame=frame.index, type=record.frame_type, bits=record.bits)
        # Registry counts.  ``record.bits`` is what the frame emitted
        # (v2 includes framing + padding); the start code, length field
        # and alignment bits are charged to the headers bucket so
        # headers + mode + MV + coefficients == encode.bits exactly.
        _MET_FRAMES_OUT.inc()
        _MET_BITS_OUT.inc(record.bits)
        _MET_BITS_PER_FRAME.observe(record.bits)
        _MET_BITS_HEADER.inc(header_bits + (record.bits - bits))
        _MET_BITS_MV.inc(record.mv_bits)
        _MET_BITS_COEF.inc(record.coefficient_bits)
        _MET_BITS_MODE.inc(bits - header_bits - record.mv_bits - record.coefficient_bits)
        if record.stats is not None:
            _MET_SAD_EVALS.inc(record.stats.positions)
        return record, recon, field

    @staticmethod
    def _as_reference_list(references: "Frame | list[Frame] | None") -> list[Frame]:
        if references is None:
            return []
        if isinstance(references, Frame):
            return [references]
        return list(references)

    def advance_references(
        self, references: "Frame | list[Frame] | None", record: FrameRecord, recon: Frame
    ) -> list[Frame]:
        """Fold one encoded frame into the reference list (most recent
        first): I-frames reset the list — the GOP-independence rule that
        makes per-GOP parallel encode splice-identical — and P-frames
        push onto it, trimmed to ``n_ref_frames``."""
        if record.frame_type == "I":
            return [recon]
        return [recon, *self._as_reference_list(references)][: self.n_ref_frames]

    def encode(self, sequence: Sequence) -> EncodeResult:
        """Encode a whole sequence (GOP openings intra, rest inter)."""
        writer = BitWriter()
        records: list[FrameRecord] = []
        reconstruction: list[Frame] = []
        references: list[Frame] = []
        prev_field: MotionField | None = None
        for i, frame in enumerate(sequence):
            record, recon, prev_field = self.encode_frame_into(
                writer, frame, i, references, prev_field
            )
            records.append(record)
            references = self.advance_references(references, record, recon)
            if self.keep_reconstruction:
                reconstruction.append(recon)
        return EncodeResult(
            name=sequence.name,
            qp=self.qp,
            estimator_name=self.estimator.name or type(self.estimator).__name__,
            fps=sequence.fps,
            frames=records,
            bitstream=writer.getvalue(),
            reconstruction=reconstruction,
            bitstream_version=self.bitstream_version,
        )

    # -- frame coding ----------------------------------------------------

    def _write_picture_header(
        self,
        writer: BitWriter,
        frame: Frame,
        frame_type: str,
        extended: bool = False,
        active_refs: int = 1,
    ) -> int:
        before = writer.bit_count
        geometry = frame.geometry
        writer.write_bits(START_CODE_EXT if extended else START_CODE, START_CODE_BITS)
        writer.write_bit(0 if frame_type == "I" else 1)
        writer.write_bits(self.qp, 5)
        writer.write_bits(self.estimator.p, 5)
        writer.write_bits(geometry.mb_rows, 8)
        writer.write_bits(geometry.mb_cols, 8)
        if extended and frame_type == "P":
            writer.write_bits(active_refs - 1, 3)
        return writer.bit_count - before

    def _encode_intra_frame(self, writer: BitWriter, frame: Frame) -> tuple[int, Frame, int]:
        start_bits = writer.bit_count
        self._write_picture_header(writer, frame, "I")
        geometry = frame.geometry
        recon_y = np.empty_like(frame.y)
        recon_cb = np.empty_like(frame.cb)
        recon_cr = np.empty_like(frame.cr)
        coef_bits = 0
        phase = trace.phases()
        for r in range(geometry.mb_rows):
            for c in range(geometry.mb_cols):
                luma = frame.luma_block(r, c).astype(np.float64)
                cb, cr = frame.chroma_blocks(r, c)
                blocks = np.concatenate(
                    [split_luma_blocks(luma), cb[None].astype(np.float64), cr[None].astype(np.float64)]
                )
                with phase("encode.transform_quant"):
                    coefficients = forward_dct(blocks)
                    coded = [code_intra_block(coefficients[k], self.qp) for k in range(6)]
                cbpy = sum((1 << k) for k in range(4) if coded[k][1])
                mcbpc = (2 if coded[4][1] else 0) | (1 if coded[5][1] else 0)
                with phase("encode.entropy"):
                    writer.write_code(MCBPC_TABLE.encode(mcbpc))
                    writer.write_code(CBPY_TABLE.encode(cbpy))
                    for dc_level, events, _ in coded:
                        writer.write_bits(dc_level, 8)
                        if events:
                            coef_bits += write_events(writer, events)
                recon_blocks = np.clip(
                    np.rint(inverse_dct(np.stack([rc for _, _, rc in coded]))), 0, 255
                ).astype(np.uint8)
                y0, x0 = 16 * r, 16 * c
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = join_luma_blocks(recon_blocks[:4])
                recon_cb[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = recon_blocks[4]
                recon_cr[8 * r : 8 * r + 8, 8 * c : 8 * c + 8] = recon_blocks[5]
        phase.emit(frame=frame.index)
        total = writer.bit_count - start_bits
        return total, Frame(recon_y, recon_cb, recon_cr, index=frame.index), coef_bits

    def _encode_intra_pred_frame(self, writer: BitWriter, frame: Frame) -> tuple[int, Frame, int]:
        """GOP-syntax I-frame: per-MB spatial prediction mode (2 bits),
        then inter-style residual coding of the prediction error.

        The mode decision is open-loop on the source luma (batched
        :func:`intra_mode_cost_surfaces` or its scalar twin — integer
        identical, so both ``use_engine`` settings emit the same
        bytes); the prediction itself reads the reconstructed
        neighbours the decoder will have.
        """
        start_bits = writer.bit_count
        self._write_picture_header(writer, frame, "I", extended=True)
        geometry = frame.geometry
        if self.use_engine:
            costs = intra_mode_cost_surfaces(frame.y)
        else:
            costs = intra_mode_costs_reference(frame.y)
        modes = choose_intra_modes(costs)
        recon_y = np.empty_like(frame.y)
        recon_cb = np.empty_like(frame.cb)
        recon_cr = np.empty_like(frame.cr)
        coef_bits = 0
        phase = trace.phases()
        for r in range(geometry.mb_rows):
            for c in range(geometry.mb_cols):
                mode = int(modes[r, c])
                writer.write_bits(mode, INTRA_MODE_BITS)
                pred_y = intra_predict(recon_y, r, c, 16, mode)
                pred_cb = intra_predict(recon_cb, r, c, 8, mode)
                pred_cr = intra_predict(recon_cr, r, c, 8, mode)
                cur_y = frame.luma_block(r, c).astype(np.float64)
                cur_cb, cur_cr = frame.chroma_blocks(r, c)
                residual = np.concatenate(
                    [
                        split_luma_blocks(cur_y - pred_y),
                        (cur_cb.astype(np.float64) - pred_cb)[None],
                        (cur_cr.astype(np.float64) - pred_cr)[None],
                    ]
                )
                with phase("encode.transform_quant"):
                    coefficients = forward_dct(residual)
                    coded = [code_inter_block(coefficients[k], self.qp) for k in range(6)]
                cbpy = sum((1 << k) for k in range(4) if coded[k][0])
                mcbpc = (2 if coded[4][0] else 0) | (1 if coded[5][0] else 0)
                with phase("encode.entropy"):
                    writer.write_code(MCBPC_TABLE.encode(mcbpc))
                    writer.write_code(CBPY_TABLE.encode(cbpy))
                    for events, _ in coded:
                        if events:
                            coef_bits += write_events(writer, events)
                recon_residual = inverse_dct(np.stack([rc for _, rc in coded]))
                y0, x0 = 16 * r, 16 * c
                cy0, cx0 = 8 * r, 8 * c
                rec_y = np.clip(np.rint(join_luma_blocks(recon_residual[:4]) + pred_y), 0, 255)
                rec_cb = np.clip(np.rint(recon_residual[4] + pred_cb), 0, 255)
                rec_cr = np.clip(np.rint(recon_residual[5] + pred_cr), 0, 255)
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = rec_y.astype(np.uint8)
                recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cb.astype(np.uint8)
                recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cr.astype(np.uint8)
        phase.emit(frame=frame.index)
        total = writer.bit_count - start_bits
        return total, Frame(recon_y, recon_cb, recon_cr, index=frame.index), coef_bits

    def _encode_inter_frame_multi(
        self,
        writer: BitWriter,
        frame: Frame,
        references: list[Frame],
        prev_field: MotionField | None,
    ) -> tuple[int, Frame, int, int, int, MotionField, SearchStats]:
        """Multi-reference P-frame: search every active reference,
        pick each macroblock's reference by minimal compensated-luma
        SAD (ties toward the most recent — the engine's ``argmin`` and
        the scalar strict-less loop agree by construction), and code an
        exp-Golomb reference index per coded macroblock.
        """
        active = references[: self.n_ref_frames]
        start_bits = writer.bit_count
        self._write_picture_header(writer, frame, "P", extended=True, active_refs=len(active))
        geometry = frame.geometry
        rows, cols = geometry.mb_rows, geometry.mb_cols
        planes = [ReferencePlane.wrap(ref.y) for ref in active]
        fields: list[MotionField] = []
        merged_stats = SearchStats()
        with trace.span("encode.me", references=len(active)):
            for ref, plane in zip(active, planes):
                f, stats = self.estimator.estimate(
                    frame.y, ref.y, prev_field=prev_field, qp=self.qp, ref_plane=plane
                )
                fields.append(f)
                merged_stats.merge(stats)
        cur = frame.y.astype(np.int64)
        engine = (
            self.use_engine
            and all(p is not None for p in planes)
            and all(f.is_complete for f in fields)
        )
        if engine:
            sads = np.empty((len(active), rows, cols), dtype=np.int64)
            for k, (plane, f) in enumerate(zip(planes, fields)):
                field_hx, field_hy = f.to_arrays()
                pred = frame_mc_luma(plane, field_hx, field_hy).astype(np.int64)
                sads[k] = np.abs(cur - pred).reshape(rows, 16, cols, 16).sum(axis=(1, 3))
            choice = np.argmin(sads, axis=0)
        else:
            choice = np.zeros((rows, cols), dtype=np.int64)
            for r in range(rows):
                for c in range(cols):
                    y0, x0 = 16 * r, 16 * c
                    cur_block = cur[y0 : y0 + 16, x0 : x0 + 16]
                    best_sad = None
                    for k, f in enumerate(fields):
                        mv = f.get(r, c)
                        if mv is None:
                            raise ValueError(f"motion field missing entry ({r}, {c})")
                        pred = predict_block(active[k].y, y0, x0, mv, 16, 16).astype(np.int64)
                        sad = int(np.abs(cur_block - pred).sum())
                        if best_sad is None or sad < best_sad:
                            best_sad = sad
                            choice[r, c] = k
        # The chosen per-MB vectors become one combined field: it feeds
        # MVD prediction, whole-frame MC and the next frame's search.
        field = MotionField(rows, cols)
        for r in range(rows):
            for c in range(cols):
                mv = fields[int(choice[r, c])].get(r, c)
                if mv is None:
                    raise ValueError(f"motion field missing entry ({r}, {c})")
                field.set(r, c, mv)
        used = [int(k) for k in np.unique(choice)]
        pred_planes: dict[int, tuple] = {}
        if engine:
            field_hx, field_hy = field.to_arrays()
            for k in used:
                chroma = ChromaReferencePlane.wrap(active[k].cb, active[k].cr)
                if chroma is None:
                    engine = False
                    break
                pred_planes[k] = (
                    frame_mc_luma(planes[k], field_hx, field_hy),
                    *chroma.mc_frame(field_hx, field_hy, self.estimator.p),
                )
        recon_y = np.empty_like(frame.y)
        recon_cb = np.empty_like(frame.cb)
        recon_cr = np.empty_like(frame.cr)
        coded_field = MotionField(rows, cols)
        skipped = 0
        mv_bits_total = 0
        coef_bits_total = 0
        phase = trace.phases()
        for r in range(rows):
            for c in range(cols):
                k = int(choice[r, c])
                mv = field.get(r, c)
                y0, x0 = 16 * r, 16 * c
                cy0, cx0 = 8 * r, 8 * c
                if engine:
                    plane_y, plane_cb, plane_cr = pred_planes[k]
                    pred_y = plane_y[y0 : y0 + 16, x0 : x0 + 16].astype(np.float64)
                    pred_cb = plane_cb[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.float64)
                    pred_cr = plane_cr[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.float64)
                else:
                    ref = active[k]
                    pred_y = predict_block(ref.y, y0, x0, mv, 16, 16).astype(np.float64)
                    pred_cb = predict_chroma_block(ref.cb, cy0, cx0, mv, self.estimator.p).astype(
                        np.float64
                    )
                    pred_cr = predict_chroma_block(ref.cr, cy0, cx0, mv, self.estimator.p).astype(
                        np.float64
                    )
                cur_y = frame.luma_block(r, c).astype(np.float64)
                cur_cb, cur_cr = frame.chroma_blocks(r, c)
                residual = np.concatenate(
                    [
                        split_luma_blocks(cur_y - pred_y),
                        (cur_cb.astype(np.float64) - pred_cb)[None],
                        (cur_cr.astype(np.float64) - pred_cr)[None],
                    ]
                )
                with phase("encode.transform_quant"):
                    coefficients = forward_dct(residual)
                    coded = [code_inter_block(coefficients[k2], self.qp) for k2 in range(6)]
                cbpy = sum((1 << k2) for k2 in range(4) if coded[k2][0])
                mcbpc = (2 if coded[4][0] else 0) | (1 if coded[5][0] else 0)
                if mv.is_zero and cbpy == 0 and mcbpc == 0 and k == 0:
                    # Skip implies reference 0 and a zero vector, same
                    # as the single-reference COD semantics.
                    writer.write_bit(1)
                    skipped += 1
                    coded_field.set(r, c, MotionVector.zero())
                    recon_y[y0 : y0 + 16, x0 : x0 + 16] = pred_y.astype(np.uint8)
                    recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = pred_cb.astype(np.uint8)
                    recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = pred_cr.astype(np.uint8)
                    continue
                with phase("encode.entropy"):
                    writer.write_bit(0)  # COD: coded
                    writer.write_code(MCBPC_TABLE.encode(mcbpc))
                    writer.write_code(CBPY_TABLE.encode(cbpy))
                    writer.write_ue(k)
                    predictor = predict_mv(coded_field, r, c)
                    mv_bits_total += write_mvd(writer, mv, predictor)
                    coded_field.set(r, c, mv)
                    for events, _ in coded:
                        if events:
                            coef_bits_total += write_events(writer, events)
                recon_residual = inverse_dct(np.stack([rc for _, rc in coded]))
                rec_y = np.clip(np.rint(join_luma_blocks(recon_residual[:4]) + pred_y), 0, 255)
                rec_cb = np.clip(np.rint(recon_residual[4] + pred_cb), 0, 255)
                rec_cr = np.clip(np.rint(recon_residual[5] + pred_cr), 0, 255)
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = rec_y.astype(np.uint8)
                recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cb.astype(np.uint8)
                recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cr.astype(np.uint8)
        phase.emit(frame=frame.index)
        total = writer.bit_count - start_bits
        recon = Frame(recon_y, recon_cb, recon_cr, index=frame.index)
        return total, recon, skipped, mv_bits_total, coef_bits_total, field, merged_stats

    def _encode_inter_frame(
        self,
        writer: BitWriter,
        frame: Frame,
        reference: Frame,
        field: MotionField,
        plane: ReferencePlane | None = None,
    ) -> tuple[int, Frame, int, int, int]:
        start_bits = writer.bit_count
        self._write_picture_header(writer, frame, "P")
        geometry = frame.geometry
        recon_y = np.empty_like(frame.y)
        recon_cb = np.empty_like(frame.cb)
        recon_cr = np.empty_like(frame.cr)
        # Vectors as the decoder will see them (skip forces zero); used
        # for median prediction of subsequent MVDs.
        coded_field = MotionField(geometry.mb_rows, geometry.mb_cols)
        skipped = 0
        mv_bits_total = 0
        coef_bits_total = 0
        luma_ref = plane if plane is not None else reference.y
        # Whole-frame motion compensation up front: the field is fully
        # decided before reconstruction, so the engine path predicts
        # all three planes in three batched gathers (the chroma
        # half-pel interpolation runs once per frame instead of twice
        # per macroblock) and the loop below just slices them.
        engine = self.use_engine and plane is not None and field.is_complete
        if engine:
            chroma = ChromaReferencePlane.wrap(reference.cb, reference.cr)
            engine = chroma is not None
        if engine:
            field_hx, field_hy = field.to_arrays()
            pred_y_plane = frame_mc_luma(plane, field_hx, field_hy)
            pred_cb_plane, pred_cr_plane = chroma.mc_frame(field_hx, field_hy, self.estimator.p)
        phase = trace.phases()
        for r in range(geometry.mb_rows):
            for c in range(geometry.mb_cols):
                mv = field.get(r, c)
                if mv is None:
                    raise ValueError(f"motion field missing entry ({r}, {c})")
                y0, x0 = 16 * r, 16 * c
                cy0, cx0 = 8 * r, 8 * c
                if engine:
                    pred_y = pred_y_plane[y0 : y0 + 16, x0 : x0 + 16].astype(np.float64)
                    pred_cb = pred_cb_plane[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.float64)
                    pred_cr = pred_cr_plane[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.float64)
                else:
                    pred_y = predict_block(luma_ref, y0, x0, mv, 16, 16).astype(np.float64)
                    pred_cb = predict_chroma_block(
                        reference.cb, cy0, cx0, mv, self.estimator.p
                    ).astype(np.float64)
                    pred_cr = predict_chroma_block(
                        reference.cr, cy0, cx0, mv, self.estimator.p
                    ).astype(np.float64)
                cur_y = frame.luma_block(r, c).astype(np.float64)
                cur_cb, cur_cr = frame.chroma_blocks(r, c)
                residual = np.concatenate(
                    [
                        split_luma_blocks(cur_y - pred_y),
                        (cur_cb.astype(np.float64) - pred_cb)[None],
                        (cur_cr.astype(np.float64) - pred_cr)[None],
                    ]
                )
                with phase("encode.transform_quant"):
                    coefficients = forward_dct(residual)
                    coded = [code_inter_block(coefficients[k], self.qp) for k in range(6)]
                cbpy = sum((1 << k) for k in range(4) if coded[k][0])
                mcbpc = (2 if coded[4][0] else 0) | (1 if coded[5][0] else 0)
                if mv.is_zero and cbpy == 0 and mcbpc == 0:
                    writer.write_bit(1)  # COD: skipped
                    skipped += 1
                    coded_field.set(r, c, MotionVector.zero())
                    recon_y[y0 : y0 + 16, x0 : x0 + 16] = pred_y.astype(np.uint8)
                    recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = pred_cb.astype(np.uint8)
                    recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = pred_cr.astype(np.uint8)
                    continue
                with phase("encode.entropy"):
                    writer.write_bit(0)  # COD: coded
                    writer.write_code(MCBPC_TABLE.encode(mcbpc))
                    writer.write_code(CBPY_TABLE.encode(cbpy))
                    predictor = predict_mv(coded_field, r, c)
                    mv_bits_total += write_mvd(writer, mv, predictor)
                    coded_field.set(r, c, mv)
                    for events, _ in coded:
                        if events:
                            coef_bits_total += write_events(writer, events)
                recon_residual = inverse_dct(np.stack([rc for _, rc in coded]))
                rec_y = np.clip(np.rint(join_luma_blocks(recon_residual[:4]) + pred_y), 0, 255)
                rec_cb = np.clip(np.rint(recon_residual[4] + pred_cb), 0, 255)
                rec_cr = np.clip(np.rint(recon_residual[5] + pred_cr), 0, 255)
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = rec_y.astype(np.uint8)
                recon_cb[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cb.astype(np.uint8)
                recon_cr[cy0 : cy0 + 8, cx0 : cx0 + 8] = rec_cr.astype(np.uint8)
        phase.emit(frame=frame.index)
        total = writer.bit_count - start_bits
        recon = Frame(recon_y, recon_cb, recon_cr, index=frame.index)
        return total, recon, skipped, mv_bits_total, coef_bits_total


def encode_sequence(
    sequence: Sequence,
    qp: int = 16,
    estimator: MotionEstimator | str = "acbm",
    estimator_kwargs: dict | None = None,
    keep_reconstruction: bool = False,
    use_engine: bool = True,
    bitstream_version: int = 1,
    i_period: int | None = None,
    n_ref_frames: int = 1,
) -> EncodeResult:
    """One-call convenience wrapper around :class:`Encoder`.

    >>> from repro.video.synthesis.sequences import make_sequence
    >>> seq = make_sequence("miss_america", frames=3)
    >>> result = encode_sequence(seq, qp=16, estimator="pbm")
    >>> result.total_bits > 0
    True
    """
    encoder = Encoder(
        estimator=estimator,
        qp=qp,
        estimator_kwargs=estimator_kwargs,
        keep_reconstruction=keep_reconstruction,
        use_engine=use_engine,
        bitstream_version=bitstream_version,
        i_period=i_period,
        n_ref_frames=n_ref_frames,
    )
    return encoder.encode(sequence)
