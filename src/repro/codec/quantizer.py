"""H.263 scalar quantizer.

H.263 uses one quantizer step ``Qp`` in 1..31 for a whole picture (in
baseline use).  Coefficient handling:

* INTER (residual) coefficients use a dead zone:
  ``LEVEL = sign · (|coef| − Qp/2) / (2·Qp)`` truncated toward zero.
* INTRA AC coefficients have no dead zone:
  ``LEVEL = sign · |coef| / (2·Qp)`` truncated.
* INTRA DC is quantized with a fixed step of 8:
  ``LEVEL = round(DC / 8)`` clamped to 1..254.

Reconstruction (both intra AC and inter) is the standard
mismatch-controlled rule: ``|rec| = Qp·(2·|LEVEL| + 1)`` for odd Qp and
``Qp·(2·|LEVEL| + 1) − 1`` for even Qp, zero staying zero.

All functions are vectorized over arrays of any shape.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_backend

#: H.263 coefficient levels are transmitted in [-127, 127] (sans escape).
LEVEL_MIN, LEVEL_MAX = -127, 127

#: Fixed intra-DC quantizer step.
INTRA_DC_STEP = 8


def check_qp(qp: int) -> int:
    if not 1 <= int(qp) <= 31:
        raise ValueError(f"H.263 Qp must be in 1..31, got {qp}")
    return int(qp)


def quantize_inter(coefficients: np.ndarray, qp: int) -> np.ndarray:
    """Dead-zone quantization of residual DCT coefficients → int levels."""
    qp = check_qp(qp)
    c = np.asarray(coefficients, dtype=np.float64)
    magnitude = np.floor((np.abs(c) - qp / 2.0) / (2.0 * qp))
    magnitude = np.clip(magnitude, 0, LEVEL_MAX)
    return (np.sign(c) * magnitude).astype(np.int32)


def quantize_intra_ac(coefficients: np.ndarray, qp: int) -> np.ndarray:
    """No-dead-zone quantization of intra AC coefficients → int levels."""
    qp = check_qp(qp)
    c = np.asarray(coefficients, dtype=np.float64)
    magnitude = np.clip(np.floor(np.abs(c) / (2.0 * qp)), 0, LEVEL_MAX)
    return (np.sign(c) * magnitude).astype(np.int32)


def dequantize(levels: np.ndarray, qp: int) -> np.ndarray:
    """H.263 reconstruction of inter / intra-AC levels → float coefs."""
    qp = check_qp(qp)
    return get_backend().dequant(levels, qp)


def dequantize_numpy(levels: np.ndarray, qp: int) -> np.ndarray:
    """Vectorized reconstruction core — the numpy backend's binding for
    the ``dequant`` ABI entry (``qp`` already validated)."""
    lv = np.asarray(levels, dtype=np.int64)
    magnitude = qp * (2 * np.abs(lv) + 1)
    if qp % 2 == 0:
        magnitude = magnitude - 1
    rec = np.sign(lv) * magnitude
    rec = np.where(lv == 0, 0, rec)
    return rec.astype(np.float64)


def quantize_intra_dc(dc: np.ndarray) -> np.ndarray:
    """Intra DC with fixed step 8, levels clamped to the 8-bit code range
    1..254 (0 and 255 are reserved in H.263)."""
    d = np.asarray(dc, dtype=np.float64)
    level = np.rint(d / INTRA_DC_STEP)
    return np.clip(level, 1, 254).astype(np.int32)


def dequantize_intra_dc(levels: np.ndarray) -> np.ndarray:
    lv = np.asarray(levels, dtype=np.int64)
    if ((lv < 1) | (lv > 254)).any():
        raise ValueError("intra DC levels must be in 1..254")
    return get_backend().dequant_intra_dc(lv)


def dequantize_intra_dc_numpy(lv: np.ndarray) -> np.ndarray:
    """Fixed-step intra-DC core — the numpy backend's binding for the
    ``dequant_intra_dc`` ABI entry (``lv`` already range-validated)."""
    return (lv * INTRA_DC_STEP).astype(np.float64)
