"""8x8 type-II DCT in matrix form.

The orthonormal DCT-II basis matrix ``C`` satisfies ``C @ C.T = I``;
forward transform of a block ``B`` is ``C @ B @ C.T`` and the inverse is
``C.T @ X @ C``.  Both operate on stacked arrays of shape ``(..., 8, 8)``
so the encoder can transform every block of a frame in one call.

TMN5 likewise used a floating DCT with rounding at the quantizer, so no
integer-DCT drift modelling is needed.
"""

from __future__ import annotations

import numpy as np

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix of order ``n``."""
    if n < 1:
        raise ValueError(f"order must be >= 1, got {n}")
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos((2 * i + 1) * k * np.pi / (2 * n)) * np.sqrt(2.0 / n)
    mat[0, :] = np.sqrt(1.0 / n)
    return mat


_C = dct_matrix()
_CT = _C.T.copy()


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """DCT-II of stacked 8x8 blocks, shape ``(..., 8, 8)`` float64."""
    b = np.asarray(blocks, dtype=np.float64)
    if b.shape[-2:] != (BLOCK, BLOCK):
        raise ValueError(f"blocks must end in (8, 8), got {b.shape}")
    return _C @ b @ _CT


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct`."""
    c = np.asarray(coefficients, dtype=np.float64)
    if c.shape[-2:] != (BLOCK, BLOCK):
        raise ValueError(f"coefficients must end in (8, 8), got {c.shape}")
    return _CT @ c @ _C
