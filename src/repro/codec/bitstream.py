"""Bit-exact bitstream writer and reader.

The encoder counts rate by *writing an actual bitstream*; the matching
:class:`BitReader` lets the decoder (and the round-trip tests) consume
it.  This guarantees the kbit/s numbers in the RD experiments are
emitted bits, not estimates.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first into a bytearray."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._filled = 0
        self._bits_written = 0

    @property
    def bit_count(self) -> int:
        """Total bits written so far (excluding any final padding)."""
        return self._bits_written

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self._accumulator = (self._accumulator << 1) | bit
        self._filled += 1
        self._bits_written += 1
        if self._filled == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._filled = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if value < 0 or (count < 64 and value >= (1 << count)):
            raise ValueError(f"value {value} does not fit in {count} bits")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_code(self, code: "tuple[int, int]") -> None:
        """Write a ``(value, length)`` pair as produced by the VLC layer."""
        value, length = code
        self.write_bits(value, length)

    def getvalue(self) -> bytes:
        """The byte string, zero-padded to a byte boundary."""
        out = bytearray(self._buffer)
        if self._filled:
            out.append(self._accumulator << (8 - self._filled))
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_consumed(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._pos

    def read_bit(self) -> int:
        if self._pos >= 8 * len(self._data):
            raise EOFError("bitstream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value
