"""Bit-exact bitstream writer and reader.

The encoder counts rate by *writing an actual bitstream*; the matching
:class:`BitReader` lets the decoder (and the round-trip tests) consume
it.  This guarantees the kbit/s numbers in the RD experiments are
emitted bits, not estimates.

Both sides run on a **word-level cursor**: the writer accumulates bits
into a Python int and flushes whole bytes in one ``int.to_bytes`` call;
the reader keeps a shift/mask accumulator refilled eight bytes at a
time with ``int.from_bytes``, so ``read_bits(n)`` / ``peek_bits(n)``
cost a handful of integer operations instead of ``n`` per-bit method
calls.  On top of the plain read/peek/skip surface the reader exposes
two fused primitives the VLC layer's hot loops are built on:

* :meth:`BitReader.read_vlc` — one peek + one lookup-table hit + one
  skip for a whole prefix code (see :class:`repro.codec.vlc.VLCTable`);
* :meth:`BitReader.read_ue` — unsigned exp-Golomb via a single 64-bit
  peek and ``int.bit_length``.

:class:`ScalarBitReader` preserves the seed's one-bit-at-a-time reader
verbatim.  It is the golden reference the equivalence tests and the
``BENCH_vlc.json`` benchmark compare the word-level/LUT path against;
any reader-shaped object without the fused ``read_vlc``/``read_ue``
primitives (such as this one) automatically routes the VLC layer
through its seed bit-walk decode.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first, flushing whole bytes into a bytearray."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._filled = 0  # bits currently held in the accumulator (0..7 after flush)
        self._bits_written = 0
        self._drained = 0  # bytes already handed out via drain()

    @property
    def bit_count(self) -> int:
        """Total bits written so far (excluding any final padding)."""
        return self._bits_written

    @property
    def byte_length(self) -> int:
        """Bytes flushed so far, including drained ones.  Only the full
        picture when the writer is byte-aligned (``bit_count % 8 == 0``)
        — the v2 framing layer calls :meth:`align` first, which is what
        makes this usable as a byte offset for :meth:`patch_u32`
        backpatching."""
        return self._drained + len(self._buffer)

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self.write_bits(bit, 1)

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, MSB first.

        ``value`` must satisfy ``0 <= value < 2**count`` — values wider
        than ``count`` raise instead of silently dropping high bits.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if value < 0 or (value >> count):
            raise ValueError(f"value {value} does not fit in {count} bits")
        accumulator = (self._accumulator << count) | value
        filled = self._filled + count
        self._bits_written += count
        if filled >= 8:
            spill = filled & 7
            self._buffer += (accumulator >> spill).to_bytes((filled - spill) >> 3, "big")
            accumulator &= (1 << spill) - 1
            filled = spill
        self._accumulator = accumulator
        self._filled = filled

    def write_code(self, code: "tuple[int, int]") -> None:
        """Write a ``(value, length)`` pair as produced by the VLC layer."""
        value, length = code
        self.write_bits(value, length)

    def write_ue(self, value: int) -> int:
        """Write ``value >= 0`` as an unsigned exp-Golomb code; returns
        its bit length.  Inlined rather than importing the VLC layer's
        :func:`~repro.codec.vlc.ue_golomb_code` so this module stays
        dependency-free."""
        if value < 0:
            raise ValueError(f"ue(v) needs v >= 0, got {value}")
        v = value + 1
        length = 2 * v.bit_length() - 1
        self.write_bits(v, length)
        return length

    def align(self) -> int:
        """Zero-pad to the next byte boundary; returns bits padded."""
        padding = (8 - self._filled) & 7
        if padding:
            self.write_bits(0, padding)
        return padding

    def patch_u32(self, byte_pos: int, value: int) -> None:
        """Overwrite 4 already-flushed bytes with ``value`` big-endian.

        Used by the v2 framing layer to backpatch a frame-length field
        once the frame's payload size is known; the target bytes must be
        fully flushed (i.e. written while byte-aligned).
        """
        if not 0 <= value < (1 << 32):
            raise ValueError(f"value {value} does not fit in 32 bits")
        rel = byte_pos - self._drained
        if rel < 0:
            raise ValueError(
                f"patch range [{byte_pos}, {byte_pos + 4}) was already drained "
                f"(first undrained byte is {self._drained})"
            )
        if rel + 4 > len(self._buffer):
            raise ValueError(
                f"patch range [{byte_pos}, {byte_pos + 4}) outside flushed buffer "
                f"of {self.byte_length} bytes"
            )
        self._buffer[rel : rel + 4] = value.to_bytes(4, "big")

    def drain(self) -> bytes:
        """Hand out every fully flushed byte and drop it from the
        buffer; a trailing partial byte (``bit_count % 8`` bits) stays
        in the accumulator for later writes.

        The streaming encoder emits the bitstream incrementally through
        this: concatenating every drained chunk plus the final
        :meth:`getvalue` reproduces the undrained writer's bytes
        exactly.  Byte positions stay *absolute* — :attr:`byte_length`
        keeps counting drained bytes, and :meth:`patch_u32` rejects
        positions that were already handed out.
        """
        out = bytes(self._buffer)
        self._drained += len(out)
        self._buffer.clear()
        return out

    def getvalue(self) -> bytes:
        """The not-yet-drained byte string, zero-padded to a byte
        boundary (the whole stream when :meth:`drain` was never
        called)."""
        out = bytearray(self._buffer)
        if self._filled:
            out.append(self._accumulator << (8 - self._filled))
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a byte string via a word accumulator.

    Invariant: ``_accumulator`` holds the next ``_acc_bits`` unread bits
    in its low bits (``_accumulator < 2**_acc_bits``); ``_byte_pos`` is
    the next buffer byte to load.  Refills pull up to eight bytes per
    ``int.from_bytes`` call.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._num_bytes = len(data)
        self._accumulator = 0
        self._acc_bits = 0
        self._byte_pos = 0

    @property
    def bits_consumed(self) -> int:
        return 8 * self._byte_pos - self._acc_bits

    @property
    def bits_remaining(self) -> int:
        return 8 * self._num_bytes - self.bits_consumed

    def _refill(self, need: int) -> None:
        byte_pos = self._byte_pos
        while self._acc_bits < need and byte_pos < self._num_bytes:
            chunk = self._data[byte_pos : byte_pos + 8]
            self._accumulator = (self._accumulator << (8 * len(chunk))) | int.from_bytes(
                chunk, "big"
            )
            self._acc_bits += 8 * len(chunk)
            byte_pos += len(chunk)
        self._byte_pos = byte_pos

    def read_bit(self) -> int:
        return self.read_bits(1)

    def read_bits(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self._acc_bits < count:
            self._refill(count)
            if self._acc_bits < count:
                raise EOFError("bitstream exhausted")
        keep = self._acc_bits - count
        value = self._accumulator >> keep
        self._accumulator &= (1 << keep) - 1
        self._acc_bits = keep
        return value

    def peek_bits(self, count: int) -> int:
        """The next ``count`` bits without consuming them, zero-padded
        past the end of the stream (the LUT decode peeks a full window
        even when the final code is shorter than it)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self._acc_bits < count:
            self._refill(count)
            if self._acc_bits < count:
                return self._accumulator << (count - self._acc_bits)
        return self._accumulator >> (self._acc_bits - count)

    def skip_bits(self, count: int) -> None:
        """Advance the cursor ``count`` bits (EOFError past the end)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self._acc_bits < count:
            self._refill(count)
            if self._acc_bits < count:
                raise EOFError("bitstream exhausted")
        self._acc_bits -= count
        self._accumulator &= (1 << self._acc_bits) - 1

    def align(self) -> int:
        """Skip to the next byte boundary; returns bits skipped."""
        padding = (-self.bits_consumed) & 7
        if padding:
            self.skip_bits(padding)
        return padding

    # -- fused decode primitives ----------------------------------------
    #
    # The VLC layer's hot loops collapse to one method call per symbol
    # through these: they manipulate the accumulator with local
    # variables instead of stacking read/peek/skip calls.

    def read_vlc(self, lut: list, first_bits: int):
        """Decode one prefix code via a lookup-table cascade.

        ``lut`` is indexed by the next ``first_bits`` bits; each entry is
        ``(symbol, total_length, None)`` for a direct hit, or
        ``(None, sub_bits, sub_table)`` where ``sub_table`` is the next
        cascade level indexed by the following ``sub_bits`` bits (see
        :meth:`repro.codec.vlc.VLCTable._build_lut`, which compiles
        them).  Codes no longer than ``first_bits`` — the overwhelming
        majority by construction — resolve with a single peek and hit.
        """
        table = lut
        width = first_bits
        total = first_bits
        while True:
            if self._acc_bits < total:
                self._refill(total)
            acc_bits = self._acc_bits
            if acc_bits >= total:
                window = self._accumulator >> (acc_bits - total)
            else:
                window = self._accumulator << (total - acc_bits)
            entry = table[window & ((1 << width) - 1)]
            if entry is None:
                if self.bits_remaining == 0:
                    raise EOFError("bitstream exhausted")
                raise ValueError("invalid prefix: no VLC symbol matches")
            symbol, length, subtable = entry
            if subtable is None:
                break
            table = subtable
            width = length
            total += length
        if length > self._acc_bits:
            # The matched code extends past the real end of the stream
            # (the peek was zero-padded) — after the refills, the
            # accumulator holds every remaining bit, so this is EOF.
            raise EOFError("bitstream exhausted")
        self._acc_bits -= length
        self._accumulator &= (1 << self._acc_bits) - 1
        return symbol

    # -- compiled-kernel seam --------------------------------------------
    #
    # The optional compiled VLC kernels (repro.kernels) parse from a
    # read-only snapshot of the buffer and report how far they got; the
    # two methods below are the whole hand-off surface, keeping this
    # module numpy- and backend-free.

    def cursor(self) -> "tuple[bytes, int]":
        """``(buffer, bit_position)`` snapshot for an external parser."""
        return self._data, self.bits_consumed

    def advance_to(self, bit_pos: int) -> None:
        """Move the cursor forward to an absolute bit position (as
        consumed by an external parser started from :meth:`cursor`)."""
        delta = bit_pos - self.bits_consumed
        if delta < 0:
            raise ValueError(
                f"cannot rewind: cursor at bit {self.bits_consumed}, "
                f"requested bit {bit_pos}"
            )
        self.skip_bits(delta)

    _UE_PEEK_BITS = 64

    def read_ue(self) -> int:
        """Unsigned exp-Golomb in one 64-bit peek.

        Returns the decoded value, or ``-1`` to signal the caller to
        fall back to the bit-at-a-time reference loop (prefix longer
        than the peek window or a malformed/truncated stream — the
        fallback reproduces the seed's exact error behaviour).
        """
        peek = self._UE_PEEK_BITS
        if self._acc_bits < peek:
            self._refill(peek)
        acc_bits = self._acc_bits
        if acc_bits >= peek:
            window = self._accumulator >> (acc_bits - peek)
        else:
            window = self._accumulator << (peek - acc_bits)
        if not window:
            return -1
        zeros = peek - window.bit_length()
        length = 2 * zeros + 1
        if length > peek or length > acc_bits:
            return -1
        code = window >> (peek - length)
        self._acc_bits = acc_bits - length
        self._accumulator &= (1 << self._acc_bits) - 1
        return code - 1


class ScalarBitReader:
    """The seed one-bit-at-a-time reader, kept verbatim.

    Golden reference for the word-level :class:`BitReader`: it exposes
    only ``read_bit``/``read_bits``, so the VLC layer decodes through
    its original per-bit tree walk when handed one — the equivalence
    tests and ``benchmarks/test_bench_vlc.py`` rely on exactly that.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_consumed(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._pos

    def read_bit(self) -> int:
        if self._pos >= 8 * len(self._data):
            raise EOFError("bitstream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def align(self) -> int:
        """Skip to the next byte boundary; returns bits skipped."""
        padding = (-self._pos) & 7
        if padding:
            self.read_bits(padding)
        return padding
