"""The always-on reference backend: the existing NumPy kernels.

Nothing here is new code — this module re-exports the vectorized
implementations that live next to their call sites (the engine's packed
SAD kernels, the reconstruction gather, the quantizer arithmetic) as a
:class:`~repro.kernels.api.KernelBackend` record.  The compiled VLC
entries are ``None``: the Python word-level reader + LUT walk *is* the
numpy-tier parse path, and the fast bodies in ``repro.codec.decoder``
use it directly.

Being the reference has teeth: every other backend is pinned
bit-identical to this one by the backend-parametrized golden suites,
and this backend itself is pinned to the seed per-block implementations
by the original equivalence tests.
"""

from __future__ import annotations

from repro.codec.dct import inverse_dct
from repro.codec.quantizer import dequantize_intra_dc_numpy, dequantize_numpy
from repro.kernels.api import KernelBackend
from repro.me.engine.kernels import (
    evaluate_candidates_numpy,
    intra_mode_costs_numpy,
    refine_half_pel_numpy,
    sad_surfaces_numpy,
)
from repro.me.engine.reconstruction import mc_gather_numpy

BACKEND = KernelBackend(
    name="numpy",
    sad_surfaces=sad_surfaces_numpy,
    evaluate_candidates=evaluate_candidates_numpy,
    refine_half_pel=refine_half_pel_numpy,
    intra_mode_costs=intra_mode_costs_numpy,
    mc_gather=mc_gather_numpy,
    dequant=dequantize_numpy,
    dequant_intra_dc=dequantize_intra_dc_numpy,
    idct=inverse_dct,
    scan_block_levels=None,
    parse_inter_body=None,
    parse_intra_body=None,
    parse_intra_pred_body=None,
)
