"""Pluggable compiled-kernel backends behind a narrow ABI.

``repro.kernels`` is the dispatch point between the codec's call sites
(:mod:`repro.me.engine`, :mod:`repro.codec`) and whichever kernel
implementation is active:

* :mod:`repro.kernels.numpy_backend` — the always-on reference,
  re-exporting the existing vectorized NumPy implementations.  No
  dependency beyond numpy; nothing regresses when nothing else is
  installed.
* :mod:`repro.kernels.numba_backend` — ``@njit(cache=True)`` scalar
  kernels compiled lazily on first use, bit-identical to the numpy
  backend (the golden suites run parametrized over both).

Select with ``REPRO_BACKEND=auto|numpy|numba`` or the runner's global
``--backend`` flag; ``auto`` (the default) means numba-if-importable.
See :mod:`repro.kernels.api` for the ABI itself and
:mod:`repro.kernels.registry` for resolution rules.
"""

from repro.kernels.api import KernelBackend
from repro.kernels.registry import (
    BACKEND_ENV_VAR,
    available_backend_names,
    get_backend,
    numba_available,
    reset_backend,
    set_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "available_backend_names",
    "get_backend",
    "numba_available",
    "reset_backend",
    "set_backend",
]
