"""Flat, array-typed packings of the VLC decode LUTs.

The Python decode path walks the nested list LUTs that
:class:`repro.codec.vlc.VLCTable` compiles (tuples and sub-lists —
perfect for CPython, opaque to a compiler).  This module flattens each
table into a single ``int32`` array a nopython kernel can index:

* entry ``-1`` — invalid prefix (no code covers these bits);
* a **leaf** has bit 30 clear: ``(total_length << 16) | symbol_id``
  where ``total_length`` is the code's full bit length from the first
  level (lengths cap at 32, ids at ``0x7FFF``, so leaves stay well
  below bit 30);
* a **sub-table link** has bit 30 set (:data:`SUB_FLAG`):
  ``SUB_FLAG | (sub_bits << 24) | child_offset`` — the next cascade
  level spans ``2**sub_bits`` entries starting at ``child_offset``
  (offsets fit 24 bits; the real tables are a few hundred entries).

Symbol ids are per-table:

* TCOEF: ``(last << 8) | (run << 3) | (level - 1)`` — collision-free
  because level ≤ 8 fills exactly 3 bits and run ≤ 20 < 32 fills the
  next 5; ESCAPE is :data:`TCOEF_ESCAPE_ID`.
* CBPY / MCBPC: the symbol *is* the id (0..15 / 0..3).

The packed walk is pinned equal to the nested walk symbol-for-symbol by
``tests/test_backends.py``.
"""

from __future__ import annotations

import numpy as np

from repro.codec.vlc_tables import (
    CBPY_TABLE,
    ESCAPE,
    MCBPC_TABLE,
    TCOEF_TABLE,
)
from repro.codec.zigzag import ZIGZAG_INDEX

#: Entry marker for slots no code covers.
INVALID = -1

#: Bit 30: this entry links to a nested sub-table.
SUB_FLAG = 0x40000000

#: Symbol id of the TCOEF escape marker (outside the packed-event range).
TCOEF_ESCAPE_ID = 0x7FFF


def tcoef_symbol_id(symbol) -> int:
    """Pack a TCOEF symbol — ``(last, run, level)`` or ESCAPE — into an id."""
    if symbol is ESCAPE:
        return TCOEF_ESCAPE_ID
    last, run, level = symbol
    return (last << 8) | (run << 3) | (level - 1)


def _identity_id(symbol) -> int:
    return int(symbol)


def _pack_level(flat: list[int], table: list, width: int, symbol_id) -> int:
    """Append one LUT level to ``flat``; returns its base offset."""
    base = len(flat)
    flat.extend([INVALID] * (1 << width))
    links: list[tuple[int, int, list]] = []
    for idx, entry in enumerate(table):
        if entry is None:
            continue
        symbol, length, sub = entry
        if sub is None:
            sid = symbol_id(symbol)
            if not 0 <= sid <= 0x7FFF:
                raise ValueError(f"symbol id {sid} out of the 15-bit leaf range")
            flat[base + idx] = (length << 16) | sid
        else:
            links.append((idx, length, sub))  # length is the sub-level's width
    for idx, sub_bits, sub in links:
        child = _pack_level(flat, sub, sub_bits, symbol_id)
        if child >= (1 << 24):
            raise ValueError(f"packed LUT offset {child} exceeds 24 bits")
        flat[base + idx] = SUB_FLAG | (sub_bits << 24) | child
    return base


def pack_table(table, symbol_id=_identity_id) -> tuple[np.ndarray, int]:
    """``(flat int32 LUT, first_bits)`` for one :class:`VLCTable`."""
    flat: list[int] = []
    _pack_level(flat, table.lut, table.lut_first_bits, symbol_id)
    return np.asarray(flat, dtype=np.int32), table.lut_first_bits


PACKED_TCOEF, TCOEF_FIRST_BITS = pack_table(TCOEF_TABLE, tcoef_symbol_id)
PACKED_CBPY, CBPY_FIRST_BITS = pack_table(CBPY_TABLE)
PACKED_MCBPC, MCBPC_FIRST_BITS = pack_table(MCBPC_TABLE)

#: Zig-zag scan positions as int64 for the compiled block scan.
ZIGZAG = ZIGZAG_INDEX.astype(np.int64)
