"""Backend registry: resolve, cache and switch the active kernel backend.

Selection precedence (first hit wins):

1. an explicit :func:`set_backend` call (the runner's global
   ``--backend`` flag and the parallel workers' spawn hand-off both
   land here);
2. the ``REPRO_BACKEND`` environment variable (``auto`` | ``numpy`` |
   ``numba``), read once at first resolution;
3. ``auto``: the numba backend when numba imports, silently falling
   back to numpy otherwise.

Forcing ``numba`` on a machine without numba is an error (a silent
fallback there would quietly un-accelerate a deployment that thought it
had opted in); ``auto`` is the spelling for "numba if you have it".

This module imports nothing heavy at module level — the backends load
lazily inside :func:`get_backend` — so the call sites
(``repro.me.engine``, ``repro.codec``) can import it without cycles.
"""

from __future__ import annotations

import os

from repro.kernels.api import KernelBackend
from repro.obs import metrics, trace

#: Environment variable naming the requested backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_MET_SELECTIONS = metrics.counter("backend.selections")

_active: KernelBackend | None = None


def _note_selection(backend: KernelBackend, how: str) -> None:
    """Record a backend becoming active: a counter always, plus an
    instant event on the trace timeline when tracing is on — so a trace
    of a mixed run shows exactly when (and in which process) the
    compiled backend kicked in."""
    _MET_SELECTIONS.inc()
    trace.instant("backend.select", backend=backend.name, how=how)


def numba_available() -> bool:
    """Whether the optional numba backend can load on this machine."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def available_backend_names() -> tuple[str, ...]:
    """Backends loadable here — what the golden suites parametrize over."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def _resolve(name: str | None) -> KernelBackend:
    if name is None or name in ("", "auto"):
        if numba_available():
            from repro.kernels import numba_backend

            return numba_backend.get_numba_backend()
        from repro.kernels import numpy_backend

        return numpy_backend.BACKEND
    if name == "numpy":
        from repro.kernels import numpy_backend

        return numpy_backend.BACKEND
    if name == "numba":
        if not numba_available():
            raise RuntimeError(
                f"{BACKEND_ENV_VAR}=numba (or --backend numba) requests the "
                "compiled backend, but numba is not importable in this "
                "environment. Install it (pip install 'repro-lopezcls05[numba]' "
                f"or requirements-numba.txt), or use {BACKEND_ENV_VAR}=auto, "
                "which falls back to the numpy backend silently."
            )
        from repro.kernels import numba_backend

        return numba_backend.get_numba_backend()
    raise ValueError(
        f"unknown kernel backend {name!r} (choose auto, numpy or numba)"
    )


def get_backend() -> KernelBackend:
    """The active backend, resolving ``REPRO_BACKEND`` on first use."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(BACKEND_ENV_VAR))
        _note_selection(_active, how="env")
    return _active


def set_backend(backend: str | KernelBackend | None) -> KernelBackend | None:
    """Pin the active backend by name (``auto``/``numpy``/``numba``) or
    instance; ``None`` clears the pin so the next :func:`get_backend`
    re-resolves from the environment.  Returns the now-active backend
    (``None`` after a clear)."""
    global _active
    if backend is None:
        _active = None
    elif isinstance(backend, KernelBackend):
        _active = backend
        _note_selection(_active, how="instance")
    else:
        _active = _resolve(backend)
        _note_selection(_active, how="pin")
    return _active


def reset_backend() -> None:
    """Forget any pinned backend (tests restore state through this)."""
    set_backend(None)
