"""Compiled kernel backend: ``@njit(cache=True)`` scalar loops.

Every kernel here is written twice over in spirit but once in code: the
functions below are *plain* Python — nopython-compatible scalar loops
over NumPy arrays — and :func:`_ensure_jitted` rebinds each of them to
its ``numba.njit(cache=True)`` dispatcher the first time the backend is
built.  Compilation itself stays lazy (numba compiles a dispatcher on
first call with concrete types), so importing this module costs nothing
and the JIT warm-up lands on the first frame, not on process start.

That single-source arrangement is also the test strategy on machines
without numba: ``make_backend(jit=False)`` returns a ``"numba-sim"``
backend running the identical kernel bodies un-jitted, so the bit-
identity suites exercise every compiled code path (LUT walks, grammar
kernels, SAD loops) even where numba cannot import.  Slow, hence the
sim tests run tiny geometries.

Design rules the kernels obey (see ``repro.kernels.api``):

* tables (packed LUTs, zig-zag) arrive as **arguments**, never as numba
  globals — global-array freezing interacts badly with ``cache=True``;
* integer kernels are exact, so results are bit-identical to the numpy
  backend by construction;
* the IDCT is **not** reimplemented: this backend binds the same
  float64 matmul as the numpy backend (compiled reassociation of the
  sums could flip an exact-half ``rint`` case and break the codec's
  closed loop);
* the VLC kernels read from an untouched cursor snapshot through a
  49-bit zero-padded window (:func:`k_peek49`) and report *any*
  deviation — invalid prefix, truncation, illegal value — as a
  fallback status without side effects; the caller replays the same
  bits through the Python path, which raises the codec's exact errors.
"""

from __future__ import annotations

import numpy as np

from repro.codec.dct import inverse_dct
from repro.codec.quantizer import dequantize_intra_dc_numpy
from repro.kernels.api import KernelBackend
from repro.kernels.lut_pack import (
    CBPY_FIRST_BITS,
    MCBPC_FIRST_BITS,
    PACKED_CBPY,
    PACKED_MCBPC,
    PACKED_TCOEF,
    TCOEF_ESCAPE_ID,
    TCOEF_FIRST_BITS,
    ZIGZAG,
)

#: SAD surface sentinel — mirrors repro.me.engine.kernels.SURFACE_SENTINEL
#: (imported lazily in the wrappers to keep this module import-light; the
#: kernels need the plain int).
_SENTINEL = 1 << 30

#: Intra-mode sentinel — repro.me.engine.kernels.INTRA_UNAVAILABLE_COST.
_INTRA_UNAVAILABLE = 1 << 62

#: Bits in the zero-padded peek window: 7 whole bytes minus up to 7 bits
#: of intra-byte offset.  49 bits covers every code the codec emits in
#: one peek (longest TCOEF cascade ≈ 22 bits, escape payload 15, ue
#: prefixes the compiled path accepts cap at 2*24+1).
_WINDOW_BITS = 49
_WINDOW_MASK = (1 << _WINDOW_BITS) - 1

#: Sub-table link flag in the packed LUTs (repro.kernels.lut_pack).
_SUB_FLAG = 0x40000000


# -- bit cursor ------------------------------------------------------------
#
# The compiled readers never mutate shared state: a "cursor" is just a
# bit position into the frame's byte buffer, threaded through every
# kernel and handed back to BitReader.advance_to() on success.


def k_peek49(data, pos):
    """The next 49 bits at ``pos``, MSB-first, zero-padded past EOF.

    Assembles 7 bytes (never 8 — a 56-bit value cannot overflow int64
    whatever the offset) and drops the 0..7 leading bits of intra-byte
    offset, guaranteeing a full 49-bit window."""
    b = pos >> 3
    n = data.shape[0]
    acc = np.int64(0)
    for i in range(7):
        acc = acc << 8
        if b + i < n:
            acc = acc | np.int64(data[b + i])
    return (acc >> np.int64(7 - (pos & 7))) & np.int64(_WINDOW_MASK)


def k_read_bits(data, pos, count, nbits):
    """``(value, new_pos)``; value is ``-1`` when the read would pass
    the end of the stream (count must stay <= 49)."""
    if count > nbits - pos:
        return np.int64(-1), pos
    window = k_peek49(data, pos)
    return (window >> np.int64(_WINDOW_BITS - count)) & np.int64((1 << count) - 1), pos + count


def k_read_vlc(data, pos, nbits, lut, first_bits):
    """One prefix code off a packed LUT cascade: ``(symbol_id, new_pos)``
    or ``(-1, pos)`` to fall back (invalid prefix, truncation, or a
    cascade deeper than the peek window)."""
    window = k_peek49(data, pos)
    base = 0
    width = first_bits
    total = first_bits
    while True:
        if total > _WINDOW_BITS:
            return np.int64(-1), pos
        idx = (window >> np.int64(_WINDOW_BITS - total)) & np.int64((1 << width) - 1)
        entry = lut[base + idx]
        if entry == -1:
            return np.int64(-1), pos
        if entry & _SUB_FLAG:
            width = (entry >> 24) & 0x3F
            base = entry & 0xFFFFFF
            total += width
        else:
            length = entry >> 16
            if length > nbits - pos:
                return np.int64(-1), pos
            return np.int64(entry & 0xFFFF), pos + length


def k_read_ue(data, pos, nbits):
    """Unsigned exp-Golomb: ``(value, new_pos)`` or ``(-1, pos)`` for
    prefixes the window cannot hold or truncated codes.  Where it
    succeeds it matches ``BitReader.read_ue`` and the bitwise reference
    loop exactly."""
    window = k_peek49(data, pos)
    if window == 0:
        return np.int64(-1), pos
    zeros = 0
    probe = np.int64(1) << np.int64(_WINDOW_BITS - 1)
    while window & probe == 0:
        zeros += 1
        probe = probe >> np.int64(1)
    length = 2 * zeros + 1
    if length > _WINDOW_BITS or length > nbits - pos:
        return np.int64(-1), pos
    value = (window >> np.int64(_WINDOW_BITS - length)) & np.int64((1 << length) - 1)
    return value - np.int64(1), pos + length


def k_scan_block(data, pos, nbits, lut, first_bits, zigzag, out_flat, skip_first):
    """One coded block's TCOEF events into ``out_flat`` — the compiled
    twin of ``repro.codec.macroblock.read_block_levels``.

    Returns ``(new_pos, status)``; any failure (bad prefix, truncation,
    escape level 0, block overflow) is ``status=1`` with the original
    ``pos``, leaving error raising to the Python replay.  ``out_flat``
    may be partially written on failure — the caller re-zeroes it."""
    p = pos
    scan = skip_first
    overflow = -1
    while True:
        sym, p2 = k_read_vlc(data, p, nbits, lut, first_bits)
        if sym < 0:
            return pos, 1
        p = p2
        if sym == TCOEF_ESCAPE_ID:
            payload, p2 = k_read_bits(data, p, 15, nbits)
            if payload < 0:
                return pos, 1
            p = p2
            last = (payload >> np.int64(14)) & np.int64(1)
            run = (payload >> np.int64(8)) & np.int64(0x3F)
            raw = payload & np.int64(0xFF)
            level = raw - np.int64(256) if raw >= 128 else raw
            if level == 0:
                return pos, 1
        else:
            sign, p2 = k_read_bits(data, p, 1, nbits)
            if sign < 0:
                return pos, 1
            p = p2
            level = (sym & np.int64(7)) + np.int64(1)
            if sign != 0:
                level = -level
            run = (sym >> np.int64(3)) & np.int64(0x1F)
            last = (sym >> np.int64(8)) & np.int64(1)
        scan += run
        if overflow < 0:
            if scan < 64:
                out_flat[zigzag[scan]] = level
            else:
                overflow = scan
        scan += 1
        if last != 0:
            if overflow >= 0:
                return pos, 1
            return p, 0


# -- picture-body grammar kernels -----------------------------------------
#
# Whole macroblock layers in one nopython call: the compiled mirrors of
# the decoder's _parse_*_body_fast walks.  Every return carries the
# output arrays (numba needs consistent return types); status != 0 means
# "arrays are garbage, replay from pos in Python".


def k_parse_inter_body(
    data, pos, nbits, rows, cols, multi, num_refs,
    mcbpc_lut, mcbpc_bits, cbpy_lut, cbpy_bits,
    tcoef_lut, tcoef_bits, zigzag,
):
    levels = np.zeros((rows, cols, 6, 64), dtype=np.int64)
    hx = np.zeros((rows, cols), dtype=np.int64)
    hy = np.zeros((rows, cols), dtype=np.int64)
    ref_idx = np.zeros((rows, cols), dtype=np.int64)
    p = pos
    for r in range(rows):
        for c in range(cols):
            cod, p2 = k_read_bits(data, p, 1, nbits)
            if cod < 0:
                return pos, 1, levels, hx, hy, ref_idx
            p = p2
            if cod != 0:  # COD = 1: skipped, zero vector, no residual
                continue
            mcbpc, p2 = k_read_vlc(data, p, nbits, mcbpc_lut, mcbpc_bits)
            if mcbpc < 0:
                return pos, 1, levels, hx, hy, ref_idx
            p = p2
            cbpy, p2 = k_read_vlc(data, p, nbits, cbpy_lut, cbpy_bits)
            if cbpy < 0:
                return pos, 1, levels, hx, hy, ref_idx
            p = p2
            if multi != 0:
                ref, p2 = k_read_ue(data, p, nbits)
                if ref < 0 or ref >= num_refs:
                    return pos, 1, levels, hx, hy, ref_idx
                p = p2
                ref_idx[r, c] = ref
            # Median MVD predictor, inlined (repro.codec.mv_coding):
            # top row takes the left vector (zero at the corner);
            # elsewhere median of left/above/above-right with zeros for
            # out-of-picture candidates.  Skipped MBs hold zero in
            # hx/hy, which is exactly their predictor contribution.
            if r == 0:
                px = hx[0, c - 1] if c > 0 else np.int64(0)
                py = hy[0, c - 1] if c > 0 else np.int64(0)
            else:
                lx = hx[r, c - 1] if c > 0 else np.int64(0)
                ly = hy[r, c - 1] if c > 0 else np.int64(0)
                ax = hx[r - 1, c]
                ay = hy[r - 1, c]
                arx = hx[r - 1, c + 1] if c + 1 < cols else np.int64(0)
                ary = hy[r - 1, c + 1] if c + 1 < cols else np.int64(0)
                px = max(min(lx, ax), min(max(lx, ax), arx))
                py = max(min(ly, ay), min(max(ly, ay), ary))
            mapped, p2 = k_read_ue(data, p, nbits)
            if mapped < 0:
                return pos, 1, levels, hx, hy, ref_idx
            p = p2
            if mapped & 1:
                hx[r, c] = px + ((mapped + 1) >> np.int64(1))
            else:
                hx[r, c] = px - (mapped >> np.int64(1))
            mapped, p2 = k_read_ue(data, p, nbits)
            if mapped < 0:
                return pos, 1, levels, hx, hy, ref_idx
            p = p2
            if mapped & 1:
                hy[r, c] = py + ((mapped + 1) >> np.int64(1))
            else:
                hy[r, c] = py - (mapped >> np.int64(1))
            for b in range(6):
                if b < 4:
                    coded = (cbpy >> np.int64(b)) & np.int64(1)
                elif b == 4:
                    coded = (mcbpc >> np.int64(1)) & np.int64(1)
                else:
                    coded = mcbpc & np.int64(1)
                if coded != 0:
                    p2, status = k_scan_block(
                        data, p, nbits, tcoef_lut, tcoef_bits, zigzag,
                        levels[r, c, b], 0,
                    )
                    if status != 0:
                        return pos, 1, levels, hx, hy, ref_idx
                    p = p2
    return p, 0, levels, hx, hy, ref_idx


def k_parse_intra_body(
    data, pos, nbits, rows, cols,
    mcbpc_lut, mcbpc_bits, cbpy_lut, cbpy_bits,
    tcoef_lut, tcoef_bits, zigzag,
):
    n = rows * cols * 6
    levels = np.zeros((n, 64), dtype=np.int64)
    dc = np.zeros(n, dtype=np.int64)
    p = pos
    k = 0
    for _ in range(rows * cols):
        mcbpc, p2 = k_read_vlc(data, p, nbits, mcbpc_lut, mcbpc_bits)
        if mcbpc < 0:
            return pos, 1, levels, dc
        p = p2
        cbpy, p2 = k_read_vlc(data, p, nbits, cbpy_lut, cbpy_bits)
        if cbpy < 0:
            return pos, 1, levels, dc
        p = p2
        for b in range(6):
            if b < 4:
                coded = (cbpy >> np.int64(b)) & np.int64(1)
            elif b == 4:
                coded = (mcbpc >> np.int64(1)) & np.int64(1)
            else:
                coded = mcbpc & np.int64(1)
            v, p2 = k_read_bits(data, p, 8, nbits)
            if v < 0:
                return pos, 1, levels, dc
            dc[k] = v
            p = p2
            if coded != 0:
                p2, status = k_scan_block(
                    data, p, nbits, tcoef_lut, tcoef_bits, zigzag, levels[k], 1
                )
                if status != 0:
                    return pos, 1, levels, dc
                p = p2
            k += 1
    return p, 0, levels, dc


def k_parse_intra_pred_body(
    data, pos, nbits, rows, cols, mode_bits,
    mcbpc_lut, mcbpc_bits, cbpy_lut, cbpy_bits,
    tcoef_lut, tcoef_bits, zigzag,
):
    levels = np.zeros((rows, cols, 6, 64), dtype=np.int64)
    modes = np.zeros((rows, cols), dtype=np.int64)
    p = pos
    for r in range(rows):
        for c in range(cols):
            mode, p2 = k_read_bits(data, p, mode_bits, nbits)
            if mode < 0 or mode > 2:
                return pos, 1, levels, modes
            modes[r, c] = mode
            p = p2
            mcbpc, p2 = k_read_vlc(data, p, nbits, mcbpc_lut, mcbpc_bits)
            if mcbpc < 0:
                return pos, 1, levels, modes
            p = p2
            cbpy, p2 = k_read_vlc(data, p, nbits, cbpy_lut, cbpy_bits)
            if cbpy < 0:
                return pos, 1, levels, modes
            p = p2
            for b in range(6):
                if b < 4:
                    coded = (cbpy >> np.int64(b)) & np.int64(1)
                elif b == 4:
                    coded = (mcbpc >> np.int64(1)) & np.int64(1)
                else:
                    coded = mcbpc & np.int64(1)
                if coded != 0:
                    p2, status = k_scan_block(
                        data, p, nbits, tcoef_lut, tcoef_bits, zigzag,
                        levels[r, c, b], 0,
                    )
                    if status != 0:
                        return pos, 1, levels, modes
                    p = p2
    return p, 0, levels, modes


# -- compute kernels -------------------------------------------------------


def k_sad_surfaces(cur, ref, s, p):
    h, w = cur.shape
    rows = h // s
    cols = w // s
    n = 2 * p + 1
    surf = np.full((rows, cols, n, n), _SENTINEL, dtype=np.int32)
    for r in range(rows):
        y = r * s
        dy_lo = -p if y >= p else -y
        dy_hi = p if y + s + p <= h else h - s - y
        for c in range(cols):
            x = c * s
            dx_lo = -p if x >= p else -x
            dx_hi = p if x + s + p <= w else w - s - x
            for dy in range(dy_lo, dy_hi + 1):
                for dx in range(dx_lo, dx_hi + 1):
                    acc = 0
                    for i in range(s):
                        yy = y + i
                        ry = yy + dy
                        for j in range(s):
                            d = np.int64(cur[yy, x + j]) - np.int64(ref[ry, x + dx + j])
                            acc += d if d >= 0 else -d
                    surf[r, c, dy + p, dx + p] = acc
    return surf


def k_evaluate_candidates(cur, ref, block_ys, block_xs, dys, dxs, s):
    n, k = dys.shape
    h, w = ref.shape
    out = np.empty((n, k), dtype=np.int64)
    for i in range(n):
        y = block_ys[i]
        x = block_xs[i]
        for j in range(k):
            y0 = y + dys[i, j]
            x0 = x + dxs[i, j]
            if y0 < 0 or y0 + s > h or x0 < 0 or x0 + s > w:
                out[i, j] = -1
                continue
            acc = np.int64(0)
            for a in range(s):
                for b in range(s):
                    d = np.int64(cur[y + a, x + b]) - np.int64(ref[y0 + a, x0 + b])
                    acc += d if d >= 0 else -d
            out[i, j] = acc
    return out


def k_refine_half_pel(cur, half, anchor_dx, anchor_dy, anchor_sads, s, p, h, w, offs):
    rows = h // s
    cols = w // s
    best_hx = np.empty((rows, cols), dtype=np.int64)
    best_hy = np.empty((rows, cols), dtype=np.int64)
    best_sad = np.empty((rows, cols), dtype=np.int64)
    evaluated = np.empty((rows, cols), dtype=np.int64)
    for r in range(rows):
        y = r * s
        dy_min = -p if y >= p else -y
        dy_max = p if p <= h - s - y else h - s - y
        for c in range(cols):
            x = c * s
            dx_min = -p if x >= p else -x
            dx_max = p if p <= w - s - x else w - s - x
            ahx = 2 * anchor_dx[r, c]
            ahy = 2 * anchor_dy[r, c]
            bsad = anchor_sads[r, c]
            bhx = ahx
            bhy = ahy
            count = 0
            for t in range(8):
                chx = ahx + offs[t, 0]
                chy = ahy + offs[t, 1]
                if (
                    chx < 2 * dx_min
                    or chx > 2 * dx_max
                    or chy < 2 * dy_min
                    or chy > 2 * dy_max
                ):
                    continue
                count += 1
                gy = 2 * y + chy
                gx = 2 * x + chx
                acc = np.int64(0)
                for i in range(s):
                    for j in range(s):
                        d = np.int64(cur[y + i, x + j]) - np.int64(half[gy + 2 * i, gx + 2 * j])
                        acc += d if d >= 0 else -d
                # Strict improvement in neighbour order — ties keep the
                # earlier winner, matching the vectorized update.
                if acc < bsad:
                    bsad = acc
                    bhx = chx
                    bhy = chy
            best_hx[r, c] = bhx
            best_hy[r, c] = bhy
            best_sad[r, c] = bsad
            evaluated[r, c] = count
    return best_hx, best_hy, best_sad, evaluated


def k_intra_mode_costs(y, s):
    rows = y.shape[0] // s
    cols = y.shape[1] // s
    costs = np.full((3, rows, cols), _INTRA_UNAVAILABLE, dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            dc = np.int64(0)
            for i in range(s):
                for j in range(s):
                    d = np.int64(y[r * s + i, c * s + j]) - np.int64(128)
                    dc += d if d >= 0 else -d
            costs[0, r, c] = dc
            if r > 0:
                acc = np.int64(0)
                for i in range(s):
                    for j in range(s):
                        d = np.int64(y[r * s + i, c * s + j]) - np.int64(y[r * s - 1, c * s + j])
                        acc += d if d >= 0 else -d
                costs[1, r, c] = acc
            if c > 0:
                acc = np.int64(0)
                for i in range(s):
                    for j in range(s):
                        d = np.int64(y[r * s + i, c * s + j]) - np.int64(y[r * s + i, c * s - 1])
                        acc += d if d >= 0 else -d
                costs[2, r, c] = acc
    return costs


def k_mc_gather(half, base_hy, base_hx, s):
    rows, cols = base_hy.shape
    out = np.empty((rows * s, cols * s), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            gy = base_hy[r, c]
            gx = base_hx[r, c]
            for i in range(s):
                for j in range(s):
                    out[r * s + i, c * s + j] = half[gy + 2 * i, gx + 2 * j]
    return out


def k_dequant(flat, qp):
    out = np.empty(flat.shape[0], dtype=np.float64)
    even = qp % 2 == 0
    for i in range(flat.shape[0]):
        lv = flat[i]
        if lv == 0:
            out[i] = 0.0
        elif lv > 0:
            m = qp * (2 * lv + 1)
            out[i] = float(m - 1) if even else float(m)
        else:
            m = qp * (-2 * lv + 1)
            out[i] = float(-(m - 1)) if even else float(-m)
    return out


# -- jit management --------------------------------------------------------

#: Every kernel rebound by :func:`_ensure_jitted`.  Inter-kernel calls
#: resolve through module globals, so after rebinding, jitted kernels
#: call jitted kernels.
_KERNEL_NAMES = (
    "k_peek49",
    "k_read_bits",
    "k_read_vlc",
    "k_read_ue",
    "k_scan_block",
    "k_parse_inter_body",
    "k_parse_intra_body",
    "k_parse_intra_pred_body",
    "k_sad_surfaces",
    "k_evaluate_candidates",
    "k_refine_half_pel",
    "k_intra_mode_costs",
    "k_mc_gather",
    "k_dequant",
)

_jitted = False


def _ensure_jitted() -> None:
    """Swap every kernel global for its ``njit(cache=True)`` dispatcher.

    Idempotent; raises ``ImportError`` when numba is absent (the
    registry gates that case with a clearer error)."""
    global _jitted
    if _jitted:
        return
    import numba

    g = globals()
    for name in _KERNEL_NAMES:
        g[name] = numba.njit(cache=True)(g[name])
    _jitted = True


# -- ABI wrappers ----------------------------------------------------------
#
# Thin Python shims: validate that the arguments sit inside the compiled
# envelope (uint8 planes, int64 index arrays, contiguous buffers),
# prepare dtypes, and fall back to the numpy cores otherwise so the
# backend never changes behaviour, only speed.  They look kernels up in
# globals() at call time so the jit rebinding takes effect everywhere.


def _u8(arr):
    return arr.dtype == np.uint8 and arr.ndim == 2


def _sad_surfaces(cur, ref, s, p):
    if not (_u8(cur) and _u8(ref)):
        from repro.me.engine.kernels import sad_surfaces_numpy

        return sad_surfaces_numpy(cur, ref, s, p)
    return k_sad_surfaces(np.ascontiguousarray(cur), np.ascontiguousarray(ref), s, p)


def _evaluate_candidates(cur, ref, block_ys, block_xs, dys, dxs, s):
    if not (_u8(cur) and _u8(ref)):
        from repro.me.engine.kernels import evaluate_candidates_numpy

        return evaluate_candidates_numpy(cur, ref, block_ys, block_xs, dys, dxs, s)
    by = np.ascontiguousarray(block_ys, dtype=np.int64)
    bx = np.ascontiguousarray(block_xs, dtype=np.int64)
    dy = np.ascontiguousarray(dys, dtype=np.int64)
    dx = np.ascontiguousarray(dxs, dtype=np.int64)
    return k_evaluate_candidates(
        np.ascontiguousarray(cur), np.ascontiguousarray(ref), by, bx, dy, dx, s
    )


def _refine_half_pel(current, half, anchor_dx, anchor_dy, anchor_sads, s, p, h, w, offs):
    if not (_u8(current) and _u8(half)):
        from repro.me.engine.kernels import refine_half_pel_numpy

        return refine_half_pel_numpy(
            current, half, anchor_dx, anchor_dy, anchor_sads, s, p, h, w, offs
        )
    return k_refine_half_pel(
        np.ascontiguousarray(current),
        np.ascontiguousarray(half),
        np.ascontiguousarray(anchor_dx, dtype=np.int64),
        np.ascontiguousarray(anchor_dy, dtype=np.int64),
        np.ascontiguousarray(anchor_sads, dtype=np.int64),
        s,
        p,
        h,
        w,
        np.ascontiguousarray(offs, dtype=np.int64),
    )


def _intra_mode_costs(y, block_size):
    if not _u8(y):
        from repro.me.engine.kernels import intra_mode_costs_numpy

        return intra_mode_costs_numpy(y, block_size)
    return k_intra_mode_costs(np.ascontiguousarray(y), block_size)


def _mc_gather(half, base_hy, base_hx, block_size):
    if not _u8(half):
        from repro.me.engine.reconstruction import mc_gather_numpy

        return mc_gather_numpy(half, base_hy, base_hx, block_size)
    return k_mc_gather(
        np.ascontiguousarray(half),
        np.ascontiguousarray(base_hy, dtype=np.int64),
        np.ascontiguousarray(base_hx, dtype=np.int64),
        block_size,
    )


def _dequant(levels, qp):
    lv = np.asarray(levels, dtype=np.int64)
    return k_dequant(np.ascontiguousarray(lv.ravel()), qp).reshape(lv.shape)


def _check_vlc_args(data, out_flat=None):
    if data.dtype != np.uint8 or data.ndim != 1:
        return False
    if out_flat is not None and (
        not isinstance(out_flat, np.ndarray)
        or out_flat.dtype != np.int64
        or not out_flat.flags.c_contiguous
    ):
        return False
    return True


def _scan_block_levels(data, pos, nbits, out_flat, skip_first):
    if not _check_vlc_args(data, out_flat):
        return -1
    new_pos, status = k_scan_block(
        data, pos, nbits, PACKED_TCOEF, TCOEF_FIRST_BITS, ZIGZAG, out_flat, skip_first
    )
    return -1 if status else int(new_pos)


def _parse_inter_body(data, pos, nbits, extended, num_refs, rows, cols):
    if not _check_vlc_args(data):
        return None
    new_pos, status, levels, hx, hy, ref_idx = k_parse_inter_body(
        data, pos, nbits, rows, cols, 1 if extended else 0, num_refs,
        PACKED_MCBPC, MCBPC_FIRST_BITS, PACKED_CBPY, CBPY_FIRST_BITS,
        PACKED_TCOEF, TCOEF_FIRST_BITS, ZIGZAG,
    )
    if status:
        return None
    return int(new_pos), levels, hx, hy, ref_idx


def _parse_intra_body(data, pos, nbits, rows, cols):
    if not _check_vlc_args(data):
        return None
    new_pos, status, levels, dc = k_parse_intra_body(
        data, pos, nbits, rows, cols,
        PACKED_MCBPC, MCBPC_FIRST_BITS, PACKED_CBPY, CBPY_FIRST_BITS,
        PACKED_TCOEF, TCOEF_FIRST_BITS, ZIGZAG,
    )
    if status:
        return None
    return int(new_pos), levels, dc


def _parse_intra_pred_body(data, pos, nbits, rows, cols):
    if not _check_vlc_args(data):
        return None
    # GOP-syntax intra mode field width (repro.codec.intra.INTRA_MODE_BITS).
    new_pos, status, levels, modes = k_parse_intra_pred_body(
        data, pos, nbits, rows, cols, 2,
        PACKED_MCBPC, MCBPC_FIRST_BITS, PACKED_CBPY, CBPY_FIRST_BITS,
        PACKED_TCOEF, TCOEF_FIRST_BITS, ZIGZAG,
    )
    if status:
        return None
    return int(new_pos), levels, modes


# -- backend construction --------------------------------------------------


def make_backend(jit: bool = True) -> KernelBackend:
    """Build the backend record.

    ``jit=True`` (the real backend) rebinds the kernels under
    ``numba.njit(cache=True)`` — requires numba.  ``jit=False`` returns
    the ``"numba-sim"`` backend running the identical kernel bodies as
    plain Python: orders of magnitude slower, but it lets the bit-
    identity suites cover every compiled code path on machines without
    numba.  Sim backends never cross a spawn boundary (workers only
    accept registry names).
    """
    if jit:
        _ensure_jitted()
    return KernelBackend(
        name="numba" if jit else "numba-sim",
        sad_surfaces=_sad_surfaces,
        evaluate_candidates=_evaluate_candidates,
        refine_half_pel=_refine_half_pel,
        intra_mode_costs=_intra_mode_costs,
        mc_gather=_mc_gather,
        dequant=_dequant,
        dequant_intra_dc=dequantize_intra_dc_numpy,
        idct=inverse_dct,
        scan_block_levels=_scan_block_levels,
        parse_inter_body=_parse_inter_body,
        parse_intra_body=_parse_intra_body,
        parse_intra_pred_body=_parse_intra_pred_body,
    )


_cached: KernelBackend | None = None


def get_numba_backend() -> KernelBackend:
    """The jitted backend, built once per process."""
    global _cached
    if _cached is None:
        _cached = make_backend(jit=True)
    return _cached
