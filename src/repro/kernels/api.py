"""The kernel ABI: the narrow seam between the codec and its compute.

Every hot loop in the codec funnels through one of the entry points
named here — a deliberate bottleneck so an alternative backend (today
:mod:`repro.kernels.numba_backend`, tomorrow Cython/C) only has to
implement this surface to accelerate the whole system:

* ``sad_surfaces`` — the full ±p SAD surface of every macroblock
  (:func:`repro.me.engine.kernels.frame_sad_surfaces`'s packed core);
* ``evaluate_candidates`` — arbitrary (block, displacement) candidate
  lists scored in one pass.  ``frame_ring_sad`` — the fast searches'
  batched opening ring — is this entry composed over the frame's block
  grid, so it accelerates for free and needs no field of its own;
* ``refine_half_pel`` — the 8-neighbour half-pel stage for every block;
* ``intra_mode_costs`` — open-loop DC/vertical/horizontal mode SADs;
* ``mc_gather`` — the motion-compensated plane gather behind
  ``frame_mc_luma``/``frame_mc_chroma``;
* ``dequant`` / ``dequant_intra_dc`` — H.263 level reconstruction;
* ``idct`` — the 8x8 inverse DCT.  **Every backend must bind the same
  float64 matmul** (:func:`repro.codec.dct.inverse_dct`): the codec's
  bit-identity contract hinges on ``rint`` seeing identical floats, and
  a compiled reassociation of the sum could flip a half-way case;
* ``scan_block_levels`` + ``parse_*_body`` — the VLC symbol-scan
  primitives backing ``BitReader.read_vlc``/``read_ue``: a compiled
  TCOEF block scan and whole-picture-body grammar kernels walking the
  packed LUTs of :mod:`repro.kernels.lut_pack`.  ``None`` means "use
  the Python LUT path" (the numpy backend's choice — NumPy cannot beat
  the existing word-level reader at per-symbol granularity).

Contract for the compiled VLC entries: they operate on an **untouched**
cursor snapshot (``BitReader.cursor()``) and signal *any* deviation from
the happy path — invalid prefix, truncation, illegal value, unsupported
shape — by returning ``None`` (bodies) or a negative position (scan)
**without advancing the reader**.  The caller then replays the identical
bits through the Python path, which raises the codec's exact exceptions;
error parity across backends holds by construction, not by duplicated
``raise`` statements.

Numerical contract everywhere else: integer kernels (SAD, gather,
dequant) are exact, so "equivalent" means *bit-identical* — the golden
suites run parametrized over every available backend and compare
encoded bytes, not PSNR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class KernelBackend:
    """One backend's bindings for the kernel ABI.

    Instances are cheap frozen records; the active one is resolved by
    :func:`repro.kernels.get_backend` (``REPRO_BACKEND`` env var or the
    runner's ``--backend`` flag, ``auto`` = numba-if-importable).
    """

    #: Registry name ("numpy", "numba"); also stamped into BENCH records.
    name: str

    #: (cur u8 (h,w), ref u8 (h,w), block_size, p) -> (rows, cols, 2p+1, 2p+1)
    #: int32 surface with SURFACE_SENTINEL at out-of-plane displacements.
    #: Only dispatched inside the packed envelope
    #: (:func:`repro.me.engine.kernels.supports_vectorized_search`).
    sad_surfaces: Callable

    #: (cur, ref, block_ys (N,), block_xs (N,), dys (N,K), dxs (N,K), s)
    #: -> (N, K) int64 SADs, -1 marking out-of-plane candidates.
    evaluate_candidates: Callable

    #: (cur, half_plane u8, anchor_dx, anchor_dy, anchor_sads, s, p, h, w,
    #:  neighbours (8,2) as (dhx, dhy)) -> (hx, hy, sads, evaluated), all
    #: (rows, cols); strict-improvement update in neighbour order.
    refine_half_pel: Callable

    #: (y plane, block_size) -> (3, rows, cols) int64 mode-cost surface
    #: (DC / vertical / horizontal), INTRA_UNAVAILABLE_COST sentinel.
    intra_mode_costs: Callable

    #: (half_plane u8, base_hy (rows,cols), base_hx (rows,cols), s)
    #: -> (rows*s, cols*s) u8 motion-compensated plane.
    mc_gather: Callable

    #: (levels int array, qp) -> float64 reconstructed coefficients.
    dequant: Callable

    #: (dc levels int64, already range-validated) -> float64 (level * 8).
    dequant_intra_dc: Callable

    #: (coefficients (..., 8, 8) float64) -> float64 pixels.  Must be the
    #: shared numpy matmul in every backend (see module docstring).
    idct: Callable

    #: Optional compiled TCOEF block scan:
    #: (data u8 array, bit_pos, nbits, out_flat int64 (64,), skip_first)
    #: -> new bit position, or -1 to fall back (out untouched or rezeroed
    #: by the caller).  None = use the Python LUT loop.
    scan_block_levels: Optional[Callable] = None

    #: Optional compiled picture-body parsers.  Signatures:
    #: parse_inter_body(data, pos, nbits, extended, num_refs, rows, cols)
    #:   -> (new_pos, levels (rows,cols,6,64) i64, hx, hy, ref_idx) | None
    #: parse_intra_body(data, pos, nbits, rows, cols)
    #:   -> (new_pos, levels (rows*cols*6,64) i64, dc_levels) | None
    #: parse_intra_pred_body(data, pos, nbits, rows, cols)
    #:   -> (new_pos, levels (rows,cols,6,64) i64, modes) | None
    #: None = use the Python fast bodies.
    parse_inter_body: Optional[Callable] = None
    parse_intra_body: Optional[Callable] = None
    parse_intra_pred_body: Optional[Callable] = None
