"""YUV 4:2:0 video frames.

The paper evaluates on QCIF (176x144) and CIF (352x288) sequences; both
geometries are multiples of 16 so every frame tiles exactly into 16x16
macroblocks, with 8x8 chroma blocks under 4:2:0 subsampling.

A :class:`Frame` owns three ``uint8`` numpy planes (Y, Cb, Cr).  All
pixel math in the package is done in wider integer or float dtypes; the
frame is the storage boundary where values are clamped back to [0, 255].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Luminance macroblock edge in pixels (the paper's N = M = 16).
MACROBLOCK_SIZE = 16

#: Chroma block edge under 4:2:0 subsampling.
CHROMA_BLOCK_SIZE = 8


@dataclass(frozen=True)
class FrameGeometry:
    """Dimensions of a 4:2:0 frame.

    Parameters
    ----------
    width, height:
        Luma plane dimensions in pixels.  Both must be positive
        multiples of 16 so the frame tiles exactly into macroblocks.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"frame dimensions must be positive, got {self.width}x{self.height}")
        if self.width % MACROBLOCK_SIZE or self.height % MACROBLOCK_SIZE:
            raise ValueError(
                f"frame dimensions must be multiples of {MACROBLOCK_SIZE}, "
                f"got {self.width}x{self.height}"
            )

    @property
    def chroma_width(self) -> int:
        return self.width // 2

    @property
    def chroma_height(self) -> int:
        return self.height // 2

    @property
    def mb_cols(self) -> int:
        """Macroblock grid width."""
        return self.width // MACROBLOCK_SIZE

    @property
    def mb_rows(self) -> int:
        """Macroblock grid height."""
        return self.height // MACROBLOCK_SIZE

    @property
    def mb_count(self) -> int:
        return self.mb_cols * self.mb_rows

    @property
    def pixels(self) -> int:
        """Luma pixel count."""
        return self.width * self.height


#: Quarter Common Intermediate Format — the paper's main evaluation size.
QCIF = FrameGeometry(176, 144)

#: Common Intermediate Format.
CIF = FrameGeometry(352, 288)


def _as_plane(data: np.ndarray, height: int, width: int, name: str) -> np.ndarray:
    arr = np.asarray(data)
    if arr.shape != (height, width):
        raise ValueError(f"{name} plane must be {height}x{width}, got {arr.shape}")
    if arr.dtype != np.uint8:
        arr = np.clip(np.rint(arr.astype(np.float64)), 0, 255).astype(np.uint8)
    return np.ascontiguousarray(arr)


class Frame:
    """One 4:2:0 video frame.

    Parameters
    ----------
    y:
        Luma plane, shape ``(height, width)``.
    cb, cr:
        Chroma planes, shape ``(height//2, width//2)``.  When omitted
        they default to the neutral value 128 (grey).
    index:
        Position of the frame in its source sequence (display order).
        Carried along so temporally subsampled sequences keep their
        original timestamps.

    Non-``uint8`` inputs are rounded and clamped to [0, 255].
    """

    __slots__ = ("y", "cb", "cr", "index")

    def __init__(
        self,
        y: np.ndarray,
        cb: np.ndarray | None = None,
        cr: np.ndarray | None = None,
        index: int = 0,
    ) -> None:
        y = np.asarray(y)
        if y.ndim != 2:
            raise ValueError(f"luma plane must be 2-D, got shape {y.shape}")
        geometry = FrameGeometry(y.shape[1], y.shape[0])
        ch, cw = geometry.chroma_height, geometry.chroma_width
        self.y = _as_plane(y, geometry.height, geometry.width, "Y")
        neutral = None
        if cb is None or cr is None:
            neutral = np.full((ch, cw), 128, dtype=np.uint8)
        self.cb = _as_plane(cb, ch, cw, "Cb") if cb is not None else neutral.copy()
        self.cr = _as_plane(cr, ch, cw, "Cr") if cr is not None else neutral.copy()
        self.index = int(index)

    # -- geometry -----------------------------------------------------

    @property
    def geometry(self) -> FrameGeometry:
        return FrameGeometry(self.y.shape[1], self.y.shape[0])

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    # -- block access -------------------------------------------------

    def luma_block(self, mb_row: int, mb_col: int, size: int = MACROBLOCK_SIZE) -> np.ndarray:
        """Return a view of the ``size``x``size`` luma block at macroblock
        grid coordinates ``(mb_row, mb_col)``."""
        self._check_mb(mb_row, mb_col, size)
        r, c = mb_row * size, mb_col * size
        return self.y[r : r + size, c : c + size]

    def chroma_blocks(self, mb_row: int, mb_col: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the (Cb, Cr) 8x8 block views under macroblock
        ``(mb_row, mb_col)``."""
        self._check_mb(mb_row, mb_col, MACROBLOCK_SIZE)
        s = CHROMA_BLOCK_SIZE
        r, c = mb_row * s, mb_col * s
        return self.cb[r : r + s, c : c + s], self.cr[r : r + s, c : c + s]

    def _check_mb(self, mb_row: int, mb_col: int, size: int) -> None:
        rows = self.height // size
        cols = self.width // size
        if not (0 <= mb_row < rows and 0 <= mb_col < cols):
            raise IndexError(
                f"macroblock ({mb_row}, {mb_col}) outside {rows}x{cols} grid"
            )

    # -- conversions --------------------------------------------------

    def copy(self) -> "Frame":
        return Frame(self.y.copy(), self.cb.copy(), self.cr.copy(), index=self.index)

    def luma_float(self) -> np.ndarray:
        """Luma plane as float64 (for filtering / metric math)."""
        return self.y.astype(np.float64)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            np.array_equal(self.y, other.y)
            and np.array_equal(self.cb, other.cb)
            and np.array_equal(self.cr, other.cr)
        )

    def __hash__(self) -> None:  # pragma: no cover - frames are mutable
        raise TypeError("Frame is unhashable (mutable pixel data)")

    def __repr__(self) -> str:
        return f"Frame({self.width}x{self.height}, index={self.index})"


def grey_frame(geometry: FrameGeometry = QCIF, value: int = 128, index: int = 0) -> Frame:
    """A uniform frame — useful as a test fixture and synthesis base."""
    y = np.full((geometry.height, geometry.width), value, dtype=np.uint8)
    return Frame(y, index=index)
