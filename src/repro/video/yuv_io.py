"""Raw planar YUV 4:2:0 file I/O.

The standard test clips the paper uses (Carphone, Foreman, Miss
America, Table) circulate as headerless planar ``.yuv`` files: for each
frame, a ``W*H`` luma plane followed by two ``W/2 * H/2`` chroma
planes, all ``uint8``.  This module reads and writes that format so a
user who *does* have the original clips can run every experiment on
them instead of the synthetic analogs.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.video.frame import Frame, FrameGeometry
from repro.video.sequence import Sequence


def frame_size_bytes(geometry: FrameGeometry) -> int:
    """Bytes per 4:2:0 frame: Y + Cb + Cr."""
    return geometry.pixels + 2 * geometry.chroma_width * geometry.chroma_height


def iter_yuv_frames(
    path: str | os.PathLike,
    geometry: FrameGeometry,
    max_frames: int | None = None,
) -> Iterator[Frame]:
    """Stream frames from a raw planar 4:2:0 file, one at a time.

    This is the bounded-memory ingest path: only one frame's bytes are
    resident at a time, so it feeds
    :class:`repro.streaming.StreamEncoder` directly for files of any
    size.  ``max_frames`` stops after that many frames without reading
    the rest of the file.

    Raises
    ------
    ValueError
        If the file size is not a whole number of frames — a truncated
        trailing frame or (far more often) a wrong geometry.  The error
        names the offending byte count so the two causes are
        distinguishable: a few stray bytes mean truncation, a large
        remainder means the geometry is wrong.
    """
    fsize = os.path.getsize(path)
    per_frame = frame_size_bytes(geometry)
    leftover = fsize % per_frame
    if leftover:
        raise ValueError(
            f"{path}: size {fsize} is not a multiple of the "
            f"{geometry.width}x{geometry.height} frame size {per_frame} — "
            f"{leftover} trailing bytes (truncated last frame, or wrong geometry)"
        )
    count = fsize // per_frame
    if max_frames is not None:
        count = min(count, max_frames)
    ch, cw = geometry.chroma_height, geometry.chroma_width
    with open(path, "rb") as fh:
        for index in range(count):
            raw = fh.read(per_frame)
            buf = np.frombuffer(raw, dtype=np.uint8)
            y_end = geometry.pixels
            cb_end = y_end + ch * cw
            y = buf[:y_end].reshape(geometry.height, geometry.width)
            cb = buf[y_end:cb_end].reshape(ch, cw)
            cr = buf[cb_end:].reshape(ch, cw)
            yield Frame(y.copy(), cb.copy(), cr.copy(), index=index)


def read_yuv(
    path: str | os.PathLike,
    geometry: FrameGeometry,
    fps: float = 30.0,
    max_frames: int | None = None,
    name: str = "",
) -> Sequence:
    """Load a raw 4:2:0 file into a :class:`Sequence` (``max_frames``
    bounds the ingest; the rest of the file is never read)."""
    frames = list(iter_yuv_frames(path, geometry, max_frames=max_frames))
    if not frames:
        raise ValueError(f"{path}: no frames read")
    return Sequence(frames, fps=fps, name=name or os.path.basename(os.fspath(path)))


def write_yuv(path: str | os.PathLike, sequence: Sequence) -> int:
    """Write a sequence as raw planar 4:2:0.  Returns bytes written."""
    written = 0
    with open(path, "wb") as fh:
        for frame in sequence:
            for plane in (frame.y, frame.cb, frame.cr):
                data = np.ascontiguousarray(plane).tobytes()
                fh.write(data)
                written += len(data)
    return written
