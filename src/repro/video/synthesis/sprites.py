"""Moving scene elements (heads, hands, balls, paddles).

A :class:`Sprite` owns a texture patch, a soft alpha mask and a
per-frame world-coordinate trajectory; rendering alpha-composites it
onto the world plane at a (float) subpixel position.  Trajectories are
plain callables ``frame_index -> (y, x)`` so tests can use exact linear
paths while the sequence presets use eased or oscillating ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.video.synthesis.motion_models import translate

Trajectory = Callable[[int], tuple[float, float]]


def ellipse_mask(height: int, width: int, softness: float = 1.5) -> np.ndarray:
    """Alpha mask of an axis-aligned ellipse inscribed in the patch.

    ``softness`` is the width in pixels of the antialiased edge ramp;
    soft edges keep synthetic frames free of the single-pixel staircase
    artifacts that would inflate Intra_SAD along every contour.
    """
    if softness <= 0:
        raise ValueError(f"softness must be positive, got {softness}")
    cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
    ry, rx = height / 2.0, width / 2.0
    ys = (np.arange(height)[:, None] - cy) / ry
    xs = (np.arange(width)[None, :] - cx) / rx
    # Radial distance in normalized ellipse coordinates; 1.0 = boundary.
    r = np.sqrt(ys * ys + xs * xs)
    edge = softness / min(ry, rx)
    return np.clip((1.0 - r) / edge, 0.0, 1.0)


def rect_mask(height: int, width: int, softness: float = 1.0) -> np.ndarray:
    """Alpha mask of a soft-edged rectangle filling the patch."""
    if softness <= 0:
        raise ValueError(f"softness must be positive, got {softness}")
    ys = np.minimum(np.arange(height), np.arange(height)[::-1])[:, None]
    xs = np.minimum(np.arange(width), np.arange(width)[::-1])[None, :]
    d = np.minimum(ys, xs).astype(np.float64)
    return np.clip((d + 1.0) / softness, 0.0, 1.0)


def disc_mask(diameter: int, softness: float = 1.0) -> np.ndarray:
    """Alpha mask of a circle (table-tennis ball)."""
    return ellipse_mask(diameter, diameter, softness=softness)


@dataclass
class Sprite:
    """A textured patch composited along a trajectory.

    Parameters
    ----------
    texture:
        Float luma patch, shape ``(h, w)``.
    mask:
        Alpha in [0, 1], same shape as ``texture``.
    trajectory:
        ``frame_index -> (world_y, world_x)`` of the patch top-left.
    chroma:
        Optional (cb_offset, cr_offset) tint applied where the sprite
        is opaque, in signed chroma units.
    """

    texture: np.ndarray
    mask: np.ndarray
    trajectory: Trajectory
    chroma: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        self.texture = np.asarray(self.texture, dtype=np.float64)
        self.mask = np.asarray(self.mask, dtype=np.float64)
        if self.texture.shape != self.mask.shape:
            raise ValueError(
                f"texture {self.texture.shape} and mask {self.mask.shape} differ"
            )
        if self.mask.min() < 0.0 or self.mask.max() > 1.0:
            raise ValueError("mask values must lie in [0, 1]")

    def position(self, frame_index: int) -> tuple[float, float]:
        return self.trajectory(frame_index)

    def render_onto(self, world: np.ndarray, frame_index: int) -> None:
        """Composite the sprite onto ``world`` (float, modified in place)
        at its frame-``frame_index`` position with subpixel accuracy."""
        y, x = self.trajectory(frame_index)
        h, w = self.texture.shape
        iy, ix = int(np.floor(y)), int(np.floor(x))
        fy, fx = y - iy, x - ix
        # Shift texture+mask by the fractional part, then blit at the
        # integer cell.  One extra row/col absorbs the spill-over.
        tex = np.zeros((h + 1, w + 1))
        msk = np.zeros((h + 1, w + 1))
        tex[:h, :w] = self.texture
        msk[:h, :w] = self.mask
        tex = translate(tex, fy, fx)
        msk = translate(msk, fy, fx)
        # Clip the blit rectangle against the world bounds.
        wy0, wx0 = max(iy, 0), max(ix, 0)
        wy1 = min(iy + h + 1, world.shape[0])
        wx1 = min(ix + w + 1, world.shape[1])
        if wy1 <= wy0 or wx1 <= wx0:
            return
        sy0, sx0 = wy0 - iy, wx0 - ix
        sy1, sx1 = sy0 + (wy1 - wy0), sx0 + (wx1 - wx0)
        region = world[wy0:wy1, wx0:wx1]
        a = msk[sy0:sy1, sx0:sx1]
        region *= 1.0 - a
        region += a * tex[sy0:sy1, sx0:sx1]


# -- trajectory builders ----------------------------------------------


def linear_path(start: tuple[float, float], velocity: tuple[float, float]) -> Trajectory:
    """Constant-velocity straight line."""
    sy, sx = start
    vy, vx = velocity

    def path(i: int) -> tuple[float, float]:
        return (sy + vy * i, sx + vx * i)

    return path


def sway_path(
    centre: tuple[float, float],
    amplitude: tuple[float, float],
    period: float,
    phase: float = 0.0,
) -> Trajectory:
    """Sinusoidal sway around a fixed centre (talking heads)."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    cy, cx = centre
    ay, ax = amplitude

    def path(i: int) -> tuple[float, float]:
        t = 2.0 * np.pi * i / period + phase
        return (cy + ay * np.sin(t), cx + ax * np.sin(t + np.pi / 3.0))

    return path


def bounce_path(
    start: tuple[float, float],
    velocity: tuple[float, float],
    bounds: tuple[float, float, float, float],
) -> Trajectory:
    """Ballistic bounce inside ``(y_min, y_max, x_min, x_max)`` —
    large per-frame displacement with abrupt reversals (the ball in the
    Table sequence), precisely the motion that breaks predictors."""
    y_min, y_max, x_min, x_max = bounds
    if y_min >= y_max or x_min >= x_max:
        raise ValueError(f"degenerate bounce bounds {bounds}")

    def reflect(value: float, lo: float, hi: float) -> float:
        span = hi - lo
        v = (value - lo) % (2.0 * span)
        return lo + (v if v <= span else 2.0 * span - v)

    sy, sx = start
    vy, vx = velocity

    def path(i: int) -> tuple[float, float]:
        return (
            reflect(sy + vy * i, y_min, y_max),
            reflect(sx + vx * i, x_min, x_max),
        )

    return path


def piecewise_path(segments: Sequence[tuple[int, Trajectory]]) -> Trajectory:
    """Chain trajectories: each ``(start_frame, trajectory)`` pair takes
    over from its start frame, evaluated with a segment-local index."""
    if not segments:
        raise ValueError("piecewise_path needs at least one segment")
    starts = [s for s, _ in segments]
    if starts != sorted(starts) or starts[0] != 0:
        raise ValueError("segments must start at 0 and be sorted by start frame")

    def path(i: int) -> tuple[float, float]:
        active_start, active_traj = segments[0]
        for start, traj in segments:
            if i >= start:
                active_start, active_traj = start, traj
            else:
                break
        return active_traj(i - active_start)

    return path
