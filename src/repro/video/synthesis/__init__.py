"""Deterministic synthetic video generation.

The original QCIF clips used in the paper (Carphone, Foreman, Miss
America, Table) are not redistributable and unavailable offline, so the
experiments run on seeded synthetic analogs built here.  Each analog is
calibrated to match the property of its namesake that the paper's
conclusions actually depend on: texture energy (drives Intra_SAD) and
motion type/magnitude (drives the predictive estimator's success rate).
See DESIGN.md section 2 for the substitution rationale.
"""

from repro.video.synthesis.sequences import available_sequences, make_sequence

__all__ = ["available_sequences", "make_sequence"]
