"""Motion models: subpixel warping and camera trajectories.

A scene is rendered into a *world* plane larger than the frame; a
camera then crops a frame-sized window at a (float) offset per frame.
Global motion — pan, shake, slow zoom — is therefore exact and known in
advance, which the Fig. 4 characterization rig exploits: it compares
FSBM output against ground-truth global displacement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def sample_bilinear(plane: np.ndarray, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Sample ``plane`` at float coordinates with bilinear interpolation.

    Coordinates outside the plane are clamped to the border (edge
    replication), so callers should keep trajectories inside the world
    margin for distortion-free frames.
    """
    h, w = plane.shape
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.minimum(ys.astype(np.int64), h - 2) if h > 1 else np.zeros_like(ys, dtype=np.int64)
    x0 = np.minimum(xs.astype(np.int64), w - 2) if w > 1 else np.zeros_like(xs, dtype=np.int64)
    fy = ys - y0
    fx = xs - x0
    p = plane.astype(np.float64)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    tl = p[y0, x0]
    tr = p[y0, x1]
    bl = p[y1, x0]
    br = p[y1, x1]
    top = tl * (1 - fx) + tr * fx
    bottom = bl * (1 - fx) + br * fx
    return top * (1 - fy) + bottom * fy


def crop_window(
    world: np.ndarray,
    offset_y: float,
    offset_x: float,
    height: int,
    width: int,
    zoom: float = 1.0,
) -> np.ndarray:
    """Extract a ``height``x``width`` window whose top-left sits at the
    float world coordinate ``(offset_y, offset_x)``.

    ``zoom > 1`` magnifies (the window covers *less* world), sampling
    around the window centre so zooming keeps the subject centred.
    """
    if zoom <= 0:
        raise ValueError(f"zoom must be positive, got {zoom}")
    cy = offset_y + (height - 1) / 2.0
    cx = offset_x + (width - 1) / 2.0
    step = 1.0 / zoom
    ys = cy + (np.arange(height) - (height - 1) / 2.0) * step
    xs = cx + (np.arange(width) - (width - 1) / 2.0) * step
    grid_y = np.repeat(ys[:, None], width, axis=1)
    grid_x = np.repeat(xs[None, :], height, axis=0)
    return sample_bilinear(world, grid_y, grid_x)


def translate(plane: np.ndarray, dy: float, dx: float) -> np.ndarray:
    """Shift a plane by a (possibly fractional) displacement.

    The output pixel at (y, x) takes the value of input (y - dy, x - dx),
    i.e. positive ``dx`` moves content to the right — matching the
    motion-vector sign convention used throughout ``repro.me``.
    """
    h, w = plane.shape
    ys = np.arange(h, dtype=np.float64)[:, None] - dy
    xs = np.arange(w, dtype=np.float64)[None, :] - dx
    grid_y = np.repeat(ys, w, axis=1)
    grid_x = np.repeat(xs, h, axis=0)
    return sample_bilinear(plane, grid_y, grid_x)


@dataclass(frozen=True)
class CameraPose:
    """Camera state for one frame: world offset of the window top-left
    plus an optional zoom factor."""

    offset_y: float
    offset_x: float
    zoom: float = 1.0


class CameraPath:
    """A precomputed list of :class:`CameraPose`, one per frame."""

    def __init__(self, poses: list[CameraPose]) -> None:
        if not poses:
            raise ValueError("camera path needs at least one pose")
        self.poses = list(poses)

    def __len__(self) -> int:
        return len(self.poses)

    def __getitem__(self, i: int) -> CameraPose:
        return self.poses[i]

    @staticmethod
    def static(frames: int, offset_y: float, offset_x: float) -> "CameraPath":
        """Fixed tripod camera."""
        return CameraPath([CameraPose(offset_y, offset_x)] * frames)

    @staticmethod
    def pan(
        frames: int,
        start_y: float,
        start_x: float,
        velocity_y: float,
        velocity_x: float,
        reverse_at: int | None = None,
    ) -> "CameraPath":
        """Constant-velocity pan, optionally reversing direction at
        frame ``reverse_at`` — that frame is the turning point: the
        pan's extreme pose (Foreman's abrupt camera swing)."""
        poses = []
        y, x = start_y, start_x
        vy, vx = velocity_y, velocity_x
        for i in range(frames):
            poses.append(CameraPose(y, x))
            if reverse_at is not None and i == reverse_at:
                vy, vx = -vy, -vx
            y += vy
            x += vx
        return CameraPath(poses)

    @staticmethod
    def shake(
        frames: int,
        offset_y: float,
        offset_x: float,
        sigma: float,
        seed: int,
        drift_y: float = 0.0,
        drift_x: float = 0.0,
    ) -> "CameraPath":
        """Hand-held jitter: a bounded random walk around a drifting
        centre (Carphone's in-car camera)."""
        rng = np.random.default_rng(seed)
        poses = []
        jy = jx = 0.0
        for i in range(frames):
            poses.append(CameraPose(offset_y + drift_y * i + jy, offset_x + drift_x * i + jx))
            jy = np.clip(jy + rng.normal(0.0, sigma), -3.0 * sigma, 3.0 * sigma)
            jx = np.clip(jx + rng.normal(0.0, sigma), -3.0 * sigma, 3.0 * sigma)
        return CameraPath(poses)

    @staticmethod
    def zoom(
        frames: int,
        offset_y: float,
        offset_x: float,
        start_zoom: float = 1.0,
        zoom_per_frame: float = 0.002,
    ) -> "CameraPath":
        """Slow linear zoom (the Table-tennis camera pull)."""
        return CameraPath(
            [
                CameraPose(offset_y, offset_x, zoom=start_zoom + zoom_per_frame * i)
                for i in range(frames)
            ]
        )
