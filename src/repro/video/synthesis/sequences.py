"""Synthetic analogs of the paper's four QCIF test clips.

Each preset targets the qualitative properties that drive the paper's
results (Section 4 and Table 1):

===============  =================  ====================================
Preset           Texture (Intra_SAD) Motion character
===============  =================  ====================================
miss_america     lowest             near-static head sway, tripod camera
carphone         medium             talking head + fast background seen
                                    through a window, hand-held jitter
table            medium             fast bouncing ball + paddle, slow zoom
foreman          highest            detailed wall, strong camera pan with
                                    an abrupt direction reversal
===============  =================  ====================================

All presets are deterministic in ``(name, frames, seed, geometry)``.
The scene renderer composites seeded textures and sprites into a world
plane and crops camera windows from it, so global motion is known
exactly — the property the Fig. 4 rig needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence as TypingSequence

import numpy as np

from repro.video.filters import downsample2, gradient_magnitude, smooth
from repro.video.frame import Frame, FrameGeometry, QCIF
from repro.video.sequence import Sequence
from repro.video.synthesis.motion_models import CameraPath, CameraPose, crop_window
from repro.video.synthesis.noise import white_noise
from repro.video.synthesis.sprites import (
    Sprite,
    bounce_path,
    disc_mask,
    ellipse_mask,
    linear_path,
    rect_mask,
    sway_path,
)
from repro.video.synthesis.texture import (
    gradient_field,
    noise_texture,
    stripe_field,
)


@dataclass
class SceneSpec:
    """Full description of a synthetic scene.

    ``background`` is built once (the world is static; all apparent
    background motion comes from the camera), sprites are re-composited
    every frame, and the camera path selects the visible window.
    """

    name: str
    geometry: FrameGeometry
    frames: int
    margin: int
    background: np.ndarray
    camera: CameraPath
    sprites: list[Sprite] = field(default_factory=list)
    sensor_noise_sigma: float = 1.0
    #: Peak sigma of gradient-coupled temporal shimmer (see
    #: :func:`render_scene`).  Models the per-frame appearance change of
    #: real video — deformation, lighting flicker, resampling aliasing —
    #: which is what gives textured blocks their non-trivial
    #: motion-compensated residual (SAD_PBM) in the paper's data.
    shimmer_sigma: float = 0.0
    chroma_gain: tuple[float, float] = (-0.12, 0.10)
    seed: int = 0

    def __post_init__(self) -> None:
        expected = (
            self.geometry.height + 2 * self.margin,
            self.geometry.width + 2 * self.margin,
        )
        if self.background.shape[0] < expected[0] or self.background.shape[1] < expected[1]:
            raise ValueError(
                f"background must be at least world-sized {expected}, "
                f"got {self.background.shape}"
            )
        if len(self.camera) < self.frames:
            raise ValueError(
                f"camera path has {len(self.camera)} poses for {self.frames} frames"
            )


def render_scene(spec: SceneSpec) -> Sequence:
    """Render a :class:`SceneSpec` into a 4:2:0 :class:`Sequence`.

    Two per-frame noise terms are added on top of the composited scene:

    * flat sensor noise (``sensor_noise_sigma``), and
    * *gradient-coupled shimmer* (``shimmer_sigma``): zero-mean noise
      whose local sigma scales with the normalized luma gradient.  Flat
      areas stay clean while textured areas change slightly from frame
      to frame — the temporal innovation that real cameras and moving
      subjects exhibit and pure translation lacks.  Without it, the
      motion-compensated residual of textured blocks would be
      unrealistically near zero and ACBM's second condition
      (``SAD_PBM < γ·Intra_SAD``) would never fail.
    """
    rng = np.random.default_rng(spec.seed ^ 0x5EED)
    frames = []
    h, w = spec.geometry.height, spec.geometry.width
    gain_cb, gain_cr = spec.chroma_gain
    for i in range(spec.frames):
        world = spec.background.copy()
        for sprite in spec.sprites:
            sprite.render_onto(world, i)
        pose = spec.camera[i]
        luma = crop_window(world, pose.offset_y, pose.offset_x, h, w, zoom=pose.zoom)
        if spec.shimmer_sigma > 0.0:
            gradient = np.clip(gradient_magnitude(luma) / 40.0, 0.0, 1.0)
            luma = luma + gradient * rng.normal(0.0, spec.shimmer_sigma, size=luma.shape)
        luma = luma + white_noise(h, w, spec.sensor_noise_sigma, rng)
        # Chroma derived from a low-passed luma so coloured regions track
        # the scene structure without a second render pass.
        low = smooth(luma, radius=2)
        cb = 128.0 + gain_cb * (downsample2(low) - 128.0)
        cr = 128.0 + gain_cr * (downsample2(low) - 128.0)
        frames.append(Frame(luma, cb, cr, index=i))
    return Sequence(frames, fps=30.0, name=spec.name)


# -- preset helpers ----------------------------------------------------


def _panned_shake_path(
    frames: int,
    offset_y: float,
    offset_x: float,
    velocity_x: float,
    reverse_at: int | None,
    jitter_sigma: float,
    seed: int,
) -> CameraPath:
    """Pan plus hand-held jitter (Foreman's camera)."""
    rng = np.random.default_rng(seed)
    poses = []
    x = offset_x
    vx = velocity_x
    jy = jx = 0.0
    for i in range(frames):
        poses.append(CameraPose(offset_y + jy, x + jx))
        if reverse_at is not None and i == reverse_at:
            vx = -vx
        x += vx
        if jitter_sigma > 0:
            jy = float(np.clip(jy + rng.normal(0.0, jitter_sigma), -2.0, 2.0))
            jx = float(np.clip(jx + rng.normal(0.0, jitter_sigma), -2.0, 2.0))
    return CameraPath(poses)


def _head_sprite(
    height: int,
    width: int,
    seed: int,
    amplitude: float,
    centre: tuple[float, float],
    sway_amp: tuple[float, float],
    sway_period: float,
    base: float = 150.0,
    cell: int = 12,
    octaves: int = 2,
    persistence: float = 0.5,
) -> Sprite:
    """An elliptical 'head' with its own internal texture."""
    texture = noise_texture(
        height, width, seed=seed, cell=cell, octaves=octaves,
        amplitude=amplitude, base=base, persistence=persistence,
    )
    return Sprite(
        texture=texture,
        mask=ellipse_mask(height, width, softness=2.5),
        trajectory=sway_path(centre, sway_amp, sway_period),
        chroma=(-6.0, 10.0),
    )


def _shoulders_sprite(
    height: int,
    width: int,
    seed: int,
    position: tuple[float, float],
    sway_amp: tuple[float, float],
    sway_period: float,
    amplitude: float = 18.0,
) -> Sprite:
    texture = noise_texture(height, width, seed=seed, cell=20, octaves=2, amplitude=amplitude, base=95.0)
    return Sprite(
        texture=texture,
        mask=ellipse_mask(height, width, softness=4.0),
        trajectory=sway_path(position, sway_amp, sway_period, phase=0.7),
    )


# -- the four presets --------------------------------------------------


def _miss_america_spec(frames: int, seed: int, geometry: FrameGeometry) -> SceneSpec:
    """Smooth, homogeneous videophone scene: the paper's lowest-cost case."""
    margin = 48
    wh, ww = geometry.height + 2 * margin, geometry.width + 2 * margin
    background = gradient_field(wh, ww, low=95.0, high=150.0, axis=0)
    background += noise_texture(wh, ww, seed=seed + 11, cell=96, octaves=1, amplitude=6.0, base=0.0) - 0.0
    head_h, head_w = int(geometry.height * 0.48), int(geometry.width * 0.33)
    centre_y = margin + geometry.height * 0.18
    centre_x = margin + geometry.width * 0.5 - head_w / 2.0
    sprites = [
        _shoulders_sprite(
            int(geometry.height * 0.5),
            int(geometry.width * 0.75),
            seed + 21,
            position=(margin + geometry.height * 0.62, margin + geometry.width * 0.125),
            sway_amp=(0.6, 0.8),
            sway_period=55.0,
            amplitude=30.0,
        ),
        _head_sprite(
            head_h,
            head_w,
            seed + 31,
            amplitude=62.0,
            centre=(centre_y, centre_x),
            sway_amp=(0.8, 1.4),
            sway_period=45.0,
            base=160.0,
            cell=6,
            octaves=3,
            persistence=0.8,
        ),
    ]
    return SceneSpec(
        name="miss_america",
        geometry=geometry,
        frames=frames,
        margin=margin,
        background=background,
        camera=CameraPath.static(frames, margin, margin),
        sprites=sprites,
        sensor_noise_sigma=0.8,
        shimmer_sigma=10.0,
        chroma_gain=(-0.10, 0.14),
        seed=seed,
    )


def _carphone_spec(frames: int, seed: int, geometry: FrameGeometry) -> SceneSpec:
    """Talking head in a car: moderate texture, fast background through a
    window, hand-held camera jitter."""
    margin = 48
    wh, ww = geometry.height + 2 * margin, geometry.width + 2 * margin
    background = noise_texture(wh, ww, seed=seed + 12, cell=24, octaves=4, amplitude=95.0, base=118.0, persistence=0.65)
    # Scrolling strip visible in the top-right "window": long textured
    # band translating fast leftwards behind the head.
    strip_h = int(geometry.height * 0.42)
    strip_w = ww + 6 * frames + 64
    strip_tex = noise_texture(strip_h, strip_w, seed=seed + 13, cell=12, octaves=5, amplitude=150.0, base=135.0, persistence=0.85)
    window = Sprite(
        texture=strip_tex,
        mask=rect_mask(strip_h, strip_w, softness=3.0),
        trajectory=linear_path((margin + 4.0, float(margin)), (0.0, -5.0)),
    )
    head_h, head_w = int(geometry.height * 0.52), int(geometry.width * 0.34)
    sprites = [
        window,
        _shoulders_sprite(
            int(geometry.height * 0.48),
            int(geometry.width * 0.8),
            seed + 22,
            position=(margin + geometry.height * 0.64, margin + geometry.width * 0.08),
            sway_amp=(1.2, 1.6),
            sway_period=28.0,
        ),
        _head_sprite(
            head_h,
            head_w,
            seed + 32,
            amplitude=60.0,
            centre=(margin + geometry.height * 0.14, margin + geometry.width * 0.30),
            sway_amp=(1.8, 2.6),
            sway_period=22.0,
        ),
    ]
    return SceneSpec(
        name="carphone",
        geometry=geometry,
        frames=frames,
        margin=margin,
        background=background,
        camera=CameraPath.shake(frames, margin, margin, sigma=0.35, seed=seed + 42),
        sprites=sprites,
        sensor_noise_sigma=1.1,
        shimmer_sigma=9.5,
        chroma_gain=(-0.13, 0.11),
        seed=seed,
    )


def _foreman_spec(frames: int, seed: int, geometry: FrameGeometry) -> SceneSpec:
    """High-texture construction-site scene with a strong pan that
    reverses mid-clip: the paper's hardest case for prediction."""
    margin = 64
    wh = geometry.height + 2 * margin
    # Wide world so the pan never hits the border.
    pan_speed = 2.0
    ww = geometry.width + 2 * margin + int(pan_speed * frames) + 32
    # Heterogeneous composition like the real clip: a smooth "sky" band
    # over a heavily textured "site wall".  The wall is a 60/40
    # noise/vertical-stripe mix: the stripes give the SAD surface
    # secondary minima one period away, which is what traps the greedy
    # predictive search once inter-frame displacement exceeds its
    # refinement reach (the 10 fps regime of Figs. 5-6).  The wide
    # Intra_SAD spread (near-zero sky to ~9000 wall) is what makes the
    # ACBM acceptance threshold alpha + beta*Qp^2 bisect the block
    # population differently at each Qp, reproducing Table 1's rows.
    wall = noise_texture(wh, ww, seed=seed + 14, cell=16, octaves=6, amplitude=140.0, base=125.0, persistence=0.85)
    wall = 0.65 * wall + 0.35 * stripe_field(wh, ww, period=10, low=45.0, high=205.0, axis=1)
    sky_depth = int(wh * 0.36)
    sky = gradient_field(sky_depth, ww, low=165.0, high=135.0, axis=0)
    sky += noise_texture(sky_depth, ww, seed=seed + 16, cell=64, octaves=1, amplitude=7.0, base=0.0)
    background = wall
    background[:sky_depth] = sky
    head_h, head_w = int(geometry.height * 0.58), int(geometry.width * 0.40)
    # The face tracks the camera so it stays in shot during the pan.
    camera = _panned_shake_path(
        frames,
        offset_y=float(margin),
        offset_x=float(margin),
        velocity_x=pan_speed,
        reverse_at=max(2, frames // 2),
        jitter_sigma=0.0,
        seed=seed + 43,
    )

    def face_path(i: int) -> tuple[float, float]:
        pose = camera[min(i, len(camera) - 1)]
        sway = sway_path((0.0, 0.0), (1.6, 2.2), 18.0)(i)
        return (
            pose.offset_y + geometry.height * 0.16 + sway[0],
            pose.offset_x + geometry.width * 0.28 + sway[1],
        )

    face = Sprite(
        texture=noise_texture(head_h, head_w, seed=seed + 33, cell=8, octaves=4, amplitude=70.0, base=150.0, persistence=0.7),
        mask=ellipse_mask(head_h, head_w, softness=2.0),
        trajectory=face_path,
        chroma=(-8.0, 12.0),
    )
    return SceneSpec(
        name="foreman",
        geometry=geometry,
        frames=frames,
        margin=margin,
        background=background,
        camera=camera,
        sprites=[face],
        sensor_noise_sigma=1.3,
        shimmer_sigma=7.5,
        chroma_gain=(-0.14, 0.12),
        seed=seed,
    )


def _table_spec(frames: int, seed: int, geometry: FrameGeometry) -> SceneSpec:
    """Table-tennis analog: fast bouncing ball, swinging paddle, slow
    camera zoom — abrupt local motion over a moderately textured hall."""
    margin = 56
    wh, ww = geometry.height + 2 * margin, geometry.width + 2 * margin
    background = noise_texture(wh, ww, seed=seed + 15, cell=20, octaves=4, amplitude=85.0, base=112.0, persistence=0.65)
    # "Crowd" band across the upper third: the high-texture population
    # that keeps some blocks critical even at coarse Qp (Table 1's
    # non-zero qp30 column for Table).
    crowd_depth = int(wh * 0.30)
    background[:crowd_depth] = noise_texture(
        crowd_depth, ww, seed=seed + 17, cell=10, octaves=5, amplitude=150.0, base=120.0, persistence=0.85
    )
    table_h, table_w = int(geometry.height * 0.42), int(geometry.width * 0.92)
    table_tex = stripe_field(table_h, table_w, period=8, low=30.0, high=180.0, axis=1)
    table = Sprite(
        texture=table_tex,
        mask=rect_mask(table_h, table_w, softness=2.0),
        trajectory=linear_path(
            (margin + geometry.height * 0.55, margin + geometry.width * 0.04), (0.0, 0.0)
        ),
        chroma=(14.0, -10.0),
    )
    ball = Sprite(
        texture=np.full((11, 11), 235.0),
        mask=disc_mask(11, softness=1.5),
        trajectory=bounce_path(
            start=(margin + geometry.height * 0.30, margin + geometry.width * 0.2),
            velocity=(3.8, 5.6),
            bounds=(
                margin + geometry.height * 0.10,
                margin + geometry.height * 0.52,
                margin + geometry.width * 0.08,
                margin + geometry.width * 0.86,
            ),
        ),
    )
    paddle = Sprite(
        texture=noise_texture(30, 16, seed=seed + 34, cell=8, octaves=2, amplitude=20.0, base=70.0),
        mask=rect_mask(30, 16, softness=1.5),
        trajectory=sway_path(
            (margin + geometry.height * 0.40, margin + geometry.width * 0.82),
            amplitude=(7.0, 9.0),
            period=13.0,
        ),
        chroma=(6.0, 16.0),
    )
    return SceneSpec(
        name="table",
        geometry=geometry,
        frames=frames,
        margin=margin,
        background=background,
        camera=CameraPath.zoom(frames, margin, margin, start_zoom=1.0, zoom_per_frame=0.0012),
        sprites=[table, ball, paddle],
        sensor_noise_sigma=1.0,
        shimmer_sigma=7.5,
        chroma_gain=(-0.11, 0.12),
        seed=seed,
    )


_PRESETS: dict[str, Callable[[int, int, FrameGeometry], SceneSpec]] = {
    "miss_america": _miss_america_spec,
    "carphone": _carphone_spec,
    "foreman": _foreman_spec,
    "table": _table_spec,
}


def available_sequences() -> TypingSequence[str]:
    """Names accepted by :func:`make_sequence`, in the paper's order of
    increasing expected search cost (see Table 1)."""
    return ("miss_america", "table", "carphone", "foreman")


def make_scene_spec(
    name: str, frames: int = 30, seed: int = 0, geometry: FrameGeometry = QCIF
) -> SceneSpec:
    """Build the :class:`SceneSpec` for a preset without rendering it."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown sequence {name!r}; available: {sorted(_PRESETS)}"
        ) from None
    if frames < 1:
        raise ValueError(f"frames must be >= 1, got {frames}")
    return factory(frames, seed, geometry)


def make_sequence(
    name: str, frames: int = 30, seed: int = 0, geometry: FrameGeometry = QCIF
) -> Sequence:
    """Render a named synthetic analog at 30 fps.

    Use :meth:`repro.video.sequence.Sequence.subsample` for the 15 and
    10 fps variants, mirroring how the paper derives its low-rate
    clips.

    >>> seq = make_sequence("foreman", frames=12)
    >>> len(seq), seq.fps
    (12, 30.0)
    """
    return render_scene(make_scene_spec(name, frames=frames, seed=seed, geometry=geometry))
