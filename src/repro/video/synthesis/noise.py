"""Seeded value noise for synthetic textures.

Classic multi-octave value noise: a coarse lattice of uniform random
values is bilinearly upsampled to the target resolution; octaves at
doubling lattice frequency and halving amplitude are summed.  Low
octave counts give smooth blobs (Miss-America-like backgrounds), high
counts give fine high-frequency texture (Foreman-like walls).

Everything is driven by ``numpy.random.Generator`` objects created from
explicit integer seeds, so every experiment in the repo is bit-exact
reproducible.
"""

from __future__ import annotations

import numpy as np


def _bilinear_upsample(grid: np.ndarray, height: int, width: int) -> np.ndarray:
    """Upsample a value lattice to (height, width) with bilinear weights."""
    gh, gw = grid.shape
    if gh < 2 or gw < 2:
        raise ValueError(f"lattice must be at least 2x2, got {gh}x{gw}")
    # Sample positions in lattice coordinates, endpoints inclusive.
    ys = np.linspace(0.0, gh - 1.0, height)
    xs = np.linspace(0.0, gw - 1.0, width)
    y0 = np.minimum(ys.astype(np.int64), gh - 2)
    x0 = np.minimum(xs.astype(np.int64), gw - 2)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    tl = grid[np.ix_(y0, x0)]
    tr = grid[np.ix_(y0, x0 + 1)]
    bl = grid[np.ix_(y0 + 1, x0)]
    br = grid[np.ix_(y0 + 1, x0 + 1)]
    top = tl * (1 - fx) + tr * fx
    bottom = bl * (1 - fx) + br * fx
    return top * (1 - fy) + bottom * fy


def value_noise(
    height: int,
    width: int,
    cell: int,
    octaves: int = 1,
    persistence: float = 0.5,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Multi-octave value noise in [0, 1].

    Parameters
    ----------
    height, width:
        Output shape.
    cell:
        Base lattice cell size in pixels for the first octave; each
        further octave halves it (down to 1).
    octaves:
        Number of noise layers; more octaves add finer detail.
    persistence:
        Amplitude ratio between successive octaves.
    rng, seed:
        Randomness source; pass exactly one.  ``seed`` builds a fresh
        ``default_rng(seed)``.
    """
    if cell < 1:
        raise ValueError(f"cell must be >= 1, got {cell}")
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    if (rng is None) == (seed is None):
        raise ValueError("pass exactly one of rng= or seed=")
    if rng is None:
        rng = np.random.default_rng(seed)

    out = np.zeros((height, width), dtype=np.float64)
    amplitude = 1.0
    total = 0.0
    current_cell = cell
    for _ in range(octaves):
        gh = max(2, height // current_cell + 2)
        gw = max(2, width // current_cell + 2)
        lattice = rng.random((gh, gw))
        out += amplitude * _bilinear_upsample(lattice, height, width)
        total += amplitude
        amplitude *= persistence
        current_cell = max(1, current_cell // 2)
    out /= total
    # Normalize to the full [0, 1] span so `amplitude` params downstream
    # mean what they say regardless of octave count.
    lo, hi = out.min(), out.max()
    if hi > lo:
        out = (out - lo) / (hi - lo)
    return out


def white_noise(
    height: int,
    width: int,
    sigma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Zero-mean Gaussian sensor noise (adds realism; keeps SADs nonzero
    even for perfectly predicted blocks, as with real cameras)."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.zeros((height, width), dtype=np.float64)
    return rng.normal(0.0, sigma, size=(height, width))
