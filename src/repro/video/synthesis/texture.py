"""Background texture fields for synthetic scenes.

Texture level is the lever the paper's classifier keys on (Intra_SAD),
so each generator documents roughly where its output lands: "flat"
backgrounds give near-zero Intra_SAD, "detail" fields with many octaves
give the high-Intra_SAD regime where ACBM must fall back to full search
unless the predictive SAD is already near-minimal.
"""

from __future__ import annotations

import numpy as np

from repro.video.synthesis.noise import value_noise


def flat_field(height: int, width: int, level: float = 128.0) -> np.ndarray:
    """Uniform luma — the zero-texture extreme."""
    return np.full((height, width), float(level))


def gradient_field(
    height: int,
    width: int,
    low: float = 80.0,
    high: float = 180.0,
    axis: int = 1,
) -> np.ndarray:
    """Linear luma ramp along ``axis`` (0 = vertical, 1 = horizontal).

    Very low per-block Intra_SAD (a 16-wide block only spans a small
    luma range), mimicking the smooth studio backdrops of Miss America.
    """
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    n = height if axis == 0 else width
    ramp = np.linspace(low, high, n)
    if axis == 0:
        return np.repeat(ramp[:, None], width, axis=1)
    return np.repeat(ramp[None, :], height, axis=0)


def noise_texture(
    height: int,
    width: int,
    seed: int,
    cell: int = 24,
    octaves: int = 3,
    amplitude: float = 60.0,
    base: float = 120.0,
    persistence: float = 0.5,
) -> np.ndarray:
    """Natural-looking texture: multi-octave value noise around ``base``.

    ``amplitude`` is the peak deviation; per-block Intra_SAD scales
    roughly linearly with it.  ``octaves >= 4`` with small ``cell`` and
    high ``persistence`` gives the fine high-frequency content of the
    Foreman wall (per-16x16-block Intra_SAD of several thousand).
    Output is clipped to the 8-bit luma range.
    """
    field = value_noise(
        height, width, cell=cell, octaves=octaves, persistence=persistence, seed=seed
    )
    return np.clip(base + amplitude * (field - 0.5) * 2.0, 0.0, 255.0)


def stripe_field(
    height: int,
    width: int,
    period: int = 12,
    low: float = 90.0,
    high: float = 170.0,
    axis: int = 1,
) -> np.ndarray:
    """Sinusoidal stripes — periodic texture that creates the multiple
    near-equal SAD minima where naive matchers pick false vectors."""
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    n = height if axis == 0 else width
    phase = 2.0 * np.pi * np.arange(n) / period
    wave = 0.5 * (1.0 + np.sin(phase))
    line = low + (high - low) * wave
    if axis == 0:
        return np.repeat(line[:, None], width, axis=1)
    return np.repeat(line[None, :], height, axis=0)


def checker_field(
    height: int,
    width: int,
    cell: int = 16,
    low: float = 90.0,
    high: float = 170.0,
) -> np.ndarray:
    """Checkerboard — a block-aligned, maximally ambiguous texture used
    in adversarial tests of the search algorithms."""
    if cell < 1:
        raise ValueError(f"cell must be >= 1, got {cell}")
    ys = (np.arange(height) // cell)[:, None]
    xs = (np.arange(width) // cell)[None, :]
    mask = (ys + xs) % 2
    return np.where(mask == 0, float(low), float(high))


def blend(base: np.ndarray, overlay: np.ndarray, alpha: np.ndarray | float) -> np.ndarray:
    """Alpha-composite ``overlay`` over ``base`` (float planes)."""
    a = np.asarray(alpha, dtype=np.float64)
    return base * (1.0 - a) + np.asarray(overlay, dtype=np.float64) * a
