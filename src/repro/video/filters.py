"""Small separable image filters used by the synthesis generators.

Only numpy is required; kernels are applied with edge replication so
filtered planes keep their original shape, which matters because every
frame must stay an exact multiple of the macroblock size.
"""

from __future__ import annotations

import numpy as np


def box_kernel(radius: int) -> np.ndarray:
    """Normalized 1-D box kernel of half-width ``radius``."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    n = 2 * radius + 1
    return np.full(n, 1.0 / n)


def binomial_kernel(radius: int) -> np.ndarray:
    """Normalized 1-D binomial (approximately Gaussian) kernel."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    kernel = np.array([1.0])
    for _ in range(2 * radius):
        kernel = np.convolve(kernel, [0.5, 0.5])
    return kernel


def convolve_rows(plane: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolve each row with ``kernel`` using edge replication."""
    radius = len(kernel) // 2
    if radius == 0:
        return plane.astype(np.float64) * kernel[0]
    padded = np.pad(plane.astype(np.float64), ((0, 0), (radius, radius)), mode="edge")
    out = np.zeros_like(plane, dtype=np.float64)
    for k, weight in enumerate(kernel):
        out += weight * padded[:, k : k + plane.shape[1]]
    return out


def convolve_cols(plane: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolve each column with ``kernel`` using edge replication."""
    return convolve_rows(plane.T, kernel).T


def smooth(plane: np.ndarray, radius: int, kernel: str = "binomial") -> np.ndarray:
    """Separable 2-D smoothing.

    Parameters
    ----------
    radius:
        Kernel half-width; ``0`` is a no-op copy.
    kernel:
        ``"binomial"`` (default, Gaussian-like) or ``"box"``.
    """
    if kernel == "binomial":
        k = binomial_kernel(radius)
    elif kernel == "box":
        k = box_kernel(radius)
    else:
        raise ValueError(f"unknown kernel {kernel!r}")
    return convolve_cols(convolve_rows(plane, k), k)


def gradient_magnitude(plane: np.ndarray) -> np.ndarray:
    """First-difference gradient magnitude, shape-preserving.

    Used by tests and analysis to quantify how "textured" a synthetic
    frame is (the paper's Intra_SAD plays the same role per block).
    """
    p = plane.astype(np.float64)
    gx = np.zeros_like(p)
    gy = np.zeros_like(p)
    gx[:, 1:] = p[:, 1:] - p[:, :-1]
    gy[1:, :] = p[1:, :] - p[:-1, :]
    return np.hypot(gx, gy)


def downsample2(plane: np.ndarray) -> np.ndarray:
    """2x2 mean downsampling (used to derive chroma from luma fields)."""
    h, w = plane.shape
    if h % 2 or w % 2:
        raise ValueError(f"plane dimensions must be even, got {h}x{w}")
    p = plane.astype(np.float64)
    return 0.25 * (p[0::2, 0::2] + p[1::2, 0::2] + p[0::2, 1::2] + p[1::2, 1::2])
