"""Video substrate: frames, sequences, raw YUV I/O and synthesis."""

from repro.video.frame import CIF, QCIF, Frame, FrameGeometry
from repro.video.sequence import Sequence

__all__ = ["CIF", "QCIF", "Frame", "FrameGeometry", "Sequence"]
