"""Sequences of frames with an attached frame rate.

The paper evaluates each clip at 30 and at 10 frames per second; the
lower rates are obtained by temporal subsampling of the 30 fps source
(keep every 3rd frame), which is exactly what
:meth:`Sequence.subsample` implements.  The frame rate matters twice:

* the rate axis of the RD curves is ``bits_per_frame * fps / 1000``
  (kbit/s), and
* subsampling enlarges inter-frame displacements, which is the paper's
  mechanism for stressing the predictive estimator's slow-motion-field
  assumption (Section 4).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence as TypingSequence

from repro.video.frame import Frame, FrameGeometry


class Sequence:
    """An ordered list of equally sized frames plus a frame rate.

    Parameters
    ----------
    frames:
        Frames in display order.  All must share one geometry.
    fps:
        Nominal frame rate in frames per second (the paper uses 30, 15
        and 10).
    name:
        Label used by experiment reports ("foreman", ...).
    """

    def __init__(self, frames: Iterable[Frame], fps: float = 30.0, name: str = "") -> None:
        self._frames: list[Frame] = list(frames)
        if not self._frames:
            raise ValueError("a sequence needs at least one frame")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        geometry = self._frames[0].geometry
        for frame in self._frames[1:]:
            if frame.geometry != geometry:
                raise ValueError(
                    f"mixed geometries in sequence: {geometry} vs {frame.geometry}"
                )
        self.fps = float(fps)
        self.name = name

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Sequence(self._frames[item], fps=self.fps, name=self.name)
        return self._frames[item]

    @property
    def frames(self) -> TypingSequence[Frame]:
        return tuple(self._frames)

    @property
    def geometry(self) -> FrameGeometry:
        return self._frames[0].geometry

    @property
    def duration(self) -> float:
        """Sequence length in seconds."""
        return len(self._frames) / self.fps

    # -- derivations ---------------------------------------------------

    def subsample(self, factor: int) -> "Sequence":
        """Keep every ``factor``-th frame and divide the frame rate.

        ``seq.subsample(3)`` turns a 30 fps clip into the 10 fps variant
        used in Fig. 6 / Table 1.  Original frame indices are preserved
        on the retained frames.
        """
        if factor < 1:
            raise ValueError(f"subsample factor must be >= 1, got {factor}")
        if factor == 1:
            return Sequence(self._frames, fps=self.fps, name=self.name)
        kept = self._frames[::factor]
        return Sequence(kept, fps=self.fps / factor, name=self.name)

    def pairs(self) -> Iterator[tuple[Frame, Frame]]:
        """Yield (previous, current) frame pairs in display order."""
        for prev, cur in zip(self._frames, self._frames[1:]):
            yield prev, cur

    def __repr__(self) -> str:
        g = self.geometry
        label = f"{self.name!r}, " if self.name else ""
        return f"Sequence({label}{len(self)} frames, {g.width}x{g.height} @ {self.fps:g} fps)"
