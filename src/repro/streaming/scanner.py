"""Incremental version-2 start-code scanner.

:class:`ScanState` is :meth:`repro.codec.decoder.FrameIndex.scan`
restated as a stateful accumulator: bytes arrive in arbitrarily split
chunks through :meth:`feed`, the scanner hops the byte-aligned
``00 00 01 B6`` start codes and 32-bit length fields exactly as the
whole-buffer scan does, and each completed frame payload (picture
header through padding — the byte range :func:`parse_picture` consumes
from offset zero) is emitted as soon as its last byte lands.  The
accumulator never holds more than one in-flight frame plus whatever
tail of the current chunk follows it, which is the memory bound the
streaming decoder builds on.

Acceptance is *identical* to the whole-buffer scanner by construction —
``FrameIndex.scan`` now delegates to this class — so every property the
v2 golden tests pin (short trailing fragments ignored like
``Decoder.has_more``, frame-sized garbage rejected, corrupt length
fields rejected in every mode) holds for any chunking.  The one
semantic translation: a length field pointing past the end of the
stream is only *detectable* at end of stream, so the "overruns" error
the whole-buffer scan raises mid-scan surfaces from :meth:`finish`
here, with the same wording and byte offsets.
"""

from __future__ import annotations

from collections import deque

from repro.codec.encoder import (
    FRAME_LENGTH_BITS,
    FRAME_START_CODE,
    FRAME_START_CODE_BITS,
    PICTURE_HEADER_BITS,
)

#: The byte-aligned start code and length field as byte strings.
START_BYTES = FRAME_START_CODE.to_bytes(FRAME_START_CODE_BITS // 8, "big")
LENGTH_BYTES = FRAME_LENGTH_BITS // 8
FRAMING_BYTES = len(START_BYTES) + LENGTH_BYTES

#: Smallest byte count that can still open a frame (framing + picture
#: header).  A trailing fragment shorter than this is ignored, exactly
#: like ``Decoder.has_more`` — which is also why the scanner refuses to
#: validate a start code before this many bytes have accumulated past
#: it: a shorter tail must stay *unjudged* until end of stream.
MIN_FRAME_BYTES = (
    FRAME_START_CODE_BITS + FRAME_LENGTH_BITS + PICTURE_HEADER_BITS + 7
) // 8


class ScanState:
    """Stateful v2 frame-boundary scanner with bounded buffering.

    Parameters
    ----------
    keep_payloads:
        ``True`` (default) queues each completed payload's bytes on
        :attr:`payloads` for a consumer to pop (the streaming decoder's
        mode).  ``False`` records only the byte :attr:`ranges` — the
        whole-buffer ``FrameIndex.scan`` mode, which already holds the
        stream and doesn't want a second copy.
    """

    def __init__(self, keep_payloads: bool = True) -> None:
        self._buf = bytearray()
        self._base = 0  # absolute stream offset of _buf[0]
        self._expected_end: int | None = None  # in-flight frame's declared end
        self._frame_start = 0  # absolute offset of the in-flight frame's start code
        self._finished = False
        self.keep_payloads = keep_payloads
        #: Completed payloads in stream order (``keep_payloads`` mode).
        self.payloads: deque[bytes] = deque()
        #: Absolute half-open byte spans of every completed payload.
        self.ranges: list[tuple[int, int]] = []

    # -- introspection ---------------------------------------------------

    @property
    def bytes_fed(self) -> int:
        """Total bytes accepted so far."""
        return self._base + len(self._buf)

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held in the accumulator (excludes payloads
        already emitted but not yet popped)."""
        return len(self._buf)

    @property
    def frames_scanned(self) -> int:
        return len(self.ranges)

    @property
    def in_flight(self) -> bool:
        """Whether a frame's framing has been consumed but its payload
        has not yet fully arrived."""
        return self._expected_end is not None

    # -- feeding ---------------------------------------------------------

    def feed(self, chunk: bytes) -> int:
        """Accept the next ``chunk`` of the stream; returns the number
        of frame payloads completed by it.

        Cost: one pass over the frames the chunk completes, then one
        tail trim — never a per-frame move of the remaining bytes.
        When the accumulator is empty the scan runs directly over
        ``chunk`` and retains only the unconsumed tail, so the
        whole-buffer ``FrameIndex.scan`` (one feed of the whole stream)
        stays O(frames) with no copy of the stream.

        Raises
        ------
        ValueError
            On the same corruption the whole-buffer scan rejects, with
            the offending absolute byte offset named: a stream that does
            not open with version-2 framing, or garbage where a start
            code belongs.
        """
        if self._finished:
            raise ValueError("feed() after finish(): the stream was already closed")
        if self._buf:
            self._buf += chunk
            data = self._buf
        else:
            data = chunk
        base = self._base  # absolute stream offset of data[0]
        n = len(data)
        pos = 0  # index into data of the first unconsumed byte
        completed = 0
        error: ValueError | None = None
        while True:
            if self._expected_end is None:
                # A start code is only judged once a minimal frame could
                # follow it; see MIN_FRAME_BYTES.
                if n - pos < MIN_FRAME_BYTES:
                    break
                if base + pos == 0 and bytes(data[:3]) != START_BYTES[:3]:
                    error = self._version_error(bytes(data[:3]))
                    break
                if data[pos : pos + len(START_BYTES)] != START_BYTES:
                    error = ValueError(
                        f"bad frame start code at byte {base + pos}: expected "
                        f"{START_BYTES.hex()}, "
                        f"found {bytes(data[pos : pos + len(START_BYTES)]).hex()}"
                    )
                    break
                length = int.from_bytes(
                    data[pos + len(START_BYTES) : pos + FRAMING_BYTES], "big"
                )
                self._frame_start = base + pos
                self._expected_end = self._frame_start + FRAMING_BYTES + length
            end = self._expected_end - base
            if end > n:
                break
            payload_start = self._frame_start + FRAMING_BYTES
            if self.keep_payloads:
                self.payloads.append(bytes(data[payload_start - base : end]))
            self.ranges.append((payload_start, self._expected_end))
            pos = end
            self._expected_end = None
            completed += 1
        # Retain only the unconsumed tail (the in-flight frame so far, a
        # fragment shorter than a minimal frame, or — on error — the
        # offending bytes).  Runs before any raise so bytes_fed /
        # buffered_bytes stay consistent with the frames already
        # recorded from this chunk.
        self._base = base + pos
        if data is self._buf:
            del self._buf[:pos]
        else:
            self._buf = bytearray(data[pos:])
        if error is not None:
            raise error
        return completed

    def finish(self) -> None:
        """Declare end of stream and validate the tail.

        A *version-2* fragment too short to hold a minimal frame is
        ignored (the ``Decoder.has_more`` rule); an in-flight frame
        whose declared payload never fully arrived raises the
        whole-buffer scanner's "overruns" error with the frame's byte
        offset and the declared vs actual extents; a whole stream too
        short to have had its opening bytes judged yet raises the
        version error if those bytes are not version-2 framing (the
        same classification ``FrameIndex.scan`` applies — a short v1
        feed must not pass for a clean empty stream).  Idempotent once
        it returns cleanly.
        """
        if self._finished:
            return
        if self._expected_end is not None:
            total = self.bytes_fed
            length = self._expected_end - self._frame_start - FRAMING_BYTES
            raise ValueError(
                f"frame at byte {self._frame_start} overruns the stream: its "
                f"length field declares a {length}-byte payload ending at byte "
                f"{self._expected_end}, but the stream ends at byte {total}"
            )
        if self._base == 0 and self._buf and bytes(self._buf[:3]) != START_BYTES[:3]:
            raise self._version_error(bytes(self._buf[:3]))
        self._finished = True

    def _version_error(self, opening: bytes) -> ValueError:
        return ValueError(
            "push decode requires a version-2 stream (byte-aligned start "
            f"codes): the stream opens with {opening.hex()} instead of "
            f"{START_BYTES[:3].hex()} — version-1 streams are not splittable "
            "without parsing"
        )
