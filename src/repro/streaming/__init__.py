"""Incremental (streaming) codec layer: bounded-memory push decode and
frame-iterator encode.

Everything below this package operates on whole objects — a whole byte
buffer into :func:`repro.codec.decoder.decode_bitstream`, a whole
in-memory :class:`~repro.video.sequence.Sequence` into
:class:`~repro.codec.encoder.Encoder`.  This layer makes both
directions incremental without touching the wire format or the math:

* :class:`ScanState` — the version-2 start-code/length scanner as a
  stateful accumulator: feed it arbitrarily split byte chunks and it
  emits completed frame payloads, holding at most one in-flight frame's
  bytes (``FrameIndex.scan`` is now a thin whole-buffer wrapper over
  it, so both accept and reject exactly the same streams);
* :class:`StreamDecoder` — push-based decode session:
  ``feed(chunk)`` → scan → :func:`~repro.codec.decoder.parse_picture`
  → batched :func:`~repro.codec.decoder.reconstruct_picture`, frames
  emitted as soon as they complete, memory bounded by
  ``max_buffered_frames`` with backpressure (``feed`` returns the
  remaining demand);
* :class:`StreamEncoder` — pulls frames from any iterator (e.g.
  :func:`repro.video.yuv_io.iter_yuv_frames`, so a multi-gigabyte YUV
  file encodes without materializing a sequence), runs the closed loop
  over the reference list (one frame, or up to ``n_ref_frames`` under
  the GOP syntax) and yields encoded bytes per picture, byte-identical
  to the whole-sequence encoder in both wire formats;
* :class:`ParseStage` — the pipelined parse worker (thread or spawned
  process) behind ``StreamDecoder(pipeline=...)``: frame *n+1*'s
  symbols parse while frame *n* reconstructs, results joined by a
  bounded queue; process mode returns parsed arrays as shared-memory
  handles via :mod:`repro.transport`;
* :class:`DecodeSession` / :class:`EncodeSession` — thin stat-keeping
  wrappers (frames in/out, bytes buffered, peak, wall clock, transport
  counters) behind the ``runner stream-decode`` / ``stream-encode``
  subcommands and ``experiments/stream_bench.py``.

``tests/test_streaming.py`` pins the golden properties: StreamDecoder
output is bit-identical to :func:`decode_bitstream` under *every*
chunking of the same bytes (hypothesis-tested down to 1-byte feeds),
and StreamEncoder's concatenated chunks equal the whole-sequence
bitstream byte for byte.
"""

from repro.streaming.scanner import ScanState
from repro.streaming.decoder import StreamDecoder, stream_decode
from repro.streaming.encoder import StreamEncoder
from repro.streaming.pipeline import ParseStage
from repro.streaming.session import DecodeSession, EncodeSession, SessionStats

__all__ = [
    "DecodeSession",
    "EncodeSession",
    "ParseStage",
    "ScanState",
    "SessionStats",
    "StreamDecoder",
    "StreamEncoder",
    "stream_decode",
]
