"""Pipelined symbol-parse stage for the streaming decoder.

The v2 decode splits cleanly into two halves (PR 4): *parse* walks a
payload's symbols through the LUT reader into a
:class:`~repro.codec.decoder.ParsedPicture`, and *reconstruct* turns
parsed symbols into pixels against the running reference.  Parse has no
cross-frame state; reconstruction is inherently serial.  This module
runs the parse half on a dedicated worker so the decoder reconstructs
frame *n* while frame *n+1* parses — a two-stage pipeline joined by a
bounded queue.

:class:`ParseStage` is that worker plus its queues:

* ``kind="thread"`` — a daemon thread in-process.  Payloads and parsed
  pictures move by reference; nothing is copied or pickled.
* ``kind="process"`` — a spawned child process.  Compressed payloads
  travel down by pickle (small), parsed symbol arrays travel back as
  shared-memory handles (:func:`repro.transport.export` in the child,
  :func:`repro.transport.materialize` + unlink here) — the arrays are
  the bulk, so the return trip is zero-copy.

Ordering and failure semantics both fall out of having exactly one
worker: results come back in submission order, and a payload that fails
to parse ships its exception in-band (the worker then stops), so the
decoder raises the *same* error at the same frame boundary as the
serial path — just possibly on a later ``feed``/``frames`` call, since
the parse happens asynchronously.

The out-queue is bounded at ``depth`` results, which is what bounds
parse-ahead: a worker that gets far in front of reconstruction blocks
on the queue, not on memory.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from typing import Any

from repro.codec.bitstream import BitReader
from repro.codec.decoder import ParsedPicture, check_frame_length, parse_picture
from repro.obs import metrics, trace

#: Result tags on the out-queue.
_OK = "ok"
_ERR = "err"

_MET_QUEUE_DEPTH = metrics.gauge("pipeline.queue_depth")
_MET_PAYLOADS = metrics.counter("pipeline.payloads")
_MET_BYTES_COPIED = metrics.counter("pipeline.bytes_copied")
_MET_HANDLES = metrics.counter("pipeline.handles_passed")


def parse_payload(payload: bytes) -> ParsedPicture:
    """Parse one completed v2 payload, validating its framing — exactly
    the per-payload work :class:`~repro.streaming.decoder.StreamDecoder`
    does inline in serial mode (same errors, same byte offsets)."""
    reader = BitReader(payload)
    parsed = parse_picture(reader)
    check_frame_length(reader, len(payload))
    return parsed


def _parse_loop(in_q, out_q) -> None:
    """Thread-mode worker: parse until the ``None`` sentinel or the
    first failure (the error ships in-band, then the stage is dead).

    Out-queue items are ``(tag, seq, value, events)``; thread-mode
    workers record straight into the process tracer (appends are
    GIL-atomic), so their events slot is always ``None``."""
    while True:
        item = in_q.get()
        if item is None:
            break
        seq, payload = item
        try:
            parsed = parse_payload(payload)
        except Exception as exc:
            out_q.put((_ERR, seq, exc, None))
            break
        out_q.put((_OK, seq, parsed, None))


def _parse_process_main(in_q, out_q, backend=None, collect_trace=False) -> None:
    """Process-mode worker body (module-level for ``spawn``): like
    :func:`_parse_loop`, but parsed pictures leave as one-shot
    shared-memory exports the parent materializes and unlinks.

    ``backend`` is the parent's kernel-backend name (spawned children
    re-resolve ``REPRO_BACKEND`` from scratch, so an in-process
    ``set_backend`` choice must travel explicitly).  ``collect_trace``
    turns on this child's tracer and ships each payload's drained
    events (stamped with the child's pid) in the result tuple's fourth
    slot, errors included — the parent adopts them in :meth:`ParseStage.poll`."""
    from repro.transport import export

    if backend is not None:
        from repro.kernels import set_backend

        set_backend(backend)
    tracer = trace.TRACER
    if collect_trace:
        tracer.enable()

    while True:
        item = in_q.get()
        if item is None:
            break
        seq, payload = item
        try:
            parsed = parse_payload(payload)
        except Exception as exc:
            out_q.put((_ERR, seq, exc, tracer.drain() if collect_trace else None))
            break
        out_q.put(
            (
                _OK,
                seq,
                export(parsed, name_prefix="repro-pipe"),
                tracer.drain() if collect_trace else None,
            )
        )


def normalize_pipeline(pipeline) -> str | None:
    """Map the user-facing ``pipeline`` flag to a stage kind.

    ``False``/``None`` → serial (no stage), ``True`` → ``"thread"``
    (in-process, no spawn cost), or the explicit strings ``"thread"`` /
    ``"process"``.
    """
    if pipeline is None or pipeline is False:
        return None
    if pipeline is True:
        return "thread"
    if pipeline in ("thread", "process"):
        return pipeline
    raise ValueError(
        f"pipeline must be False, True, 'thread' or 'process', got {pipeline!r}"
    )


class ParseStage:
    """One parse worker and its queues: FIFO in, FIFO out.

    Parameters
    ----------
    kind:
        ``"thread"`` or ``"process"`` (see the module docstring).
    depth:
        Out-queue bound — how many parsed-but-unreconstructed pictures
        may exist before the worker blocks (the parse-ahead budget).

    Accounting: :attr:`bytes_copied` counts payload bytes that crossed
    a process boundary by value (zero in thread mode); \
    :attr:`handles_passed` counts shared-memory handles received back
    (zero in thread mode, where results move by reference).
    """

    def __init__(self, kind: str = "thread", depth: int = 3) -> None:
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.kind = kind
        self.bytes_copied = 0
        self.handles_passed = 0
        self._seq = 0
        self._received = 0
        self._closed = False
        if kind == "thread":
            self._in: Any = queue_mod.SimpleQueue()
            self._out: Any = queue_mod.Queue(maxsize=depth)
            self._worker: Any = threading.Thread(
                target=_parse_loop, args=(self._in, self._out), daemon=True
            )
        else:
            from multiprocessing import get_context

            # Same spawn hygiene as the job pool: the child re-imports
            # the package, so make sure it can.
            from repro.parallel.pool import _exported_package_path, _spawn_backend_name

            ctx = get_context("spawn")
            self._in = ctx.Queue()
            self._out = ctx.Queue(maxsize=depth)
            self._worker = ctx.Process(
                target=_parse_process_main,
                args=(
                    self._in,
                    self._out,
                    _spawn_backend_name(None),
                    trace.TRACER.enabled,
                ),
                daemon=True,
            )
            with _exported_package_path():
                self._worker.start()
            return
        self._worker.start()

    # -- introspection ---------------------------------------------------

    @property
    def pending(self) -> int:
        """Payloads submitted but not yet collected."""
        return self._seq - self._received

    # -- the pipe --------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        """Queue one payload for parsing (never blocks — the in-queue
        is unbounded; backpressure is the decoder's demand signal)."""
        if self._closed:
            raise ValueError("submit() on a closed ParseStage")
        if self.kind == "process":
            self.bytes_copied += len(payload)
            _MET_BYTES_COPIED.inc(len(payload))
        self._in.put((self._seq, payload))
        self._seq += 1
        _MET_PAYLOADS.inc()
        _MET_QUEUE_DEPTH.set(self.pending)

    def poll(self, block: bool = False, timeout: float = 0.1):
        """Collect the next result, or ``None`` when nothing is ready.

        Returns ``("ok", seq, ParsedPicture)`` or ``("err", seq,
        exception)``, in submission order.  ``block=True`` waits until a
        result lands (raising if the worker died without producing
        one); process-mode results are materialized to owned arrays and
        their segments unlinked before returning.
        """
        while True:
            try:
                item = self._out.get(block=block, timeout=timeout if block else None)
                break
            except queue_mod.Empty:
                if not block:
                    return None
                if not self._worker.is_alive():
                    raise RuntimeError(
                        "parse stage worker died without delivering a result"
                    ) from None
        tag, seq, value, events = item
        self._received += 1
        _MET_QUEUE_DEPTH.set(self.pending)
        if events:
            trace.TRACER.adopt(events)
        if tag == _OK and self.kind == "process":
            from repro.transport import handle_count, materialize

            handles = handle_count(value)
            self.handles_passed += handles
            _MET_HANDLES.inc(handles)
            value = materialize(value, unlink=True)
        return tag, seq, value

    def close(self) -> None:
        """Stop the worker and discard anything still in flight.

        Safe at any point: the sentinel queues behind unparsed
        payloads, and the out-queue is drained while joining so the
        worker's puts never deadlock the join.  Discarded process-mode
        results are materialized-and-unlinked, so no ``/dev/shm``
        segment survives an abandoned pipeline.
        """
        if self._closed:
            return
        self._closed = True
        self._in.put(None)
        while True:
            self._discard_ready()
            self._worker.join(timeout=0.05)
            if not self._worker.is_alive():
                break
        self._discard_ready()
        if self.kind == "process":
            self._in.close()
            self._out.close()

    def _discard_ready(self) -> None:
        while True:
            try:
                tag, _seq, value, events = self._out.get_nowait()
            except queue_mod.Empty:
                return
            self._received += 1
            if events:
                trace.TRACER.adopt(events)
            if tag == _OK and self.kind == "process":
                from repro.transport import materialize

                materialize(value, unlink=True)


__all__ = ["ParseStage", "normalize_pipeline", "parse_payload"]
