"""Frame-iterator encoder: bounded-memory encode of unbounded sources.

:class:`StreamEncoder` drives the exact per-frame step the
whole-sequence :class:`~repro.codec.encoder.Encoder` runs
(:meth:`~repro.codec.encoder.Encoder.encode_frame_into`), but pulls
frames from any iterator and emits bytes as each picture closes, so an
arbitrarily long source — e.g. a multi-gigabyte YUV file through
:func:`repro.video.yuv_io.iter_yuv_frames` — encodes while holding only
the closed loop's working set: the current frame, the reconstructed
reference list (one frame, or up to ``n_ref_frames`` under the GOP
syntax) and the previous motion field.
Because both encoders execute the same step with the same state
threading, the concatenated streamed chunks are byte-identical to the
whole-sequence bitstream in both wire formats (``tests/test_streaming.py``
pins this).

One wrinkle separates the two formats: version-2 pictures are
byte-aligned, so each emitted chunk is exactly one framed picture;
version-1 pictures pack with no alignment, so a picture can end mid-byte
— the encoder then emits every *complete* byte and carries the partial
byte into the next picture (``BitWriter.drain``), with the final
zero-padded byte arriving in the last chunk.  Concatenation is identical
either way.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.codec.bitstream import BitWriter
from repro.codec.encoder import Encoder, FrameRecord
from repro.me.estimator import MotionEstimator
from repro.video.frame import Frame, FrameGeometry


class StreamEncoder:
    """Incremental encode session over a frame iterator.

    Construction parameters mirror :class:`~repro.codec.encoder.Encoder`
    (an ``Encoder`` built here runs the closed loop); reconstruction
    keeping is forced off — the point is not materializing the output.

    Use :meth:`encode_iter` as a generator of byte chunks, or
    :meth:`encode_to` to pump everything into a writable file object.
    Per-frame :class:`~repro.codec.encoder.FrameRecord` summaries
    accumulate on :attr:`records` as frames are consumed.
    """

    def __init__(
        self,
        estimator: MotionEstimator | str = "acbm",
        qp: int = 16,
        estimator_kwargs: dict | None = None,
        use_engine: bool = True,
        bitstream_version: int = 1,
        i_period: int | None = None,
        n_ref_frames: int = 1,
    ) -> None:
        self._encoder = Encoder(
            estimator=estimator,
            qp=qp,
            estimator_kwargs=estimator_kwargs,
            keep_reconstruction=False,
            use_engine=use_engine,
            bitstream_version=bitstream_version,
            i_period=i_period,
            n_ref_frames=n_ref_frames,
        )
        self.records: list[FrameRecord] = []

    @property
    def keyframes(self) -> tuple[int, ...]:
        """Positions of the I-frames emitted so far."""
        return tuple(i for i, r in enumerate(self.records) if r.frame_type == "I")

    @property
    def qp(self) -> int:
        return self._encoder.qp

    @property
    def bitstream_version(self) -> int:
        return self._encoder.bitstream_version

    @property
    def estimator_name(self) -> str:
        est = self._encoder.estimator
        return est.name or type(est).__name__

    def encode_iter(self, frames: Iterable[Frame]) -> Iterator[bytes]:
        """Encode ``frames`` lazily, yielding one byte chunk per picture
        (plus, for version 1, a final padding chunk when the last
        picture ends mid-byte).

        The closed loop holds only the reference list and motion field
        between pictures (an I-frame — forced at every ``i_period``-th
        position — resets both).  All frames must share one geometry,
        mirroring the
        :class:`~repro.video.sequence.Sequence` contract.

        Raises
        ------
        ValueError
            If the iterator yields no frames, or a frame whose geometry
            differs from the first one's.
        """
        writer = BitWriter()
        references: list[Frame] = []
        prev_field = None
        geometry: FrameGeometry | None = None
        position = 0
        for frame in frames:
            if geometry is None:
                geometry = frame.geometry
            elif frame.geometry != geometry:
                raise ValueError(
                    f"mixed geometries in stream: {geometry} vs {frame.geometry}"
                )
            record, recon, prev_field = self._encoder.encode_frame_into(
                writer, frame, position, references, prev_field
            )
            references = self._encoder.advance_references(references, record, recon)
            self.records.append(record)
            position += 1
            chunk = writer.drain()
            if chunk:
                yield chunk
        if position == 0:
            raise ValueError("stream encode needs at least one frame")
        tail = writer.getvalue()  # v1 partial-byte padding; empty for v2
        if tail:
            yield tail

    def encode_to(self, sink, frames: Iterable[Frame]) -> int:
        """Pump :meth:`encode_iter` into ``sink.write``; returns total
        bytes written."""
        written = 0
        for chunk in self.encode_iter(frames):
            sink.write(chunk)
            written += len(chunk)
        return written
