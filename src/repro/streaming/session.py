"""Stat-keeping session wrappers around the streaming codec.

:class:`DecodeSession` and :class:`EncodeSession` are the thin layer the
CLI subcommands (``runner stream-decode`` / ``stream-encode``) and the
streaming benchmark talk to: the same push/pull surfaces as
:class:`~repro.streaming.decoder.StreamDecoder` /
:class:`~repro.streaming.encoder.StreamEncoder`, plus a
:class:`SessionStats` snapshot — frames and bytes in and out, current
and peak buffered bytes, wall-clock since the session opened — so a
serving harness can report throughput and verify the memory bound
without instrumenting the internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.streaming.decoder import StreamDecoder, frame_bytes
from repro.streaming.encoder import StreamEncoder
from repro.video.frame import Frame


@dataclass(frozen=True)
class SessionStats:
    """One session's counters at a point in time.

    ``bytes_copied`` and ``handles_passed`` are the transport ledger:
    payload bytes that crossed a process boundary by value, and
    shared-memory handles that crossed instead.  Both stay zero unless
    the session runs a process-mode parse pipeline — in-process work
    has no boundary to account for.  ``keyframes`` counts the session's
    I-frames — more than one means the stream carries GOP structure
    (``i_Period``) and supports mid-stream random access.
    """

    frames_in: int
    frames_out: int
    bytes_in: int
    bytes_out: int
    buffered_bytes: int
    peak_buffered_bytes: int
    wall_s: float
    bytes_copied: int = 0
    handles_passed: int = 0
    keyframes: int = 0

    def as_text(self) -> str:
        text = (
            f"frames {self.frames_in} in / {self.frames_out} out, "
            f"bytes {self.bytes_in} in / {self.bytes_out} out, "
            f"buffered {self.buffered_bytes} (peak {self.peak_buffered_bytes}), "
            f"{self.wall_s:.3f}s"
        )
        if self.bytes_copied or self.handles_passed:
            text += (
                f", transport {self.bytes_copied} B copied / "
                f"{self.handles_passed} handles"
            )
        if self.keyframes > 1:
            text += f", {self.keyframes} keyframes"
        return text


class DecodeSession:
    """A :class:`StreamDecoder` plus counters.

    ``frames_in`` counts completed input pictures (scanner frames),
    ``frames_out`` counts frames the consumer drained, ``bytes_out``
    counts their decoded pixel bytes.  ``pipeline`` passes through to
    :class:`StreamDecoder` (overlapped parse/reconstruct); the stats
    then include the decoder's transport counters.
    """

    def __init__(
        self, max_buffered_frames: int = 2, pipeline: bool | str = False
    ) -> None:
        self._decoder = StreamDecoder(
            max_buffered_frames=max_buffered_frames, pipeline=pipeline
        )
        self._started = time.perf_counter()
        self._frames_out = 0
        self._bytes_out = 0

    def feed(self, chunk: bytes) -> int:
        """Push a chunk; returns remaining demand (see
        :meth:`StreamDecoder.feed`)."""
        return self._decoder.feed(chunk)

    def frames(self) -> Iterator[Frame]:
        for frame in self._decoder.frames():
            self._frames_out += 1
            self._bytes_out += frame_bytes(frame)
            yield frame

    def close(self) -> None:
        self._decoder.close()

    def stats(self) -> SessionStats:
        return SessionStats(
            frames_in=self._decoder.frames_scanned,
            frames_out=self._frames_out,
            bytes_in=self._decoder.bytes_fed,
            bytes_out=self._bytes_out,
            buffered_bytes=self._decoder.buffered_bytes,
            peak_buffered_bytes=self._decoder.peak_buffered_bytes,
            wall_s=time.perf_counter() - self._started,
            bytes_copied=self._decoder.bytes_copied,
            handles_passed=self._decoder.handles_passed,
            keyframes=len(self._decoder.keyframes),
        )


class EncodeSession:
    """A :class:`StreamEncoder` plus counters.

    ``buffered_bytes`` for an encode is the writer's unflushed remainder
    — always less than one byte per picture boundary — so the stats
    surface reports zero; the interesting numbers are frames in, bytes
    out and wall clock.
    """

    def __init__(
        self,
        estimator="acbm",
        qp: int = 16,
        estimator_kwargs: dict | None = None,
        use_engine: bool = True,
        bitstream_version: int = 1,
        i_period: int | None = None,
        n_ref_frames: int = 1,
    ) -> None:
        self._encoder = StreamEncoder(
            estimator=estimator,
            qp=qp,
            estimator_kwargs=estimator_kwargs,
            use_engine=use_engine,
            bitstream_version=bitstream_version,
            i_period=i_period,
            n_ref_frames=n_ref_frames,
        )
        self._started = time.perf_counter()
        self._bytes_in = 0
        self._bytes_out = 0

    @property
    def records(self):
        return self._encoder.records

    def encode_iter(self, frames: Iterable[Frame]) -> Iterator[bytes]:
        def counted(source: Iterable[Frame]) -> Iterator[Frame]:
            for frame in source:
                self._bytes_in += frame_bytes(frame)
                yield frame

        for chunk in self._encoder.encode_iter(counted(frames)):
            self._bytes_out += len(chunk)
            yield chunk

    def encode_to(self, sink, frames: Iterable[Frame]) -> int:
        written = 0
        for chunk in self.encode_iter(frames):
            sink.write(chunk)
            written += len(chunk)
        return written

    def stats(self) -> SessionStats:
        return SessionStats(
            frames_in=len(self._encoder.records),
            frames_out=len(self._encoder.records),
            bytes_in=self._bytes_in,
            bytes_out=self._bytes_out,
            buffered_bytes=0,
            peak_buffered_bytes=0,
            wall_s=time.perf_counter() - self._started,
            keyframes=len(self._encoder.keyframes),
        )
