"""Stat-keeping session wrappers around the streaming codec.

:class:`DecodeSession` and :class:`EncodeSession` are the thin layer the
CLI subcommands (``runner stream-decode`` / ``stream-encode``) and the
streaming benchmark talk to: the same push/pull surfaces as
:class:`~repro.streaming.decoder.StreamDecoder` /
:class:`~repro.streaming.encoder.StreamEncoder`, plus a
:class:`SessionStats` snapshot — frames and bytes in and out, current
and peak buffered bytes, backpressure stalls, per-frame bits, wall
clock since the session opened — so a serving harness can report
throughput and verify the memory bound without instrumenting the
internals.

Each session owns a private :class:`~repro.obs.metrics.MetricsRegistry`
and :class:`SessionStats` is a read-out of it: counters the session
increments directly (frames/bytes drained) plus mirrors of the
underlying codec's own monotonic counters
(:meth:`~repro.obs.metrics.Counter.advance_to` keeps mirroring
idempotent), with the per-frame bits history as a registry histogram.
A future multi-session server scrapes ``session.registry`` directly;
:meth:`stats` stays for the CLI and the benches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.streaming.decoder import StreamDecoder, frame_bytes
from repro.streaming.encoder import StreamEncoder
from repro.video.frame import Frame


@dataclass(frozen=True)
class SessionStats:
    """One session's counters at a point in time.

    ``bytes_copied`` and ``handles_passed`` are the transport ledger:
    payload bytes that crossed a process boundary by value, and
    shared-memory handles that crossed instead.  Both stay zero unless
    the session runs a process-mode parse pipeline — in-process work
    has no boundary to account for.  ``keyframes`` counts the session's
    I-frames — more than one means the stream carries GOP structure
    (``i_Period``) and supports mid-stream random access.  ``stalls``
    counts backpressure waits — feeds the producer had to pause on plus
    blocking waits for an in-flight parse — and ``bits_out`` is the
    per-frame compressed-bits history (decode: payload bits per decoded
    frame; encode: emitted bits per frame), the ledger rate control
    will build its bits-per-Qp tables from.
    """

    frames_in: int
    frames_out: int
    bytes_in: int
    bytes_out: int
    buffered_bytes: int
    peak_buffered_bytes: int
    wall_s: float
    bytes_copied: int = 0
    handles_passed: int = 0
    keyframes: int = 0
    stalls: int = 0
    bits_out: tuple[int, ...] = ()

    def as_text(self) -> str:
        text = (
            f"frames {self.frames_in} in / {self.frames_out} out, "
            f"bytes {self.bytes_in} in / {self.bytes_out} out, "
            f"buffered {self.buffered_bytes} (peak {self.peak_buffered_bytes}), "
            f"{self.wall_s:.3f}s"
        )
        if self.bytes_copied or self.handles_passed:
            text += (
                f", transport {self.bytes_copied} B copied / "
                f"{self.handles_passed} handles"
            )
        if self.keyframes > 1:
            text += f", {self.keyframes} keyframes"
        if self.stalls:
            text += f", {self.stalls} stalls"
        return text


class DecodeSession:
    """A :class:`StreamDecoder` plus a metrics registry.

    ``frames_in`` counts completed input pictures (scanner frames),
    ``frames_out`` counts frames the consumer drained, ``bytes_out``
    counts their decoded pixel bytes.  ``pipeline`` passes through to
    :class:`StreamDecoder` (overlapped parse/reconstruct); the stats
    then include the decoder's transport counters.
    """

    def __init__(
        self, max_buffered_frames: int = 2, pipeline: bool | str = False
    ) -> None:
        self._decoder = StreamDecoder(
            max_buffered_frames=max_buffered_frames, pipeline=pipeline
        )
        self._started = time.perf_counter()
        self.registry = MetricsRegistry()

    def feed(self, chunk: bytes) -> int:
        """Push a chunk; returns remaining demand (see
        :meth:`StreamDecoder.feed`)."""
        return self._decoder.feed(chunk)

    def frames(self) -> Iterator[Frame]:
        frames_out = self.registry.counter("session.frames_out")
        bytes_out = self.registry.counter("session.bytes_out")
        for frame in self._decoder.frames():
            frames_out.inc()
            bytes_out.inc(frame_bytes(frame))
            yield frame

    def close(self) -> None:
        self._decoder.close()

    def _sync(self) -> None:
        """Mirror the decoder's own monotonic state into the registry."""
        decoder = self._decoder
        reg = self.registry
        reg.counter("session.frames_in").advance_to(decoder.frames_scanned)
        reg.counter("session.bytes_in").advance_to(decoder.bytes_fed)
        reg.counter("session.stalls").advance_to(decoder.stalls)
        reg.counter("session.bytes_copied").advance_to(decoder.bytes_copied)
        reg.counter("session.handles_passed").advance_to(decoder.handles_passed)
        reg.counter("session.keyframes").advance_to(len(decoder.keyframes))
        buffered = reg.gauge("session.buffered_bytes")
        buffered.set(decoder.buffered_bytes)
        # The decoder samples its own peak at every feed — fold it in,
        # since syncs are sparser than feeds.
        buffered.peak = max(buffered.peak, decoder.peak_buffered_bytes)
        bits = reg.histogram("session.frame_bits")
        bits.values.extend(decoder.frame_bits[len(bits.values) :])

    def stats(self) -> SessionStats:
        self._sync()
        reg = self.registry
        buffered = reg.gauge("session.buffered_bytes")
        return SessionStats(
            frames_in=reg.counter("session.frames_in").value,
            frames_out=reg.counter("session.frames_out").value,
            bytes_in=reg.counter("session.bytes_in").value,
            bytes_out=reg.counter("session.bytes_out").value,
            buffered_bytes=buffered.value,
            peak_buffered_bytes=buffered.peak,
            wall_s=time.perf_counter() - self._started,
            bytes_copied=reg.counter("session.bytes_copied").value,
            handles_passed=reg.counter("session.handles_passed").value,
            keyframes=reg.counter("session.keyframes").value,
            stalls=reg.counter("session.stalls").value,
            bits_out=tuple(int(v) for v in reg.histogram("session.frame_bits").values),
        )


class EncodeSession:
    """A :class:`StreamEncoder` plus a metrics registry.

    ``buffered_bytes`` for an encode is the writer's unflushed remainder
    — always less than one byte per picture boundary — so the stats
    surface reports zero; the interesting numbers are frames in, bytes
    out, per-frame bits and wall clock.
    """

    def __init__(
        self,
        estimator="acbm",
        qp: int = 16,
        estimator_kwargs: dict | None = None,
        use_engine: bool = True,
        bitstream_version: int = 1,
        i_period: int | None = None,
        n_ref_frames: int = 1,
    ) -> None:
        self._encoder = StreamEncoder(
            estimator=estimator,
            qp=qp,
            estimator_kwargs=estimator_kwargs,
            use_engine=use_engine,
            bitstream_version=bitstream_version,
            i_period=i_period,
            n_ref_frames=n_ref_frames,
        )
        self._started = time.perf_counter()
        self.registry = MetricsRegistry()

    @property
    def records(self):
        return self._encoder.records

    def encode_iter(self, frames: Iterable[Frame]) -> Iterator[bytes]:
        bytes_in = self.registry.counter("session.bytes_in")
        bytes_out = self.registry.counter("session.bytes_out")

        def counted(source: Iterable[Frame]) -> Iterator[Frame]:
            for frame in source:
                bytes_in.inc(frame_bytes(frame))
                yield frame

        for chunk in self._encoder.encode_iter(counted(frames)):
            bytes_out.inc(len(chunk))
            yield chunk

    def encode_to(self, sink, frames: Iterable[Frame]) -> int:
        written = 0
        for chunk in self.encode_iter(frames):
            sink.write(chunk)
            written += len(chunk)
        return written

    def _sync(self) -> None:
        records = self._encoder.records
        reg = self.registry
        reg.counter("session.frames").advance_to(len(records))
        reg.counter("session.keyframes").advance_to(len(self._encoder.keyframes))
        bits = reg.histogram("session.frame_bits")
        bits.values.extend(r.bits for r in records[len(bits.values) :])

    def stats(self) -> SessionStats:
        self._sync()
        reg = self.registry
        return SessionStats(
            frames_in=reg.counter("session.frames").value,
            frames_out=reg.counter("session.frames").value,
            bytes_in=reg.counter("session.bytes_in").value,
            bytes_out=reg.counter("session.bytes_out").value,
            buffered_bytes=0,
            peak_buffered_bytes=0,
            wall_s=time.perf_counter() - self._started,
            keyframes=reg.counter("session.keyframes").value,
            bits_out=tuple(int(v) for v in reg.histogram("session.frame_bits").values),
        )
