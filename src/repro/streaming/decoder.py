"""Push-based streaming decoder with bounded memory.

:class:`StreamDecoder` is a decode *session*: the caller pushes byte
chunks of a version-2 stream in whatever sizes the transport delivers
(network reads, 1-byte feeds, chunk boundaries inside start codes or
length fields — all equivalent), and decoded frames come out as soon as
their last byte lands, bit-identical to what
:func:`repro.codec.decoder.decode_bitstream` produces from the whole
buffer.  The pipeline per frame is exactly the batched one the indexed
parallel decode uses: :class:`ScanState` completes the payload,
:func:`parse_picture` walks its symbols through the LUT reader,
:func:`check_frame_length` validates the framing, and
:func:`reconstruct_picture` rebuilds pixels against the running
reference.

Memory is bounded by ``max_buffered_frames``: once that many decoded
frames sit undrained, further completed payloads wait *as compressed
bytes* and :meth:`feed` reports zero demand — the backpressure signal
for the producer to pause until the consumer drains :meth:`frames`.
The decoder never drops or reorders anything; a producer that ignores
demand only grows the pending-payload queue.

Version-1 streams are not push-decodable (no framing to find picture
boundaries without parsing) and are rejected on the first bytes with a
precise error; the whole-buffer :func:`decode_bitstream` remains the
tool for those.

``pipeline=True`` (or ``"thread"`` / ``"process"``) overlaps the two
halves of the per-frame work: a :class:`~repro.streaming.pipeline.ParseStage`
worker parses frame *n+1*'s symbols while this side reconstructs frame
*n*.  Output remains bit-identical and in order for any chunking; the
``max_buffered_frames`` bound still governs decoded frames, with
parse-ahead additionally bounded by the stage's out-queue.  Parse
errors surface with the serial path's exact message — possibly on a
later ``feed``/``frames`` call, since the parse runs asynchronously.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.codec.bitstream import BitReader
from repro.codec.decoder import (
    check_frame_length,
    parse_picture,
    reconstruct_picture,
)
from repro.codec.encoder import MAX_REF_FRAMES
from repro.obs import metrics, trace
from repro.streaming.scanner import ScanState
from repro.video.frame import Frame

_MET_STALLS = metrics.counter("stream.stalls")
_MET_BYTES_IN = metrics.counter("stream.bytes_in")


def frame_bytes(frame: Frame) -> int:
    """Decoded size of a frame: the bytes of its three planes."""
    return frame.y.nbytes + frame.cb.nbytes + frame.cr.nbytes


class StreamDecoder:
    """Incremental v2 decode session.

    Parameters
    ----------
    max_buffered_frames:
        Decoded-frame buffer depth (>= 1).  When full, newly completed
        payloads stay compressed in a pending queue and :meth:`feed`
        reports zero demand until the consumer drains :meth:`frames`.
    on_frame:
        Optional callback invoked with each decoded :class:`Frame` the
        moment it completes.  In callback mode frames are *not* also
        queued on :meth:`frames` — the callback is the consumer, so
        demand never drops and decode keeps pace with the feed.
    pipeline:
        ``False`` (serial, the default), ``True``/``"thread"`` (parse
        on a worker thread), or ``"process"`` (parse in a spawned
        child, symbols returning through shared memory).  Transport
        and overlap only — decoded output is bit-identical.

    Usage::

        decoder = StreamDecoder()
        for chunk in transport:
            decoder.feed(chunk)
            for frame in decoder.frames():
                consume(frame)
        decoder.close()
        for frame in decoder.frames():
            consume(frame)
    """

    def __init__(
        self,
        max_buffered_frames: int = 2,
        on_frame: Callable[[Frame], None] | None = None,
        pipeline: bool | str = False,
    ) -> None:
        if max_buffered_frames < 1:
            raise ValueError(
                f"max_buffered_frames must be >= 1, got {max_buffered_frames}"
            )
        from repro.streaming.pipeline import normalize_pipeline

        self.max_buffered_frames = max_buffered_frames
        self._on_frame = on_frame
        self._scanner = ScanState(keep_payloads=True)
        self._ready: deque[Frame] = deque()
        #: Decoded reference list, most recent first; I-frames reset it.
        self._references: list[Frame] = []
        #: Positions of the I-frames decoded so far — the stream's
        #: random-access points, reported by ``SessionStats``.
        self.keyframes: list[int] = []
        #: Backpressure wait count: feeds the producer had to pause on
        #: (zero demand) plus blocking waits for an in-flight parse.
        self.stalls = 0
        #: Compressed bits per decoded frame, in decode order — the
        #: per-frame history ``SessionStats.bits_out`` reports.
        self.frame_bits: list[int] = []
        self._frame_index = 0
        self._closed = False
        #: Peak bytes held across the scanner accumulator, completed-but-
        #: undecoded payloads and decoded-but-undrained frames — the
        #: quantity the streaming bench bounds.
        self.peak_buffered_bytes = 0
        self._pipeline_kind = normalize_pipeline(pipeline)
        self._stage = None  # created on the first completed payload
        self._stage_error: Exception | None = None
        #: Compressed sizes of payloads submitted to the stage but not
        #: yet collected, oldest first (the in-flight byte accounting).
        self._in_flight_sizes: deque[int] = deque()
        self._bytes_copied = 0
        self._handles_passed = 0

    # -- introspection ---------------------------------------------------

    @property
    def bytes_fed(self) -> int:
        return self._scanner.bytes_fed

    @property
    def frames_decoded(self) -> int:
        """Frames fully decoded so far (drained or not)."""
        return self._frame_index

    @property
    def frames_scanned(self) -> int:
        """Input pictures whose payload has fully arrived."""
        return self._scanner.frames_scanned

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently buffered: scanner accumulator + pending
        compressed payloads (including any in flight on the parse
        stage) + decoded frames awaiting :meth:`frames`."""
        return (
            self._scanner.buffered_bytes
            + sum(len(p) for p in self._scanner.payloads)
            + sum(self._in_flight_sizes)
            + sum(frame_bytes(f) for f in self._ready)
        )

    @property
    def demand(self) -> int:
        """How many more frames the session is willing to buffer —
        zero means "drain :meth:`frames` before feeding more"."""
        if self._on_frame is not None:
            return self.max_buffered_frames
        backlog = (
            len(self._ready) + len(self._scanner.payloads) + len(self._in_flight_sizes)
        )
        return max(0, self.max_buffered_frames - backlog)

    @property
    def bytes_copied(self) -> int:
        """Payload bytes that crossed a process boundary by value —
        zero in serial and thread modes, the compressed feed in
        process-pipeline mode (the decoded bulk returns as handles)."""
        return self._bytes_copied

    @property
    def handles_passed(self) -> int:
        """Shared-memory handles received from a process-mode parse
        stage (zero when nothing crosses a process boundary)."""
        return self._handles_passed

    # -- the push surface ------------------------------------------------

    def feed(self, chunk: bytes) -> int:
        """Push the next chunk; returns the remaining :attr:`demand`.

        Raises the same errors the whole-buffer decode raises on the
        same bytes: a version-1 opening, garbage where a start code
        belongs, a corrupt length field (surfaced by the per-frame
        :func:`check_frame_length` validation), or a malformed picture
        payload.
        """
        if self._closed:
            raise ValueError("feed() after close(): the stream was already closed")
        try:
            self._scanner.feed(chunk)
        except Exception:
            self._teardown_stage()
            raise
        _MET_BYTES_IN.inc(len(chunk))
        self._advance()
        self._note_peak()
        demand = self.demand
        if demand == 0:
            # The producer must pause until frames() drains — the wait
            # SessionStats.stalls counts.
            self.stalls += 1
            _MET_STALLS.inc()
        return demand

    def frames(self) -> Iterator[Frame]:
        """Drain every decoded frame ready so far, oldest first.

        Draining frees buffer slots, so pending compressed payloads
        decode as the iterator advances — a consumer looping over this
        after every :meth:`feed` keeps the session inside its memory
        bound.  In pipelined mode the drain additionally *waits* for
        in-flight parses when it would otherwise stall the producer
        (demand is zero, or the stream is closed) — so the serial
        consumer loop works unchanged and never livelocks.
        """
        while True:
            self._advance()
            if not self._ready and self._stage is not None:
                in_flight = len(self._in_flight_sizes)
                if in_flight and (self._closed or self.demand == 0):
                    self.stalls += 1
                    _MET_STALLS.inc()
                    with trace.span("stream.stall", in_flight=in_flight):
                        self._pump_pipeline(block=True)
            if not self._ready:
                return
            yield self._ready.popleft()

    def close(self) -> None:
        """Declare end of stream.

        Validates the tail exactly as the whole-buffer scan does: a
        fragment too short to open a frame is ignored, a frame whose
        declared payload never fully arrived raises the scanner's
        "overruns" error naming the byte offsets.  Frames already
        completed remain drainable via :meth:`frames`.  Idempotent once
        it returns cleanly.
        """
        if self._closed:
            return
        try:
            self._scanner.finish()
        except Exception:
            self._teardown_stage()
            raise
        self._closed = True
        if self._pipeline_kind is not None:
            # Submit the tail payload(s) the finish() call completed;
            # serial mode leaves decode to frames(), as it always has.
            self._advance()

    # -- internals -------------------------------------------------------

    def _advance(self) -> None:
        """Decode pending payloads into the ready queue up to the
        buffer bound (no bound applies in callback mode)."""
        if self._pipeline_kind is not None:
            self._pump_pipeline(block=False)
            return
        payloads = self._scanner.payloads
        while payloads and (
            self._on_frame is not None or len(self._ready) < self.max_buffered_frames
        ):
            payload = payloads.popleft()
            reader = BitReader(payload)
            parsed = parse_picture(reader)
            check_frame_length(reader, len(payload))
            self.frame_bits.append(8 * len(payload))
            frame = self._note_frame(parsed)
            if self._on_frame is not None:
                self._on_frame(frame)
            else:
                self._ready.append(frame)

    def _pump_pipeline(self, block: bool) -> None:
        """Pipelined advance: submit every completed payload to the
        parse stage, then reconstruct collected results up to the
        buffer bound.  ``block=True`` waits for at least one in-flight
        result (the :meth:`frames` stall-breaker)."""
        if self._stage_error is not None:
            raise self._stage_error
        payloads = self._scanner.payloads
        while payloads:
            payload = payloads.popleft()
            self._ensure_stage().submit(payload)
            self._in_flight_sizes.append(len(payload))
        stage = self._stage
        if stage is None:
            return
        while self._in_flight_sizes and (
            self._on_frame is not None or len(self._ready) < self.max_buffered_frames
        ):
            item = stage.poll(block=block and not self._ready)
            if item is None:
                break
            tag, _seq, value = item
            payload_size = self._in_flight_sizes.popleft()
            self._sync_stage_counters()
            if tag == "err":
                self._stage_error = value
                self._teardown_stage()
                raise value
            self.frame_bits.append(8 * payload_size)
            frame = self._note_frame(value)
            if self._on_frame is not None:
                self._on_frame(frame)
            else:
                self._ready.append(frame)
        if self._closed and not self._in_flight_sizes:
            self._teardown_stage()

    def _note_frame(self, parsed) -> Frame:
        """Reconstruct one parsed picture against the running reference
        list and fold it back in (I-frames reset the list and mark a
        random-access point)."""
        frame = reconstruct_picture(parsed, self._references, self._frame_index)
        if parsed.header.frame_type == "I":
            self.keyframes.append(self._frame_index)
            self._references = [frame]
        else:
            self._references = [frame, *self._references][:MAX_REF_FRAMES]
        self._frame_index += 1
        return frame

    def _ensure_stage(self):
        if self._stage is None:
            from repro.streaming.pipeline import ParseStage

            self._stage = ParseStage(
                kind=self._pipeline_kind, depth=self.max_buffered_frames + 1
            )
        return self._stage

    def _sync_stage_counters(self) -> None:
        if self._stage is not None:
            self._bytes_copied = self._stage.bytes_copied
            self._handles_passed = self._stage.handles_passed

    def _teardown_stage(self) -> None:
        if self._stage is not None:
            self._sync_stage_counters()
            self._stage.close()
            self._stage = None

    def _note_peak(self) -> None:
        self.peak_buffered_bytes = max(self.peak_buffered_bytes, self.buffered_bytes)


def stream_decode(
    chunks,
    max_buffered_frames: int = 2,
    pipeline: bool | str = False,
) -> Iterator[Frame]:
    """Decode an iterable of byte chunks, yielding frames as they
    complete — the generator face of :class:`StreamDecoder`.

    >>> from repro.codec.encoder import encode_sequence
    >>> from repro.video.synthesis.sequences import make_sequence
    >>> seq = make_sequence("miss_america", frames=2)
    >>> enc = encode_sequence(seq, qp=20, keep_reconstruction=True,
    ...                       bitstream_version=2)
    >>> chunks = [enc.bitstream[i:i + 7] for i in range(0, len(enc.bitstream), 7)]
    >>> decoded = list(stream_decode(chunks))
    >>> all(d == r for d, r in zip(decoded, enc.reconstruction))
    True
    """
    decoder = StreamDecoder(max_buffered_frames=max_buffered_frames, pipeline=pipeline)
    for chunk in chunks:
        decoder.feed(chunk)
        yield from decoder.frames()
    decoder.close()
    yield from decoder.frames()
