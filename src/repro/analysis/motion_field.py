"""Motion-field quality statistics.

The paper argues (Section 2.3) that FSBM fields are *incoherent* —
neighbouring vectors disagree, inflating the differential MV rate —
while predictive fields are smooth.  These helpers quantify that:

* :func:`field_smoothness` — mean L1 difference between horizontally /
  vertically adjacent vectors (half-pel units); lower is smoother.
* :func:`field_entropy_bits` — empirical entropy of the MVD stream, a
  lower bound on what any entropy coder could spend.
* :func:`error_map` — per-block Chebyshev error against a ground-truth
  global displacement (the Fig. 4 rig's error classes).
"""

from __future__ import annotations

import numpy as np

from repro.codec.mv_coding import predict_mv
from repro.me.types import MotionField, MotionVector


def field_smoothness(field: MotionField) -> float:
    """Mean L1 distance (half-pels) between 4-adjacent vector pairs.

    0.0 for a perfectly uniform field; grows with incoherence.
    """
    hx, hy = field.to_arrays()
    diffs = []
    if field.mb_cols > 1:
        diffs.append(np.abs(np.diff(hx, axis=1)) + np.abs(np.diff(hy, axis=1)))
    if field.mb_rows > 1:
        diffs.append(np.abs(np.diff(hx, axis=0)) + np.abs(np.diff(hy, axis=0)))
    if not diffs:
        return 0.0
    return float(np.concatenate([d.ravel() for d in diffs]).mean())


def field_entropy_bits(field: MotionField) -> float:
    """Empirical zero-order entropy (bits/vector) of the median-predicted
    MVD symbols of a field."""
    symbols: list[tuple[int, int]] = []
    coded = MotionField(field.mb_rows, field.mb_cols)
    for r, c, mv in field:
        if mv is None:
            raise ValueError("motion field has unset entries")
        predictor = predict_mv(coded, r, c)
        d = mv - predictor
        symbols.append((d.hx, d.hy))
        coded.set(r, c, mv)
    values, counts = np.unique(np.array(symbols), axis=0, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


def error_map(field: MotionField, truth: MotionVector) -> np.ndarray:
    """Per-block integer error class against a known global vector.

    Error = Chebyshev distance in *pixels*, rounded down — the paper's
    Fig. 4 buckets (0, 1, 2, 3, 4, >=5).
    """
    hx, hy = field.to_arrays()
    cheb_half = np.maximum(np.abs(hx - truth.hx), np.abs(hy - truth.hy))
    return (cheb_half // 2).astype(np.int64)


def mean_vector(field: MotionField) -> tuple[float, float]:
    """Average (x, y) displacement in pixels — the field's global-motion
    estimate."""
    hx, hy = field.to_arrays()
    return float(hx.mean() / 2.0), float(hy.mean() / 2.0)
