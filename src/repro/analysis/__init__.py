"""Analysis utilities: PSNR, rate-distortion curves, motion-field
statistics and plain-text report rendering."""

from repro.analysis.psnr import psnr, sequence_psnr
from repro.analysis.rd import RDCurve, RDPoint

__all__ = ["RDCurve", "RDPoint", "psnr", "sequence_psnr"]
