"""Rate-distortion points, curves and comparisons.

The paper's Figs. 5-6 plot PSNR (dB) against rate (kbit/s), one curve
per estimator, one point per Qp.  :class:`RDCurve` stores the points
and provides the comparisons the paper makes verbally: PSNR-at-
matched-rate deltas via linear interpolation, and a Bjøntegaard-style
average dB difference over the overlapping rate range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RDPoint:
    """One operating point of one encoder configuration."""

    qp: int
    rate_kbps: float
    psnr_db: float

    def __post_init__(self) -> None:
        if self.rate_kbps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_kbps}")
        if not np.isfinite(self.psnr_db):
            raise ValueError(f"PSNR must be finite, got {self.psnr_db}")


class RDCurve:
    """A labelled set of RD points, sorted by rate."""

    def __init__(self, label: str, points) -> None:
        self.label = label
        self.points: list[RDPoint] = sorted(points, key=lambda p: p.rate_kbps)
        if len(self.points) < 1:
            raise ValueError("an RD curve needs at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def rates(self) -> np.ndarray:
        return np.array([p.rate_kbps for p in self.points])

    @property
    def psnrs(self) -> np.ndarray:
        return np.array([p.psnr_db for p in self.points])

    @property
    def rate_range(self) -> tuple[float, float]:
        return float(self.rates[0]), float(self.rates[-1])

    def psnr_at_rate(self, rate_kbps: float) -> float:
        """PSNR at a given rate by piecewise-linear interpolation over
        log-rate (the customary interpolation for RD curves).  The rate
        must lie inside the curve's span (up to float round-off)."""
        lo, hi = self.rate_range
        tolerance = 1e-9 * max(abs(lo), abs(hi), 1.0)
        if not lo - tolerance <= rate_kbps <= hi + tolerance:
            raise ValueError(f"rate {rate_kbps} outside curve span [{lo}, {hi}]")
        rate_kbps = min(max(rate_kbps, lo), hi)
        if len(self.points) == 1:
            return float(self.psnrs[0])
        return float(np.interp(np.log(rate_kbps), np.log(self.rates), self.psnrs))

    def average_psnr_gain_over(self, other: "RDCurve", samples: int = 50) -> float:
        """Mean PSNR difference ``self − other`` (dB) over the shared
        rate range — a Bjøntegaard-delta-PSNR analog on log-rate.

        Positive values mean ``self`` dominates.  Raises when the curves
        share no rate overlap (then no like-for-like claim is possible).
        """
        lo = max(self.rate_range[0], other.rate_range[0])
        hi = min(self.rate_range[1], other.rate_range[1])
        if lo >= hi:
            raise ValueError(
                f"curves {self.label!r} and {other.label!r} share no rate range"
            )
        if samples < 2:
            raise ValueError(f"samples must be >= 2, got {samples}")
        grid = np.exp(np.linspace(np.log(lo), np.log(hi), samples))
        mine = np.array([self.psnr_at_rate(r) for r in grid])
        theirs = np.array([other.psnr_at_rate(r) for r in grid])
        return float((mine - theirs).mean())

    def __repr__(self) -> str:
        lo, hi = self.rate_range
        return (
            f"RDCurve({self.label!r}, {len(self.points)} points, "
            f"{lo:.1f}-{hi:.1f} kbit/s, {self.psnrs.min():.2f}-{self.psnrs.max():.2f} dB)"
        )
