"""Plain-text rendering of experiment outputs.

The benchmark harnesses print the same rows/series the paper reports;
these helpers keep that formatting in one place and make the output
stable enough to snapshot in tests.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table.

    Floats go through ``float_format``; everything else through
    ``str``.  Column widths adapt to content.
    """
    if not headers:
        raise ValueError("need at least one column")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_rd_series(curves, title: str = "") -> str:
    """Render RD curves the way the paper's figure legends read:
    one block per curve, Qp / rate / PSNR columns."""
    lines = []
    if title:
        lines.append(title)
    for curve in curves:
        lines.append(f"[{curve.label}]")
        lines.append(
            format_table(
                ["Qp", "rate kbit/s", "PSNR dB"],
                [(p.qp, p.rate_kbps, p.psnr_db) for p in curve.points],
            )
        )
    return "\n".join(lines)


def format_histogram(
    counts: dict,
    title: str = "",
    bar_width: int = 40,
) -> str:
    """Simple ASCII bar chart for class-count dictionaries (Fig. 4
    error-class populations)."""
    if not counts:
        raise ValueError("empty counts")
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts must sum to a positive value")
    peak = max(counts.values())
    lines = [title] if title else []
    for key in sorted(counts):
        value = counts[key]
        bar = "#" * (round(bar_width * value / peak) if peak else 0)
        lines.append(f"{key!s:>10}  {value:>8}  {bar}")
    return "\n".join(lines)
