"""Peak signal-to-noise ratio — the paper's quality axis.

PSNR = 10·log10(255² / MSE) in dB for 8-bit video.  Identical planes
have infinite PSNR; we return ``math.inf`` rather than capping so tests
can assert on it explicitly.
"""

from __future__ import annotations

import math

import numpy as np

#: Peak value of 8-bit video.
PEAK = 255.0


def plane_mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two planes of equal shape."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("empty planes")
    diff = a - b
    return float((diff * diff).mean())


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """PSNR in dB; ``inf`` for identical planes."""
    err = plane_mse(original, reconstructed)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(PEAK * PEAK / err)


def sequence_psnr(originals, reconstructions, plane: str = "y") -> float:
    """Mean per-frame luma (or chroma) PSNR across a sequence.

    Per-frame PSNRs are averaged in dB — the convention of the H.263
    test-model reports the paper compares against.
    """
    if plane not in ("y", "cb", "cr"):
        raise ValueError(f"plane must be y/cb/cr, got {plane!r}")
    values = []
    count = 0
    for orig, rec in zip(originals, reconstructions):
        values.append(psnr(getattr(orig, plane), getattr(rec, plane)))
        count += 1
    if count == 0:
        raise ValueError("no frame pairs given")
    return float(np.mean(values))
