"""Shared source-frame store: render once, hand out handles everywhere.

The experiment harnesses fan one parameter sweep out into dozens of job
specs that all read the *same* rendered source material — every
``(fps, estimator, Qp)`` cell of an RD sweep encodes the same 30 fps
render, every Fig. 4 pair job reads two frames of the same rig stack.
Before this module each worker process re-rendered those sources on
first use (memoized per process, so the cost repeated once per worker
per source — and entirely hid the bytes from the transport ledger).

:class:`FrameStore` closes that gap for the shared-memory transport:
the **parent** renders each distinct source exactly once, places the
planes into a :class:`~repro.transport.arena.FrameArena`, and hands out
the same handle tuples to every job spec that asks — keyed by
``(sequence, frame_count, seed, dims)`` for synthesis sequences and by
the rig identity for Fig. 4 frame stacks.  Workers attach the segments
on first use through the arena's bounded LRU, exactly like every other
handle; the arena (owned by :func:`repro.parallel.pool.run_jobs`)
unlinks everything on exit, so the PR 6 hygiene rules — leak-free on
success, failure and cancel paths — carry over unchanged.

The store is also the object ``JobSpec.pack_shm`` receives: simple
specs use :meth:`place` (the arena's single-array surface), the
experiment specs use the memoized :meth:`source_frames` /
:meth:`rig_frames` so N specs over one source cost one render and one
copy into shared memory, not N.

Layering note: the render recipes live above this module
(:func:`repro.parallel.jobs.rendered_source`,
:func:`repro.experiments.fig4_characterization.rig_frames_cached`), so
they are imported lazily at call time — the parent's existing render
memos keep working (including ``borrowed_renders`` lends), and no
import cycle forms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.obs import metrics
from repro.transport.arena import FrameArena, FrameHandle
from repro.transport.share import SharedSequence, share

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig
    from repro.video.frame import FrameGeometry

#: Memo outcomes across both caches: a hit means a render (and its copy
#: into shared memory) was avoided entirely.
_MET_HITS = metrics.counter("framestore.hits")
_MET_MISSES = metrics.counter("framestore.misses")


class FrameStore:
    """Memoizing front-end over one :class:`FrameArena`.

    Parameters
    ----------
    arena:
        The arena that owns every placed segment.  The store never
        manages lifetime itself — close the arena (or let its context
        exit) and every handle the store handed out dies with it.

    The store must stay in the process that owns the arena; only the
    handles it returns cross the spawn boundary.
    """

    def __init__(self, arena: FrameArena) -> None:
        self._arena = arena
        self._sources: dict[tuple, SharedSequence] = {}
        self._rigs: dict[tuple, tuple[FrameHandle, ...]] = {}

    # -- the single-array surface (what simple specs need) ---------------

    def place(self, array: np.ndarray | bytes) -> FrameHandle:
        """Place one array/bytes payload; delegates to the arena."""
        return self._arena.place(array)

    # -- memoized whole-source placement ----------------------------------

    def source_frames(self, name: str, config: "ExperimentConfig") -> SharedSequence:
        """The 30 fps source render for ``name`` under ``config`` as a
        :class:`SharedSequence`, rendered and placed **exactly once**
        per distinct ``(sequence, frame_count, seed, dims)`` — every
        sweep cell of the same clip receives the same handles."""
        key = (name, config.frames, config.seed, config.geometry)
        shared = self._sources.get(key)
        if shared is None:
            from repro.parallel.jobs import rendered_source

            _MET_MISSES.inc()
            shared = share(rendered_source(name, config), self._arena.place)
            self._sources[key] = shared
        else:
            _MET_HITS.inc()
        return shared

    def rig_frames(
        self,
        motions: tuple[tuple[int, int], ...],
        geometry: "FrameGeometry",
        p: int,
        seed: int,
    ) -> tuple[FrameHandle, ...]:
        """The Fig. 3 rig's frame stack as one handle per frame,
        rendered and placed once per rig identity; pair jobs slice out
        the two handles they observe."""
        key = (tuple(motions), geometry, p, seed)
        handles = self._rigs.get(key)
        if handles is None:
            from repro.experiments.fig4_characterization import rig_frames_cached

            _MET_MISSES.inc()
            frames = rig_frames_cached(tuple(motions), geometry, p, seed)
            handles = tuple(self._arena.place(frame) for frame in frames)
            self._rigs[key] = handles
        else:
            _MET_HITS.inc()
        return handles

    # -- introspection -----------------------------------------------------

    @property
    def distinct_sources(self) -> int:
        """How many distinct renders the store placed (tests assert the
        render-once property through this)."""
        return len(self._sources) + len(self._rigs)
