"""Zero-copy shared-memory frame transport.

Frame and bitstream payloads cross process boundaries as
:class:`FrameHandle`\\ s — segment name, offset, shape, dtype — instead
of pickled arrays:

* :class:`FrameArena` — producer-owned slab segments with refcounted
  release and context-manager teardown (no ``/dev/shm`` leaks);
* :func:`attach_array` / :func:`read_array` — consumer side,
  attach-on-first-use per process (spawn-safe);
* :func:`export` / :func:`materialize` — ownership transfer for worker
  results: one one-shot segment per value, unlinked by the receiver;
* :func:`share` — swap a codec value's array leaves
  (:class:`~repro.video.frame.Frame`, whole
  :class:`~repro.video.sequence.Sequence` renders,
  :class:`~repro.codec.decoder.ParsedPicture`, bare arrays,
  lists/tuples) for handles placed through an arena;
* :class:`FrameStore` — memoizing render-once front-end over one arena:
  the parent renders each distinct experiment source a single time and
  every job spec that packs against the store receives the same
  handles;
* :func:`payload_bytes` / :func:`handle_count` — the accounting the
  transport benchmark and session stats report.

``repro.parallel.run_jobs(..., use_shm=True)`` and the process-mode
pipelined :class:`repro.streaming.StreamDecoder` are the two consumers;
``use_shm=False`` everywhere falls back to the byte-identical pickling
path.
"""

from repro.transport.arena import (
    ATTACH_CACHE_SEGMENTS,
    FrameArena,
    FrameHandle,
    attach_array,
    detach_all,
    detach_segment,
    export_segment,
    read_array,
    unlink_segment,
)
from repro.transport.share import (
    SharedFrame,
    SharedParsedPicture,
    SharedSequence,
    export,
    handle_count,
    iter_arrays,
    materialize,
    payload_bytes,
    share,
)
from repro.transport.store import FrameStore

__all__ = [
    "ATTACH_CACHE_SEGMENTS",
    "FrameArena",
    "FrameHandle",
    "FrameStore",
    "SharedFrame",
    "SharedParsedPicture",
    "SharedSequence",
    "attach_array",
    "detach_all",
    "detach_segment",
    "export",
    "export_segment",
    "handle_count",
    "iter_arrays",
    "materialize",
    "payload_bytes",
    "read_array",
    "share",
    "unlink_segment",
]
