"""Typed sharing layer over the arena: whole codec values as handles.

:mod:`repro.transport.arena` moves single arrays; this module moves the
*values* the job layer actually exchanges — :class:`~repro.video.frame.Frame`
(three planes), whole :class:`~repro.video.sequence.Sequence` renders
(→ :class:`SharedSequence`), :class:`~repro.codec.decoder.ParsedPicture`
(levels, DC levels, motion arrays), bare ``ndarray`` leaves (Fig. 4 rig
frames) and lists/tuples of any of those — by swapping every array leaf
for a :class:`~repro.transport.arena.FrameHandle` and keeping the
scalar skeleton as-is.  Values with no array leaves (``SweepCell``
rows, floats, strings) pass through untouched: they were never a
transport problem.

Two directions:

* :func:`share` — replace array leaves with handles via a caller-supplied
  ``place`` function (an arena's :meth:`~repro.transport.arena.FrameArena.place`
  for producer-owned lifetime).
* :func:`export` / :func:`materialize` — the ownership-transfer pair for
  worker results: ``export`` packs all of a value's arrays into **one**
  one-shot segment (:func:`~repro.transport.arena.export_segment`) and
  returns the handle skeleton; ``materialize`` rebuilds the value with
  owned copies and unlinks every segment it read, leaving ``/dev/shm``
  clean.  ``materialize`` also reverses :func:`share`, with
  ``unlink=False`` so arena-owned segments survive for other consumers.

:func:`payload_bytes` and :func:`handle_count` are the accounting
surface: what a value would cost to pickle by payload, and how many
handles replaced that cost — the numbers ``BENCH_transport.json`` and
``SessionStats`` report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.codec.decoder import ParsedPicture, PictureHeader
from repro.transport.arena import (
    FrameHandle,
    export_segment,
    read_array,
    unlink_segment,
)
from repro.video.frame import Frame
from repro.video.sequence import Sequence


@dataclass(frozen=True)
class SharedFrame:
    """A :class:`Frame` with its planes in shared memory."""

    y: FrameHandle
    cb: FrameHandle
    cr: FrameHandle
    index: int


@dataclass(frozen=True)
class SharedSequence:
    """A :class:`~repro.video.sequence.Sequence` with every frame's
    planes in shared memory.

    The scalar skeleton (name, frame rate, per-frame indices) rides in
    the pickle; the pixels stay in the arena.  Hashable, so job specs
    carrying one remain usable as cache/dedup keys."""

    name: str
    fps: float
    frames: tuple[SharedFrame, ...]


@dataclass(frozen=True)
class SharedParsedPicture:
    """A :class:`ParsedPicture` with its arrays in shared memory.

    The header (five ints) rides along in the pickle; ``None`` members
    stay ``None`` (intra pictures have no motion arrays and inter
    pictures no DC levels).
    """

    header: PictureHeader
    levels: FrameHandle
    dc_levels: FrameHandle | None
    hx: FrameHandle | None
    hy: FrameHandle | None
    modes: FrameHandle | None = None
    ref_idx: FrameHandle | None = None


def _frame_arrays(frame: Frame) -> list[np.ndarray]:
    return [frame.y, frame.cb, frame.cr]


def _parsed_arrays(parsed: ParsedPicture) -> list[np.ndarray]:
    members = (parsed.levels, parsed.dc_levels, parsed.hx, parsed.hy, parsed.modes, parsed.ref_idx)
    return [a for a in members if a is not None]


def iter_arrays(value) -> list[np.ndarray]:
    """Every array leaf of ``value`` in sharing order (the traversal
    :func:`share` uses, so a sizing pass and a placing pass agree).
    Bare ``ndarray`` leaves count as themselves — a Fig. 4 rig frame or
    a raw plane is as much payload as a wrapped one."""
    if isinstance(value, np.ndarray):
        return [value]
    if isinstance(value, Frame):
        return _frame_arrays(value)
    if isinstance(value, ParsedPicture):
        return _parsed_arrays(value)
    if isinstance(value, Sequence):
        out: list[np.ndarray] = []
        for frame in value:
            out.extend(_frame_arrays(frame))
        return out
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(iter_arrays(item))
        return out
    return []


def share(value, place: Callable[[np.ndarray], FrameHandle]):
    """Swap every array leaf of ``value`` for a handle from ``place``.

    Lists/tuples recurse (preserving type); a
    :class:`~repro.video.sequence.Sequence` becomes a
    :class:`SharedSequence`; bare arrays become bare handles; values
    with no array leaves return unchanged.
    """
    if isinstance(value, np.ndarray):
        return place(value)
    if isinstance(value, Frame):
        return SharedFrame(
            y=place(value.y), cb=place(value.cb), cr=place(value.cr), index=value.index
        )
    if isinstance(value, Sequence):
        return SharedSequence(
            name=value.name,
            fps=value.fps,
            frames=tuple(share(frame, place) for frame in value),
        )
    if isinstance(value, ParsedPicture):
        return SharedParsedPicture(
            header=value.header,
            levels=place(value.levels),
            dc_levels=None if value.dc_levels is None else place(value.dc_levels),
            hx=None if value.hx is None else place(value.hx),
            hy=None if value.hy is None else place(value.hy),
            modes=None if value.modes is None else place(value.modes),
            ref_idx=None if value.ref_idx is None else place(value.ref_idx),
        )
    if isinstance(value, (list, tuple)):
        return type(value)(share(item, place) for item in value)
    return value


def export(value, name_prefix: str = "repro-tx"):
    """Ownership-transfer form of :func:`share`: all of ``value``'s
    arrays go into one fresh segment whose lifetime now belongs to
    whoever :func:`materialize`\\ s the result.  Values without array
    leaves come back unchanged (and cost nothing)."""
    arrays = iter_arrays(value)
    if not arrays:
        return value
    handles = iter(export_segment(arrays, name_prefix=name_prefix))
    return share(value, lambda _array: next(handles))


def materialize(value, unlink: bool = True):
    """Rebuild a shared value with owned arrays.

    ``unlink=True`` (the receiver of an :func:`export`) destroys every
    segment the value referenced after copying out of it; pass
    ``unlink=False`` for arena-owned handles whose lifetime the arena's
    refcounts manage.
    """
    segments: set[str] = set()

    def fetch(handle: FrameHandle | None):
        if handle is None:
            return None
        segments.add(handle.segment)
        return read_array(handle)

    def rebuild(node):
        if isinstance(node, FrameHandle):
            return fetch(node)
        if isinstance(node, SharedFrame):
            return Frame(fetch(node.y), fetch(node.cb), fetch(node.cr), index=node.index)
        if isinstance(node, SharedSequence):
            return Sequence(
                (rebuild(frame) for frame in node.frames), fps=node.fps, name=node.name
            )
        if isinstance(node, SharedParsedPicture):
            return ParsedPicture(
                header=node.header,
                levels=fetch(node.levels),
                dc_levels=fetch(node.dc_levels),
                hx=fetch(node.hx),
                hy=fetch(node.hy),
                modes=fetch(node.modes),
                ref_idx=fetch(node.ref_idx),
            )
        if isinstance(node, (list, tuple)):
            return type(node)(rebuild(item) for item in node)
        return node

    rebuilt = rebuild(value)
    if unlink:
        for name in segments:
            unlink_segment(name)
    return rebuilt


# -- accounting -----------------------------------------------------------


def payload_bytes(value) -> int:
    """Bytes of array/bytes payload ``value`` would drag through a
    pickle: the quantity shared-memory transport removes.  Handles and
    scalar skeletons do not count.  Containers recurse, so ``bytes``
    leaves nested in Fig. 4 frame-pair tuples or GOP plane lists are
    counted too, not just top-level blobs."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (list, tuple)):
        return sum(payload_bytes(item) for item in value)
    return sum(arr.nbytes for arr in iter_arrays(value))


def handle_count(value) -> int:
    """How many :class:`FrameHandle` leaves a (shared) value carries."""
    if isinstance(value, FrameHandle):
        return 1
    if isinstance(value, SharedFrame):
        return 3
    if isinstance(value, SharedSequence):
        return handle_count(value.frames)
    if isinstance(value, SharedParsedPicture):
        members = (value.levels, value.dc_levels, value.hx, value.hy, value.modes, value.ref_idx)
        return sum(1 for h in members if h is not None)
    if isinstance(value, (list, tuple)):
        return sum(handle_count(item) for item in value)
    return 0
