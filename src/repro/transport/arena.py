"""Shared-memory frame arena: payloads cross process boundaries as handles.

The parallel layer (PR 3) moves whole frame and bitstream payloads
through the spawn pool by *pickling* them — every byte is serialized in
the parent, shipped over a pipe, and deserialized in the worker, and
results make the same trip back.  This module provides the zero-copy
alternative: payload arrays live in ``multiprocessing.shared_memory``
blocks, and what actually crosses the pickle boundary is a
:class:`FrameHandle` — segment name, byte offset, shape, dtype — a few
hundred bytes regardless of payload size.

Three roles, three surfaces:

* **Producer-owned lifetime** — :class:`FrameArena` places arrays into
  slab segments it owns (bump allocation, 64-byte aligned) and hands
  out handles.  Lifetime is explicit: :meth:`FrameArena.release`
  decrements a per-segment refcount (a sealed segment is destroyed when
  its last handle is released), and the arena is a context manager
  whose exit force-unlinks every segment it ever created — no
  ``/dev/shm`` entry survives a ``with`` block.
* **Consumer attach** — :func:`attach_array` maps a handle to a NumPy
  view over the segment, attaching each segment **on first use** and
  caching the mapping per process (spawned workers import this module
  fresh, so their first handle triggers the attach).  Views are valid
  until the segment is evicted from the bounded cache or detached;
  :func:`read_array` returns an owned copy with no lifetime string
  attached.
* **Ownership transfer** — :func:`export_segment` creates a one-shot
  segment for result payloads in a *worker*, which then closes its own
  mapping and forgets it; the receiving process reads the arrays and
  calls :func:`unlink_segment` to destroy it.  This is how job results
  travel parent-ward without a parent-side arena having to exist in
  the worker.

Resource-tracker hygiene: every process that creates *or* attaches a
segment registers it with the (shared, spawn-inherited) resource
tracker, whose registry is a name set — so the protocol "exactly one
process unlinks, and nobody attaches after the unlink" leaves the
tracker clean and warning-free at exit.  Both the arena and the
transfer protocol follow it.
"""

from __future__ import annotations

import secrets
from collections import OrderedDict
from dataclasses import dataclass
from math import prod
from multiprocessing import shared_memory

import numpy as np

from repro.obs import metrics

#: Byte alignment of every placed array (cache-line sized, and enough
#: for any NumPy dtype).
ALIGNMENT = 64

#: Live shared-memory bytes across every arena in this process: slab
#: sizes are added when a segment is created and subtracted when it is
#: destroyed, so the gauge (and its peak) bounds actual ``/dev/shm``
#: residency rather than logical payload bytes.
_MET_BYTES_IN_FLIGHT = metrics.gauge("arena.bytes_in_flight")
_MET_PLACEMENTS = metrics.counter("arena.placements")
_MET_SEGMENTS = metrics.counter("arena.segments")

#: Default slab size for arena allocations.  One QCIF frame's three
#: planes are ~38 KB, so the default slab holds a couple dozen frames.
DEFAULT_SLAB_BYTES = 1 << 20

#: Most segments a process keeps attached at once; least-recently-used
#: mappings beyond this are closed (their views die with them).
ATTACH_CACHE_SEGMENTS = 32


def _new_segment_name(prefix: str) -> str:
    return f"{prefix}-{secrets.token_hex(8)}"


@dataclass(frozen=True)
class FrameHandle:
    """A picklable reference to one array inside a shared segment.

    This is the only thing that crosses the process boundary: ~200
    pickled bytes whether it names a 16-byte motion row or a CIF frame.
    """

    segment: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Byte size of the referenced array."""
        return prod(self.shape, start=1) * np.dtype(self.dtype).itemsize


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


# -- consumer side: attach-on-first-use ----------------------------------

#: Process-local cache of attached segments (LRU, bounded).  Spawned
#: workers start empty and fill it as handles arrive.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attached_segment(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED.get(name)
    if seg is not None:
        _ATTACHED.move_to_end(name)
        return seg
    seg = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = seg
    while len(_ATTACHED) > ATTACH_CACHE_SEGMENTS:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except BufferError:  # pragma: no cover - caller still holds views
            _ATTACHED[old.name] = old
            _ATTACHED.move_to_end(old.name, last=False)
            break
    return seg


def attach_array(handle: FrameHandle) -> np.ndarray:
    """A NumPy view of the handle's array, attaching the segment on
    first use in this process.

    The view aliases shared memory: it stays valid only while the
    segment remains attached (and not yet unlinked by its owner), so
    treat it as a short-lived read window — take :func:`read_array`
    for anything longer-lived.
    """
    seg = _attached_segment(handle.segment)
    return np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf, offset=handle.offset
    )


def read_array(handle: FrameHandle) -> np.ndarray:
    """An owned copy of the handle's array (no shared-memory lifetime)."""
    return np.array(attach_array(handle))


def detach_segment(name: str) -> None:
    """Drop this process's cached mapping of ``name`` (no-op when not
    attached).  Any views over it must be dead."""
    seg = _ATTACHED.pop(name, None)
    if seg is not None:
        seg.close()


def detach_all() -> None:
    """Close every cached mapping (hermetic tests / worker teardown)."""
    for name in list(_ATTACHED):
        detach_segment(name)


# -- ownership transfer: worker-created result segments ------------------


def export_segment(
    arrays: "list[np.ndarray]", name_prefix: str = "repro-tx"
) -> list[FrameHandle]:
    """Copy ``arrays`` into one fresh segment and hand its ownership to
    whoever receives the returned handles.

    The calling process closes its own mapping before returning and
    keeps no record of the segment — the receiver must call
    :func:`unlink_segment` (directly or via
    :func:`repro.transport.share.materialize`) once it has read the
    payloads, or the segment outlives both processes.
    """
    if not arrays:
        return []
    arrays = [np.ascontiguousarray(a) for a in arrays]
    total = 0
    offsets = []
    for arr in arrays:
        total = _aligned(total)
        offsets.append(total)
        total += arr.nbytes
    seg = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=_new_segment_name(name_prefix)
    )
    try:
        handles = []
        for arr, offset in zip(arrays, offsets):
            if arr.nbytes:
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=offset)
                view[...] = arr
                del view
            handles.append(
                FrameHandle(
                    segment=seg.name,
                    offset=offset,
                    shape=tuple(arr.shape),
                    dtype=arr.dtype.str,
                )
            )
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    seg.close()
    return handles


def unlink_segment(name: str) -> None:
    """Destroy a transferred segment after reading it: detach the local
    cache entry and unlink the ``/dev/shm`` name.  Unlinking an
    already-destroyed segment is a no-op (a double release must not
    mask the first one's success)."""
    seg = _ATTACHED.pop(name, None)
    try:
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
        seg.close()
        seg.unlink()
    except FileNotFoundError:
        pass


# -- producer side: the arena --------------------------------------------


class _Slab:
    """One shared segment under bump allocation."""

    __slots__ = ("shm", "used", "refs", "sealed")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.used = 0
        self.refs = 0
        self.sealed = False


class FrameArena:
    """Bump-allocating shared-memory arena with refcounted release.

    Parameters
    ----------
    slab_bytes:
        Segment granularity.  Arrays larger than this get a dedicated
        segment of their own size.
    name_prefix:
        Segment name prefix (``/dev/shm/<prefix>-<hex>`` on Linux) —
        tests sweep by prefix to assert nothing leaked.

    Usage::

        with FrameArena() as arena:
            handle = arena.place(frame.y)
            ...                      # ship the handle, not the pixels
            arena.release(handle)    # refcounted; optional before exit
        # every segment unlinked here, whatever was released

    The arena object itself must never cross a process boundary — only
    handles do (workers attach on first use).  ``place`` after ``close``
    raises; ``close`` is idempotent.
    """

    def __init__(
        self, slab_bytes: int = DEFAULT_SLAB_BYTES, name_prefix: str = "repro-arena"
    ) -> None:
        if slab_bytes < 1:
            raise ValueError(f"slab_bytes must be >= 1, got {slab_bytes}")
        self._slab_bytes = slab_bytes
        self._prefix = name_prefix
        self._slabs: dict[str, _Slab] = {}
        self._active: _Slab | None = None
        self._closed = False

    # -- introspection ---------------------------------------------------

    @property
    def open_segments(self) -> int:
        """Segments currently alive (the leak-check quantity)."""
        return len(self._slabs)

    @property
    def outstanding_handles(self) -> int:
        return sum(slab.refs for slab in self._slabs.values())

    # -- allocation ------------------------------------------------------

    def place(self, array: np.ndarray | bytes) -> FrameHandle:
        """Copy ``array`` into shared memory; returns its handle.

        ``bytes`` payloads are placed as 1-D ``uint8`` arrays.  The
        copy is the *last* copy: every consumer in every process reads
        the same physical pages through the handle.
        """
        if self._closed:
            raise ValueError("place() after close(): the arena was already torn down")
        if isinstance(array, (bytes, bytearray, memoryview)):
            array = np.frombuffer(array, dtype=np.uint8)
        array = np.ascontiguousarray(array)
        slab = self._slab_with_room(array.nbytes)
        offset = _aligned(slab.used)
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=slab.shm.buf, offset=offset)
            view[...] = array
            del view
        slab.used = offset + array.nbytes
        slab.refs += 1
        _MET_PLACEMENTS.inc()
        return FrameHandle(
            segment=slab.shm.name,
            offset=offset,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
        )

    def _slab_with_room(self, nbytes: int) -> _Slab:
        active = self._active
        if active is not None:
            if _aligned(active.used) + nbytes <= active.shm.size:
                return active
            self._seal(active)
        size = max(self._slab_bytes, nbytes, 1)
        shm = shared_memory.SharedMemory(
            create=True, size=size, name=_new_segment_name(self._prefix)
        )
        slab = _Slab(shm)
        self._slabs[shm.name] = slab
        self._active = slab
        _MET_SEGMENTS.inc()
        _MET_BYTES_IN_FLIGHT.add(shm.size)
        return slab

    def _seal(self, slab: _Slab) -> None:
        slab.sealed = True
        if self._active is slab:
            self._active = None
        if slab.refs == 0:
            self._destroy(slab)

    # -- lifetime --------------------------------------------------------

    def release(self, handle: FrameHandle) -> None:
        """Release one handle.  When a sealed segment's last handle is
        released the segment is destroyed immediately; the segment still
        open for allocation lives until it seals or the arena closes."""
        slab = self._slabs.get(handle.segment)
        if slab is None:
            raise ValueError(
                f"release of unknown handle: segment {handle.segment!r} is not "
                "(or no longer) owned by this arena"
            )
        if slab.refs <= 0:
            raise ValueError(f"segment {handle.segment!r} released more times than placed")
        slab.refs -= 1
        if slab.refs == 0 and slab.sealed:
            self._destroy(slab)

    def _destroy(self, slab: _Slab) -> None:
        del self._slabs[slab.shm.name]
        if self._active is slab:
            self._active = None
        detach_segment(slab.shm.name)  # a same-process consumer may hold a mapping
        size = slab.shm.size
        slab.shm.close()
        slab.shm.unlink()
        _MET_BYTES_IN_FLIGHT.add(-size)

    def close(self) -> None:
        """Unlink every segment, released or not.  Idempotent.  Handles
        already shipped become dangling — close only after every
        consumer is done (for pool runs: after ``run_jobs`` returns)."""
        if self._closed:
            return
        self._closed = True
        for slab in list(self._slabs.values()):
            self._destroy(slab)
        self._active = None

    def __enter__(self) -> "FrameArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
