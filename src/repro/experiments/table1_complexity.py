"""Table 1 — ACBM computational complexity.

Average number of candidate positions searched per macroblock, for
Qp ∈ {30, 28, …, 16}, four sequences, 30 and 10 fps; FSBM's constant
969 (p = 15: 961 integer + 8 half-pel) is the reference the paper
quotes its "up to 95 %" reduction against.

The numbers come from the same encoder runs as the RD sweep (the
positions depend on Qp through the classifier threshold α + β·Qp², so
they must be measured inside real encodes, not standalone searches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.rd_curves import RDSweepResult, run_rd_sweep


def fsbm_reference_positions(p: int) -> int:
    """The paper's constant for full search: (2p+1)² integer candidates
    plus 8 half-pel refinements — 969 at p = 15."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return (2 * p + 1) ** 2 + 8


@dataclass
class Table1Result:
    """ACBM positions/MB in the paper's row/column layout."""

    config: ExperimentConfig
    #: (sequence, fps) → {qp: avg positions per MB}
    columns: dict[tuple[str, int], dict[int, float]]

    @property
    def fsbm_positions(self) -> int:
        return fsbm_reference_positions(self.config.p)

    def cell(self, sequence: str, fps: int, qp: int) -> float:
        try:
            return self.columns[(sequence, fps)][qp]
        except KeyError:
            raise ValueError(f"no Table 1 cell ({sequence}, {fps} fps, qp={qp})") from None

    def reduction(self, sequence: str, fps: int, qp: int) -> float:
        """Fractional saving vs FSBM for one cell (the "up to 95 %")."""
        return 1.0 - self.cell(sequence, fps, qp) / self.fsbm_positions

    def max_reduction(self) -> float:
        return max(
            self.reduction(seq, fps, qp)
            for (seq, fps), col in self.columns.items()
            for qp in col
        )

    def sequence_mean(self, sequence: str) -> float:
        """Mean positions/MB over all Qp and fps for one sequence —
        used to check the Miss-America-lowest / Foreman-highest shape."""
        values = [
            v
            for (seq, _), col in self.columns.items()
            if seq == sequence
            for v in col.values()
        ]
        if not values:
            raise ValueError(f"no columns for sequence {sequence!r}")
        return sum(values) / len(values)

    def as_text(self) -> str:
        keys = sorted(self.columns)
        headers = ["Qp"] + [f"{seq}@{fps}" for seq, fps in keys]
        rows = []
        for qp in self.config.qps:
            row: list[object] = [qp]
            for key in keys:
                row.append(self.columns[key].get(qp, float("nan")))
            rows.append(row)
        table = format_table(
            headers,
            rows,
            title=(
                "Table 1: ACBM avg candidate positions per macroblock "
                f"(FSBM reference: {self.fsbm_positions})"
            ),
            float_format="{:.0f}",
        )
        return table


def run_table1(
    config: ExperimentConfig | None = None,
    sweep: RDSweepResult | None = None,
    progress=None,
    jobs: int = 1,
    use_shm: bool | str = "auto",
) -> Table1Result:
    """Produce Table 1, reusing a prior RD sweep when given one.

    ``jobs`` shards the underlying encode jobs across processes (see
    :func:`repro.experiments.rd_curves.run_rd_sweep`) and ``use_shm``
    picks their transport (default ``"auto"``: shared memory whenever
    workers spawn); the table is byte-identical for any combination.
    """
    config = config or ExperimentConfig()
    if sweep is None:
        sweep = run_rd_sweep(
            config, estimators=("acbm",), progress=progress, jobs=jobs, use_shm=use_shm
        )
    columns: dict[tuple[str, int], dict[int, float]] = {}
    for cell in sweep.cells:
        if cell.estimator != "acbm":
            continue
        columns.setdefault((cell.sequence, cell.fps), {})[cell.qp] = cell.avg_positions
    if not columns:
        raise ValueError("sweep contains no ACBM cells")
    return Table1Result(config=config, columns=columns)
