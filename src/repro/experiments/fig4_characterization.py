"""The Fig. 3 experimental rig and Fig. 4 characterization data.

Methodology (paper Section 3.1): build a ten-frame sequence from one
reference frame by applying nine *known* global motion vectors, run
FSBM over consecutive frame pairs, and classify every 16x16 block by
the error between the FSBM vector and the ground truth.  For each
block, record Intra_SAD and SAD_deviation; Fig. 4 scatters those per
error class.

Here the known global motion is produced exactly: the frames are
camera windows cropped at integer offsets from one large textured
world plane, so inner content translates by precisely the commanded
displacement (no border wrap artifacts).

The paper's two conclusions become checkable properties of the result:

1. blocks with true vectors (error = 0) have *higher* mean Intra_SAD
   and SAD_deviation than erroneous blocks;
2. erroneous vectors concentrate on low-texture blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.analysis.reporting import format_table
from repro.me.engine import frame_sad_surfaces, select_minima
from repro.me.metrics import block_activity_map
from repro.me.types import MotionVector
from repro.video.frame import QCIF, FrameGeometry
from repro.video.synthesis.texture import (
    flat_field,
    gradient_field,
    noise_texture,
    stripe_field,
)

#: The nine commanded global displacements (dx, dy) in pixels, mixing
#: magnitudes and directions inside the ±15 window as the rig requires.
DEFAULT_GLOBAL_MOTIONS: tuple[tuple[int, int], ...] = (
    (1, 0),
    (0, -1),
    (-2, 1),
    (3, 2),
    (-4, -3),
    (5, -2),
    (-7, 4),
    (8, 6),
    (-10, -8),
)


def default_world(geometry: FrameGeometry = QCIF, margin: int = 32, seed: int = 0) -> np.ndarray:
    """A world plane with all four texture regimes side by side —
    flat, gradient, stripes and fine noise — so both the high- and
    low-Intra_SAD populations of Fig. 4 appear."""
    h = geometry.height + 2 * margin
    w = geometry.width + 2 * margin
    half_h, half_w = h // 2, w - w // 2
    top_left = flat_field(h - h // 2, w // 2, level=120.0)
    top_right = gradient_field(h - h // 2, half_w, low=70.0, high=190.0, axis=1)
    bottom_left = stripe_field(h // 2, w // 2, period=14, low=80.0, high=180.0)
    bottom_right = noise_texture(h // 2, half_w, seed=seed + 7, cell=10, octaves=4, amplitude=55.0)
    world = np.empty((h, w), dtype=np.float64)
    world[: h - h // 2, : w // 2] = top_left
    world[: h - h // 2, w // 2 :] = top_right
    world[h - h // 2 :, : w // 2] = bottom_left
    world[h - h // 2 :, w // 2 :] = bottom_right
    # Mild global blur-free noise so "flat" is near-flat, not exactly
    # flat (real sensors never are); keeps SADs strictly positive.
    rng = np.random.default_rng(seed + 99)
    world += rng.normal(0.0, 0.7, size=world.shape)
    return np.clip(world, 0.0, 255.0)


@dataclass(frozen=True)
class BlockObservation:
    """One dot of the Fig. 4 scatter."""

    frame_pair: int
    mb_row: int
    mb_col: int
    error_class: int  # Chebyshev pixels, capped at 5 ("error >= 5")
    intra_sad: float
    sad_deviation: int
    sad_min: int


@dataclass
class Fig4Result:
    """All block observations plus per-class aggregates."""

    observations: list[BlockObservation] = field(default_factory=list)

    def classes(self) -> dict[int, list[BlockObservation]]:
        grouped: dict[int, list[BlockObservation]] = {}
        for obs in self.observations:
            grouped.setdefault(obs.error_class, []).append(obs)
        return grouped

    def class_counts(self) -> dict[int, int]:
        return {cls: len(obs) for cls, obs in self.classes().items()}

    def class_means(self) -> dict[int, tuple[float, float]]:
        """error class → (mean Intra_SAD, mean SAD_deviation)."""
        return {
            cls: (
                float(np.mean([o.intra_sad for o in obs])),
                float(np.mean([o.sad_deviation for o in obs])),
            )
            for cls, obs in self.classes().items()
        }

    def true_fraction(self) -> float:
        """Fraction of blocks whose FSBM vector matched the commanded
        global motion exactly."""
        if not self.observations:
            raise ValueError("no observations recorded")
        return self.class_counts().get(0, 0) / len(self.observations)

    def scatter(self, error_class: int) -> tuple[np.ndarray, np.ndarray]:
        """(Intra_SAD, SAD_deviation) arrays for one error class — the
        raw data behind one of Fig. 4's six panels."""
        obs = self.classes().get(error_class, [])
        return (
            np.array([o.intra_sad for o in obs]),
            np.array([o.sad_deviation for o in obs], dtype=np.int64),
        )

    def as_text(self) -> str:
        rows = []
        means = self.class_means()
        counts = self.class_counts()
        for cls in sorted(counts):
            label = f"error>={cls}" if cls >= 5 else f"error={cls}"
            mean_isad, mean_dev = means[cls]
            rows.append((label, counts[cls], mean_isad, mean_dev))
        return format_table(
            ["class", "blocks", "mean Intra_SAD", "mean SAD_deviation"],
            rows,
            title="Fig. 4 characterization (per error class)",
            float_format="{:.0f}",
        )


def render_rig_frames(
    motions: tuple[tuple[int, int], ...],
    geometry: FrameGeometry = QCIF,
    p: int = 15,
    seed: int = 0,
    world: np.ndarray | None = None,
) -> list[np.ndarray]:
    """The rig's frame stack: camera windows cropped from the world
    plane at the accumulated commanded offsets.

    Camera offsets start centred and accumulate the commanded
    displacements.  Moving the window by (+dy, +dx) means the current
    frame's content matches the previous frame at displacement
    (+dx, +dy) — i.e. the measured motion vector equals the command
    (paper Fig. 1 convention: best match at (x+u, y+v)).
    """
    if any(max(abs(dx), abs(dy)) > p for dx, dy in motions):
        raise ValueError(f"commanded motions must stay within +-{p}")
    offsets = [(0, 0)]
    for dx, dy in motions:
        oy, ox = offsets[-1]
        offsets.append((oy + dy, ox + dx))
    max_oy = max(abs(oy) for oy, _ in offsets)
    max_ox = max(abs(ox) for _, ox in offsets)
    margin = max(max_oy, max_ox) + p + 2
    if world is None:
        world = default_world(geometry, margin=margin, seed=seed)
    wh, ww = world.shape
    if wh < geometry.height + 2 * margin or ww < geometry.width + 2 * margin:
        raise ValueError(
            f"world {world.shape} too small for margin {margin} around "
            f"{geometry.width}x{geometry.height}"
        )
    centre_y = (wh - geometry.height) // 2
    centre_x = (ww - geometry.width) // 2
    frames = []
    for oy, ox in offsets:
        window = world[
            centre_y + oy : centre_y + oy + geometry.height,
            centre_x + ox : centre_x + ox + geometry.width,
        ]
        frames.append(np.clip(np.rint(window), 0, 255).astype(np.uint8))
    return frames


@lru_cache(maxsize=4)
def rig_frames_cached(
    motions: tuple[tuple[int, int], ...],
    geometry: FrameGeometry,
    p: int,
    seed: int,
) -> list[np.ndarray]:
    """Memoized :func:`render_rig_frames` for the default world — a
    worker executing several pairs of one rig (the
    :class:`repro.parallel.Fig4PairJob` identity fields are the key)
    renders the frame stack once per process."""
    return render_rig_frames(tuple(motions), geometry, p=p, seed=seed)


def observe_pair(
    frames: list[np.ndarray],
    pair_index: int,
    motion: tuple[int, int],
    block_size: int = 16,
    p: int = 15,
) -> list[BlockObservation]:
    """Every block's Fig. 4 observation for one consecutive frame pair
    of a full rig stack — slices the pair out and delegates to
    :func:`observe_frames`."""
    return observe_frames(
        frames[pair_index],
        frames[pair_index + 1],
        pair_index,
        motion,
        block_size=block_size,
        p=p,
    )


def observe_frames(
    reference: np.ndarray,
    current: np.ndarray,
    pair_index: int,
    motion: tuple[int, int],
    block_size: int = 16,
    p: int = 15,
) -> list[BlockObservation]:
    """Every block's Fig. 4 observation for one explicit frame pair.

    The two-frame seam exists so shared-memory workers holding just the
    pair's handles (not the whole rig) can still stamp the correct
    ``frame_pair`` index on each observation.

    One engine pass per frame pair: every block's full SAD surface
    (also the backing store of SAD_deviation), the FSBM minima with
    the standard tie-break, and the Intra_SAD activity map —
    block-for-block identical to running full_search_sads /
    select_minimum / sad_deviation per macroblock.
    """
    dx, dy = motion
    truth = MotionVector(2 * dx, 2 * dy)
    surfaces = frame_sad_surfaces(current, reference, block_size, p)
    best_dx, best_dy, sad_mins, _ = select_minima(surfaces)
    deviations = surfaces.deviations()
    activity = block_activity_map(current, block_size)
    mb_rows, mb_cols = current.shape[0] // block_size, current.shape[1] // block_size
    observations = []
    for r in range(mb_rows):
        for c in range(mb_cols):
            mv = MotionVector(2 * int(best_dx[r, c]), 2 * int(best_dy[r, c]))
            error = (mv - truth).chebyshev_pixels()
            error_class = min(int(error), 5)
            observations.append(
                BlockObservation(
                    frame_pair=pair_index,
                    mb_row=r,
                    mb_col=c,
                    error_class=error_class,
                    intra_sad=float(activity[r, c]),
                    sad_deviation=int(deviations[r, c]),
                    sad_min=int(sad_mins[r, c]),
                )
            )
    return observations


def run_fig4(
    world: np.ndarray | None = None,
    motions: tuple[tuple[int, int], ...] = DEFAULT_GLOBAL_MOTIONS,
    geometry: FrameGeometry = QCIF,
    p: int = 15,
    block_size: int = 16,
    seed: int = 0,
    jobs: int = 1,
    progress=None,
    use_shm: bool | str = "auto",
) -> Fig4Result:
    """Run the Fig. 3 rig and return the Fig. 4 observations.

    Parameters
    ----------
    world:
        Optional world plane; defaults to :func:`default_world` with a
        margin able to absorb the cumulative commanded displacement.
        An explicit world is processed in-process (arrays are not part
        of the hashable job identity), so ``jobs`` then has no effect.
    motions:
        The nine known (dx, dy) global displacements between the ten
        consecutive frames.
    jobs:
        Worker processes sharding the frame pairs; observations merge
        in pair order, so the result is identical for any value.
    progress:
        Optional per-pair progress callable.
    use_shm:
        Transport for parallel runs, forwarded to
        :func:`~repro.parallel.pool.run_jobs`; the default ``"auto"``
        ships the rig as shared-memory handles whenever workers spawn.
        Observations are identical under every mode.
    """
    motions = tuple(motions)
    result = Fig4Result()
    if world is not None:
        frames = render_rig_frames(motions, geometry, p=p, seed=seed, world=world)
        for pair_index, motion in enumerate(motions):
            if progress is not None:
                progress(f"fig4 pair {pair_index}")
            result.observations.extend(
                observe_pair(frames, pair_index, motion, block_size=block_size, p=p)
            )
        return result

    from repro.parallel import Fig4PairJob, run_jobs

    # Fail fast (and in this process) on bad commands; the default
    # world always satisfies the rig's margin requirement.
    if any(max(abs(dx), abs(dy)) > p for dx, dy in motions):
        raise ValueError(f"commanded motions must stay within +-{p}")
    pair_jobs = [
        Fig4PairJob(
            pair_index=i,
            motions=motions,
            geometry=geometry,
            p=p,
            block_size=block_size,
            seed=seed,
        )
        for i in range(len(motions))
    ]
    for observations in run_jobs(
        pair_jobs, workers=jobs, base_seed=seed, progress=progress, use_shm=use_shm
    ):
        result.observations.extend(observations)
    return result
